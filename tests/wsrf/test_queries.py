"""Cross-resource queries (the WSRF.NET rich-query feature)."""

import pytest

from repro.addressing import EndpointReference
from repro.soap import SoapFault
from repro.wsrf import RESOURCE_ID, ResourceHome, ResourceQueryMixin
from repro.wsrf.queries import WSRFNET_NS, actions
from repro.xmllib import element

from tests.helpers import make_client, make_deployment, server_container
from tests.wsrf.conftest import CounterService, create_counter


class QueryableCounterService(ResourceQueryMixin, CounterService):
    service_name = "QueryableCounter"


@pytest.fixture()
def rig():
    deployment = make_deployment()
    container = server_container(deployment)
    service = QueryableCounterService(ResourceHome("counters", deployment.network))
    container.add_service(service)
    client = make_client(deployment)
    return deployment, service, client


def query(client, service, expression, dialect=None):
    body = element(
        f"{{{WSRFNET_NS}}}QueryResources",
        element(
            f"{{{WSRFNET_NS}}}QueryExpression",
            expression,
            attrs={"Dialect": dialect or "http://www.w3.org/TR/1999/REC-xpath-19991116"},
        ),
    )
    return client.invoke(service.epr(), actions.QUERY_RESOURCES, body)


class TestQueryResources:
    def test_query_finds_matching_resources(self, rig):
        _, service, client = rig
        create_counter(service, client, initial=5, label="small")
        create_counter(service, client, initial=50, label="big")
        create_counter(service, client, initial=500, label="huge")
        response = query(client, service, "//cv[. > 10]")
        matches = response.find_all(f"{{{WSRFNET_NS}}}MatchedResource")
        assert len(matches) == 2

    def test_matches_carry_eprs(self, rig):
        _, service, client = rig
        epr = create_counter(service, client, initial=7)
        response = query(client, service, "//cv[. = 7]")
        match = response.find(f"{{{WSRFNET_NS}}}MatchedResource")
        found = EndpointReference.from_xml(match.find_local("EndpointReference"))
        assert found.property(RESOURCE_ID) == epr.property(RESOURCE_ID)

    def test_no_matches_empty_response(self, rig):
        _, service, client = rig
        create_counter(service, client, initial=1)
        response = query(client, service, "//cv[. > 999]")
        assert response.find_all(f"{{{WSRFNET_NS}}}MatchedResource") == []

    def test_hits_grouped_per_resource(self, rig):
        _, service, client = rig
        create_counter(service, client, initial=3, label="x")
        response = query(client, service, "//cv | //label")
        matches = response.find_all(f"{{{WSRFNET_NS}}}MatchedResource")
        assert len(matches) == 1  # one resource, both hits grouped under it
        assert len(list(matches[0].element_children())) == 3  # EPR + 2 hits

    def test_invalid_query_faults(self, rig):
        _, service, client = rig
        with pytest.raises(SoapFault, match="invalid query"):
            query(client, service, "//cv[")

    def test_unknown_dialect_faults(self, rig):
        _, service, client = rig
        with pytest.raises(SoapFault, match="unknown query dialect"):
            query(client, service, "//cv", dialect="urn:xquery")

    def test_missing_expression_faults(self, rig):
        _, service, client = rig
        with pytest.raises(SoapFault, match="no QueryExpression"):
            client.invoke(
                service.epr(), actions.QUERY_RESOURCES, element(f"{{{WSRFNET_NS}}}QueryResources")
            )


class TestGridUsage:
    def test_admin_finds_reservations_by_owner(self):
        """The administrative use-case: which hosts has alice reserved?"""
        from tests.helpers import fresh_vo
        from repro.apps.giab.wsrf.reservation import WsrfReservationService

        class QueryableReservations(ResourceQueryMixin, WsrfReservationService):
            service_name = "Reservation"

        vo = fresh_vo("wsrf")
        # Upgrade the deployed reservation service in place:
        vo.reservation.__class__ = type(
            "QR", (ResourceQueryMixin, type(vo.reservation)), {}
        )
        vo.reservation._operations[actions.QUERY_RESOURCES] = (
            vo.reservation.wsrfnet_query_resources
        )
        vo.client.make_reservation("node1")
        vo.client.make_reservation("node2")
        response = query(
            vo.admin.soap, vo.reservation, f"//owner[. = '{vo.user_dn}']/../host"
        )
        matches = response.find_all(f"{{{WSRFNET_NS}}}MatchedResource")
        assert len(matches) == 2
