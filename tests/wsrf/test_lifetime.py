"""WS-ResourceLifetime: Destroy and scheduled termination over the wire."""

import pytest

from repro.soap import SoapFault
from repro.wsrf import RESOURCE_ID
from repro.wsrf.lifetime import actions, parse_termination_time
from repro.wsrf.properties import actions as rp_actions
from repro.xmllib import element

from tests.wsrf.conftest import BUMP, NS, create_counter

RL = "http://docs.oasis-open.org/wsrf/2004/06/wsrf-WS-ResourceLifetime-1.2-draft-01.xsd"
RP = "http://docs.oasis-open.org/wsrf/2004/06/wsrf-WS-ResourceProperties-1.2-draft-01.xsd"


class TestDestroy:
    def test_destroy_removes_resource(self, rig):
        _, service, client = rig
        epr = create_counter(service, client)
        client.invoke(epr, actions.DESTROY, element(f"{{{RL}}}Destroy"))
        with pytest.raises(SoapFault, match="unknown"):
            client.invoke(epr, BUMP, element(f"{{{NS}}}Bump"))

    def test_destroy_fires_service_hook(self, rig):
        _, service, client = rig
        epr = create_counter(service, client)
        key = epr.property(RESOURCE_ID)
        client.invoke(epr, actions.DESTROY, element(f"{{{RL}}}Destroy"))
        assert service.destroyed == [key]

    def test_destroy_twice_faults(self, rig):
        _, service, client = rig
        epr = create_counter(service, client)
        client.invoke(epr, actions.DESTROY, element(f"{{{RL}}}Destroy"))
        with pytest.raises(SoapFault):
            client.invoke(epr, actions.DESTROY, element(f"{{{RL}}}Destroy"))

    def test_destroy_requires_resource(self, rig):
        _, service, client = rig
        with pytest.raises(SoapFault, match="requires a WS-Resource"):
            client.invoke(service.epr(), actions.DESTROY, element(f"{{{RL}}}Destroy"))


class TestSetTerminationTime:
    def set_tt(self, client, epr, when):
        return client.invoke(
            epr,
            actions.SET_TERMINATION_TIME,
            element(
                f"{{{RL}}}SetTerminationTime",
                element(f"{{{RL}}}RequestedTerminationTime", when),
            ),
        )

    def test_scheduled_termination_destroys_resource(self, rig):
        deployment, service, client = rig
        epr = create_counter(service, client)
        deadline = deployment.network.clock.now + 1000
        self.set_tt(client, epr, repr(deadline))
        deployment.network.clock.advance_to(deadline + 1)
        assert not service.home.contains(epr.property(RESOURCE_ID))

    def test_scheduled_termination_fires_hook(self, rig):
        deployment, service, client = rig
        epr = create_counter(service, client)
        deadline = deployment.network.clock.now + 500
        self.set_tt(client, epr, repr(deadline))
        deployment.network.clock.advance_to(deadline + 1)
        assert epr.property(RESOURCE_ID) in service.destroyed

    def test_lengthening_supersedes_schedule(self, rig):
        """The Grid-in-a-Box "claim" pattern: push the deadline out."""
        deployment, service, client = rig
        epr = create_counter(service, client)
        first = deployment.network.clock.now + 500
        self.set_tt(client, epr, repr(first))
        self.set_tt(client, epr, repr(first + 10_000))
        deployment.network.clock.advance_to(first + 100)
        assert service.home.contains(epr.property(RESOURCE_ID))

    def test_infinity_cancels_schedule(self, rig):
        deployment, service, client = rig
        epr = create_counter(service, client)
        deadline = deployment.network.clock.now + 500
        self.set_tt(client, epr, repr(deadline))
        self.set_tt(client, epr, "infinity")
        deployment.network.clock.advance_to(deadline + 100)
        assert service.home.contains(epr.property(RESOURCE_ID))

    def test_past_time_faults(self, rig):
        deployment, service, client = rig
        epr = create_counter(service, client)
        with pytest.raises(SoapFault, match="in the past"):
            self.set_tt(client, epr, "0.0")

    def test_garbage_time_faults(self, rig):
        _, service, client = rig
        epr = create_counter(service, client)
        with pytest.raises(SoapFault, match="unintelligible"):
            self.set_tt(client, epr, "mañana")

    def test_response_reports_new_time_and_current_time(self, rig):
        deployment, service, client = rig
        epr = create_counter(service, client)
        deadline = deployment.network.clock.now + 777
        response = self.set_tt(client, epr, repr(deadline))
        assert repr(deadline) in response.text()


class TestLifetimeResourceProperties:
    def test_current_time_rp(self, rig):
        deployment, service, client = rig
        epr = create_counter(service, client)
        response = client.invoke(
            epr, rp_actions.GET, element(f"{{{RP}}}GetResourceProperty", "CurrentTime")
        )
        reported = float(response.text())
        assert 0 < reported <= deployment.network.clock.now

    def test_termination_time_rp_infinity_by_default(self, rig):
        _, service, client = rig
        epr = create_counter(service, client)
        response = client.invoke(
            epr, rp_actions.GET, element(f"{{{RP}}}GetResourceProperty", "TerminationTime")
        )
        assert response.text() == "infinity"

    def test_termination_time_rp_after_set(self, rig):
        deployment, service, client = rig
        epr = create_counter(service, client)
        deadline = deployment.network.clock.now + 5000
        TestSetTerminationTime().set_tt(self_client := client, epr, repr(deadline))
        response = client.invoke(
            epr, rp_actions.GET, element(f"{{{RP}}}GetResourceProperty", "TerminationTime")
        )
        assert response.text() == repr(deadline)


class TestParseTerminationTime:
    def test_variants(self):
        assert parse_termination_time("") is None
        assert parse_termination_time("infinity") is None
        assert parse_termination_time("Never") is None
        assert parse_termination_time(" 12.5 ") == 12.5

    def test_invalid_raises_fault(self):
        with pytest.raises(SoapFault):
            parse_termination_time("later")
