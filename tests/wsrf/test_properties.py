"""WS-ResourceProperties operations over the wire."""

import pytest

from repro.soap import SoapFault
from repro.wsrf.properties import actions
from repro.xmllib import element

from tests.wsrf.conftest import NS, create_counter

RP = "http://docs.oasis-open.org/wsrf/2004/06/wsrf-WS-ResourceProperties-1.2-draft-01.xsd"


class TestGetResourceProperty:
    def test_get_by_local_name(self, rig):
        _, service, client = rig
        epr = create_counter(service, client, initial=21)
        response = client.invoke(
            epr, actions.GET, element(f"{{{RP}}}GetResourceProperty", "Value")
        )
        assert response.find(f"{{{NS}}}Value").text() == "21"

    def test_get_by_clark_name(self, rig):
        _, service, client = rig
        epr = create_counter(service, client, initial=3)
        response = client.invoke(
            epr, actions.GET, element(f"{{{RP}}}GetResourceProperty", f"{{{NS}}}DoubleValue")
        )
        assert response.find(f"{{{NS}}}DoubleValue").text() == "6"

    def test_dynamic_property_computed(self, rig):
        _, service, client = rig
        epr = create_counter(service, client, initial=5)
        response = client.invoke(
            epr, actions.GET, element(f"{{{RP}}}GetResourceProperty", "DoubleValue")
        )
        assert response.find(f"{{{NS}}}DoubleValue").text() == "10"

    def test_unknown_property_faults(self, rig):
        _, service, client = rig
        epr = create_counter(service, client)
        with pytest.raises(SoapFault, match="no ResourceProperty"):
            client.invoke(epr, actions.GET, element(f"{{{RP}}}GetResourceProperty", "Missing"))

    def test_empty_name_faults(self, rig):
        _, service, client = rig
        epr = create_counter(service, client)
        with pytest.raises(SoapFault, match="empty"):
            client.invoke(epr, actions.GET, element(f"{{{RP}}}GetResourceProperty", ""))

    def test_prefixed_name_matches_local(self, rig):
        _, service, client = rig
        epr = create_counter(service, client, initial=8)
        response = client.invoke(
            epr, actions.GET, element(f"{{{RP}}}GetResourceProperty", "tns:Value")
        )
        assert response.find(f"{{{NS}}}Value").text() == "8"


class TestGetMultiple:
    def test_multiple_properties(self, rig):
        _, service, client = rig
        epr = create_counter(service, client, initial=2, label="job-counter")
        body = element(
            f"{{{RP}}}GetMultipleResourceProperties",
            element(f"{{{RP}}}ResourceProperty", "Value"),
            element(f"{{{RP}}}ResourceProperty", "Label"),
        )
        response = client.invoke(epr, actions.GET_MULTIPLE, body)
        assert response.find(f"{{{NS}}}Value").text() == "2"
        assert response.find(f"{{{NS}}}Label").text() == "job-counter"

    def test_empty_request_faults(self, rig):
        _, service, client = rig
        epr = create_counter(service, client)
        with pytest.raises(SoapFault, match="names no properties"):
            client.invoke(epr, actions.GET_MULTIPLE, element(f"{{{RP}}}GetMultipleResourceProperties"))

    def test_one_unknown_in_batch_faults(self, rig):
        _, service, client = rig
        epr = create_counter(service, client)
        body = element(
            f"{{{RP}}}GetMultipleResourceProperties",
            element(f"{{{RP}}}ResourceProperty", "Value"),
            element(f"{{{RP}}}ResourceProperty", "Nope"),
        )
        with pytest.raises(SoapFault):
            client.invoke(epr, actions.GET_MULTIPLE, body)


class TestSetResourceProperties:
    def test_update_settable_property(self, rig):
        _, service, client = rig
        epr = create_counter(service, client, initial=1)
        body = element(
            f"{{{RP}}}SetResourceProperties",
            element(f"{{{RP}}}Update", element(f"{{{NS}}}Value", "41")),
        )
        client.invoke(epr, actions.SET, body)
        response = client.invoke(epr, actions.GET, element(f"{{{RP}}}GetResourceProperty", "Value"))
        assert response.find(f"{{{NS}}}Value").text() == "41"

    def test_update_not_settable_faults(self, rig):
        _, service, client = rig
        epr = create_counter(service, client)
        body = element(
            f"{{{RP}}}SetResourceProperties",
            element(f"{{{RP}}}Update", element(f"{{{NS}}}DoubleValue", "10")),
        )
        with pytest.raises(SoapFault, match="not modifiable"):
            client.invoke(epr, actions.SET, body)

    def test_delete_resets_value(self, rig):
        _, service, client = rig
        epr = create_counter(service, client, initial=9)
        body = element(
            f"{{{RP}}}SetResourceProperties",
            element(f"{{{RP}}}Delete", attrs={"ResourceProperty": "Value"}),
        )
        client.invoke(epr, actions.SET, body)
        response = client.invoke(epr, actions.GET, element(f"{{{RP}}}GetResourceProperty", "Value"))
        assert response.find(f"{{{NS}}}Value").text() == "0"

    def test_insert_degenerates_to_update(self, rig):
        _, service, client = rig
        epr = create_counter(service, client)
        body = element(
            f"{{{RP}}}SetResourceProperties",
            element(f"{{{RP}}}Insert", element(f"{{{NS}}}Value", "5")),
        )
        client.invoke(epr, actions.SET, body)
        response = client.invoke(epr, actions.GET, element(f"{{{RP}}}GetResourceProperty", "Value"))
        assert response.find(f"{{{NS}}}Value").text() == "5"

    def test_empty_set_faults(self, rig):
        _, service, client = rig
        epr = create_counter(service, client)
        with pytest.raises(SoapFault, match="no modifications"):
            client.invoke(epr, actions.SET, element(f"{{{RP}}}SetResourceProperties"))

    def test_unknown_modifier_faults(self, rig):
        _, service, client = rig
        epr = create_counter(service, client)
        body = element(
            f"{{{RP}}}SetResourceProperties",
            element(f"{{{RP}}}Replace", element(f"{{{NS}}}Value", "5")),
        )
        with pytest.raises(SoapFault, match="unknown SetResourceProperties modifier"):
            client.invoke(epr, actions.SET, body)

    def test_set_persists_to_store(self, rig):
        """The value must actually round-trip through the database."""
        _, service, client = rig
        epr = create_counter(service, client, initial=1)
        body = element(
            f"{{{RP}}}SetResourceProperties",
            element(f"{{{RP}}}Update", element(f"{{{NS}}}Value", "77")),
        )
        client.invoke(epr, actions.SET, body)
        from repro.wsrf import RESOURCE_ID

        doc = service.home.load(epr.property(RESOURCE_ID))
        assert "77" in doc.text()


class TestQueryResourceProperties:
    XPATH_DIALECT = "http://www.w3.org/TR/1999/REC-xpath-19991116"

    def query(self, client, epr, expression, dialect=None):
        body = element(
            f"{{{RP}}}QueryResourceProperties",
            element(
                f"{{{RP}}}QueryExpression",
                expression,
                attrs={"Dialect": dialect or self.XPATH_DIALECT},
            ),
        )
        return client.invoke(epr, actions.QUERY, body)

    def test_query_selects_nodes(self, rig):
        _, service, client = rig
        epr = create_counter(service, client, initial=6)
        response = self.query(client, epr, "//Value")
        assert response.find(f"{{{NS}}}Value").text() == "6"

    def test_query_boolean_result(self, rig):
        _, service, client = rig
        epr = create_counter(service, client, initial=6)
        response = self.query(client, epr, "count(//Value) = 1")
        assert response.text() == "True" or response.text() == "true"

    def test_query_rich_predicate(self, rig):
        _, service, client = rig
        epr = create_counter(service, client, initial=10, label="high")
        response = self.query(client, epr, "//Label[../Value > 5]")
        assert response.find(f"{{{NS}}}Label").text() == "high"

    def test_unknown_dialect_faults(self, rig):
        _, service, client = rig
        epr = create_counter(service, client)
        with pytest.raises(SoapFault, match="unknown query dialect"):
            self.query(client, epr, "//Value", dialect="urn:xquery")

    def test_invalid_expression_faults(self, rig):
        _, service, client = rig
        epr = create_counter(service, client)
        with pytest.raises(SoapFault, match="invalid query"):
            self.query(client, epr, "//Value[")

    def test_missing_expression_faults(self, rig):
        _, service, client = rig
        epr = create_counter(service, client)
        with pytest.raises(SoapFault, match="no QueryExpression"):
            client.invoke(epr, actions.QUERY, element(f"{{{RP}}}QueryResourceProperties"))
