"""Nested dispatch on the same service instance (timer-driven out-calls)."""

import pytest

from repro.container import MessageContext, web_method
from repro.wsrf import (
    ResourceField,
    ResourceHome,
    ResourcePropertiesMixin,
    WsResourceService,
)
from repro.xmllib import element, text_of

from tests.helpers import make_client, make_deployment, server_container

NS = "urn:test:reentrant"
OUTER = f"{NS}/Outer"
INNER = f"{NS}/Inner"


class ReentrantService(ResourcePropertiesMixin, WsResourceService):
    """Outer mutates resource A, then (mid-operation) a nested dispatch on
    the *same instance* handles resource B — the timer-callback pattern."""

    service_name = "Reentrant"
    resource_ns = NS

    value = ResourceField(int, 0)

    @web_method(OUTER)
    def outer(self, context: MessageContext):
        self.value = self.value + 100  # mutate A, not yet saved
        inner_key = text_of(context.body.find_local("InnerKey"))
        # Nested invocation through the wire against resource B:
        client = self.container.outcall_client()
        client.invoke(
            self.resource_epr(inner_key), INNER, element(f"{{{NS}}}Inner")
        )
        # After the nested dispatch, A's loaded state must be intact:
        return element(f"{{{NS}}}OuterResponse", str(self.value))

    @web_method(INNER)
    def inner(self, context: MessageContext):
        self.value = self.value + 1
        return element(f"{{{NS}}}InnerResponse", str(self.value))


@pytest.fixture()
def rig():
    deployment = make_deployment()
    container = server_container(deployment)
    service = ReentrantService(ResourceHome("reentrant", deployment.network))
    container.add_service(service)
    client = make_client(deployment)
    return deployment, service, client


class TestNestedDispatch:
    def test_outer_state_survives_nested_dispatch(self, rig):
        from repro.wsrf import RESOURCE_ID

        _, service, client = rig
        epr_a = service.create_resource(value=1)
        epr_b = service.create_resource(value=50)
        inner_key = epr_b.property(RESOURCE_ID)
        response = client.invoke(
            epr_a, OUTER, element(f"{{{NS}}}Outer", element(f"{{{NS}}}InnerKey", inner_key))
        )
        # Outer saw its own mutation (1+100), not B's state.
        assert response.text() == "101"
        # Both resources persisted their own changes.
        doc_a = service.home.load(epr_a.property(RESOURCE_ID))
        doc_b = service.home.load(inner_key)
        assert "101" in doc_a.text()
        assert "51" in doc_b.text()

    def test_nested_fault_leaves_outer_intact(self, rig):
        from repro.soap import SoapFault
        from repro.wsrf import RESOURCE_ID

        _, service, client = rig
        epr_a = service.create_resource(value=1)
        with pytest.raises(SoapFault):
            client.invoke(
                epr_a, OUTER, element(f"{{{NS}}}Outer", element(f"{{{NS}}}InnerKey", "ghost"))
            )
        # The outer dispatch faulted (propagated), but the home is coherent:
        doc_a = service.home.load(epr_a.property(RESOURCE_ID))
        assert "1" in doc_a.text()
