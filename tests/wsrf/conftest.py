"""A small WSRF counter service used throughout the wsrf tests."""

from __future__ import annotations

import pytest

from repro.container import MessageContext, web_method
from repro.wsrf import (
    ResourceField,
    ResourceHome,
    ResourceLifetimeMixin,
    ResourcePropertiesMixin,
    WsResourceService,
    resource_property,
)
from repro.xmllib import element, text_of
from tests.helpers import make_client, make_deployment, server_container

NS = "urn:test:counter"
CREATE = f"{NS}/Create"
BUMP = f"{NS}/Bump"


class CounterService(ResourcePropertiesMixin, ResourceLifetimeMixin, WsResourceService):
    service_name = "Counter"
    resource_ns = NS

    cv = ResourceField(int, 0)
    label = ResourceField(str, "unnamed")

    destroyed: list[str]

    def __init__(self, home):
        super().__init__(home)
        self.destroyed = []

    @web_method(CREATE)
    def create(self, context: MessageContext):
        initial = text_of(context.body.find_local("Initial"), "0")
        label = text_of(context.body.find_local("Label"), "unnamed")
        epr = self.create_resource(cv=int(initial), label=label)
        return element(f"{{{NS}}}CreateResponse", epr.to_xml())

    @web_method(BUMP)
    def bump(self, context: MessageContext):
        self.cv = self.cv + 1
        return element(f"{{{NS}}}BumpResponse", str(self.cv))

    @resource_property(f"{{{NS}}}Value", settable=True)
    def value(self):
        return self.cv

    def set_value(self, replacement):
        if replacement is None:
            self.cv = 0
        else:
            self.cv = int(replacement.text())

    @resource_property(f"{{{NS}}}DoubleValue")
    def double_value(self):
        return self.cv * 2

    @resource_property(f"{{{NS}}}Label")
    def rp_label(self):
        return self.label

    def on_resource_destroyed(self, key):
        self.destroyed.append(key)


@pytest.fixture()
def rig():
    deployment = make_deployment()
    container = server_container(deployment)
    service = CounterService(ResourceHome("counters", deployment.network))
    container.add_service(service)
    client = make_client(deployment)
    return deployment, service, client


def create_counter(service, client, initial=0, label="unnamed"):
    from repro.addressing import EndpointReference

    response = client.invoke(
        service.epr(),
        CREATE,
        element(
            f"{{{NS}}}Create",
            element(f"{{{NS}}}Initial", initial),
            element(f"{{{NS}}}Label", label),
        ),
    )
    return EndpointReference.from_xml(next(response.element_children()))
