"""WS-ServiceGroup: Add, membership rules, entry lifetime."""

import pytest

from repro.addressing import EndpointReference
from repro.soap import SoapFault
from repro.wsrf import RESOURCE_ID, ResourceHome, ServiceGroupService
from repro.wsrf.lifetime import actions as rl_actions
from repro.wsrf.servicegroup import actions
from repro.xmllib import QName, element, ns

from tests.helpers import make_client, make_deployment, server_container

SG = ns.WSRF_SG
RL = ns.WSRF_RL


@pytest.fixture()
def rig():
    deployment = make_deployment()
    container = server_container(deployment)
    group = ServiceGroupService(
        ResourceHome("group", deployment.network),
        content_rules=(QName("urn:giab", "HostInfo"),),
    )
    container.add_service(group)
    client = make_client(deployment)
    return deployment, group, client


def add_member(client, group, address="soap://node1/App/Exec", content=None):
    body = element(
        f"{{{SG}}}Add",
        EndpointReference.create(address).to_xml(f"{{{SG}}}MemberEPR"),
    )
    if content is not None:
        body.append(element(f"{{{SG}}}Content", content))
    response = client.invoke(group.epr(), actions.ADD, body)
    return EndpointReference.from_xml(next(response.element_children()))


class TestAdd:
    def test_add_returns_entry_epr(self, rig):
        _, group, client = rig
        entry = add_member(client, group, content=element("{urn:giab}HostInfo", "node1"))
        assert entry.property(RESOURCE_ID) is not None

    def test_members_listing(self, rig):
        _, group, client = rig
        add_member(client, group, "soap://n1/App/Exec", element("{urn:giab}HostInfo", "n1"))
        add_member(client, group, "soap://n2/App/Exec", element("{urn:giab}HostInfo", "n2"))
        members = group.members()
        assert len(members) == 2
        addresses = {epr.address for _, epr, _ in members}
        assert addresses == {"soap://n1/App/Exec", "soap://n2/App/Exec"}

    def test_content_preserved(self, rig):
        _, group, client = rig
        add_member(client, group, content=element("{urn:giab}HostInfo", "node1"))
        _, _, content = group.members()[0]
        assert content.text() == "node1"

    def test_content_rule_violation_faults(self, rig):
        _, group, client = rig
        with pytest.raises(SoapFault, match="membership rules"):
            add_member(client, group, content=element("{urn:evil}Wrong"))

    def test_missing_content_with_rules_faults(self, rig):
        _, group, client = rig
        with pytest.raises(SoapFault, match="membership rules"):
            add_member(client, group, content=None)

    def test_missing_member_epr_faults(self, rig):
        _, group, client = rig
        with pytest.raises(SoapFault, match="no MemberEPR"):
            client.invoke(group.epr(), actions.ADD, element(f"{{{SG}}}Add"))

    def test_no_rules_admit_anything(self, rig):
        deployment, _, client = rig
        container = server_container(deployment, host="other")
        open_group = ServiceGroupService(ResourceHome("open", deployment.network))
        container.add_service(open_group)
        add_member(client, open_group, content=element("{urn:any}Thing"))
        add_member(client, open_group, content=None)
        assert len(open_group.members()) == 2


class TestEntryLifetime:
    def test_destroy_entry_removes_member(self, rig):
        _, group, client = rig
        entry = add_member(client, group, content=element("{urn:giab}HostInfo", "n"))
        client.invoke(entry, rl_actions.DESTROY, element(f"{{{RL}}}Destroy"))
        assert group.members() == []

    def test_entry_scheduled_termination(self, rig):
        deployment, group, client = rig
        entry = add_member(client, group, content=element("{urn:giab}HostInfo", "n"))
        deadline = deployment.network.clock.now + 100
        client.invoke(
            entry,
            rl_actions.SET_TERMINATION_TIME,
            element(
                f"{{{RL}}}SetTerminationTime",
                element(f"{{{RL}}}RequestedTerminationTime", repr(deadline)),
            ),
        )
        deployment.network.clock.advance_to(deadline + 1)
        assert group.members() == []

    def test_remove_entry_helper(self, rig):
        _, group, client = rig
        entry = add_member(client, group, content=element("{urn:giab}HostInfo", "n"))
        group.remove_entry(entry.property(RESOURCE_ID))
        assert group.members() == []

class TestMemberLookup:
    def test_entries_for_member_scan(self, rig):
        _, group, client = rig
        add_member(client, group, "soap://n1/App/Exec", element("{urn:giab}HostInfo", "n1"))
        entry = add_member(client, group, "soap://n2/App/Exec", element("{urn:giab}HostInfo", "n2"))
        keys = group.entries_for_member("soap://n2/App/Exec")
        assert keys == [entry.property(RESOURCE_ID)]
        assert group.entries_for_member("soap://nowhere/X") == []

    def test_entries_for_member_indexed(self, rig):
        _, group, client = rig
        index = group.enable_index()
        add_member(client, group, "soap://n1/App/Exec", element("{urn:giab}HostInfo", "n1"))
        entry = add_member(client, group, "soap://n2/App/Exec", element("{urn:giab}HostInfo", "n2"))
        # every Add maintained the index; the lookup runs off the posting list
        assert index.lookup("soap://n2/App/Exec") != set()
        assert group.entries_for_member("soap://n2/App/Exec") == [
            entry.property(RESOURCE_ID)
        ]

    def test_indexed_lookup_cost_independent_of_group_size(self, rig):
        deployment, group, client = rig
        group.enable_index()
        for i in range(20):
            add_member(
                client, group, f"soap://n{i:02d}/App/Exec",
                element("{urn:giab}HostInfo", f"n{i:02d}"),
            )
        network = deployment.network
        before = network.clock.now
        group.entries_for_member("soap://n07/App/Exec")
        indexed_cost = network.clock.now - before
        # a scan pays per registered member; the posting list pays per hit
        scan_floor = network.costs.db_query_per_doc * 20
        assert indexed_cost < scan_floor + network.costs.db_query_indexed

    def test_remove_member(self, rig):
        _, group, client = rig
        group.enable_index()
        add_member(client, group, "soap://n1/App/Exec", element("{urn:giab}HostInfo", "n1"))
        add_member(client, group, "soap://n2/App/Exec", element("{urn:giab}HostInfo", "n2"))
        assert group.remove_member("soap://n1/App/Exec") == 1
        assert group.remove_member("soap://n1/App/Exec") == 0
        addresses = {epr.address for _, epr, _ in group.members()}
        assert addresses == {"soap://n2/App/Exec"}

    def test_entry_rps_expose_member(self, rig):
        from repro.wsrf.properties import actions as rp_actions

        _, group, client = rig
        entry = add_member(client, group, content=element("{urn:giab}HostInfo", "n"))
        response = client.invoke(
            entry,
            rp_actions.GET,
            element(f"{{{ns.WSRF_RP}}}GetResourceProperty", "MemberServiceEPR"),
        )
        assert "soap://node1/App/Exec" in response.text()
