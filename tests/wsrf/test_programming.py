"""The WSRF.NET programming model: fields, wrapper load/save, EPR resolution."""

import pytest

from repro.soap import SoapFault
from repro.wsrf import RESOURCE_ID, ResourceField, ResourceHome, aggregate_port_types
from repro.wsrf.resource import ResourceUnknownError
from repro.xmllib import element

from tests.wsrf.conftest import BUMP, NS, CounterService, create_counter


class TestResourceField:
    def test_type_coercion_on_set(self):
        class Holder:
            x = ResourceField(int, 5)

        holder = Holder()
        assert holder.x == 5
        holder.x = "7"
        assert holder.x == 7

    def test_bool_roundtrip(self):
        field = ResourceField(bool, False)
        assert field.to_text(True) == "true"
        assert field.from_text("true") is True
        assert field.from_text("false") is False

    def test_float_roundtrip_precision(self):
        field = ResourceField(float, 0.0)
        value = 1.000000000000004
        assert field.from_text(field.to_text(value)) == value

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            ResourceField(list)

    def test_class_access_returns_descriptor(self):
        assert isinstance(CounterService.cv, ResourceField)


class TestWrapper:
    def test_each_resource_has_its_own_state(self, rig):
        _, service, client = rig
        epr_a = create_counter(service, client, initial=10)
        epr_b = create_counter(service, client, initial=20)
        client.invoke(epr_a, BUMP, element(f"{{{NS}}}Bump"))
        response = client.invoke(epr_b, BUMP, element(f"{{{NS}}}Bump"))
        assert response.text() == "21"
        response = client.invoke(epr_a, BUMP, element(f"{{{NS}}}Bump"))
        assert response.text() == "12"

    def test_state_persists_across_invocations(self, rig):
        _, service, client = rig
        epr = create_counter(service, client)
        for expected in ("1", "2", "3"):
            response = client.invoke(epr, BUMP, element(f"{{{NS}}}Bump"))
            assert response.text() == expected

    def test_unknown_resource_faults(self, rig):
        _, service, client = rig
        bad_epr = service.resource_epr("counters-99999999")
        with pytest.raises(SoapFault, match="unknown"):
            client.invoke(bad_epr, BUMP, element(f"{{{NS}}}Bump"))

    def test_operation_without_resource_faults_when_required(self, rig):
        _, service, client = rig
        with pytest.raises(SoapFault, match="requires a WS-Resource"):
            client.invoke(
                service.epr(),
                "http://docs.oasis-open.org/wsrf/2004/06/wsrf-WS-ResourceProperties-1.2-draft-01.xsd/GetResourceProperty",
                element("{urn:x}GetResourceProperty", "Value"),
            )

    def test_create_resource_rejects_unknown_field(self, rig):
        _, service, _ = rig
        with pytest.raises(ValueError, match="unknown resource field"):
            service.create_resource(nope=1)

    def test_create_resource_defaults(self, rig):
        deployment, service, client = rig
        epr = service.create_resource()
        key = epr.property(RESOURCE_ID)
        doc = service.home.load(key)
        assert "unnamed" in doc.text()


class TestResourceHome:
    def test_load_unknown_raises(self, rig):
        _, service, _ = rig
        with pytest.raises(ResourceUnknownError):
            service.home.load("ghost")

    def test_save_unknown_raises(self, rig):
        _, service, _ = rig
        with pytest.raises(ResourceUnknownError):
            service.home.save("ghost", element("x"))

    def test_destroy_unknown_raises(self, rig):
        _, service, _ = rig
        with pytest.raises(ResourceUnknownError):
            service.home.destroy("ghost")

    def test_set_termination_unknown_raises(self, rig):
        _, service, _ = rig
        with pytest.raises(ResourceUnknownError):
            service.home.set_termination_time("ghost", 100.0)

    def test_uncached_home(self, rig):
        deployment, _, _ = rig
        home = ResourceHome("raw", deployment.network, cached=False)
        key = home.create(element("doc", "1"))
        assert home.load(key).text() == "1"


class TestAggregatePortTypes:
    def test_composed_class_gains_operations(self, rig):
        from repro.wsrf import ResourceLifetimeMixin, WsResourceService

        class Plain(WsResourceService):
            service_name = "Plain"

        Composed = aggregate_port_types("ComposedService", Plain, ResourceLifetimeMixin)
        deployment, _, _ = rig
        instance = Composed(ResourceHome("plain", deployment.network))
        from repro.wsrf.lifetime import actions

        assert actions.DESTROY in instance.operations()

    def test_rp_document_lists_properties_sorted(self, rig):
        _, service, client = rig
        epr = create_counter(service, client, initial=4)
        # Simulate a dispatch context by loading fields directly.
        key = epr.property(RESOURCE_ID)
        service._load_fields(service.home.load(key))
        service._current_key = key
        doc = service.rp_document()
        locals_ = [c.tag.local for c in doc.element_children()]
        assert "Value" in locals_ and "DoubleValue" in locals_
        value = doc.find(f"{{{NS}}}Value")
        double = doc.find(f"{{{NS}}}DoubleValue")
        assert int(double.text()) == 2 * int(value.text())
        service._current_key = None


class TestDirectCreateExposure:
    """§3.1: the two options for exposing creation."""

    def build(self, rig):
        from repro.wsrf import ResourceHome
        from repro.wsrf.create import DirectCreateMixin
        from tests.helpers import server_container

        deployment, _, client = rig

        class DirectCounter(DirectCreateMixin, CounterService):
            service_name = "DirectCounter"

        container = server_container(deployment, host="direct-host")
        service = DirectCounter(ResourceHome("direct", deployment.network))
        container.add_service(service)
        return service, client

    def test_direct_create_with_field_values(self, rig):
        from repro.addressing import EndpointReference
        from repro.wsrf.create import WSRFNET_NS, actions

        service, client = self.build(rig)
        response = client.invoke(
            service.epr(),
            actions.CREATE,
            element(f"{{{WSRFNET_NS}}}Create", element("cv", "9"), element("label", "direct")),
        )
        epr = EndpointReference.from_xml(next(response.element_children()))
        key = epr.property(RESOURCE_ID)
        doc = service.home.load(key)
        assert "9" in doc.text() and "direct" in doc.text()

    def test_direct_create_defaults(self, rig):
        from repro.addressing import EndpointReference
        from repro.wsrf.create import WSRFNET_NS, actions

        service, client = self.build(rig)
        response = client.invoke(
            service.epr(), actions.CREATE, element(f"{{{WSRFNET_NS}}}Create")
        )
        epr = EndpointReference.from_xml(next(response.element_children()))
        assert service.home.contains(epr.property(RESOURCE_ID))

    def test_unknown_field_faults(self, rig):
        from repro.soap import SoapFault
        from repro.wsrf.create import WSRFNET_NS, actions

        service, client = self.build(rig)
        with pytest.raises(SoapFault, match="no resource field"):
            client.invoke(
                service.epr(),
                actions.CREATE,
                element(f"{{{WSRFNET_NS}}}Create", element("bogus", "1")),
            )
