"""Sanitized conformance: differential runs with the sim-state sanitizer
attached.  A representative corpus slice must come back clean, and a
deliberately planted cross-host mutation must surface as a ``sanitizer``
divergence — proving the detector is live on the conformance path, not
just in unit tests."""

import pytest

from repro.container import SecurityMode
from repro.testkit import harness
from repro.testkit.generator import generate_program
from repro.testkit.harness import run_differential
from repro.xmldb.collection import Collection
from repro.xmllib import element

pytestmark = pytest.mark.sanitizer

PLANT_DOC = element("{urn:example:sanitizer}Planted")


class TestCleanRuns:
    def test_counter_corpus_slice_is_sanitizer_clean(self):
        for seed in range(4):
            program = generate_program(seed, "counter")
            outcome = run_differential(
                program, SecurityMode.NONE, colocated=False, sanitize=True
            )
            assert outcome.equivalent, [d.comparator for d in outcome.divergences]

    def test_giab_flow_is_sanitizer_clean(self):
        program = generate_program(100_000, "giab")
        outcome = run_differential(
            program, SecurityMode.X509, colocated=True, sanitize=True
        )
        assert outcome.equivalent, [d.comparator for d in outcome.divergences]


class TestPlantedRace:
    def test_deliberate_cross_host_mutation_is_detected(self, monkeypatch):
        """Two hosts poke the same (store, key) back-to-back through process
        memory — no message in between.  Each stack's sanitizer must report
        it as a divergence."""
        real_build = harness.build_world

        def planted_build(kind, stack, mode, colocated):
            world = real_build(kind, stack, mode, colocated)
            network = world.deployment.network
            original_run = world.run

            def run_with_plant(program):
                result = original_run(program)
                planted = Collection("planted", network)
                with network.sanitizer_scope("node-a", "plant-1"):
                    planted.upsert("shared", PLANT_DOC)
                with network.sanitizer_scope("node-b", "plant-2"):
                    planted.upsert("shared", PLANT_DOC)
                return result

            world.run = run_with_plant
            return world

        monkeypatch.setattr(harness, "build_world", planted_build)
        program = generate_program(1, "counter")
        outcome = run_differential(
            program, SecurityMode.NONE, colocated=True, sanitize=True
        )
        sanitizer_divergences = [
            d for d in outcome.divergences if d.comparator == "sanitizer"
        ]
        assert len(sanitizer_divergences) == 2  # one per stack
        details = "\n".join(
            line for d in sanitizer_divergences for line in d.details
        )
        assert "planted/shared" in details
        assert "node-b" in details and "node-a" in details

    def test_plant_is_invisible_without_sanitize(self, monkeypatch):
        # Same plant, sanitizer detached: nothing can notice the poke —
        # which is exactly why the static rules and the --sanitize runs
        # exist.
        real_build = harness.build_world

        def planted_build(kind, stack, mode, colocated):
            world = real_build(kind, stack, mode, colocated)
            network = world.deployment.network
            original_run = world.run

            def run_with_plant(program):
                result = original_run(program)
                planted = Collection("planted", network)
                with network.sanitizer_scope("node-a", "plant-1"):
                    planted.upsert("shared", PLANT_DOC)
                with network.sanitizer_scope("node-b", "plant-2"):
                    planted.upsert("shared", PLANT_DOC)
                return result

            world.run = run_with_plant
            return world

        monkeypatch.setattr(harness, "build_world", planted_build)
        program = generate_program(1, "counter")
        outcome = run_differential(
            program, SecurityMode.NONE, colocated=True, sanitize=False
        )
        assert outcome.equivalent
