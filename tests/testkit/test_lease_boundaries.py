"""Exact-expiry clock boundaries, on both stacks, through the real wire.

The two stacks historically disagreed at the instant a lease lapses: WSRF
timers eager-destroy at ``fire_at <= now`` while WS-Eventing records used
to survive until ``now > expires``.  These tests pin the unified inclusive
boundary — *at* the expiry tick the lease is dead on both stacks — plus
the matching renewal rule (renewing TO the current tick is rejected).
"""

import pytest

from repro.apps.counter.deploy import (
    CounterScenario,
    build_transfer_rig,
    build_wsrf_rig,
)
from repro.container import SecurityMode
from repro.soap import SoapFault
from repro.testkit.comparators import fault_family


@pytest.fixture(params=["wsrf", "transfer"])
def rig(request):
    scenario = CounterScenario(mode=SecurityMode.NONE, colocated=True)
    builder = build_wsrf_rig if request.param == "wsrf" else build_transfer_rig
    built = builder(scenario)
    built.stack = request.param
    return built


def _subscribe(rig, counter, expires):
    if rig.stack == "wsrf":
        return rig.client.subscribe(counter, rig.consumer, termination_time=expires)
    return rig.client.subscribe(counter, rig.consumer, expires=expires)


class TestExpiryTick:
    def test_lease_is_dead_exactly_at_its_expiry_instant(self, rig):
        counter = rig.client.create(1)
        clock = rig.deployment.network.clock
        deadline = clock.now + 10_000.0
        subscription = _subscribe(rig, counter, deadline)
        # Shortly before the boundary: alive and reporting a finite lease.
        # (The status request itself costs virtual time, so leave room for
        # its wire costs to not cross the deadline.)
        clock.advance_to(deadline - 1_000.0)
        assert rig.client.subscription_status(subscription) != ""
        # At the boundary, not past it: dead on both stacks.
        clock.advance_to(deadline)
        with pytest.raises(SoapFault) as outcome:
            rig.client.subscription_status(subscription)
        assert fault_family(outcome.value) == "unknown-resource"

    def test_exact_tick_semantics_at_the_substrate(self):
        """The inclusive boundary itself, with no wire costs in the way:
        a WS-Eventing record whose Expires equals `now` is already
        expired, exactly when a WSRF timer at the same instant has fired."""
        from repro.eventing.store import SubscriptionRecord

        record = SubscriptionRecord(
            identifier="s", source_address="svc", notify_to="client", expires=500.0
        )
        assert not record.expired(now=499.999)
        assert record.expired(now=500.0)
        assert record.expired(now=500.001)

    def test_renew_after_expiry_faults_unknown_resource(self, rig):
        counter = rig.client.create(1)
        clock = rig.deployment.network.clock
        deadline = clock.now + 10_000.0
        subscription = _subscribe(rig, counter, deadline)
        clock.advance_to(deadline)
        with pytest.raises(SoapFault) as outcome:
            rig.client.renew_subscription(subscription, clock.now + 60_000.0)
        assert fault_family(outcome.value) == "unknown-resource"

    def test_unsubscribe_after_expiry_faults_unknown_resource(self, rig):
        counter = rig.client.create(1)
        clock = rig.deployment.network.clock
        deadline = clock.now + 10_000.0
        subscription = _subscribe(rig, counter, deadline)
        clock.advance_to(deadline + 1.0)
        with pytest.raises(SoapFault) as outcome:
            rig.client.unsubscribe(subscription)
        assert fault_family(outcome.value) == "unknown-resource"


class TestRenewalBoundary:
    def test_renewing_to_the_current_tick_is_rejected(self, rig):
        """A lease instant equal to `now` is dead-on-arrival (inclusive
        boundary), so both stacks refuse it as an invalid lease time."""
        counter = rig.client.create(1)
        subscription = _subscribe(rig, counter, None)
        now = rig.deployment.network.clock.now
        with pytest.raises(SoapFault) as outcome:
            rig.client.renew_subscription(subscription, now)
        assert fault_family(outcome.value) == "invalid-lease-time"

    def test_renewing_to_the_future_extends_the_lease(self, rig):
        counter = rig.client.create(1)
        clock = rig.deployment.network.clock
        first = clock.now + 10_000.0
        subscription = _subscribe(rig, counter, first)
        rig.client.renew_subscription(subscription, first + 50_000.0)
        clock.advance_to(first + 1.0)
        # Outlived its original deadline thanks to the renewal.
        assert rig.client.subscription_status(subscription) != ""

    def test_renewing_to_infinity_never_lapses(self, rig):
        counter = rig.client.create(1)
        clock = rig.deployment.network.clock
        deadline = clock.now + 10_000.0
        subscription = _subscribe(rig, counter, deadline)
        rig.client.renew_subscription(subscription, None)
        clock.advance_to(deadline + 1_000_000.0)
        status = rig.client.subscription_status(subscription)
        assert status.lower() in ("", "infinity", "never")


class TestGetStatusVocabulary:
    def test_finite_lease_reports_a_number(self, rig):
        counter = rig.client.create(1)
        deadline = rig.deployment.network.clock.now + 10_000.0
        subscription = _subscribe(rig, counter, deadline)
        assert float(rig.client.subscription_status(subscription)) == deadline

    def test_infinite_lease_reports_infinity(self, rig):
        counter = rig.client.create(1)
        subscription = _subscribe(rig, counter, None)
        status = rig.client.subscription_status(subscription)
        assert status.lower() in ("", "infinity", "never")
