"""The seeded fuzzer: determinism, validity-by-construction, mutations."""

import random

from repro.testkit import ops as op
from repro.testkit.generator import (
    TIME_QUANTUM_MS,
    _swap_hazard,
    generate_program,
    mutate,
)


class TestDeterminism:
    def test_same_seed_same_program(self):
        for seed in range(20):
            assert generate_program(seed) == generate_program(seed)
            assert generate_program(seed, "giab") == generate_program(seed, "giab")

    def test_different_seeds_differ_somewhere(self):
        programs = {generate_program(seed).to_dict().__str__() for seed in range(20)}
        assert len(programs) > 1


class TestValidity:
    def test_counter_programs_only_touch_live_counters_for_set_subscribe(self):
        """The generator must never express the documented asymmetries:
        Set/Subscribe outside the counter's lifetime."""
        for seed in range(200):
            live = set()
            for operation in generate_program(seed, "counter"):
                if isinstance(operation, op.CreateCounter):
                    live.add(operation.name)
                elif isinstance(operation, op.DestroyCounter):
                    live.discard(operation.name)
                elif isinstance(operation, (op.SetCounter, op.Subscribe)):
                    assert operation.name in live, (
                        f"seed {seed}: {operation.kind} on non-live "
                        f"{operation.name}"
                    )

    def test_lease_times_are_positive_quantized_relative(self):
        for seed in range(200):
            for operation in generate_program(seed, "counter"):
                expires = getattr(operation, "expires_in_ms", None)
                if expires is not None:
                    assert expires > 0
                    assert expires % TIME_QUANTUM_MS == 0

    def test_fault_toggles_are_delay_only(self):
        """Loss/duplication would diverge the stacks through RNG draw
        counts (a sim artifact); only latency shaping is allowed."""
        for seed in range(200):
            for operation in generate_program(seed, "counter"):
                if isinstance(operation, op.FaultToggle):
                    assert not hasattr(operation, "loss_rate")

    def test_giab_flow_order_is_preserved(self):
        order = {"giab_discover": 0, "giab_reserve": 1, "giab_upload": 2,
                 "giab_submit": 3, "giab_await": 4}
        for seed in range(100):
            last = -1
            for operation in generate_program(seed, "giab"):
                rank = order.get(operation.kind)
                if rank is not None:
                    assert rank >= last
                    last = rank


class TestMutations:
    def test_reorder_never_swaps_across_lifecycle_hazard(self):
        assert _swap_hazard(op.CreateCounter("c0", 0), op.SetCounter("c0", 1))
        assert _swap_hazard(op.SetCounter("c0", 1), op.DestroyCounter("c0"))
        assert _swap_hazard(op.DestroyCounter("c0"), op.Subscribe("c0", "s0", None))
        assert not _swap_hazard(op.CreateCounter("c0", 0), op.SetCounter("c1", 1))
        assert not _swap_hazard(op.GetCounter("c0"), op.DestroyCounter("c0"))
        assert _swap_hazard(op.GiabDiscover("sort"), op.GiabReserve(0))

    def test_mutate_is_deterministic_per_rng_state(self):
        base = generate_program(3, "counter")
        assert mutate(random.Random(5), base, rounds=3) == mutate(
            random.Random(5), base, rounds=3
        )
