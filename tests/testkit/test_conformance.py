"""Differential conformance: the executable form of the paper's thesis.

The tier-1 slice here runs a handful of seeds across representative cells;
the full 60-program corpus runs in scripts/check.sh via
``python -m repro conformance``, and the ``soak`` marker scales it up.
"""

import json

import pytest

from repro.container import SecurityMode
from repro.testkit import ops as op
from repro.testkit.generator import generate_program
from repro.testkit.harness import ALL_MODES, run_differential
from repro.testkit.ops import Program


def _assert_equivalent(outcome):
    details = [
        f"[{d.comparator}] {line}" for d in outcome.divergences for line in d.details
    ]
    assert outcome.equivalent, "\n".join(details)


class TestHandWrittenPrograms:
    def test_full_counter_lifecycle_all_six_cells(self):
        program = Program("counter", (
            op.CreateCounter("c0", 5),
            op.GetCounter("c0"),
            op.Subscribe("c0", "s0", 60_000.0),
            op.SetCounter("c0", 7),
            op.GetStatus("s0"),
            op.Renew("s0", 120_000.0),
            op.AdvanceClock(120_000.0),
            op.GetStatus("s0"),
            op.Unsubscribe("s0"),
            op.DestroyCounter("c0"),
            op.GetCounter("c0"),
            op.DestroyCounter("c0"),
        ))
        for mode, colocated in ALL_MODES:
            _assert_equivalent(run_differential(program, mode, colocated))

    def test_giab_figure5_flow_every_security_mode(self):
        program = Program("giab", (
            op.GiabDiscover("sort"),
            op.GiabReserve(1),
            op.GiabUpload("input.dat", "a<b&c>d ]]> é☃"),
            op.GiabListFiles(),
            op.GiabDownload("input.dat"),
            op.GiabSubmit("sort", "input.dat", 250.0, 3),
            op.GiabJobStatus(),
            op.GiabAwaitJob(),
            op.GiabJobStatus(),
            op.GiabDeleteFile("input.dat"),
            op.GiabCheckAvailable("sort"),
        ))
        for mode in (SecurityMode.NONE, SecurityMode.X509, SecurityMode.HTTPS):
            outcome = run_differential(program, mode, True)
            _assert_equivalent(outcome)
            assert outcome.wsrf.events == [["job-exited", 3]]

    def test_infinite_lease_survives_any_advance(self):
        program = Program("counter", (
            op.CreateCounter("c0", 0),
            op.Subscribe("c0", "s0", None),
            op.AdvanceClock(600_000.0),
            op.GetStatus("s0"),
            op.SetCounter("c0", 1),
        ))
        outcome = run_differential(program, SecurityMode.NONE, True)
        _assert_equivalent(outcome)
        assert outcome.wsrf.steps[3] == ["status", "infinity"]
        assert outcome.wsrf.events == [["c0", 0, 1]]

    def test_datagrid_replication_flow_all_six_cells(self):
        program = Program("datagrid", (
            op.DgRegister("lfn:f0", "se1.cern"),
            op.DgRegister("lfn:f0", "se1.fnal"),
            op.DgLocate("lfn:f0"),
            op.DgReplicate("lfn:f0", "se2.cern"),
            op.DgStageIn("lfn:f0", "se2.fnal"),
            op.DgFilesOn("se2.cern"),
            op.DgListFiles(),
            op.DgUnregister("lfn:f0", "se1.cern"),
            op.DgLocate("lfn:f0"),
            op.DgLocate("lfn:missing"),
        ))
        for mode, colocated in ALL_MODES:
            outcome = run_differential(program, mode, colocated)
            _assert_equivalent(outcome)
            # Replicate to se2.cern must pick the LAN source (se1.cern),
            # stage-in to se2.fnal the same-site one (se1.fnal).
            assert outcome.wsrf.steps[3] == ["dg_replicate", "se1.cern"]
            assert outcome.wsrf.steps[4] == ["dg_stage_in", "se1.fnal"]

    def test_replay_is_bit_identical(self):
        program = generate_program(0)
        outcome = run_differential(program, SecurityMode.X509, False, replay=True)
        _assert_equivalent(outcome)


class TestGeneratedCorpus:
    @pytest.mark.slow
    def test_small_seeded_corpus_is_equivalent(self):
        for seed in range(12):
            program = generate_program(seed, "counter")
            mode, colocated = ALL_MODES[seed % len(ALL_MODES)]
            outcome = run_differential(program, mode, colocated, seed=seed)
            _assert_equivalent(outcome)

    @pytest.mark.slow
    def test_generated_giab_corpus_is_equivalent(self):
        for seed in (100_000, 100_001, 100_002):
            program = generate_program(seed, "giab")
            outcome = run_differential(program, SecurityMode.X509, True, seed=seed)
            _assert_equivalent(outcome)

    @pytest.mark.soak
    def test_soak_corpus(self):
        """The larger sweep behind ``scripts/check.sh --soak``."""
        from repro.testkit.cli import run_conformance

        summary = run_conformance(240, 0, 12, out_dir="results", verbose=False)
        assert summary["divergences"] == 0
        assert summary["invalid_programs"] == 0


class TestCli:
    def test_cli_writes_summary_and_exit_status(self, tmp_path):
        from repro.testkit.cli import conformance_main

        assert conformance_main([
            "--seeds", "6", "--giab-seeds", "0", "--datagrid-seeds", "1",
            "--out", str(tmp_path),
        ]) == 0
        summary = json.loads((tmp_path / "conformance_summary.json").read_text())
        assert summary["programs"] == 7
        assert summary["datagrid_seeds"] == 1
        assert summary["divergences"] == 0
        assert not (tmp_path / "conformance_divergences.json").exists()

    def test_cli_rejects_unknown_flags(self):
        from repro.testkit.cli import conformance_main

        assert conformance_main(["--bogus"]) == 2
