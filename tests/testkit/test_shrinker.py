"""The shrinker, proven against a deliberately-injected divergence.

A harness that can never fail tests nothing, so the fixture here degrades
one stack's wire with a lossy FaultSpec (``perturb_stack``) — the two runs
then genuinely disagree, and the shrinker must cut the reproducer down to
a handful of ops while preserving the disagreement.
"""

import pytest

from repro.container import SecurityMode
from repro.testkit import ops as op
from repro.testkit.generator import generate_program
from repro.testkit.harness import diverges, run_differential
from repro.testkit.ops import Program
from repro.testkit.shrinker import shrink


class TestInjectedDivergence:
    def test_perturbed_wire_diverges(self):
        program = generate_program(7, "counter")
        assert diverges(program, SecurityMode.NONE, True, perturb_stack="transfer")
        assert not diverges(program, SecurityMode.NONE, True)

    @pytest.mark.slow
    def test_shrinks_injected_divergence_to_a_handful_of_ops(self):
        """The roadmap's acceptance bar: a seeded injected divergence
        shrinks to <= 5 ops."""
        program = generate_program(7, "counter")
        small = shrink(program, SecurityMode.NONE, True, perturb_stack="transfer")
        assert len(small) <= 5
        assert len(small) < len(program)
        # and the shrunk program still reproduces the disagreement
        outcome = run_differential(
            small, SecurityMode.NONE, True, perturb_stack="transfer"
        )
        assert not outcome.equivalent

    def test_shrink_returns_input_when_nothing_diverges(self):
        program = generate_program(3, "counter")
        assert shrink(program, SecurityMode.NONE, True) == program


class TestRejectionDiscipline:
    def test_prerequisite_free_candidates_are_rejected_not_divergent(self):
        """Removing a Create leaves a Subscribe on a never-created counter —
        the world refuses such programs, and `diverges` must report False
        (candidate rejected), not crash or count it as a stack divergence."""
        orphan = Program("counter", (op.Subscribe("c0", "s0", None),))
        assert not diverges(orphan, SecurityMode.NONE, True)

    def test_shrinker_never_lands_on_documented_asymmetries(self):
        """The minimal reproducer must stay inside the DSL's expressible
        (comparable) space: every Subscribe/Set it contains targets a
        counter created earlier in the shrunk program."""
        program = generate_program(23, "counter")
        if not diverges(program, SecurityMode.NONE, True, perturb_stack="transfer"):
            pytest.skip("seed no longer induces a perturbed divergence")
        small = shrink(program, SecurityMode.NONE, True, perturb_stack="transfer")
        live = set()
        for operation in small:
            if isinstance(operation, op.CreateCounter):
                live.add(operation.name)
            elif isinstance(operation, op.DestroyCounter):
                live.discard(operation.name)
            elif isinstance(operation, (op.SetCounter, op.Subscribe)):
                assert operation.name in live
