"""The normalized fault taxonomy both stacks answer client mistakes with.

Satellite of the conformance harness: destroy-after-destroy and
renew-after-expiry must raise WS-BaseFaults with *stable error codes* on
both stacks, so the comparators can match them by family instead of by
message text.
"""

import pytest

from repro.apps.counter.deploy import (
    CounterScenario,
    build_transfer_rig,
    build_wsrf_rig,
)
from repro.container import SecurityMode
from repro.soap import SoapFault
from repro.testkit.comparators import FAULT_FAMILIES, fault_family, fault_signature
from repro.wsrf.basefaults import base_fault, is_base_fault


@pytest.fixture(params=["wsrf", "transfer"])
def rig(request):
    scenario = CounterScenario(mode=SecurityMode.NONE, colocated=True)
    builder = build_wsrf_rig if request.param == "wsrf" else build_transfer_rig
    built = builder(scenario)
    built.stack = request.param
    return built


def _destroy(rig, counter):
    if rig.stack == "wsrf":
        rig.client.destroy(counter)
    else:
        rig.client.delete(counter)


class TestUseAfterDestroy:
    def test_destroy_after_destroy_is_unknown_resource(self, rig):
        counter = rig.client.create(1)
        _destroy(rig, counter)
        with pytest.raises(SoapFault) as outcome:
            _destroy(rig, counter)
        assert is_base_fault(outcome.value)
        assert fault_family(outcome.value) == "unknown-resource"

    def test_get_after_destroy_is_unknown_resource(self, rig):
        counter = rig.client.create(1)
        _destroy(rig, counter)
        with pytest.raises(SoapFault) as outcome:
            rig.client.get(counter)
        assert is_base_fault(outcome.value)
        assert fault_family(outcome.value) == "unknown-resource"


class TestSignatures:
    def test_signature_carries_code_and_error_code(self):
        fault = base_fault("gone", error_code="ResourceUnknownFault")
        try:
            raise fault
        except SoapFault as caught:
            assert fault_signature(caught) == ("Client", "ResourceUnknownFault")
            assert fault_family(caught) == "unknown-resource"

    def test_plain_soap_fault_families_keep_their_code(self):
        fault = SoapFault("Server", "boom")
        assert fault_family(fault) == "soap:Server"

    def test_unmapped_error_codes_surface_verbatim(self):
        """A new error code must NOT vanish into a bucket — genuine new
        divergences should be visible, not folded away."""
        fault = base_fault("odd", error_code="BrandNewFault")
        assert fault_family(fault) == "BrandNewFault"

    def test_spec_synonyms_fold_together(self):
        """WSRF and WS-Eventing disagree on vocabulary for the same client
        mistake; the family table is the Rosetta stone."""
        assert (
            FAULT_FAMILIES["UnableToSetTerminationTimeFault"]
            == FAULT_FAMILIES["InvalidExpirationTimeFault"]
        )
