"""The op DSL itself: serialization round-trips and program validation."""

import pytest

from repro.testkit import ops as op
from repro.testkit.ops import OP_TYPES, Program, op_from_dict


class TestOpRoundTrip:
    def test_every_op_kind_round_trips_through_dicts(self):
        samples = [
            op.CreateCounter("c0", 3),
            op.GetCounter("c0"),
            op.SetCounter("c0", 9),
            op.DestroyCounter("c0"),
            op.Subscribe("c0", "s0", 60_000.0),
            op.Subscribe("c0", "s1", None),
            op.Renew("s0", None),
            op.GetStatus("s0"),
            op.Unsubscribe("s0"),
            op.AdvanceClock(120_000.0),
            op.FaultToggle(delay_mean_ms=2.0, delay_jitter_ms=1.0),
            op.FaultToggle(),
            op.GiabDiscover("sort"),
            op.GiabReserve(1),
            op.GiabUpload("in.dat", "a<b&c>d"),
            op.GiabDownload("in.dat"),
            op.GiabListFiles(),
            op.GiabSubmit("sort", "in.dat", 250.0, 3),
            op.GiabJobStatus(),
            op.GiabAwaitJob(100.0),
            op.GiabDeleteFile("in.dat"),
            op.GiabCheckAvailable("sort"),
            op.DgRegister("lfn:f0", "se1.cern"),
            op.DgUnregister("lfn:f0", "se1.cern"),
            op.DgLocate("lfn:f0"),
            op.DgListFiles(),
            op.DgFilesOn("se1.cern"),
            op.DgReplicate("lfn:f0", "se2.cern"),
            op.DgStageIn("lfn:f0", "se2.fnal"),
        ]
        assert {s.kind for s in samples} == set(OP_TYPES)
        for sample in samples:
            assert op_from_dict(sample.to_dict()) == sample

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown op kind"):
            op_from_dict({"op": "frobnicate"})


class TestProgram:
    def test_round_trips_through_dicts(self):
        program = Program(
            "counter",
            (op.CreateCounter("c0", 1), op.GetCounter("c0"), op.DestroyCounter("c0")),
        )
        assert Program.from_dict(program.to_dict()) == program

    def test_rejects_foreign_ops(self):
        with pytest.raises(ValueError, match="not valid in a counter program"):
            Program("counter", (op.GiabDiscover("sort"),))
        with pytest.raises(ValueError, match="not valid in a giab program"):
            Program("giab", (op.CreateCounter("c0", 0),))
        with pytest.raises(ValueError, match="not valid in a datagrid program"):
            Program("datagrid", (op.GiabDiscover("sort"),))

    def test_shared_ops_allowed_in_datagrid(self):
        Program("datagrid", (op.AdvanceClock(60_000.0), op.FaultToggle()))

    def test_shared_ops_allowed_in_both_kinds(self):
        Program("counter", (op.AdvanceClock(60_000.0),))
        Program("giab", (op.AdvanceClock(60_000.0),))

    def test_replace_ops_keeps_kind(self):
        program = Program("counter", (op.CreateCounter("c0", 0),))
        longer = program.replace_ops(program.ops + (op.GetCounter("c0"),))
        assert longer.kind == "counter"
        assert len(longer) == 2
