"""The discrete-event kernel: scheduling, effects, pools, timers."""

import pytest

from repro.sim import (
    Acquire,
    Channel,
    Clock,
    Delay,
    Kernel,
    QueueFull,
    Recv,
    Release,
    Send,
    SimError,
    Work,
    drive_inline,
)


def fresh_kernel(**overrides):
    return Kernel(clock=Clock(), **overrides)


class TestScheduling:
    def test_events_run_in_time_order(self):
        kernel = fresh_kernel()
        order = []

        def task(label, ms):
            yield Delay(ms)
            order.append((label, kernel.clock.now))

        kernel.spawn(task("late", 30.0))
        kernel.spawn(task("early", 10.0))
        kernel.spawn(task("mid", 20.0))
        kernel.run()
        assert order == [("early", 10.0), ("mid", 20.0), ("late", 30.0)]

    def test_simultaneous_events_keep_fifo_order(self):
        # Deterministic tie-breaking: the (time, seq) heap resolves equal
        # instants by spawn order, run after run.
        kernel = fresh_kernel()
        order = []

        def task(label):
            yield Delay(5.0)
            order.append(label)

        for label in ("a", "b", "c", "d"):
            kernel.spawn(task(label))
        kernel.run()
        assert order == ["a", "b", "c", "d"]

    def test_spawn_at_absolute_instant(self):
        kernel = fresh_kernel()
        seen = []

        def task():
            seen.append(kernel.clock.now)
            return "done"
            yield  # pragma: no cover - marks this def as a generator

        spawned = kernel.spawn(task(), at=42.0)
        kernel.run()
        assert seen == [42.0]
        assert spawned.result == "done"
        assert spawned.scheduled_at == 42.0

    def test_run_until_stops_early_and_advances(self):
        kernel = fresh_kernel()
        done = []

        def task():
            yield Delay(100.0)
            done.append(True)

        kernel.spawn(task())
        kernel.run(until=50.0)
        assert not done
        assert kernel.clock.now == 50.0
        kernel.run()
        assert done

    def test_negative_delay_is_a_sim_error(self):
        kernel = fresh_kernel()

        def task():
            yield Delay(-1.0)

        spawned = kernel.spawn(task())
        kernel.run()
        assert isinstance(spawned.error, SimError)

    def test_non_effect_yield_is_a_sim_error(self):
        kernel = fresh_kernel()

        def task():
            yield "not an effect"

        spawned = kernel.spawn(task())
        kernel.run()
        assert isinstance(spawned.error, SimError)

    def test_gather_reraises_first_failure(self):
        kernel = fresh_kernel()

        def ok():
            yield Delay(1.0)
            return 1

        def bad():
            yield Delay(2.0)
            raise RuntimeError("boom")

        tasks = [kernel.spawn(ok()), kernel.spawn(bad())]
        kernel.run()
        with pytest.raises(RuntimeError, match="boom"):
            kernel.gather(tasks)


class TestWorkStages:
    def test_single_task_charges_eagerly(self):
        # With one live task the stage advances the clock directly — the
        # serial regime the golden ledgers were pinned against.
        kernel = fresh_kernel()
        observed = []

        def task():
            def stage():
                kernel.clock.charge(7.0)
                observed.append(kernel.clock.now)
                return "v"

            value = yield Work(stage)
            return value

        spawned = kernel.spawn(task())
        kernel.run()
        assert spawned.result == "v"
        assert observed == [7.0]
        assert not kernel.clock.deferring

    def test_concurrent_stages_defer_and_interleave(self):
        # Two tasks, each one 10ms stage: under deferral the second task's
        # stage starts at its arrival instant, not after the first stage.
        kernel = fresh_kernel()
        starts = []

        def task(label):
            def stage():
                starts.append((label, kernel.clock._now))
                kernel.clock.charge(10.0)

            yield Work(stage)

        kernel.spawn(task("a"), at=0.0)
        kernel.spawn(task("b"), at=1.0)
        kernel.run()
        # b's stage computed at its own arrival (t=1), inside a's window.
        assert starts == [("a", 0.0), ("b", 1.0)]
        assert kernel.clock.now == 11.0

    def test_stage_sees_locally_elapsed_time(self):
        # Deadline math inside a deferred stage must match the serial
        # regime: now includes the pending charges.
        kernel = fresh_kernel()
        seen = []

        def charging(label):
            def stage():
                kernel.clock.charge(5.0)
                seen.append((label, kernel.clock.now))
                kernel.clock.charge(5.0)
                seen.append((label, kernel.clock.now))

            yield Work(stage)

        kernel.spawn(charging("a"))
        kernel.spawn(charging("b"))
        kernel.run()
        assert ("a", 5.0) in seen and ("a", 10.0) in seen

    def test_stage_exception_rethrown_into_task(self):
        kernel = fresh_kernel()

        def task():
            try:
                yield Work(lambda: (_ for _ in ()).throw(ValueError("bad")))
            except ValueError:
                return "caught"

        spawned = kernel.spawn(task())
        kernel.run()
        assert spawned.result == "caught"

    def test_failed_stage_still_pays_partial_cost(self):
        # A stage that charges then raises (a lost message paid wire time)
        # must elapse the charged portion before the throw lands.
        kernel = fresh_kernel()

        def task(label):
            def stage():
                kernel.clock.charge(8.0)
                raise RuntimeError("lost")

            try:
                yield Work(stage)
            except RuntimeError:
                return kernel.clock.now

        a = kernel.spawn(task("a"))
        b = kernel.spawn(task("b"))
        kernel.run()
        assert a.result == 8.0
        assert b.result == 8.0  # b's stage also ran at t=0, concurrently


class TestWorkerPools:
    def test_second_request_queues_and_measures_wait(self):
        kernel = fresh_kernel()
        waits = {}

        def request(label):
            wait = yield Acquire("opteron1")
            waits[label] = wait
            yield Delay(10.0)  # service time after the grant
            yield Release("opteron1")

        kernel.spawn(request("first"), at=0.0)
        kernel.spawn(request("second"), at=2.0)
        kernel.run()
        assert waits["first"] == 0.0
        assert waits["second"] == 8.0  # arrived at 2, granted at 10
        pool = kernel.pool("opteron1")
        assert pool.max_depth == 1
        assert pool.granted == 2

    def test_queue_overflow_throws_queue_full(self):
        kernel = fresh_kernel()
        kernel.configure_pool("h", workers=1, queue_limit=1)
        outcomes = {}

        def request(label):
            try:
                yield Acquire("h")
            except QueueFull as exc:
                outcomes[label] = exc
                return
            yield Delay(10.0)
            yield Release("h")
            outcomes[label] = "served"

        for i, label in enumerate(("a", "b", "c")):
            kernel.spawn(request(label), at=float(i))
        kernel.run()
        assert outcomes["a"] == "served"
        assert outcomes["b"] == "served"  # waited in the queue
        assert isinstance(outcomes["c"], QueueFull)
        assert outcomes["c"].host == "h"
        assert kernel.pool("h").rejected == 1

    def test_queue_grants_in_fifo_order(self):
        kernel = fresh_kernel()
        kernel.configure_pool("h", workers=1, queue_limit=8)
        order = []

        def request(label):
            yield Acquire("h")
            yield Delay(5.0)
            yield Release("h")
            order.append(label)

        for i, label in enumerate(("a", "b", "c", "d")):
            kernel.spawn(request(label), at=float(i))
        kernel.run()
        assert order == ["a", "b", "c", "d"]

    def test_release_without_acquire_is_a_sim_error(self):
        kernel = fresh_kernel()

        def task():
            yield Release("h")

        spawned = kernel.spawn(task())
        with pytest.raises(SimError, match="release without acquire"):
            kernel.run()
        assert spawned.done is False

    def test_task_queueing_delay_accumulates(self):
        kernel = fresh_kernel()

        def request():
            yield Acquire("h")
            yield Delay(10.0)
            yield Release("h")

        kernel.spawn(request(), at=0.0)
        waiter = kernel.spawn(request(), at=3.0)
        kernel.run()
        assert waiter.queueing_delay_ms == 7.0
        assert waiter.latency_ms == 17.0  # 7 queued + 10 service


class TestChannels:
    def test_send_then_recv(self):
        kernel = fresh_kernel()
        chan = Channel("c")
        got = []

        def producer():
            yield Delay(5.0)
            yield Send(chan, "payload")

        def consumer():
            value = yield Recv(chan)
            got.append((value, kernel.clock.now))

        kernel.spawn(consumer())
        kernel.spawn(producer())
        kernel.run()
        assert got == [("payload", 5.0)]

    def test_buffered_send_does_not_block(self):
        kernel = fresh_kernel()
        chan = Channel("c")

        def producer():
            yield Send(chan, 1)
            yield Send(chan, 2)
            return "sent"

        def late_consumer():
            yield Delay(10.0)
            first = yield Recv(chan)
            second = yield Recv(chan)
            return (first, second)

        sender = kernel.spawn(producer())
        receiver = kernel.spawn(late_consumer())
        kernel.run()
        assert sender.result == "sent"
        assert receiver.result == (1, 2)


class TestKernelTimers:
    def test_call_at_interleaves_with_tasks(self):
        kernel = fresh_kernel()
        order = []

        def task():
            yield Delay(10.0)
            order.append(("task", kernel.clock.now))

        kernel.call_at(5.0, lambda: order.append(("timer", kernel.clock.now)))
        kernel.spawn(task())
        kernel.run()
        assert order == [("timer", 5.0), ("task", 10.0)]

    def test_legacy_clock_timers_fire_in_global_order(self):
        # Ad-hoc clock.schedule timers and kernel events share one
        # timeline: a clock timer due before the next kernel event fires
        # first.
        kernel = fresh_kernel()
        order = []
        kernel.clock.schedule(3.0, lambda: order.append(("clock", 3.0)))

        def task():
            yield Delay(7.0)
            order.append(("task", kernel.clock.now))

        kernel.spawn(task())
        kernel.run()
        assert order == [("clock", 3.0), ("task", 7.0)]


class TestRunSync:
    def test_drives_request_to_completion(self):
        kernel = fresh_kernel()

        def request():
            yield Acquire("h")
            value = yield Work(lambda: kernel.clock.charge(5.0) or "ok")
            yield Release("h")
            return value

        assert kernel.run_sync(request()) == "ok"
        assert kernel.clock.now == 5.0
        assert kernel.pool("h").busy == 0
        assert kernel.sync_requests == 1

    def test_refused_while_tasks_live(self):
        kernel = fresh_kernel()

        def task():
            yield Delay(10.0)

        kernel.spawn(task())
        assert not kernel.can_run_sync
        with pytest.raises(SimError, match="in flight"):
            kernel.run_sync(task())

    def test_abandoned_request_releases_its_worker(self):
        kernel = fresh_kernel()

        def request():
            yield Acquire("h")
            raise RuntimeError("mid-flight failure")

        with pytest.raises(RuntimeError):
            kernel.run_sync(request())
        assert kernel.pool("h").busy == 0

    def test_exceptions_propagate_synchronously(self):
        kernel = fresh_kernel()

        def request():
            yield Work(lambda: (_ for _ in ()).throw(ValueError("bad")))

        with pytest.raises(ValueError, match="bad"):
            kernel.run_sync(request())


class TestDriveInline:
    def test_runs_stages_with_no_kernel(self):
        clock = Clock()

        def request():
            yield Acquire("h")  # bookkeeping-free without a kernel
            value = yield Work(lambda: clock.charge(3.0) or 9)
            yield Release("h")
            return value

        assert drive_inline(request()) == 9
        assert clock.now == 3.0

    def test_delay_requires_a_kernel(self):
        def request():
            yield Delay(1.0)

        with pytest.raises(SimError, match="requires a kernel"):
            drive_inline(request())


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        def run_once():
            kernel = fresh_kernel()
            kernel.clock.reseed(99)
            trace = []

            def task(i):
                yield Delay(kernel.clock.rng.uniform(0, 20))
                yield Acquire("h")
                yield Delay(5.0)
                yield Release("h")
                trace.append((i, kernel.clock.now))

            for i in range(6):
                kernel.spawn(task(i))
            kernel.run()
            return trace

        assert run_once() == run_once()
