"""Fault injection: specs, determinism, and the lossy wire."""

import pytest

from repro.sim import (
    NO_FAULTS,
    Clock,
    ConnectionReset,
    CostModel,
    FaultInjector,
    FaultSpec,
    Host,
    MessageLost,
    Network,
    TransportKind,
)

A = Host("alpha")
B = Host("beta")


class TestFaultSpec:
    def test_defaults_are_clean(self):
        assert NO_FAULTS.is_clean
        assert FaultSpec().is_clean

    def test_lossy_preset_scales_with_rate(self):
        spec = FaultSpec.lossy(0.10)
        assert spec.loss_rate == pytest.approx(0.10)
        assert spec.duplicate_rate == pytest.approx(0.05)
        assert spec.reset_rate == pytest.approx(0.025)
        assert not spec.is_clean

    def test_lossy_zero_is_clean(self):
        assert FaultSpec.lossy(0.0).is_clean

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultSpec(loss_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(duplicate_rate=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(delay_mean_ms=1.0, delay_jitter_ms=2.0)


class TestFaultInjector:
    def test_inactive_until_configured(self):
        injector = FaultInjector(Clock().rng)
        assert not injector.active
        injector.set_default(FaultSpec.lossy(0.05))
        assert injector.active
        injector.clear()
        assert not injector.active

    def test_per_link_spec_overrides_default_and_is_symmetric(self):
        injector = FaultInjector(Clock().rng)
        injector.set_default(NO_FAULTS)
        link = FaultSpec(loss_rate=1.0)
        injector.set_link("alpha", "beta", link)
        assert injector.spec_for("alpha", "beta") is link
        assert injector.spec_for("beta", "alpha") is link
        assert injector.spec_for("alpha", "gamma") is NO_FAULTS

    def test_certain_loss_always_loses(self):
        injector = FaultInjector(Clock().rng)
        injector.set_default(FaultSpec(loss_rate=1.0))
        for _ in range(5):
            assert injector.draw("alpha", "beta").lost
        assert injector.messages_lost == 5

    def test_same_seed_same_outcomes(self):
        def outcomes(seed):
            injector = FaultInjector(Clock(seed=seed).rng)
            injector.set_default(FaultSpec.lossy(0.2))
            return [injector.draw("a", "b") for _ in range(50)]

        assert outcomes(11) == outcomes(11)
        assert outcomes(11) != outcomes(12)

    def test_fixed_draw_count_keeps_streams_aligned(self):
        # Whatever the outcome, one draw consumes the same amount of
        # randomness, so later draws do not depend on earlier outcomes.
        clock = Clock(seed=3)
        injector = FaultInjector(clock.rng)
        injector.set_default(FaultSpec(loss_rate=1.0))
        injector.draw("a", "b")
        after_loss = clock.rng.random()

        clock2 = Clock(seed=3)
        injector2 = FaultInjector(clock2.rng)
        injector2.set_default(FaultSpec(duplicate_rate=1.0))
        injector2.draw("a", "b")
        after_dup = clock2.rng.random()
        assert after_loss == after_dup


class TestLossyWire:
    def _network(self, spec: FaultSpec, seed: int = 0) -> Network:
        net = Network(CostModel(), clock=Clock(seed=seed))
        net.faults.set_default(spec)
        return net

    def test_clean_network_unchanged(self):
        net = Network(CostModel())
        assert net.transmit(A, B, 1024, TransportKind.HTTP) == 1

    def test_loss_charges_wire_time_then_raises(self):
        net = self._network(FaultSpec(loss_rate=1.0))
        before = net.clock.now
        with pytest.raises(MessageLost):
            net.transmit(A, B, 1024, TransportKind.HTTP)
        assert net.clock.now > before
        assert net.metrics.time_by_category["transport.wire"] > 0

    def test_duplicate_delivers_two_copies_and_double_charges(self):
        net = self._network(FaultSpec(duplicate_rate=1.0))
        copies = net.transmit(A, B, 2048, TransportKind.HTTP)
        assert copies == 2
        costs = net.costs
        expected_wire = 2 * (costs.lan_latency + 2.0 * costs.lan_per_kb)
        assert net.metrics.time_by_category["transport.wire"] == pytest.approx(
            expected_wire
        )

    def test_reset_clears_connection_cache(self):
        net = self._network(FaultSpec(reset_rate=1.0))
        with pytest.raises(ConnectionReset):
            net.transmit(A, B, 512, TransportKind.HTTP)
        net.faults.clear()
        # The next transmit pays the full (uncached) connect cost again.
        net.metrics.time_by_category.clear()
        net.transmit(A, B, 512, TransportKind.HTTP)
        assert net.metrics.time_by_category["transport.setup"] == pytest.approx(
            net.costs.http_connect
        )

    def test_delay_charged_to_its_own_category(self):
        net = self._network(FaultSpec(delay_mean_ms=5.0))
        net.transmit(A, B, 512, TransportKind.HTTP)
        assert net.metrics.time_by_category["transport.delay"] == pytest.approx(5.0)

    def test_response_leg_skips_setup_but_faults(self):
        net = self._network(FaultSpec(loss_rate=1.0))
        with pytest.raises(MessageLost):
            net.transmit_response(A, B, 512, TransportKind.HTTP)
        assert "transport.setup" not in net.metrics.time_by_category

    def test_reseed_replays_the_fault_schedule(self):
        def run():
            net = self._network(FaultSpec.lossy(0.3), seed=42)
            fates = []
            for _ in range(40):
                try:
                    fates.append(net.transmit(A, B, 1024, TransportKind.HTTP))
                except MessageLost:
                    fates.append("lost")
                except ConnectionReset:
                    fates.append("reset")
            return fates, net.clock.now

        assert run() == run()
