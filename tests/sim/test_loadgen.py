"""Open-loop load generation: arrival processes and the run driver."""

import pytest

from repro.sim import Acquire, Clock, Delay, Kernel, Release, SimError
from repro.sim.loadgen import ARRIVAL_PROCESSES, arrival_times, run_open_loop


class TestArrivalTimes:
    def test_same_seed_same_schedule(self):
        for process in ARRIVAL_PROCESSES:
            first = arrival_times(50, 20.0, process=process, seed=7)
            second = arrival_times(50, 20.0, process=process, seed=7)
            assert first == second

    def test_different_seeds_differ(self):
        assert arrival_times(20, 10.0, seed=1) != arrival_times(20, 10.0, seed=2)

    def test_strictly_increasing_from_start(self):
        times = arrival_times(100, 50.0, seed=3, start=500.0)
        assert all(b > a for a, b in zip(times, times[1:]))
        assert times[0] > 500.0

    def test_mean_gap_tracks_offered_load(self):
        # 1000 poisson arrivals at 10/s: the mean gap converges on 100ms.
        times = arrival_times(1000, 10.0, seed=11)
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(100.0, rel=0.1)

    def test_uniform_gaps_are_bounded(self):
        times = arrival_times(200, 10.0, process="uniform", seed=5)
        gaps = [b - a for a, b in zip([0.0] + times, times)]
        assert all(50.0 <= gap <= 150.0 for gap in gaps)

    def test_own_rng_stream_is_isolated(self):
        # Interleaving other draws must not perturb the schedule.
        import random

        random.seed(999)
        first = arrival_times(10, 10.0, seed=4)
        random.random()
        second = arrival_times(10, 10.0, seed=4)
        assert first == second

    def test_invalid_arguments_raise_sim_error(self):
        with pytest.raises(SimError, match="negative"):
            arrival_times(-1, 10.0)
        with pytest.raises(SimError, match="positive"):
            arrival_times(5, 0.0)
        with pytest.raises(SimError, match="unknown arrival process"):
            arrival_times(5, 10.0, process="bursty")

    def test_zero_arrivals_is_empty(self):
        assert arrival_times(0, 10.0) == []


class TestRunOpenLoop:
    def run(self, arrivals, make_task, **pool):
        kernel = Kernel(clock=Clock())
        if pool:
            kernel.configure_pool("h", **pool)
        result = run_open_loop(kernel, arrivals, make_task, offered_per_sec=10.0)
        return kernel, result

    @staticmethod
    def service(ms=10.0):
        def make_task(i):
            def request():
                yield Acquire("h")
                try:
                    yield Delay(ms)
                finally:
                    yield Release("h")
                return i

            return request()

        return make_task

    def test_counts_completions_and_measures_latency(self):
        kernel, result = self.run([0.0, 1.0, 2.0], self.service(10.0))
        assert result.completed == 3
        assert result.rejected == 0 and result.failed == 0
        # Back-to-back on one worker: service ends at 10/20/30.
        assert result.latencies.samples() == [10.0, 19.0, 28.0]
        assert result.queueing.samples() == [0.0, 9.0, 18.0]
        assert result.first_arrival == 0.0
        assert result.last_completion == 30.0
        assert result.max_queue_depth == {"h": 2}

    def test_open_loop_does_not_throttle(self):
        # 10 arrivals in 10ms against a 10ms server: every request is
        # spawned on schedule, so queueing grows linearly instead of the
        # arrival stream slowing down.
        kernel, result = self.run(
            [float(i) for i in range(10)], self.service(10.0),
            workers=1, queue_limit=64,
        )
        assert result.completed == 10
        assert result.queueing.max == pytest.approx(81.0)

    def test_overflow_counts_as_rejected(self):
        kernel, result = self.run(
            [0.0, 1.0, 2.0, 3.0], self.service(50.0),
            workers=1, queue_limit=1,
        )
        assert result.completed == 2
        assert result.rejected == 2
        assert result.failed == 0
        assert kernel.pool("h").rejected == 2

    def test_other_failures_are_not_rejections(self):
        def make_task(i):
            def request():
                yield Delay(1.0)
                if i == 1:
                    raise RuntimeError("marshalling exploded")
                return i

            return request()

        _, result = self.run([0.0, 1.0, 2.0], make_task)
        assert result.completed == 2
        assert result.failed == 1
        assert result.errors == ["RuntimeError"]

    def test_throughput_over_the_observed_span(self):
        _, result = self.run([0.0, 500.0], self.service(500.0))
        # First arrival t=0, last completion t=1000 → 2 per virtual second.
        assert result.span_ms == 1000.0
        assert result.throughput_per_sec == pytest.approx(2.0)

    def test_empty_run_summary_is_well_formed(self):
        _, result = self.run([], self.service())
        summary = result.summary()
        assert summary["completed"] == 0
        assert summary["latency"] == {"count": 0}
        assert summary["throughput_per_sec"] == 0.0


class TestRigDeterminism:
    def test_same_seed_identical_summaries(self):
        from repro.bench.loadgen import run_load

        def once():
            return run_load(
                "wsrf", rate_per_sec=30.0, requests=12,
                process="poisson", seed=42,
            ).summary()

        assert once() == once()

    def test_summary_reports_queueing_under_saturation(self):
        from repro.bench.loadgen import run_load

        result = run_load(
            "transfer", rate_per_sec=40.0, requests=12,
            process="poisson", seed=42,
        )
        assert result.completed == 12
        assert result.queueing.percentile(95) > 0.0
        assert max(result.max_queue_depth.values()) >= 1
