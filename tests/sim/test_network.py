"""Unit tests for the simulated network, transports and caches."""

import pytest

from repro.sim import (
    ConnectionReset,
    CostModel,
    FaultSpec,
    Host,
    Network,
    TransportKind,
)


@pytest.fixture()
def net():
    return Network(CostModel())


A = Host("alpha")
B = Host("beta")


class TestTransmitCosts:
    def test_colocated_cheaper_than_distributed(self, net):
        net.transmit(A, A, 2048, TransportKind.HTTP)
        local = net.clock.now
        net2 = Network(CostModel())
        net2.transmit(A, B, 2048, TransportKind.HTTP)
        assert net2.clock.now > local

    def test_http_keepalive_cache(self, net):
        net.transmit(A, B, 1024, TransportKind.HTTP)
        cold = net.clock.now
        net.transmit(A, B, 1024, TransportKind.HTTP)
        warm = net.clock.now - cold
        assert warm < cold
        expected_delta = net.costs.http_connect - net.costs.http_connect_cached
        assert cold - warm == pytest.approx(expected_delta)

    def test_https_session_resumption(self, net):
        net.transmit(A, B, 1024, TransportKind.HTTPS)
        cold = net.clock.now
        net.transmit(A, B, 1024, TransportKind.HTTPS)
        warm = net.clock.now - cold
        assert cold - warm >= net.costs.tls_handshake - net.costs.tls_resume - 1e-9

    def test_https_adds_symmetric_crypto_per_kb(self):
        plain = Network(CostModel())
        tls = Network(CostModel())
        plain.transmit(A, B, 10240, TransportKind.HTTP)
        tls.transmit(A, B, 10240, TransportKind.HTTPS)
        # Strip connection setup differences: compare second (warm) sends.
        plain_start, tls_start = plain.clock.now, tls.clock.now
        plain.transmit(A, B, 10240, TransportKind.HTTP)
        tls.transmit(A, B, 10240, TransportKind.HTTPS)
        plain_warm = plain.clock.now - plain_start
        tls_warm = tls.clock.now - tls_start
        assert tls_warm > plain_warm

    def test_tcp_connect_once(self, net):
        net.transmit(A, B, 100, TransportKind.TCP)
        first = net.clock.now
        net.transmit(A, B, 100, TransportKind.TCP)
        assert net.clock.now - first < first

    def test_connection_cache_is_per_pair_and_kind(self, net):
        net.transmit(A, B, 0, TransportKind.HTTP)
        base = net.clock.now
        # Different destination: cold again.
        net.transmit(A, Host("gamma"), 0, TransportKind.HTTP)
        assert net.clock.now - base == pytest.approx(base)

    def test_drop_connections_restores_cold_cost(self, net):
        net.transmit(A, B, 0, TransportKind.HTTPS)
        cold = net.clock.now
        net.drop_connections()
        net.transmit(A, B, 0, TransportKind.HTTPS)
        assert net.clock.now - cold == pytest.approx(cold)

    def test_drop_connections_forgets_tcp_sockets(self, net):
        net.transmit(A, B, 100, TransportKind.TCP)
        cold = net.clock.now
        net.transmit(A, B, 100, TransportKind.TCP)
        warm = net.clock.now - cold
        net.drop_connections()
        before = net.clock.now
        net.transmit(A, B, 100, TransportKind.TCP)
        recold = net.clock.now - before
        assert recold == pytest.approx(cold)
        assert recold - warm == pytest.approx(net.costs.tcp_connect)

    def test_negative_bytes_rejected(self, net):
        with pytest.raises(ValueError):
            net.transmit(A, B, -1, TransportKind.HTTP)

    def test_bytes_scale_wire_time(self, net):
        net.transmit(A, B, 0, TransportKind.HTTP)
        t0 = net.clock.now
        net.transmit(A, B, 10 * 1024, TransportKind.HTTP)
        small = net.clock.now - t0
        t1 = net.clock.now
        net.transmit(A, B, 100 * 1024, TransportKind.HTTP)
        large = net.clock.now - t1
        assert large > small


class TestTlsSessionCache:
    """The paper's socket-caching observation: resumed TLS sessions skip
    the full handshake, and losing the connection loses the session."""

    def test_resumed_session_charges_tls_resume_exactly(self, net):
        net.transmit(A, B, 0, TransportKind.HTTPS)
        cold = net.clock.now
        net.transmit(A, B, 0, TransportKind.HTTPS)
        warm = net.clock.now - cold
        saved = (net.costs.http_connect - net.costs.http_connect_cached) + (
            net.costs.tls_handshake - net.costs.tls_resume
        )
        assert cold - warm == pytest.approx(saved)

    def test_session_cache_is_per_pair(self, net):
        net.transmit(A, B, 0, TransportKind.HTTPS)
        base = net.clock.now
        # A different server pays the full handshake again.
        net.transmit(A, Host("gamma"), 0, TransportKind.HTTPS)
        assert net.clock.now - base == pytest.approx(base)

    def test_drop_connections_forgets_tls_sessions(self, net):
        net.transmit(A, B, 0, TransportKind.HTTPS)
        cold = net.clock.now
        net.drop_connections()
        net.transmit(A, B, 0, TransportKind.HTTPS)
        assert net.clock.now - cold == pytest.approx(cold)

    def test_injected_reset_clears_session_both_ways(self, net):
        # Warm both orientations of the A<->B link first.
        net.transmit(A, B, 0, TransportKind.HTTPS)
        net.transmit(B, A, 0, TransportKind.HTTPS)
        net.faults.set_link("alpha", "beta", FaultSpec(reset_rate=1.0))
        with pytest.raises(ConnectionReset):
            net.transmit(A, B, 0, TransportKind.HTTPS)
        net.faults.clear()
        # Both directions are cold again: full handshake, not a resume.
        for src, dst in ((A, B), (B, A)):
            before = net.clock.now
            net.transmit(src, dst, 0, TransportKind.HTTPS)
            elapsed = net.clock.now - before
            assert elapsed == pytest.approx(
                net.costs.http_connect + net.costs.tls_handshake + net.costs.lan_latency
            )

    def test_reset_counter_increments(self, net):
        net.faults.set_default(FaultSpec(reset_rate=1.0))
        with pytest.raises(ConnectionReset):
            net.transmit(A, B, 0, TransportKind.HTTPS)
        assert net.faults.connections_reset == 1


class TestMetrics:
    def test_messages_and_bytes_counted(self, net):
        net.transmit(A, B, 500, TransportKind.HTTP)
        net.transmit(B, A, 700, TransportKind.HTTP)
        assert net.metrics.total_messages == 2
        assert net.metrics.total_bytes == 1200

    def test_operation_trace_attribution(self, net):
        net.transmit(A, B, 100, TransportKind.HTTP)  # outside any trace
        net.metrics.begin("op", net.clock.now)
        net.transmit(A, B, 200, TransportKind.HTTP, service="svc1")
        net.transmit(A, B, 300, TransportKind.HTTP, service="svc2")
        trace = net.metrics.end(net.clock.now)
        assert trace.messages == 2
        assert trace.bytes_on_wire == 500
        assert trace.services_touched == {"svc1", "svc2"}
        assert trace.elapsed_ms > 0

    def test_nested_traces_rejected(self, net):
        net.metrics.begin("outer", 0)
        with pytest.raises(RuntimeError):
            net.metrics.begin("inner", 0)

    def test_end_without_begin_rejected(self, net):
        with pytest.raises(RuntimeError):
            net.metrics.end(0)

    def test_time_categories_recorded(self, net):
        net.transmit(A, B, 1024, TransportKind.HTTP)
        categories = set(net.metrics.time_by_category)
        assert "transport.setup" in categories
        assert "transport.wire" in categories

    def test_last_trace(self, net):
        net.metrics.begin("x", 0)
        net.metrics.end(1)
        assert net.metrics.last().name == "x"
        net.metrics.reset()
        with pytest.raises(RuntimeError):
            net.metrics.last()


class TestCostModel:
    def test_replace_overrides(self):
        model = CostModel().replace(db_insert=99.0)
        assert model.db_insert == 99.0
        assert model.db_read == CostModel().db_read

    def test_free_model_charges_nothing(self):
        net = Network(CostModel.free())
        net.transmit(A, B, 10_000, TransportKind.HTTPS)
        assert net.clock.now == 0.0

    def test_create_slower_than_read_in_default_model(self):
        model = CostModel()
        assert model.db_insert > model.db_read
        assert model.db_insert > model.db_update
