"""Unit and property tests for the virtual clock."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Clock, SimError


class TestCharge:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_charge_advances(self):
        clock = Clock()
        clock.charge(5.0)
        clock.charge(2.5)
        assert clock.now == 7.5

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            Clock().charge(-1)

    def test_advance_to_backwards_rejected(self):
        clock = Clock(start=10)
        with pytest.raises(ValueError):
            clock.advance_to(5)

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_monotonic_under_any_charge_sequence(self, charges):
        clock = Clock()
        last = clock.now
        for ms in charges:
            clock.charge(ms)
            assert clock.now >= last
            last = clock.now


class TestTimers:
    def test_timer_fires_during_charge(self):
        clock = Clock()
        fired = []
        clock.schedule(10.0, lambda: fired.append(clock.now))
        clock.charge(5.0)
        assert fired == []
        clock.charge(10.0)
        assert fired == [10.0]
        assert clock.now == 15.0

    def test_timers_fire_in_deadline_order(self):
        clock = Clock()
        fired = []
        clock.schedule(20.0, lambda: fired.append("b"))
        clock.schedule(10.0, lambda: fired.append("a"))
        clock.schedule(30.0, lambda: fired.append("c"))
        clock.advance_to(25.0)
        assert fired == ["a", "b"]
        clock.advance_to(35.0)
        assert fired == ["a", "b", "c"]

    def test_same_deadline_fifo(self):
        clock = Clock()
        fired = []
        clock.schedule(10.0, lambda: fired.append(1))
        clock.schedule(10.0, lambda: fired.append(2))
        clock.advance_to(10.0)
        assert fired == [1, 2]

    def test_cancel(self):
        clock = Clock()
        fired = []
        timer = clock.schedule(10.0, lambda: fired.append(1))
        clock.cancel(timer)
        clock.advance_to(20.0)
        assert fired == []
        assert clock.pending_timers() == 0

    def test_cancel_idempotent(self):
        clock = Clock()
        timer = clock.schedule(10.0, lambda: None)
        clock.cancel(timer)
        clock.cancel(timer)
        clock.advance_to(20.0)

    def test_past_deadline_fires_at_now(self):
        clock = Clock(start=100)
        fired = []
        clock.schedule(5.0, lambda: fired.append(clock.now))
        clock.charge(0.0)
        assert fired == [100.0]

    def test_schedule_after(self):
        clock = Clock(start=10)
        fired = []
        clock.schedule_after(5.0, lambda: fired.append(clock.now))
        clock.charge(10)
        assert fired == [15.0]

    def test_timer_scheduling_timer(self):
        clock = Clock()
        fired = []

        def first():
            fired.append("first")
            clock.schedule(clock.now + 1, lambda: fired.append("second"))

        clock.schedule(10, first)
        clock.advance_to(20)
        assert fired == ["first", "second"]

    def test_pending_timers_counts_live_only(self):
        clock = Clock()
        t1 = clock.schedule(10, lambda: None)
        clock.schedule(20, lambda: None)
        clock.cancel(t1)
        assert clock.pending_timers() == 1


class TestSimErrors:
    def test_backwards_advance_raises_sim_error(self):
        clock = Clock(start=100)
        with pytest.raises(SimError, match="cannot move backwards"):
            clock.advance_to(50.0)
        assert clock.now == 100.0  # the timeline did not silently rewind

    def test_negative_charge_raises_sim_error(self):
        clock = Clock()
        with pytest.raises(SimError, match="negative"):
            clock.charge(-1.0)

    def test_sim_error_is_a_value_error(self):
        # Call sites predating SimError catch ValueError; keep them working.
        assert issubclass(SimError, ValueError)


class TestDeferredCharges:
    def test_charges_accumulate_without_advancing(self):
        clock = Clock()
        with clock.defer_charges() as pending:
            clock.charge(5.0)
            clock.charge(7.0)
            assert pending.ms == 12.0
            assert clock.now == 12.0  # locally-elapsed view inside the stage
            assert clock._now == 0.0  # the shared timeline has not moved
        assert clock.now == 0.0  # the kernel owns the eventual advance

    def test_deferred_timers_do_not_fire(self):
        clock = Clock()
        fired = []
        clock.schedule(3.0, lambda: fired.append(clock.now))
        with clock.defer_charges():
            clock.charge(10.0)
            assert fired == []  # stages are atomic; timers wait for the sleep
        clock.advance_to(10.0)
        assert fired == [3.0]

    def test_deferral_cannot_nest(self):
        clock = Clock()
        with clock.defer_charges():
            with pytest.raises(SimError, match="cannot nest"):
                with clock.defer_charges():
                    pass

    def test_deferred_advance_to_moves_local_time(self):
        # Lease-expiry math mid-stage uses advance_to(now + ms); inside a
        # stage that must extend the pending total, not the shared clock.
        clock = Clock(start=50)
        with clock.defer_charges() as pending:
            clock.advance_to(clock.now + 20.0)
            assert pending.ms == 20.0
            with pytest.raises(SimError, match="cannot move backwards"):
                clock.advance_to(60.0)  # behind the local now of 70
        assert clock._now == 50.0

    def test_deferring_property(self):
        clock = Clock()
        assert not clock.deferring
        with clock.defer_charges():
            assert clock.deferring
        assert not clock.deferring


class TestNextTimerAt:
    def test_earliest_live_deadline(self):
        clock = Clock()
        early = clock.schedule(5.0, lambda: None)
        clock.schedule(9.0, lambda: None)
        assert clock.next_timer_at() == 5.0
        clock.cancel(early)
        assert clock.next_timer_at() == 9.0

    def test_idle_clock_has_none(self):
        assert Clock().next_timer_at() is None
