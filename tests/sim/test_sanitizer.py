"""Unit tests for the sim-state sanitizer: context tagging, the
cross-host/no-transmission invariant, pseudo-host exemptions, and the
Network/Collection wiring."""

import pytest

from repro.sim import (
    SETUP_HOST,
    TIMER_HOST,
    CostModel,
    Host,
    Network,
    SimSanitizer,
    TransportKind,
)
from repro.xmldb.collection import Collection
from repro.xmllib import element

DOC = element("{urn:example:sanitizer}Doc")


class TestContext:
    def test_default_context_is_setup(self):
        sanitizer = SimSanitizer()
        assert sanitizer.current_context() == (SETUP_HOST, "")

    def test_scope_tags_and_pops(self):
        sanitizer = SimSanitizer()
        with sanitizer.scope("alpha", "msg-a"):
            assert sanitizer.current_context() == ("alpha", "msg-a")
            with sanitizer.scope("beta"):
                host, message_id = sanitizer.current_context()
                assert host == "beta" and message_id.startswith("msg-")
            assert sanitizer.current_context() == ("alpha", "msg-a")
        assert sanitizer.current_context() == (SETUP_HOST, "")

    def test_auto_message_ids_are_unique(self):
        sanitizer = SimSanitizer()
        seen = []
        for _ in range(3):
            with sanitizer.scope("alpha"):
                seen.append(sanitizer.current_context()[1])
        assert len(set(seen)) == 3


class TestInvariant:
    def test_cross_host_without_transmission_is_a_violation(self):
        sanitizer = SimSanitizer()
        with sanitizer.scope("alpha", "m1"):
            sanitizer.note_mutation("counters", "k", "insert")
        with sanitizer.scope("beta", "m2"):
            sanitizer.note_mutation("counters", "k", "update")
        assert not sanitizer.clean
        [line] = sanitizer.report()
        assert "counters/k" in line
        assert "beta" in line and "alpha" in line
        assert "no message transmission" in line

    def test_transmission_between_writes_is_legitimate(self):
        sanitizer = SimSanitizer()
        with sanitizer.scope("alpha"):
            sanitizer.note_mutation("counters", "k", "insert")
        sanitizer.transmission()
        with sanitizer.scope("beta"):
            sanitizer.note_mutation("counters", "k", "update")
        assert sanitizer.clean

    def test_same_host_repeat_writes_are_clean(self):
        sanitizer = SimSanitizer()
        with sanitizer.scope("alpha"):
            sanitizer.note_mutation("counters", "k", "insert")
            sanitizer.note_mutation("counters", "k", "update")
        assert sanitizer.clean

    def test_different_keys_do_not_conflict(self):
        sanitizer = SimSanitizer()
        with sanitizer.scope("alpha"):
            sanitizer.note_mutation("counters", "k1", "insert")
        with sanitizer.scope("beta"):
            sanitizer.note_mutation("counters", "k2", "insert")
        assert sanitizer.clean

    def test_timer_host_is_exempt_both_directions(self):
        sanitizer = SimSanitizer()
        with sanitizer.scope("alpha"):
            sanitizer.note_mutation("counters", "k", "insert")
        with sanitizer.scope(TIMER_HOST, "terminate:k"):
            sanitizer.note_mutation("counters", "k", "delete")
        with sanitizer.scope("beta"):
            sanitizer.note_mutation("counters", "k", "insert")
        assert sanitizer.clean

    def test_setup_writes_never_conflict(self):
        sanitizer = SimSanitizer()
        sanitizer.note_mutation("counters", "k", "insert")  # no scope: <setup>
        with sanitizer.scope("alpha"):
            sanitizer.note_mutation("counters", "k", "update")
        assert sanitizer.clean


class TestNetworkWiring:
    def test_detached_network_scopes_are_noops(self):
        network = Network(CostModel())
        with network.sanitizer_scope("alpha"):
            network.note_mutation("counters", "k", "insert")
        # No sanitizer attached: nothing recorded, nothing raised.

    def test_collection_writes_are_tagged_through_network(self):
        network = Network(CostModel())
        network.sanitizer = SimSanitizer()
        collection = Collection("counters", network)
        with network.sanitizer_scope("alpha", "m1"):
            collection.insert(DOC, "k")
        with network.sanitizer_scope("beta", "m2"):
            collection.update("k", DOC)
        ops = [(m.host, m.op) for m in network.sanitizer.mutations]
        assert ops == [("alpha", "insert"), ("beta", "update")]
        assert len(network.sanitizer.violations) == 1

    def test_delivered_message_counts_as_transmission(self):
        network = Network(CostModel())
        network.sanitizer = SimSanitizer()
        collection = Collection("counters", network)
        with network.sanitizer_scope("alpha"):
            collection.insert(DOC, "k")
        network.transmit(Host("alpha"), Host("beta"), 512, TransportKind.HTTP)
        with network.sanitizer_scope("beta"):
            collection.update("k", DOC)
        assert network.sanitizer.clean
