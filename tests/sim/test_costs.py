"""Invariants of the calibrated cost model itself."""

import dataclasses

import pytest

from repro.sim import CostModel


class TestCalibrationInvariants:
    """The relationships the paper's results depend on, pinned as tests so
    a recalibration cannot silently break a reproduced mechanism."""

    def test_tls_resume_much_cheaper_than_handshake(self):
        model = CostModel()
        assert model.tls_resume < model.tls_handshake / 5

    def test_keepalive_cheaper_than_fresh_connection(self):
        model = CostModel()
        assert model.http_connect_cached < model.http_connect

    def test_tcp_notify_much_cheaper_than_http_notify(self):
        model = CostModel()
        assert model.notify_tcp_overhead < model.notify_http_overhead / 5

    def test_insert_dominates_other_db_ops(self):
        model = CostModel()
        assert model.db_insert > model.db_read + model.db_update

    def test_cache_hit_much_cheaper_than_read(self):
        model = CostModel()
        assert model.cache_hit < model.db_read / 5

    def test_signing_dominates_soap_processing(self):
        model = CostModel()
        assert model.rsa_sign > 10 * (model.soap_dispatch + model.soap_per_message)

    def test_verify_much_cheaper_than_sign(self):
        """RSA with e=65537: verification is far cheaper than signing."""
        model = CostModel()
        assert model.rsa_verify < model.rsa_sign / 5

    def test_all_costs_non_negative(self):
        model = CostModel()
        for field in dataclasses.fields(model):
            assert getattr(model, field.name) >= 0, field.name

    def test_all_fields_are_floats(self):
        model = CostModel()
        for field in dataclasses.fields(model):
            assert isinstance(getattr(model, field.name), float), field.name


class TestModelMechanics:
    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            CostModel().db_read = 1.0  # type: ignore[misc]

    def test_replace_leaves_original_untouched(self):
        base = CostModel()
        modified = base.replace(db_read=99.0)
        assert base.db_read != 99.0
        assert modified.db_read == 99.0

    def test_replace_unknown_field_rejected(self):
        with pytest.raises(TypeError):
            CostModel().replace(not_a_cost=1.0)

    def test_free_is_all_zero(self):
        model = CostModel.free()
        for field in dataclasses.fields(model):
            assert getattr(model, field.name) == 0.0
