"""Percentile / sample-set / queue-depth math (the loadgen's statistics)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import QueueDepthMeter, SampleSet, merge_sample_sets, percentile

_samples = st.lists(
    st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=40
)


class TestPercentile:
    def test_exact_quantiles_on_known_distribution(self):
        # 0..100 inclusive: rank (n-1)*p/100 lands on integers exactly.
        samples = [float(i) for i in range(101)]
        assert percentile(samples, 0) == 0.0
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 95) == 95.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0

    def test_linear_interpolation_between_ranks(self):
        assert percentile([10.0, 20.0], 50) == 15.0
        assert percentile([0.0, 10.0, 20.0, 30.0], 25) == 7.5

    def test_order_independent(self):
        shuffled = [30.0, 0.0, 20.0, 10.0]
        assert percentile(shuffled, 75) == percentile(sorted(shuffled), 75)

    def test_single_sample_is_every_percentile(self):
        for p in (0, 50, 95, 99, 100):
            assert percentile([7.5], p) == 7.5

    def test_empty_samples_error(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)

    def test_out_of_range_percentile_errors(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    @given(samples=_samples)
    @settings(max_examples=60, deadline=None)
    def test_p0_and_p100_are_the_extremes(self, samples):
        assert percentile(samples, 0) == min(samples)
        assert percentile(samples, 100) == max(samples)

    @given(samples=_samples, lo=st.integers(0, 100), hi=st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_p_and_bounded(self, samples, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        assert percentile(samples, lo) <= percentile(samples, hi)
        assert min(samples) <= percentile(samples, lo) <= max(samples)


class TestSampleSet:
    def test_accumulates_and_summarizes(self):
        samples = SampleSet()
        for value in (5.0, 15.0, 10.0):
            samples.add(value)
        assert samples.count == 3
        assert samples.mean == 10.0
        assert samples.min == 5.0
        assert samples.max == 15.0
        assert samples.percentile(50) == 10.0

    def test_empty_set_statistics_error(self):
        empty = SampleSet()
        assert empty.empty
        for stat in ("mean", "max", "min"):
            with pytest.raises(ValueError):
                getattr(empty, stat)
        with pytest.raises(ValueError):
            empty.percentile(50)

    def test_empty_summary_is_just_a_count(self):
        assert SampleSet().summary() == {"count": 0}

    def test_summary_block_fields(self):
        block = SampleSet([1.0, 2.0, 3.0]).summary()
        assert set(block) == {
            "count", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms",
        }
        assert block["count"] == 3
        assert block["p50_ms"] == 2.0

    def test_merge_equals_pooled_raw_data(self):
        # Merging per-host sets concatenates samples, so the merged
        # percentile equals the percentile of the pooled data — no
        # histogram-bucket approximation error.
        host_a = SampleSet([1.0, 2.0, 3.0])
        host_b = SampleSet([10.0, 20.0])
        merged = host_a.merge(host_b)
        pooled = [1.0, 2.0, 3.0, 10.0, 20.0]
        assert merged.count == 5
        for p in (0, 25, 50, 75, 95, 100):
            assert merged.percentile(p) == percentile(pooled, p)
        # Merge is non-destructive.
        assert host_a.count == 3 and host_b.count == 2

    def test_merge_sample_sets_is_host_order_independent(self):
        per_host = {
            "opteron2": SampleSet([4.0, 5.0]),
            "opteron1": SampleSet([1.0, 2.0, 3.0]),
        }
        merged = merge_sample_sets(per_host)
        assert merged.count == 5
        assert merged.samples() == [1.0, 2.0, 3.0, 4.0, 5.0]  # sorted-name order

    def test_merge_with_empty_is_identity(self):
        host = SampleSet([3.0, 1.0])
        assert host.merge(SampleSet()).samples() == host.samples()
        assert SampleSet().merge(host).samples() == host.samples()

    @given(a=_samples, b=_samples, c=_samples)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_associative_on_the_pooled_data(self, a, b, c):
        left = SampleSet(a).merge(SampleSet(b)).merge(SampleSet(c))
        right = SampleSet(a).merge(SampleSet(b).merge(SampleSet(c)))
        assert left.samples() == right.samples()
        for p in (0, 50, 95, 100):
            assert left.percentile(p) == right.percentile(p)


class TestQueueDepthMeter:
    def test_tracks_high_water_mark(self):
        meter = QueueDepthMeter()
        for now, depth in ((0.0, 1), (5.0, 3), (10.0, 2)):
            meter.record(now, depth)
        assert meter.max_depth == 3
        assert meter.depth == 2

    def test_time_weighted_mean(self):
        meter = QueueDepthMeter()
        meter.record(0.0, 0)
        meter.record(10.0, 4)   # depth 0 for 10ms
        meter.record(20.0, 0)   # depth 4 for 10ms
        # 0*10 + 4*10 + 0*10 over 30ms
        assert meter.time_weighted_mean(until=30.0) == pytest.approx(4 / 3)

    def test_mean_distinguishes_spike_from_plateau(self):
        spike = QueueDepthMeter()
        spike.record(0.0, 10)
        spike.record(1.0, 0)
        plateau = QueueDepthMeter()
        plateau.record(0.0, 10)
        plateau.record(99.0, 0)
        assert spike.max_depth == plateau.max_depth == 10
        assert spike.time_weighted_mean(100.0) < plateau.time_weighted_mean(100.0)

    def test_empty_meter_mean_is_zero(self):
        assert QueueDepthMeter().time_weighted_mean(100.0) == 0.0

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            QueueDepthMeter().record(0.0, -1)

    def test_until_before_first_transition_rejected(self):
        meter = QueueDepthMeter()
        meter.record(50.0, 1)
        with pytest.raises(ValueError):
            meter.time_weighted_mean(until=10.0)

    def test_zero_duration_window_reports_instantaneous_depth(self):
        # until == the first (and only) transition: the window is empty,
        # so the mean degrades to the current depth instead of 0/0.
        meter = QueueDepthMeter()
        meter.record(50.0, 3)
        assert meter.time_weighted_mean(until=50.0) == 3.0

    def test_simultaneous_transitions_contribute_no_width(self):
        # Two transitions at the same instant: the first holds for zero
        # time and must not leak into the integral.
        meter = QueueDepthMeter()
        meter.record(0.0, 100)
        meter.record(0.0, 2)
        assert meter.max_depth == 100
        assert meter.time_weighted_mean(until=10.0) == pytest.approx(2.0)

    def test_zero_width_spike_mid_run_is_invisible_to_the_mean(self):
        meter = QueueDepthMeter()
        meter.record(0.0, 1)
        meter.record(5.0, 50)   # spike...
        meter.record(5.0, 1)    # ...gone within the same instant
        assert meter.time_weighted_mean(until=10.0) == pytest.approx(1.0)
        assert meter.max_depth == 50
