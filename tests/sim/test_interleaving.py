"""Acceptance: overlapping requests share one virtual timeline.

The ISSUE-7 criterion: a seeded two-client run must show the second
request queueing behind the first (queueing delay > 0) while the *total*
service cost matches the serial ledger — concurrency changes the shape
of time, never the amount of work — and the same seed must reproduce
the schedule exactly.
"""

import pytest

from repro.apps.counter.deploy import (
    SERVER_HOST,
    CounterScenario,
    build_wsrf_rig,
)
from repro.container.security import SecurityMode
from repro.wsrf.properties import actions as rp_actions
from repro.xmllib import element, ns, text_of


def build_rig():
    return build_wsrf_rig(CounterScenario(SecurityMode.X509, colocated=False))


def get_request():
    return element(f"{{{ns.WSRF_RP}}}GetResourceProperty", "Value")


def parse_value(response):
    return int(text_of(response.find(f"{{{ns.COUNTER}}}Value")))


def serial_costs():
    """Per-category cost of two serial Gets (the pre-kernel regime)."""
    rig = build_rig()
    counter = rig.client.create(3)
    metrics = rig.deployment.network.metrics
    before = dict(metrics.time_by_category)
    start = rig.deployment.network.clock.now
    assert rig.client.get(counter) == 3
    assert rig.client.get(counter) == 3
    elapsed = rig.deployment.network.clock.now - start
    delta = {
        category: metrics.time_by_category[category] - before.get(category, 0.0)
        for category in metrics.time_by_category
    }
    return {k: v for k, v in delta.items() if v}, elapsed


def concurrent_run(gap_ms=1.0):
    """Two overlapping Gets spawned ``gap_ms`` apart on the kernel."""
    rig = build_rig()
    counter = rig.client.create(3)
    network = rig.deployment.network
    kernel = network.kernel
    soap = rig.client.soap
    metrics = network.metrics
    before = dict(metrics.time_by_category)
    start = network.clock.now
    first = kernel.spawn(
        soap.invoke_task(counter, rp_actions.GET, get_request()), "first",
        at=start,
    )
    second = kernel.spawn(
        soap.invoke_task(counter, rp_actions.GET, get_request()), "second",
        at=start + gap_ms,
    )
    kernel.run()
    elapsed = network.clock.now - start
    delta = {
        category: metrics.time_by_category[category] - before.get(category, 0.0)
        for category in metrics.time_by_category
    }
    return {
        "first": first,
        "second": second,
        "costs": {k: v for k, v in delta.items() if v},
        "elapsed": elapsed,
        "pool": kernel.pool(SERVER_HOST),
    }


class TestTwoClientInterleaving:
    def test_second_request_queues_behind_the_first(self):
        run = concurrent_run()
        assert run["first"].queueing_delay_ms == 0.0
        assert run["second"].queueing_delay_ms > 0.0
        assert run["pool"].max_depth == 1

    def test_both_requests_complete_correctly(self):
        run = concurrent_run()
        for task in (run["first"], run["second"]):
            assert task.ok, task.error
            assert parse_value(task.result) == 3

    def test_total_service_cost_matches_serial_ledger(self):
        # Interleaving reorders work on the timeline; it must not create
        # or destroy any: every per-category total matches two serial Gets
        # exactly (connection setup included — exactly one request pays
        # the cold handshake in either regime).
        serial, serial_elapsed = serial_costs()
        run = concurrent_run()
        assert set(run["costs"]) == set(serial)
        for category, total in serial.items():
            assert run["costs"][category] == pytest.approx(total, abs=1e-9), category
        # The same work, overlapped: the makespan shrinks.
        assert run["elapsed"] < serial_elapsed

    def test_same_seed_reproduces_identical_schedule(self):
        def fingerprint():
            run = concurrent_run()
            return (
                run["first"].latency_ms,
                run["second"].latency_ms,
                run["second"].queueing_delay_ms,
                run["elapsed"],
                sorted(run["costs"].items()),
            )

        assert fingerprint() == fingerprint()

    def test_span_trees_stay_well_formed_per_task(self):
        # Each task records its spans on its own tracer; interleaving must
        # not corrupt either tree (one root, the Figure-1 stage children).
        run = concurrent_run()
        for task in (run["first"], run["second"]):
            assert task.tracer.open_depth == 0
            assert len(task.tracer.roots) == 1
            root = task.tracer.roots[0]
            assert root.name == "client.invoke"
            names = [span.name for _, span in root.walk()]
            assert "wire.request" in names and "wire.response" in names


class TestSerialPathThroughKernel:
    def test_plain_invoke_routes_via_run_sync(self):
        rig = build_rig()
        kernel = rig.deployment.network.kernel
        counted = kernel.sync_requests
        counter = rig.client.create(1)
        assert rig.client.get(counter) == 1
        # create + get each round-tripped through the fast path.
        assert kernel.sync_requests >= counted + 2

    def test_no_pool_state_leaks_after_serial_requests(self):
        rig = build_rig()
        counter = rig.client.create(1)
        rig.client.set(counter, 9)
        assert rig.client.get(counter) == 9
        pool = rig.deployment.network.kernel.pool(SERVER_HOST)
        assert pool.busy == 0
        assert pool.depth == 0
        assert pool.max_depth == 0  # serial requests never queue
