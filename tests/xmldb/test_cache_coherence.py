"""Cache-coherence regressions for the write-through cache.

Two bugs fixed in this area, each pinned by a test that fails on the
pre-fix code:

* ``upsert`` used to reach the collection directly, leaving a stale copy
  of the document in the cache;
* eviction used to be FIFO — a read hit did not refresh recency, so a hot
  document could be evicted while a cold one stayed resident.
"""

from repro.sim import CostModel, Network
from repro.xmldb import Collection, WriteThroughCache
from repro.xmllib import element


def doc(value) -> "element":
    return element("{urn:c}Counter", element("{urn:c}Value", value))


def value_of(document) -> str:
    return document.find("{urn:c}Value").text()


def make_cache(capacity: int = 256) -> WriteThroughCache:
    return WriteThroughCache(Collection("c", Network(CostModel())), capacity)


class TestUpsertWriteThrough:
    def test_upsert_refreshes_cached_copy(self):
        cache = make_cache()
        cache.insert(doc(1), key="k")
        cache.upsert("k", doc(2))
        # Pre-fix: the read hit served the stale cached value 1.
        assert value_of(cache.read("k")) == "2"
        assert cache.hits == 1

    def test_upsert_of_new_key_is_cached(self):
        cache = make_cache()
        cache.upsert("fresh", doc(7))
        hits_before = cache.hits
        assert value_of(cache.read("fresh")) == "7"
        assert cache.hits == hits_before + 1

    def test_upsert_writes_through_to_collection(self):
        cache = make_cache()
        cache.upsert("k", doc(3))
        assert value_of(cache.collection.read("k")) == "3"


class TestLruEviction:
    def test_read_hit_refreshes_recency(self):
        cache = make_cache(capacity=2)
        cache.insert(doc(1), key="a")
        cache.insert(doc(2), key="b")
        cache.read("a")  # "a" is now most recently used
        cache.insert(doc(3), key="c")  # evicts one entry
        misses_before = cache.misses
        cache.read("a")
        # Pre-fix (FIFO): "a" was the oldest insert and got evicted
        # despite the hit, so this read missed.
        assert cache.misses == misses_before

    def test_coldest_entry_is_the_one_evicted(self):
        cache = make_cache(capacity=3)
        for key in ("a", "b", "c"):
            cache.insert(doc(0), key=key)
        cache.read("a")
        cache.read("c")  # recency now: b (cold), a, c
        cache.insert(doc(0), key="d")
        misses_before = cache.misses
        cache.read("a")
        cache.read("c")
        cache.read("d")
        assert cache.misses == misses_before
        cache.read("b")
        assert cache.misses == misses_before + 1

    def test_update_also_refreshes_recency(self):
        cache = make_cache(capacity=2)
        cache.insert(doc(1), key="a")
        cache.insert(doc(2), key="b")
        cache.update("a", doc(10))  # "a" most recent; "b" is now coldest
        cache.insert(doc(3), key="c")
        misses_before = cache.misses
        assert value_of(cache.read("a")) == "10"
        assert cache.misses == misses_before
