"""Unit tests for collections, the database, backends and the cache."""

import pytest

from repro.sim import CostModel, Network
from repro.xmldb import (
    Collection,
    DocumentNotFound,
    FileBackend,
    MemoryBackend,
    WriteThroughCache,
    XmlDatabase,
)
from repro.xmllib import element


@pytest.fixture()
def net():
    return Network(CostModel())


@pytest.fixture()
def coll(net):
    return Collection("counters", net)


def doc(value: int):
    return element("{urn:c}Counter", element("{urn:c}Value", value))


class TestCrud:
    def test_insert_read_roundtrip(self, coll):
        key = coll.insert(doc(3))
        got = coll.read(key)
        assert got.find("{urn:c}Value").text() == "3"

    def test_generated_ids_unique_and_deterministic(self, coll):
        k1 = coll.insert(doc(1))
        k2 = coll.insert(doc(2))
        assert k1 != k2
        assert k1 == "counters-00000001"

    def test_insert_explicit_key(self, coll):
        coll.insert(doc(1), key="mine")
        assert coll.contains("mine")

    def test_insert_duplicate_rejected(self, coll):
        coll.insert(doc(1), key="k")
        with pytest.raises(ValueError, match="already exists"):
            coll.insert(doc(2), key="k")

    def test_update(self, coll):
        key = coll.insert(doc(1))
        coll.update(key, doc(9))
        assert coll.read(key).text().strip() == "9"

    def test_update_missing_raises(self, coll):
        with pytest.raises(DocumentNotFound):
            coll.update("ghost", doc(1))

    def test_upsert_inserts_then_updates(self, coll, net):
        coll.upsert("oob", doc(1))  # out-of-band creation path
        assert coll.contains("oob")
        coll.upsert("oob", doc(2))
        assert coll.read("oob").text().strip() == "2"

    def test_delete(self, coll):
        key = coll.insert(doc(1))
        coll.delete(key)
        assert not coll.contains(key)
        with pytest.raises(DocumentNotFound):
            coll.read(key)

    def test_delete_missing_raises(self, coll):
        with pytest.raises(DocumentNotFound):
            coll.delete("ghost")

    def test_len_and_keys(self, coll):
        coll.insert(doc(1), key="b")
        coll.insert(doc(2), key="a")
        assert len(coll) == 2
        assert coll.keys() == ["a", "b"]


class TestCosts:
    def test_insert_slower_than_read(self, net):
        coll = Collection("c", net)
        t0 = net.clock.now
        key = coll.insert(doc(1))
        insert_cost = net.clock.now - t0
        t1 = net.clock.now
        coll.read(key)
        read_cost = net.clock.now - t1
        assert insert_cost > read_cost

    def test_db_ops_counted(self, net):
        coll = Collection("c", net)
        net.metrics.begin("op", net.clock.now)
        key = coll.insert(doc(1))
        coll.read(key)
        coll.update(key, doc(2))
        trace = net.metrics.end(net.clock.now)
        assert trace.db_ops == 3


class TestQuery:
    def test_query_across_documents(self, coll):
        coll.insert(doc(1))
        coll.insert(doc(5))
        coll.insert(doc(10))
        hits = coll.query("//Value[. > 4]")
        assert len(hits) == 2

    def test_query_keys_dedup(self, coll):
        coll.insert(element("{urn:c}Counter", element("{urn:c}Value", 1), element("{urn:c}Value", 2)))
        keys = coll.query_keys("//Value")
        assert len(keys) == 1

    def test_query_keys_dedup_preserves_document_order(self, coll):
        # Multi-hit documents must appear once, in first-hit order — the
        # old quadratic list dedupe got the order right but O(n²); the
        # dict-based dedupe must preserve exactly the same ordering.
        for key in ("k1", "k2", "k3"):
            coll.insert(
                element("{urn:c}Counter", element("{urn:c}Value", 1), element("{urn:c}Value", 2)),
                key=key,
            )
        assert coll.query_keys("//Value") == ["k1", "k2", "k3"]

    def test_query_cost_scales_with_collection(self, net):
        coll = Collection("c", net)
        for i in range(5):
            coll.insert(doc(i))
        t0 = net.clock.now
        coll.query("//Value")
        cost5 = net.clock.now - t0
        for i in range(20):
            coll.insert(doc(i))
        t1 = net.clock.now
        coll.query("//Value")
        cost25 = net.clock.now - t1
        assert cost25 > cost5


class TestBackends:
    def test_file_backend_roundtrip(self, tmp_path, net):
        coll = Collection("c", net, FileBackend(str(tmp_path)))
        key = coll.insert(doc(7))
        assert coll.read(key).text().strip() == "7"
        coll.delete(key)
        assert not coll.contains(key)

    def test_file_backend_persists_across_instances(self, tmp_path, net):
        coll = Collection("c", net, FileBackend(str(tmp_path)))
        coll.insert(doc(7), key="persisted")
        coll2 = Collection("c", net, FileBackend(str(tmp_path)))
        assert coll2.read("persisted").text().strip() == "7"

    def test_file_backend_sanitizes_keys(self, tmp_path, net):
        coll = Collection("c", net, FileBackend(str(tmp_path)))
        coll.insert(doc(1), key="a/b/../c")
        assert coll.contains("a/b/../c")

    def test_memory_backend_protocol(self):
        from repro.xmldb import Backend

        assert isinstance(MemoryBackend(), Backend)
        assert isinstance(FileBackend.__new__(FileBackend), Backend)


class TestDatabase:
    def test_collection_reuse(self, net):
        db = XmlDatabase(net)
        assert db.collection("a") is db.collection("a")
        assert db.names() == ["a"]

    def test_drop(self, net):
        db = XmlDatabase(net)
        db.collection("a").insert(doc(1))
        db.drop("a")
        assert db.names() == []
        with pytest.raises(KeyError):
            db.drop("a")

    def test_drop_charges_per_document_deletion(self, net):
        # Pre-fix: drop() wiped the backend for free.  It must route every
        # removal through Collection.delete, charging N × db_delete.
        db = XmlDatabase(net)
        for i in range(4):
            db.collection("a").insert(doc(i))
        before = net.clock.now
        db.drop("a")
        assert net.clock.now - before == pytest.approx(4 * net.costs.db_delete, abs=1e-9)

    def test_backend_factory_used(self, tmp_path, net):
        db = XmlDatabase(net, backend_factory=lambda name: FileBackend(str(tmp_path / name)))
        db.collection("x").insert(doc(1), key="k")
        assert (tmp_path / "x" / "k.xml").exists()


class TestWriteThroughCache:
    def test_read_hit_cheaper_than_miss(self, net):
        cache = WriteThroughCache(Collection("c", net))
        key = cache.insert(doc(1))
        t0 = net.clock.now
        cache.read(key)
        hit_cost = net.clock.now - t0
        assert hit_cost == pytest.approx(net.costs.cache_hit)
        assert cache.hits == 1

    def test_set_avoids_read_before_write(self, net):
        """The WSRF.NET optimization: update without a prior DB read."""
        cache = WriteThroughCache(Collection("c", net))
        key = cache.insert(doc(1))
        t0 = net.clock.now
        cache.update(key, doc(2))
        update_cost = net.clock.now - t0
        assert update_cost == pytest.approx(net.costs.db_update)

    def test_cache_returns_copies(self, net):
        cache = WriteThroughCache(Collection("c", net))
        key = cache.insert(doc(1))
        got = cache.read(key)
        got.find("{urn:c}Value").children = ["999"]
        assert cache.read(key).text().strip() == "1"

    def test_delete_evicts(self, net):
        cache = WriteThroughCache(Collection("c", net))
        key = cache.insert(doc(1))
        cache.delete(key)
        assert not cache.contains(key)
        with pytest.raises(DocumentNotFound):
            cache.read(key)

    def test_capacity_eviction(self, net):
        cache = WriteThroughCache(Collection("c", net), capacity=2)
        k1 = cache.insert(doc(1))
        cache.insert(doc(2))
        cache.insert(doc(3))  # evicts k1
        cache.read(k1)
        assert cache.misses == 1

    def test_write_through_keeps_db_fresh_for_queries(self, net):
        cache = WriteThroughCache(Collection("c", net))
        key = cache.insert(doc(1))
        cache.update(key, doc(42))
        hits = cache.query("//Value[. = 42]")
        assert len(hits) == 1
