"""Stateful property tests: the XML database against a dict model."""

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import Bundle, RuleBasedStateMachine, invariant, precondition, rule

from repro.sim import CostModel, Network
from repro.xmldb import Collection, DocumentNotFound, WriteThroughCache
from repro.xmllib import element


def doc(value: int):
    return element("{urn:t}Doc", element("{urn:t}Value", value))


class CollectionModel(RuleBasedStateMachine):
    """CRUD on a Collection must match CRUD on a dict."""

    keys = Bundle("keys")

    def __init__(self):
        super().__init__()
        self.network = Network(CostModel.free())
        self.collection = Collection("c", self.network)
        self.model: dict[str, int] = {}

    @rule(target=keys, value=st.integers(0, 999))
    def insert(self, value):
        key = self.collection.insert(doc(value))
        assert key not in self.model
        self.model[key] = value
        return key

    @rule(key=keys, value=st.integers(0, 999))
    def update(self, key, value):
        if key in self.model:
            self.collection.update(key, doc(value))
            self.model[key] = value
        else:
            try:
                self.collection.update(key, doc(value))
                raise AssertionError("update of deleted key must fail")
            except DocumentNotFound:
                pass

    @rule(key=keys)
    def read(self, key):
        if key in self.model:
            got = self.collection.read(key)
            assert int(got.text().strip()) == self.model[key]
        else:
            try:
                self.collection.read(key)
                raise AssertionError("read of deleted key must fail")
            except DocumentNotFound:
                pass

    @rule(key=keys)
    def delete(self, key):
        if key in self.model:
            self.collection.delete(key)
            del self.model[key]
        else:
            try:
                self.collection.delete(key)
                raise AssertionError("delete of deleted key must fail")
            except DocumentNotFound:
                pass

    @invariant()
    def same_keys(self):
        assert set(self.collection.keys()) == set(self.model)

    @invariant()
    def query_matches_model(self):
        hits = self.collection.query_keys("//Value[. >= 500]")
        expected = {k for k, v in self.model.items() if v >= 500}
        assert set(hits) == expected


class CachedCollectionModel(CollectionModel):
    """The write-through cache must be semantically invisible."""

    def __init__(self):
        super().__init__()
        self.collection = WriteThroughCache(Collection("c", self.network))


TestCollectionModel = CollectionModel.TestCase
TestCollectionModel.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TestCachedCollectionModel = CachedCollectionModel.TestCase
TestCachedCollectionModel.settings = TestCollectionModel.settings
