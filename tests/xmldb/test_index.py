"""Secondary indexes and the query planner.

Covers index definition and maintenance, planner shape matching, cost
accounting (O(hits) vs O(N)), and the fallback guarantee: any expression
the planner cannot cover must produce byte-identical results via the scan
path — exercised over a GiaB-style corpus under update/delete churn.
"""

import pytest

from repro.apps.giab.common import host_info
from repro.sim import CostModel, Network
from repro.xmldb import (
    Collection,
    IndexDefinitionError,
    WriteThroughCache,
    XPathIndex,
    plan_query,
)
from repro.xmllib import element, ns, serialize
from repro.xmllib.element import XmlElement
from repro.xmllib.xpath import compile_xpath, xpath_literal

G = {"g": ns.GIAB}


@pytest.fixture()
def net():
    return Network(CostModel())


@pytest.fixture()
def coll(net):
    return Collection("hosts", net)


def host_doc(name: str, apps: list[str]) -> XmlElement:
    return host_info(name, f"soap://{name}/Exec", f"soap://{name}/Data", apps)


class TestXPathIndex:
    def test_extracts_and_looks_up(self):
        index = XPathIndex("//g:Host", G)
        index.add("k1", host_doc("n1", ["sort"]))
        index.add("k2", host_doc("n2", ["sort"]))
        assert index.lookup("n1") == {"k1"}
        assert index.lookup("missing") == set()
        assert index.values() == ["n1", "n2"]

    def test_multivalued_path(self):
        index = XPathIndex("//g:Application", G)
        index.add("k1", host_doc("n1", ["sort", "blast"]))
        assert index.lookup("sort") == {"k1"}
        assert index.lookup("blast") == {"k1"}

    def test_re_add_replaces_old_values(self):
        index = XPathIndex("//g:Host", G)
        index.add("k1", host_doc("old", ["sort"]))
        index.add("k1", host_doc("new", ["sort"]))
        assert index.lookup("old") == set()
        assert index.lookup("new") == {"k1"}

    def test_discard(self):
        index = XPathIndex("//g:Host", G)
        index.add("k1", host_doc("n1", ["sort"]))
        index.discard("k1")
        assert index.lookup("n1") == set()
        assert len(index) == 0

    def test_rejects_predicate_paths(self):
        with pytest.raises(IndexDefinitionError):
            XPathIndex("//g:Host[. = 'n1']", G)

    def test_rejects_unions_and_functions(self):
        with pytest.raises(IndexDefinitionError):
            XPathIndex("//g:Host | //g:Application", G)
        with pytest.raises(IndexDefinitionError):
            XPathIndex("count(//g:Host)", G)


class TestPlanner:
    def test_plans_final_step_self_predicate(self):
        index = XPathIndex("//g:Host", G)
        plan = plan_query(compile_xpath("//g:Host[. = 'n1']", G), [index])
        assert plan is not None and plan.index is index and plan.value == "n1"

    def test_plans_child_value_predicate(self):
        index = XPathIndex("//g:HostInfo/g:Host", G)
        plan = plan_query(compile_xpath("//g:HostInfo[g:Host = 'n1']", G), [index])
        assert plan is not None and plan.value == "n1"

    def test_no_plan_without_matching_index(self):
        index = XPathIndex("//g:Application", G)
        assert plan_query(compile_xpath("//g:Host[. = 'n1']", G), [index]) is None

    def test_no_plan_for_non_equality(self):
        index = XPathIndex("//g:Host", G)
        for expr in (
            "//g:Host[contains(., 'n1')]",
            "//g:Host[1]",
            "//g:Host",
            "//g:Host[. != 'n1']",
        ):
            assert plan_query(compile_xpath(expr, G), [index]) is None, expr

    def test_xpath_literal_quoting(self):
        assert xpath_literal("plain") == "'plain'"
        assert xpath_literal("with'apostrophe") == '"with\'apostrophe"'
        assert xpath_literal("both\"'kinds") is None


class TestCollectionIndexes:
    def test_declare_is_idempotent(self, coll):
        first = coll.declare_index("//g:Host", G)
        again = coll.declare_index("//g:Host", G)
        assert again is first

    def test_declare_over_existing_contents_backfills(self, coll):
        coll.insert(host_doc("n1", ["sort"]), key="n1")
        index = coll.declare_index("//g:Host", G)
        assert index.lookup("n1") == {"n1"}

    def test_writes_maintain_index(self, coll):
        index = coll.declare_index("//g:Host", G)
        coll.insert(host_doc("n1", ["sort"]), key="k")
        coll.update("k", host_doc("n2", ["sort"]))
        assert index.lookup("n1") == set() and index.lookup("n2") == {"k"}
        coll.upsert("k2", host_doc("n3", []))
        assert index.lookup("n3") == {"k2"}
        coll.delete("k")
        assert index.lookup("n2") == set()

    def test_index_immune_to_caller_mutation(self, coll):
        index = coll.declare_index("//g:Host", G)
        doc = host_doc("n1", ["sort"])
        coll.insert(doc, key="k")
        doc.find_local("Host").children = ["mutated"]
        assert index.lookup("n1") == {"k"}
        assert index.lookup("mutated") == set()

    def test_index_values_covering_read(self, coll):
        coll.declare_index("//g:Host", G)
        for name in ("n2", "n1"):
            coll.insert(host_doc(name, []), key=name)
        assert coll.index_values("//g:Host", G) == ["n1", "n2"]
        with pytest.raises(KeyError):
            coll.index_values("//g:Application", G)

    def test_cache_passthrough(self, net):
        cache = WriteThroughCache(Collection("c", net))
        index = cache.declare_index("//g:Host", G)
        cache.insert(host_doc("n1", []), key="k")
        cache.upsert("k", host_doc("n2", []))
        assert index.lookup("n2") == {"k"}
        assert cache.find_index("//g:Host", G) is index


class TestQueryCosts:
    def _fill(self, coll, n):
        for i in range(n):
            coll.insert(host_doc(f"n{i:03d}", ["sort"]), key=f"n{i:03d}")

    def test_scan_charges_per_document(self, net, coll):
        self._fill(coll, 20)
        before = net.clock.now
        coll.query_keys("//g:Host[. = 'n007']", G)
        costs = net.costs
        assert net.clock.now - before == pytest.approx(
            costs.db_query_base + costs.db_query_per_doc * 20, abs=1e-9
        )

    def test_indexed_charges_per_hit(self, net, coll):
        coll.declare_index("//g:Host", G)
        self._fill(coll, 20)
        before = net.clock.now
        keys = coll.query_keys("//g:Host[. = 'n007']", G)
        assert keys == ["n007"]
        costs = net.costs
        assert net.clock.now - before == pytest.approx(
            costs.db_query_indexed + costs.db_query_per_doc * 1, abs=1e-9
        )

    def test_uncovered_expression_charges_scan_price(self, net, coll):
        coll.declare_index("//g:Host", G)
        self._fill(coll, 20)
        before = net.clock.now
        coll.query_keys("//g:Host[contains(., 'n00')]", G)
        costs = net.costs
        assert net.clock.now - before == pytest.approx(
            costs.db_query_base + costs.db_query_per_doc * 20, abs=1e-9
        )

    def test_writes_charge_index_maintenance(self, net, coll):
        coll.declare_index("//g:Host", G)
        coll.declare_index("//g:Application", G)
        before = net.clock.now
        coll.insert(host_doc("n1", ["sort"]), key="k")
        costs = net.costs
        assert net.clock.now - before == pytest.approx(
            costs.db_insert + 2 * costs.db_index_maintain, abs=1e-9
        )


EXPRESSIONS = (
    "//g:Host[. = 'n05']",
    "//g:HostInfo[g:Host = 'n05']",
    "//g:Application[. = 'sort']",
    "//g:Host[contains(., 'n0')]",
    "//g:Host",
)


def _snapshot(coll, expression):
    out = []
    for key, hit in coll.query(expression, G):
        node = hit.node
        image = serialize(node) if isinstance(node, XmlElement) else str(node)
        out.append((key, hit.kind, image))
    return out


class TestScanEquivalenceUnderChurn:
    """Satellite 5: indexed query() is byte-identical to the scan path
    across a GiaB corpus, including under update/delete churn."""

    def test_indexed_results_match_scan_through_churn(self):
        plain = Collection("hosts", Network(CostModel()))
        fast = Collection("hosts", Network(CostModel()))
        fast.declare_index("//g:Host", G)
        fast.declare_index("//g:HostInfo/g:Host", G)
        fast.declare_index("//g:Application", G)

        def both(op):
            op(plain)
            op(fast)

        apps = ("sort", "blast", "render")
        for i in range(12):
            doc = host_doc(f"n{i:02d}", [apps[i % 3], apps[(i + 1) % 3]])
            both(lambda c, d=doc, k=f"n{i:02d}": c.insert(d.copy(), k))
        self._assert_equivalent(plain, fast)

        # churn: rename some hosts, change applications, delete, re-insert
        both(lambda c: c.update("n05", host_doc("renamed", ["sort"])))
        both(lambda c: c.upsert("n07", host_doc("n07", ["render"])))
        both(lambda c: c.delete("n03"))
        both(lambda c: c.upsert("n03", host_doc("n03", ["blast"])))
        both(lambda c: c.delete("n09"))
        self._assert_equivalent(plain, fast)

    def _assert_equivalent(self, plain, fast):
        for expression in EXPRESSIONS:
            assert _snapshot(plain, expression) == _snapshot(fast, expression), expression
            assert plain.query_keys(expression, G) == fast.query_keys(expression, G)
