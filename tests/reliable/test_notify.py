"""ReliableNotifier: retransmission, consumer dedup, dead-lettering."""

import pytest

from repro.eventing.delivery import EventingConsumer
from repro.reliable import ReliableNotifier, RetryPolicy
from repro.sim import FaultSpec
from repro.xmllib import element

from tests.helpers import make_deployment

POLICY = RetryPolicy(max_attempts=3, base_backoff_ms=5.0, jitter_ms=0.0)


def make_rig(spec: FaultSpec | None = None):
    deployment = make_deployment()
    consumer = EventingConsumer(deployment, "consumerhost")
    if spec is not None:
        deployment.network.faults.set_default(spec)
    notifier = ReliableNotifier(deployment, POLICY)
    sender = deployment.host("senderhost")
    return deployment, consumer, notifier, sender


def payload(n: int):
    return element("{urn:test}Event", str(n))


class TestDelivery:
    def test_clean_delivery_reaches_consumer_once(self):
        _, consumer, notifier, sender = make_rig()
        assert notifier.deliver(sender, consumer.sink.address, payload(1))
        assert len(consumer.received) == 1
        assert consumer.duplicates == 0
        assert notifier.delivered == 1

    def test_injected_duplicate_is_suppressed_by_the_deduper(self):
        _, consumer, notifier, sender = make_rig(FaultSpec(duplicate_rate=1.0))
        assert notifier.deliver(sender, consumer.sink.address, payload(1))
        # The wire delivered two copies; the consumer kept one.
        assert len(consumer.received) == 1
        assert consumer.duplicates == 1

    def test_lost_notification_is_retransmitted(self):
        deployment, consumer, notifier, sender = make_rig(FaultSpec(loss_rate=0.6))
        # Seeded run: some transmissions are lost, retries recover them.
        delivered = sum(
            notifier.deliver(sender, consumer.sink.address, payload(i))
            for i in range(10)
        )
        assert delivered == notifier.delivered
        assert notifier.delivered + notifier.dead_lettered == notifier.assigned == 10
        assert len(consumer.received) == notifier.delivered
        if notifier.retransmissions:
            charged = deployment.network.metrics.time_by_category["reliable.backoff"]
            assert charged > 0

    def test_unknown_sink_dead_letters_immediately(self):
        deployment, _, notifier, sender = make_rig()
        assert not notifier.deliver(sender, "soap://nowhere/_sink/99", payload(1))
        assert notifier.dead_lettered == 1
        record = next(iter(notifier.dead_letters))
        assert record.reason == "consumer endpoint gone"
        assert record.attempts == 1
        # The shared deployment log is the default destination.
        assert deployment.dead_letters.for_destination("soap://nowhere/_sink/99")

    def test_total_loss_exhausts_and_dead_letters(self):
        _, consumer, notifier, sender = make_rig(FaultSpec(loss_rate=1.0))
        assert not notifier.deliver(sender, consumer.sink.address, payload(1))
        record = next(iter(notifier.dead_letters))
        assert record.attempts == POLICY.max_attempts
        assert "exhausted" in record.reason
        assert consumer.received == []

    def test_retransmission_does_not_stack_security_headers(self):
        from repro.container.security import SecurityMode

        signed = make_deployment(SecurityMode.X509)
        signed_consumer = EventingConsumer(signed, "consumerhost")
        creds = signed.issue_credentials("notifier", seed=130)
        signed.network.faults.set_link(
            "senderhost", "consumerhost", FaultSpec(loss_rate=0.5)
        )
        reliable = ReliableNotifier(signed, POLICY)
        ok = sum(
            reliable.deliver(
                signed.host("senderhost"),
                signed_consumer.sink.address,
                payload(i),
                creds,
            )
            for i in range(6)
        )
        # Every delivered copy passed signature verification — a stacked
        # or stale security header would have raised DsigError.
        assert len(signed_consumer.received) == ok


class TestAccounting:
    def test_ledger_closes_under_heavy_loss(self):
        _, consumer, notifier, sender = make_rig(FaultSpec.lossy(0.35))
        for i in range(25):
            notifier.deliver(sender, consumer.sink.address, payload(i))
        assert notifier.delivered + notifier.dead_lettered == 25
        assert len(consumer.received) == notifier.delivered
        assert len(notifier.dead_letters) == notifier.dead_lettered
        seq = notifier.sequence_for(consumer.sink.address)
        assert seq.outstanding == set()

    def test_same_seed_identical_outcomes(self):
        def run():
            _, consumer, notifier, sender = make_rig(FaultSpec.lossy(0.3))
            for i in range(20):
                notifier.deliver(sender, consumer.sink.address, payload(i))
            return (
                notifier.delivered,
                notifier.dead_lettered,
                notifier.retransmissions,
                consumer.duplicates,
            )

        assert run() == run()
