"""ReliableChannel: retransmission, exactly-once, dead-lettering."""

import pytest

from repro.container import (
    MessageContext,
    SecurityMode,
    ServiceSkeleton,
    SoapClient,
    web_method,
)
from repro.reliable import DeadLetterLog, ReliableChannel, RetryExhausted, RetryPolicy
from repro.sim import FaultSpec, MessageLost
from repro.soap import SoapFault
from repro.xmllib import element

from tests.helpers import make_deployment

BUMP_ACTION = "urn:test/Bump"
BOOM_ACTION = "urn:test/Boom"

#: Deterministic tests: no jitter, tiny backoff.
POLICY = RetryPolicy(max_attempts=3, base_backoff_ms=10.0, jitter_ms=0.0)


class BumpService(ServiceSkeleton):
    """Counts executions — the probe for exactly-once semantics."""

    service_name = "Bump"

    def __init__(self):
        super().__init__()
        self.calls = 0

    @web_method(BUMP_ACTION)
    def bump(self, context: MessageContext):
        self.calls += 1
        return element("{urn:test}BumpResponse", str(self.calls))

    @web_method(BOOM_ACTION)
    def boom(self, context: MessageContext):
        raise SoapFault("Server", "exploded on purpose")


def make_rig(mode=SecurityMode.NONE):
    deployment = make_deployment(mode)
    creds = deployment.issue_credentials("server", seed=120)
    container = deployment.add_container("serverhost", "App", creds)
    service = BumpService()
    container.add_service(service)
    client_creds = deployment.issue_credentials("alice", seed=121)
    client = SoapClient(deployment, "clienthost", client_creds)
    return deployment, service, client


class ReplyEater:
    """Wraps a client; lets the server execute, then eats N replies.

    Models the nasty case: the request arrived and was processed, but the
    response vanished — the retransmission must not re-execute."""

    def __init__(self, client, eat: int):
        self._client = client
        self._remaining = eat

    def __getattr__(self, name):
        return getattr(self._client, name)

    def invoke(self, *args, **kwargs):
        result = self._client.invoke(*args, **kwargs)
        if self._remaining:
            self._remaining -= 1
            raise MessageLost("reply eaten in transit")
        return result


class TestHappyPath:
    def test_clean_network_delivers_first_try(self):
        _, service, client = make_rig()
        channel = ReliableChannel(client, POLICY)
        response = channel.invoke(service.epr(), BUMP_ACTION, element("{urn:test}Bump"))
        assert response.text() == "1"
        assert channel.delivered == 1
        assert channel.retransmissions == 0
        assert not channel.dead_letters

    def test_soap_faults_pass_through_without_retry(self):
        _, service, client = make_rig()
        channel = ReliableChannel(client, POLICY)
        with pytest.raises(SoapFault):
            channel.invoke(service.epr(), BOOM_ACTION, element("{urn:test}Boom"))
        assert channel.retransmissions == 0

    def test_duck_types_the_wrapped_client(self):
        deployment, _, client = make_rig()
        channel = ReliableChannel(client, POLICY)
        assert channel.network is deployment.network
        assert channel.deployment is deployment
        assert channel.host is client.host
        assert channel.credentials is client.credentials


class TestExactlyOnce:
    def test_lost_reply_is_answered_from_cache_not_reexecuted(self):
        deployment, service, client = make_rig()
        channel = ReliableChannel(ReplyEater(client, eat=1), POLICY)
        response = channel.invoke(service.epr(), BUMP_ACTION, element("{urn:test}Bump"))
        assert response.text() == "1"
        assert service.calls == 1  # retransmission did NOT bump again
        assert channel.retransmissions == 1
        _, container = deployment.resolve(service.address)
        assert container.request_log.duplicates == 1

    def test_backoff_time_is_charged_to_its_category(self):
        deployment, service, client = make_rig()
        channel = ReliableChannel(ReplyEater(client, eat=1), POLICY)
        channel.invoke(service.epr(), BUMP_ACTION, element("{urn:test}Bump"))
        charged = deployment.network.metrics.time_by_category["reliable.backoff"]
        assert charged == pytest.approx(POLICY.backoff_ms(1))

    def test_exactly_once_under_injected_loss(self):
        deployment, service, client = make_rig()
        deployment.network.faults.set_default(FaultSpec.lossy(0.15))
        channel = ReliableChannel(client, POLICY)
        ok = dead = 0
        for _ in range(30):
            try:
                channel.invoke(service.epr(), BUMP_ACTION, element("{urn:test}Bump"))
                ok += 1
            except RetryExhausted:
                dead += 1
        # The ledger closes: every message settled, none unreported...
        assert ok + dead == 30
        assert channel.delivered == ok
        assert len(channel.dead_letters) == dead
        assert all(seq.outstanding == set() for seq in channel.sequences)
        # ...and no message executed more than once: each distinct message
        # number holds exactly one slot in the server's reply cache.  (A
        # dead-lettered message may still have executed — its replies were
        # lost — which is exactly why the sender dead-letters it.)
        _, container = deployment.resolve(service.address)
        assert service.calls == len(container.request_log)
        assert ok <= service.calls <= 30


class TestDeadLettering:
    def test_total_loss_exhausts_retries_and_records(self):
        deployment, service, client = make_rig()
        deployment.network.faults.set_default(FaultSpec(loss_rate=1.0))
        dead_letters = DeadLetterLog()
        channel = ReliableChannel(client, POLICY, dead_letters)
        with pytest.raises(RetryExhausted) as exc_info:
            channel.invoke(service.epr(), BUMP_ACTION, element("{urn:test}Bump"))
        assert len(dead_letters) == 1
        record = next(iter(dead_letters))
        assert exc_info.value.record is record
        assert record.attempts == POLICY.max_attempts
        assert record.destination == service.address
        assert record.action == BUMP_ACTION
        assert "exhausted" in record.reason
        assert service.calls == 0

    def test_retry_budget_cuts_attempts_short(self):
        deployment, service, client = make_rig()
        deployment.network.faults.set_default(FaultSpec(loss_rate=1.0))
        policy = RetryPolicy(
            max_attempts=10, base_backoff_ms=50.0, jitter_ms=0.0, retry_budget_ms=60.0
        )
        channel = ReliableChannel(client, policy)
        with pytest.raises(RetryExhausted):
            channel.invoke(service.epr(), BUMP_ACTION, element("{urn:test}Bump"))
        record = next(iter(channel.dead_letters))
        # 50ms after attempt 1 is within budget, 100ms after attempt 2 is not.
        assert record.attempts == 3
        assert "budget" in record.reason

    def test_exhaustion_is_itself_a_delivery_fault(self):
        from repro.sim import DeliveryFault

        assert issubclass(RetryExhausted, DeliveryFault)


class TestSignedMode:
    def test_retransmission_under_x509(self):
        deployment, service, client = make_rig(SecurityMode.X509)
        channel = ReliableChannel(ReplyEater(client, eat=1), POLICY)
        response = channel.invoke(service.epr(), BUMP_ACTION, element("{urn:test}Bump"))
        assert response.text() == "1"
        assert service.calls == 1
