"""RetryPolicy: backoff growth, jitter, budget."""

import random

import pytest

from repro.reliable import NO_RETRY, RetryPolicy


class TestBackoff:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base_backoff_ms=10.0, multiplier=2.0, jitter_ms=0.0)
        assert policy.backoff_ms(1) == 10.0
        assert policy.backoff_ms(2) == 20.0
        assert policy.backoff_ms(3) == 40.0

    def test_capped_at_max(self):
        policy = RetryPolicy(
            base_backoff_ms=10.0, multiplier=10.0, max_backoff_ms=50.0, jitter_ms=0.0
        )
        assert policy.backoff_ms(5) == 50.0

    def test_jitter_bounded_and_seeded(self):
        policy = RetryPolicy(base_backoff_ms=10.0, jitter_ms=4.0)
        draws = [policy.backoff_ms(1, random.Random(9)) for _ in range(10)]
        assert all(10.0 <= d <= 14.0 for d in draws)
        assert policy.backoff_ms(1, random.Random(5)) == policy.backoff_ms(
            1, random.Random(5)
        )

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_ms(0)


class TestValidationAndBudget:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_ms=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(retry_budget_ms=-5.0)

    def test_no_budget_means_always_within(self):
        assert RetryPolicy().within_budget(1e9)

    def test_budget_exhaustion(self):
        policy = RetryPolicy(retry_budget_ms=100.0)
        assert policy.within_budget(99.0)
        assert not policy.within_budget(100.0)

    def test_no_retry_preset(self):
        assert NO_RETRY.max_attempts == 1
