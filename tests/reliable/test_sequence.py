"""Sequences: numbering, dedup, ordering, and the wire header."""

from repro.reliable import (
    InboundDeduper,
    InboundRequestLog,
    InboundSequence,
    OutboundSequence,
    read_sequence_header,
    sequence_header,
)
from repro.soap.envelope import build_envelope
from repro.xmllib import element


def _stamped(identifier: str, number: int):
    return build_envelope(
        [sequence_header(identifier, number)], [element("{urn:t}Payload", str(number))]
    )


class TestOutbound:
    def test_numbers_are_sequential_from_one(self):
        seq = OutboundSequence("soap://x/svc")
        assert [seq.next_number() for _ in range(3)] == [1, 2, 3]
        assert seq.assigned == 3

    def test_identifiers_are_unique_and_fixed_width(self):
        a, b = OutboundSequence("d"), OutboundSequence("d")
        assert a.identifier != b.identifier
        assert len(a.identifier) == len(b.identifier)

    def test_outstanding_tracks_unsettled_numbers(self):
        seq = OutboundSequence("d")
        for _ in range(3):
            seq.next_number()
        seq.ack(1)
        seq.mark_dead(3)
        assert seq.outstanding == {2}
        seq.ack(2)
        assert seq.outstanding == set()


class TestInboundSequence:
    def test_suppresses_duplicates(self):
        seq = InboundSequence("urn:s")
        assert seq.receive(1, "a") == ["a"]
        assert seq.receive(1, "a") == []
        assert seq.duplicates == 1

    def test_unordered_mode_passes_gaps_through(self):
        seq = InboundSequence("urn:s")
        assert seq.receive(3, "c") == ["c"]
        assert seq.receive(1, "a") == ["a"]

    def test_ordered_mode_buffers_until_gap_fills(self):
        seq = InboundSequence("urn:s", ordered=True)
        assert seq.receive(2, "b") == []
        assert seq.buffered == 1
        assert seq.receive(3, "c") == []
        assert seq.receive(1, "a") == ["a", "b", "c"]
        assert seq.buffered == 0


class TestWireHeader:
    def test_roundtrip_composite_header(self):
        envelope = _stamped("urn:repro:seq-00000001", 7)
        assert read_sequence_header(envelope) == ("urn:repro:seq-00000001", 7)

    def test_unstamped_envelope_reads_none(self):
        envelope = build_envelope([], [element("{urn:t}Payload")])
        assert read_sequence_header(envelope) is None


class TestInboundDeduper:
    def test_stamped_traffic_deduplicates_per_sequence(self):
        deduper = InboundDeduper()
        first = _stamped("urn:a", 1)
        assert deduper.admit(first) == [first]
        assert deduper.admit(_stamped("urn:a", 1)) == []
        # Same number on a different sequence is a different message.
        other = _stamped("urn:b", 1)
        assert deduper.admit(other) == [other]
        assert deduper.duplicates == 1

    def test_unstamped_traffic_passes_through(self):
        deduper = InboundDeduper()
        envelope = build_envelope([], [element("{urn:t}Payload")])
        assert deduper.admit(envelope) == [envelope]
        assert deduper.admit(envelope) == [envelope]
        assert deduper.duplicates == 0

    def test_ordered_deduper_releases_in_order(self):
        deduper = InboundDeduper(ordered=True)
        assert deduper.admit(_stamped("urn:a", 2)) == []
        released = deduper.admit(_stamped("urn:a", 1))
        numbers = [env.body_child().text() for env in released]
        assert numbers == ["1", "2"]


class TestInboundRequestLog:
    def test_first_sight_misses_then_replays(self):
        log = InboundRequestLog()
        key = ("urn:a", 1)
        assert log.replay(key) is None
        log.store(key, "reply-bytes")
        assert log.replay(key) == "reply-bytes"
        assert log.replay(key) == "reply-bytes"
        assert log.duplicates == 2
        assert len(log) == 1
