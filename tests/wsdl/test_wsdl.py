"""WSDL generation, parsing, and the §2.3 typing contrast."""

import pytest

from repro.wsdl import (
    WsdlDescription,
    elementspec_to_xsd,
    generate_wsdl,
    parse_wsdl,
    xsd_to_elementspec,
)
from repro.xmllib import ElementSpec, QName, SchemaError, element, parse_xml, serialize

from tests.helpers import make_client, make_deployment, server_container


def counter_spec() -> ElementSpec:
    return ElementSpec(
        tag=QName("urn:c", "Counter"),
        required_attributes=(QName("", "id"),),
        children={
            QName("urn:c", "Value"): (
                ElementSpec(QName("urn:c", "Value"), text_type="int"),
                1,
                1,
            ),
            QName("urn:c", "Note"): (None, 0, None),
        },
    )


class TestXsdRoundTrip:
    def test_complex_type_roundtrip(self):
        spec = counter_spec()
        again = xsd_to_elementspec(parse_xml(serialize(elementspec_to_xsd(spec))))
        assert again.tag == spec.tag
        assert set(again.children) == set(spec.children)
        value_spec, lo, hi = again.children[QName("urn:c", "Value")]
        assert (lo, hi) == (1, 1)
        assert value_spec.text_type == "int"
        assert again.children[QName("urn:c", "Note")][2] is None  # unbounded
        assert QName("", "id") in again.required_attributes

    def test_simple_type_roundtrip(self):
        spec = ElementSpec(QName("urn:c", "Value"), text_type="boolean")
        again = xsd_to_elementspec(parse_xml(serialize(elementspec_to_xsd(spec))))
        assert again.text_type == "boolean"
        assert not again.children

    def test_open_content_roundtrip(self):
        spec = ElementSpec(QName("urn:c", "Bag"), open_content=True)
        again = xsd_to_elementspec(parse_xml(serialize(elementspec_to_xsd(spec))))
        assert again.open_content

    def test_non_element_rejected(self):
        with pytest.raises(ValueError, match="not an xsd:element"):
            xsd_to_elementspec(element("junk"))

    def test_roundtripped_schema_still_validates(self):
        spec = counter_spec()
        again = xsd_to_elementspec(parse_xml(serialize(elementspec_to_xsd(spec))))
        good = element(
            "{urn:c}Counter", element("{urn:c}Value", "3"), attrs={"id": "c1"}
        )
        again.validate(good)
        with pytest.raises(SchemaError):
            again.validate(element("{urn:c}Counter", attrs={"id": "c1"}))


@pytest.fixture()
def deployed():
    """A WSRF counter (typed) and a WS-Transfer counter (untyped)."""
    from repro.apps.counter import CounterScenario, build_transfer_rig, build_wsrf_rig
    from repro.xmllib import ns

    wsrf = build_wsrf_rig(CounterScenario())
    wsrf.service.advertised_schemas = []
    wsrf.service.advertised_schemas.append(
        ElementSpec(
            tag=QName(ns.COUNTER, "Counter"),
            children={
                QName(ns.COUNTER, "Value"): (
                    ElementSpec(QName(ns.COUNTER, "Value"), text_type="int"), 1, 1
                )
            },
        )
    )
    transfer = build_transfer_rig(CounterScenario())
    return wsrf, transfer


class TestGeneration:
    def test_wsrf_contract_carries_types(self, deployed):
        wsrf, _ = deployed
        description = parse_wsdl(parse_xml(serialize(generate_wsdl(wsrf.service))))
        assert not description.untyped
        assert description.schema_for(QName("http://repro.example.org/counter", "Counter"))

    def test_transfer_contract_is_untyped(self, deployed):
        """"In WS-Transfer, only an <XSD:any> tag exists" — the generated
        contract shows exactly that."""
        _, transfer = deployed
        description = parse_wsdl(parse_xml(serialize(generate_wsdl(transfer.service))))
        assert description.untyped
        assert description.schemas == []

    def test_operations_carry_actions(self, deployed):
        wsrf, transfer = deployed
        wsrf_desc = parse_wsdl(generate_wsdl(wsrf.service))
        assert wsrf_desc.action_supported("http://repro.example.org/counter/Create")
        transfer_desc = parse_wsdl(generate_wsdl(transfer.service))
        assert transfer_desc.action_supported(
            "http://schemas.xmlsoap.org/ws/2004/09/transfer/Get"
        )

    def test_address_published(self, deployed):
        wsrf, _ = deployed
        description = parse_wsdl(generate_wsdl(wsrf.service))
        assert description.address == wsrf.service.address

    def test_not_wsdl_rejected(self):
        with pytest.raises(ValueError, match="not a WSDL"):
            parse_wsdl(element("other"))


class TestClientSideUse:
    def test_typed_contract_catches_bad_body(self, deployed):
        """A WSDL-aware client rejects a malformed representation before
        it ever reaches the wire."""
        from repro.xmllib import ns

        wsrf, _ = deployed
        description = parse_wsdl(generate_wsdl(wsrf.service))
        good = element(
            f"{{{ns.COUNTER}}}Counter", element(f"{{{ns.COUNTER}}}Value", "3")
        )
        description.validate_body(good)
        bad = element(
            f"{{{ns.COUNTER}}}Counter", element(f"{{{ns.COUNTER}}}Value", "three")
        )
        with pytest.raises(SchemaError):
            description.validate_body(bad)

    def test_untyped_contract_catches_nothing(self, deployed):
        """The WS-Transfer hole: garbage sails through client-side checks
        and becomes a run-time surprise."""
        _, transfer = deployed
        description = parse_wsdl(generate_wsdl(transfer.service))
        description.validate_body(element("{urn:junk}Whatever", "zzz"))  # no error!

    def test_unknown_action_refused_before_wire(self, deployed):
        wsrf, _ = deployed
        description = parse_wsdl(generate_wsdl(wsrf.service))
        assert not description.action_supported("urn:not-an-operation")
