"""Generated proxies: one method per WSDL operation, contract-checked."""

import pytest

from repro.apps.counter import CounterScenario, build_transfer_rig, build_wsrf_rig
from repro.soap import SoapFault
from repro.wsdl import generate_proxy, generate_wsdl, parse_wsdl
from repro.xmllib import ElementSpec, QName, SchemaError, element, ns


@pytest.fixture()
def wsrf():
    rig = build_wsrf_rig(CounterScenario())
    rig.service.advertised_schemas = [
        ElementSpec(
            tag=QName(ns.COUNTER, "Create"),
            children={QName(ns.COUNTER, "Initial"): (
                ElementSpec(QName(ns.COUNTER, "Initial"), text_type="int"), 0, 1
            )},
        )
    ]
    description = parse_wsdl(generate_wsdl(rig.service))
    proxy_class = generate_proxy(description)
    return rig, description, proxy_class(rig.client.soap, description)


@pytest.fixture()
def transfer():
    rig = build_transfer_rig(CounterScenario())
    description = parse_wsdl(generate_wsdl(rig.service))
    proxy_class = generate_proxy(description)
    return rig, description, proxy_class(rig.client.soap, description)


class TestGeneratedShape:
    def test_methods_per_operation(self, wsrf):
        _, description, proxy = wsrf
        assert hasattr(proxy, "create")
        assert hasattr(proxy, "get_resource_property")
        assert hasattr(proxy, "set_resource_properties")
        assert hasattr(proxy, "destroy")

    def test_transfer_proxy_has_crud(self, transfer):
        _, _, proxy = transfer
        for method in ("create", "get", "put", "delete"):
            assert hasattr(proxy, method)

    def test_method_docstrings_carry_actions(self, wsrf):
        _, _, proxy = wsrf
        assert "Action" in type(proxy).create.__doc__ or "action" in type(proxy).create.__doc__


class TestGeneratedBehaviour:
    def test_wsrf_roundtrip_through_proxy(self, wsrf):
        from repro.addressing import EndpointReference

        rig, _, proxy = wsrf
        response = proxy.create(
            element(f"{{{ns.COUNTER}}}Create", element(f"{{{ns.COUNTER}}}Initial", 4))
        )
        counter = EndpointReference.from_xml(next(response.element_children()))
        got = proxy.get_resource_property(
            element(f"{{{ns.WSRF_RP}}}GetResourceProperty", "Value"), resource=counter
        )
        assert got.find(f"{{{ns.COUNTER}}}Value").text() == "4"
        proxy.destroy(element(f"{{{ns.WSRF_RL}}}Destroy"), resource=counter)
        with pytest.raises(SoapFault):
            proxy.get_resource_property(
                element(f"{{{ns.WSRF_RP}}}GetResourceProperty", "Value"), resource=counter
            )

    def test_typed_proxy_rejects_bad_body_before_wire(self, wsrf):
        rig, deployment_desc, proxy = wsrf
        messages_before = rig.deployment.network.metrics.total_messages
        with pytest.raises(SchemaError):
            proxy.create(
                element(f"{{{ns.COUNTER}}}Create", element(f"{{{ns.COUNTER}}}Initial", "NaN"))
            )
        assert rig.deployment.network.metrics.total_messages == messages_before

    def test_untyped_proxy_sends_garbage_and_learns_at_runtime(self, transfer):
        """The WS-Transfer contract can't stop a bad body client-side; the
        failure arrives from the service instead."""
        rig, description, proxy = transfer
        assert description.untyped
        with pytest.raises(SoapFault):
            proxy.put(element(f"{{{ns.WXF}}}Put"))  # missing representation

    def test_transfer_proxy_crud_roundtrip(self, transfer):
        from repro.addressing import EndpointReference
        from repro.apps.counter.transfer_service import counter_representation

        rig, _, proxy = transfer
        response = proxy.create(element(f"{{{ns.WXF}}}Create", counter_representation(2)))
        created = response.find(f"{{{ns.WXF}}}ResourceCreated")
        epr = EndpointReference.from_xml(created.find_local("EndpointReference"))
        got = proxy.get(element(f"{{{ns.WXF}}}Get"), resource=epr)
        assert "2" in got.text()
