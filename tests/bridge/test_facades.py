"""Stack-switching facades: unmodified clients drive the other stack."""

import pytest

from repro.apps.counter import (
    CounterScenario,
    TransferCounterClient,
    WsrfCounterClient,
    build_transfer_rig,
    build_wsrf_rig,
)
from repro.bridge import COUNTER_MAPPING, TransferFacadeService, WsrfFacadeService
from repro.soap import SoapFault


@pytest.fixture()
def wsrf_over_transfer():
    """A WSRF facade on a second host, backed by the WS-Transfer counter."""
    rig = build_transfer_rig(CounterScenario())
    container = rig.deployment.add_container(
        "gateway-host", "Gateway",
        rig.deployment.issue_credentials("gateway", seed=501),
    )
    facade = WsrfFacadeService(rig.service.address, COUNTER_MAPPING)
    container.add_service(facade)
    wsrf_client = WsrfCounterClient(rig.client.soap, facade.address)
    return rig, facade, wsrf_client


@pytest.fixture()
def transfer_over_wsrf():
    """A WS-Transfer facade backed by the WSRF counter."""
    rig = build_wsrf_rig(CounterScenario())
    container = rig.deployment.add_container(
        "gateway-host", "Gateway",
        rig.deployment.issue_credentials("gateway", seed=502),
    )
    facade = TransferFacadeService(rig.service.address, COUNTER_MAPPING)
    container.add_service(facade)
    transfer_client = TransferCounterClient(rig.client.soap, facade.address)
    return rig, facade, transfer_client


class TestWsrfClientOverTransferService:
    def test_full_lifecycle(self, wsrf_over_transfer):
        rig, facade, client = wsrf_over_transfer
        counter = client.create(initial=4)
        assert client.get(counter) == 4
        client.set(counter, 11)
        assert client.get(counter) == 11
        client.destroy(counter)
        with pytest.raises(SoapFault):
            client.get(counter)

    def test_state_actually_lives_on_backing_service(self, wsrf_over_transfer):
        rig, facade, client = wsrf_over_transfer
        counter = client.create(initial=1)
        client.set(counter, 9)
        # Read through the native WS-Transfer client:
        from repro.transfer.service import TRANSFER_RESOURCE_ID
        from repro.wsrf.resource import RESOURCE_ID

        key = counter.property(RESOURCE_ID)
        native_epr = rig.client.service_epr.with_property(TRANSFER_RESOURCE_ID, key)
        assert rig.client.get(native_epr) == 9

    def test_unknown_property_faults(self, wsrf_over_transfer):
        from repro.wsrf.properties import actions as rp_actions
        from repro.xmllib import element, ns

        rig, facade, client = wsrf_over_transfer
        counter = client.create()
        with pytest.raises(SoapFault, match="no ResourceProperty"):
            client.soap.invoke(
                counter, rp_actions.GET,
                element(f"{{{ns.WSRF_RP}}}GetResourceProperty", "Bogus"),
            )

    def test_set_costs_two_backing_calls(self, wsrf_over_transfer):
        """Bridged Set = backing Get + backing Put: switching is not free."""
        rig, facade, client = wsrf_over_transfer
        counter = client.create()
        metrics = rig.deployment.network.metrics
        metrics.begin("bridged-set", rig.deployment.network.clock.now)
        client.set(counter, 5)
        trace = metrics.end(rig.deployment.network.clock.now)
        assert trace.messages == 6  # client↔facade + facade↔backing ×2


class TestTransferClientOverWsrfService:
    def test_full_lifecycle(self, transfer_over_wsrf):
        rig, facade, client = transfer_over_wsrf
        counter = client.create(initial=4)
        assert client.get(counter) == 4
        client.set(counter, 11)
        assert client.get(counter) == 11
        client.delete(counter)
        with pytest.raises(SoapFault):
            client.get(counter)

    def test_state_lives_on_wsrf_backing(self, transfer_over_wsrf):
        rig, facade, client = transfer_over_wsrf
        counter = client.create(initial=2)
        client.set(counter, 7)
        from repro.transfer.service import TRANSFER_RESOURCE_ID

        key = counter.property(TRANSFER_RESOURCE_ID)
        native_epr = rig.service.resource_epr(key)
        assert rig.client.get(native_epr) == 7

    def test_put_without_mapped_properties_faults(self, transfer_over_wsrf):
        from repro.transfer.service import actions as wxf_actions
        from repro.xmllib import element, ns

        rig, facade, client = transfer_over_wsrf
        counter = client.create()
        with pytest.raises(SoapFault, match="no mapped properties"):
            client.soap.invoke(
                counter, wxf_actions.PUT,
                element(f"{{{ns.WXF}}}Put", element("{urn:other}Thing", "x")),
            )


class TestSwitchingObservations:
    def test_bridged_call_slower_than_native(self, wsrf_over_transfer):
        """The facade adds a full signed hop per operation."""
        rig, facade, bridged_client = wsrf_over_transfer
        network = rig.deployment.network
        native_counter = rig.client.create(0)
        bridged_counter = bridged_client.create(0)

        t0 = network.clock.now
        rig.client.get(native_counter)
        native = network.clock.now - t0
        t1 = network.clock.now
        bridged_client.get(bridged_counter)
        bridged = network.clock.now - t1
        assert bridged > 1.5 * native
