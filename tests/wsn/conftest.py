"""A notification-producing sensor service for the WSN tests."""

from __future__ import annotations

import pytest

from repro.container import MessageContext, web_method
from repro.wsn import NotificationConsumer, SubscriptionManagerService
from repro.wsn.base import NotificationProducerMixin
from repro.wsrf import ResourceHome, WsResourceService
from repro.xmllib import element, text_of

from tests.helpers import make_client, make_deployment, server_container

NS = "urn:test:sensor"
EMIT = f"{NS}/Emit"


class SensorService(NotificationProducerMixin, WsResourceService):
    """Emits a reading on a topic when poked (service-level producer)."""

    service_name = "Sensor"
    resource_ns = NS

    @web_method(EMIT)
    def emit(self, context: MessageContext):
        topic = text_of(context.body.find_local("Topic"), "readings")
        value = text_of(context.body.find_local("Value"), "0")
        delivered = self.notify(topic, element(f"{{{NS}}}Reading", value))
        return element(f"{{{NS}}}EmitResponse", str(delivered))


@pytest.fixture()
def rig():
    deployment = make_deployment()
    container = server_container(deployment)
    manager = SubscriptionManagerService(ResourceHome("subs", deployment.network))
    container.add_service(manager)
    sensor = SensorService(ResourceHome("sensor", deployment.network))
    sensor.subscription_manager = manager
    container.add_service(sensor)
    client = make_client(deployment)
    consumer = NotificationConsumer(deployment, "client")
    return deployment, sensor, manager, client, consumer


def subscribe(client, sensor, consumer, topic="readings", dialect=None, selector="", termination="", use_raw=False):
    from repro.wsn.base import actions
    from repro.wsn.topics import TopicDialect
    from repro.xmllib import ns

    body = element(
        f"{{{ns.WSNT}}}Subscribe",
        consumer.epr.to_xml(f"{{{ns.WSNT}}}ConsumerReference"),
        element(
            f"{{{ns.WSNT}}}TopicExpression",
            topic,
            attrs={"Dialect": (dialect or TopicDialect.CONCRETE).value},
        ),
    )
    if selector:
        body.append(element(f"{{{ns.WSNT}}}Selector", selector))
    if termination:
        body.append(element(f"{{{ns.WSNT}}}InitialTerminationTime", termination))
    if use_raw:
        body.append(element(f"{{{ns.WSNT}}}UseRaw", "true"))
    response = client.invoke(sensor.epr(), actions.SUBSCRIBE, body)
    from repro.addressing import EndpointReference

    return EndpointReference.from_xml(next(response.element_children()))


def emit(client, sensor, topic="readings", value="1"):
    response = client.invoke(
        sensor.epr(),
        EMIT,
        element(f"{{{NS}}}Emit", element(f"{{{NS}}}Topic", topic), element(f"{{{NS}}}Value", value)),
    )
    return int(response.text())
