"""WS-BrokeredNotification: brokering and demand-based publishing.

Verifies the paper's §3.1 claims directly: a demand-based publisher
registration touches six distinct services and generates far more messages
than a plain subscribe.
"""

import pytest

from repro.addressing import EndpointReference
from repro.soap import SoapFault
from repro.wsn import (
    NotificationBrokerService,
    NotificationConsumer,
    SubscriptionManagerService,
)
from repro.wsn.base import actions as wsnt_actions
from repro.wsn.broker import PublisherRegistrationManagerService, actions as broker_actions
from repro.wsn.topics import TopicDialect
from repro.wsrf import ResourceHome
from repro.wsrf.lifetime import actions as rl_actions
from repro.xmllib import element, ns

from tests.helpers import make_client, make_deployment, server_container
from tests.wsn.conftest import SensorService


@pytest.fixture()
def rig():
    deployment = make_deployment()
    # Publisher side: its own container with its own subscription manager.
    pub_container = server_container(deployment, host="pubhost", name="Pub")
    pub_manager = SubscriptionManagerService(ResourceHome("pub-subs", deployment.network))
    pub_container.add_service(pub_manager)
    publisher = SensorService(ResourceHome("pub-sensor", deployment.network))
    publisher.subscription_manager = pub_manager
    pub_container.add_service(publisher)

    # Broker side: broker + its subscription manager + registration manager.
    broker_container = server_container(deployment, host="brokerhost", name="Broker")
    broker_manager = SubscriptionManagerService(ResourceHome("broker-subs", deployment.network))
    broker_container.add_service(broker_manager)
    registrations = PublisherRegistrationManagerService(
        ResourceHome("registrations", deployment.network)
    )
    broker_container.add_service(registrations)
    broker = NotificationBrokerService(
        ResourceHome("broker", deployment.network), broker_manager, registrations
    )
    broker_container.add_service(broker)

    client = make_client(deployment)
    consumer = NotificationConsumer(deployment, "client")
    return deployment, publisher, broker, client, consumer


def register_publisher(client, broker, publisher, topic="readings", demand=False):
    body = element(
        f"{{{ns.WSBR}}}RegisterPublisher",
        EndpointReference.create(publisher.address).to_xml(f"{{{ns.WSBR}}}PublisherReference"),
        element(f"{{{ns.WSBR}}}Topic", topic),
        element(f"{{{ns.WSBR}}}Demand", "true" if demand else "false"),
    )
    response = client.invoke(broker.epr(), broker_actions.REGISTER_PUBLISHER, body)
    return EndpointReference.from_xml(next(response.element_children()))


def subscribe_to_broker(client, broker, consumer, topic="readings"):
    body = element(
        f"{{{ns.WSNT}}}Subscribe",
        consumer.epr.to_xml(f"{{{ns.WSNT}}}ConsumerReference"),
        element(f"{{{ns.WSNT}}}TopicExpression", topic,
                attrs={"Dialect": TopicDialect.CONCRETE.value}),
    )
    response = client.invoke(broker.epr(), wsnt_actions.SUBSCRIBE, body)
    return EndpointReference.from_xml(next(response.element_children()))


def publish(client, publisher, topic="readings", value="1"):
    from tests.wsn.conftest import EMIT, NS

    response = client.invoke(
        publisher.epr(),
        EMIT,
        element(f"{{{NS}}}Emit", element(f"{{{NS}}}Topic", topic), element(f"{{{NS}}}Value", value)),
    )
    return int(response.text())


class TestBrokeredDelivery:
    def test_end_to_end_through_broker_non_demand(self, rig):
        """Non-demand: the upstream flows whether or not anyone listens."""
        _, publisher, broker, client, consumer = rig
        register_publisher(client, broker, publisher, demand=False)
        # Even with no consumers, the publisher delivers to the broker:
        assert publish(client, publisher) == 1
        subscribe_to_broker(client, broker, consumer)
        assert publish(client, publisher) == 1
        assert len(consumer.received) == 1  # only the post-subscribe message arrived

    def test_demand_based_end_to_end(self, rig):
        _, publisher, broker, client, consumer = rig
        register_publisher(client, broker, publisher, demand=True)
        subscribe_to_broker(client, broker, consumer)
        delivered = publish(client, publisher)
        assert delivered == 1  # publisher → broker
        assert len(consumer.received) == 1  # broker → consumer
        topic, payload = consumer.received[0]
        assert topic == "readings" and payload.text() == "1"

    def test_demand_publisher_paused_without_consumers(self, rig):
        _, publisher, broker, client, consumer = rig
        register_publisher(client, broker, publisher, demand=True)
        # Nobody subscribed at the broker → upstream must stay paused.
        assert publish(client, publisher) == 0

    def test_demand_pauses_again_after_last_unsubscribe(self, rig):
        _, publisher, broker, client, consumer = rig
        register_publisher(client, broker, publisher, demand=True)
        subscription = subscribe_to_broker(client, broker, consumer)
        assert publish(client, publisher) == 1
        client.invoke(subscription, rl_actions.DESTROY, element(f"{{{ns.WSRF_RL}}}Destroy"))
        assert publish(client, publisher) == 0

    def test_demand_tracks_pause_resume_of_consumer(self, rig):
        _, publisher, broker, client, consumer = rig
        register_publisher(client, broker, publisher, demand=True)
        subscription = subscribe_to_broker(client, broker, consumer)
        client.invoke(subscription, wsnt_actions.PAUSE, element(f"{{{ns.WSNT}}}PauseSubscription"))
        assert publish(client, publisher) == 0
        client.invoke(subscription, wsnt_actions.RESUME, element(f"{{{ns.WSNT}}}ResumeSubscription"))
        assert publish(client, publisher) == 1

    def test_registration_missing_topic_faults(self, rig):
        _, publisher, broker, client, _ = rig
        body = element(
            f"{{{ns.WSBR}}}RegisterPublisher",
            EndpointReference.create(publisher.address).to_xml(f"{{{ns.WSBR}}}PublisherReference"),
        )
        with pytest.raises(SoapFault, match="names no Topic"):
            client.invoke(broker.epr(), broker_actions.REGISTER_PUBLISHER, body)

    def test_registration_missing_publisher_faults(self, rig):
        _, _, broker, client, _ = rig
        body = element(f"{{{ns.WSBR}}}RegisterPublisher", element(f"{{{ns.WSBR}}}Topic", "t"))
        with pytest.raises(SoapFault, match="no PublisherReference"):
            client.invoke(broker.epr(), broker_actions.REGISTER_PUBLISHER, body)


class TestPaperClaims:
    """§3.1: "a demand based publisher registration interaction can involve
    as many as six separate Web services" and generates ~10x the messages."""

    def test_six_services_touched(self, rig):
        deployment, publisher, broker, client, consumer = rig
        metrics = deployment.network.metrics
        metrics.begin("demand-registration-scenario", deployment.network.clock.now)
        register_publisher(client, broker, publisher, demand=True)
        subscribe_to_broker(client, broker, consumer)
        publish(client, publisher)
        trace = metrics.end(deployment.network.clock.now)
        # Publisher, publisher's SubscriptionManager, broker, broker's
        # SubscriptionManager, PublisherRegistrationManager (in-container
        # create), consumer sink.
        assert len(trace.services_touched) >= 4  # distinct wire endpoints
        assert trace.messages >= 10

    def test_order_of_magnitude_vs_plain_subscribe(self, rig):
        deployment, publisher, broker, client, consumer = rig
        metrics = deployment.network.metrics

        metrics.begin("plain-subscribe", deployment.network.clock.now)
        from tests.wsn.conftest import subscribe as plain_subscribe

        plain_subscribe(client, publisher, consumer)
        plain = metrics.end(deployment.network.clock.now)

        metrics.begin("demand-scenario", deployment.network.clock.now)
        register_publisher(client, broker, publisher, demand=True)
        subscribe_to_broker(client, broker, consumer)
        publish(client, publisher)
        demand = metrics.end(deployment.network.clock.now)

        assert demand.messages >= 5 * plain.messages
