"""Producer-declared topic sets: advertisement and subscribe validation."""

import pytest

from repro.soap import SoapFault
from repro.wsn import NotificationConsumer, SubscriptionManagerService
from repro.wsn.topics import TopicDialect
from repro.wsrf import ResourceHome
from repro.wsrf.properties import actions as rp_actions
from repro.xmllib import element, ns

from tests.helpers import make_client, make_deployment, server_container
from tests.wsn.conftest import SensorService, emit, subscribe


class DeclaredSensor(SensorService):
    service_name = "DeclaredSensor"
    supported_topics = ("sensor/temp", "sensor/fan", "alerts")


@pytest.fixture()
def rig():
    deployment = make_deployment()
    container = server_container(deployment)
    manager = SubscriptionManagerService(ResourceHome("subs", deployment.network))
    container.add_service(manager)
    sensor = DeclaredSensor(ResourceHome("sensor", deployment.network))
    sensor.subscription_manager = manager
    container.add_service(sensor)
    client = make_client(deployment)
    consumer = NotificationConsumer(deployment, "client")
    return deployment, sensor, manager, client, consumer


class TestTopicSetValidation:
    def test_subscribe_to_declared_topic_works(self, rig):
        _, sensor, _, client, consumer = rig
        subscribe(client, sensor, consumer, topic="sensor/temp")
        assert emit(client, sensor, topic="sensor/temp") == 1

    def test_subscribe_to_undeclared_topic_refused(self, rig):
        _, sensor, _, client, consumer = rig
        with pytest.raises(SoapFault, match="selects none"):
            subscribe(client, sensor, consumer, topic="weather/rain")

    def test_wildcard_matching_some_declared_topic_accepted(self, rig):
        _, sensor, _, client, consumer = rig
        subscribe(client, sensor, consumer, topic="sensor/*", dialect=TopicDialect.FULL)
        assert emit(client, sensor, topic="sensor/fan") == 1

    def test_wildcard_matching_nothing_refused(self, rig):
        _, sensor, _, client, consumer = rig
        with pytest.raises(SoapFault, match="selects none"):
            subscribe(client, sensor, consumer, topic="weather//*", dialect=TopicDialect.FULL)

    def test_undeclared_producer_accepts_anything(self, rig):
        deployment, _, manager, client, consumer = rig
        container = server_container(deployment, host="open-host")
        open_sensor = SensorService(ResourceHome("open-sensor", deployment.network))
        open_sensor.subscription_manager = manager
        container.add_service(open_sensor)
        subscribe(client, open_sensor, consumer, topic="anything/at/all")


class TestTopicSetAdvertisement:
    def test_topic_set_rp_lists_declared_topics(self, rig):
        """Consumers discover the tree via GetResourceProperty(TopicSet)."""
        from repro.wsrf import ResourcePropertiesMixin

        deployment, sensor, _, client, _ = rig

        class RpSensor(ResourcePropertiesMixin, DeclaredSensor):
            service_name = "RpSensor"

        container = server_container(deployment, host="rp-host")
        rp_sensor = RpSensor(ResourceHome("rp-sensor", deployment.network))
        rp_sensor.subscription_manager = sensor.subscription_manager
        container.add_service(rp_sensor)
        resource = rp_sensor.create_resource()
        response = client.invoke(
            resource,
            rp_actions.GET,
            element(f"{{{ns.WSRF_RP}}}GetResourceProperty", "TopicSet"),
        )
        topic_set = response.find(f"{{{ns.WSTOP}}}TopicSet")
        topics = [t.text().strip() for t in topic_set.element_children()]
        assert topics == ["sensor/temp", "sensor/fan", "alerts"]
