"""Precondition filters: subscriptions gated on producer Resource Properties."""

import pytest

from repro.wsn import NotificationConsumer, SubscriptionManagerService
from repro.wsn.base import NotificationProducerMixin, actions
from repro.wsn.topics import TopicDialect
from repro.wsrf import (
    ResourceField,
    ResourceHome,
    ResourcePropertiesMixin,
    WsResourceService,
    resource_property,
)
from repro.container import MessageContext, web_method
from repro.xmllib import element, ns, text_of

from tests.helpers import make_client, make_deployment, server_container

NS = "urn:test:gauge"
POKE = f"{NS}/Poke"


class GaugeService(
    NotificationProducerMixin, ResourcePropertiesMixin, WsResourceService
):
    """A producer whose RP 'Level' gates notifications."""

    service_name = "Gauge"
    resource_ns = NS

    level = ResourceField(int, 0)

    @resource_property(f"{{{NS}}}Level")
    def rp_level(self):
        return self.level

    @web_method(POKE)
    def poke(self, context: MessageContext):
        self.level = int(text_of(context.body.find_local("Level"), "0"))
        self.save_current()
        delivered = self.notify(
            "gauge/changed",
            element(f"{{{NS}}}Changed", self.level),
            resource_key=self.current_resource,
        )
        return element(f"{{{NS}}}PokeResponse", str(delivered))


@pytest.fixture()
def rig():
    deployment = make_deployment()
    container = server_container(deployment)
    manager = SubscriptionManagerService(ResourceHome("subs", deployment.network))
    container.add_service(manager)
    gauge = GaugeService(ResourceHome("gauge", deployment.network))
    gauge.subscription_manager = manager
    container.add_service(gauge)
    client = make_client(deployment)
    consumer = NotificationConsumer(deployment, "client")
    resource = gauge.create_resource()
    return deployment, gauge, client, consumer, resource


def subscribe(client, gauge, resource, consumer, precondition=""):
    body = element(
        f"{{{ns.WSNT}}}Subscribe",
        consumer.epr.to_xml(f"{{{ns.WSNT}}}ConsumerReference"),
        element(f"{{{ns.WSNT}}}TopicExpression", "gauge/changed",
                attrs={"Dialect": TopicDialect.CONCRETE.value}),
    )
    if precondition:
        body.append(element(f"{{{ns.WSNT}}}Precondition", precondition))
    client.invoke(resource, actions.SUBSCRIBE, body)


def poke(client, resource, level):
    response = client.invoke(
        resource, POKE, element(f"{{{NS}}}Poke", element(f"{{{NS}}}Level", level))
    )
    return int(response.text())


class TestPreconditionFilters:
    def test_precondition_gates_on_producer_state(self, rig):
        _, gauge, client, consumer, resource = rig
        subscribe(client, gauge, resource, consumer, precondition="//Level[. > 50]")
        assert poke(client, resource, 10) == 0
        assert poke(client, resource, 90) == 1
        assert len(consumer.received) == 1

    def test_no_precondition_always_delivers(self, rig):
        _, gauge, client, consumer, resource = rig
        subscribe(client, gauge, resource, consumer)
        assert poke(client, resource, 1) == 1

    def test_precondition_and_selector_combine(self, rig):
        _, gauge, client, consumer, resource = rig
        body = element(
            f"{{{ns.WSNT}}}Subscribe",
            consumer.epr.to_xml(f"{{{ns.WSNT}}}ConsumerReference"),
            element(f"{{{ns.WSNT}}}TopicExpression", "gauge/changed",
                    attrs={"Dialect": TopicDialect.CONCRETE.value}),
            element(f"{{{ns.WSNT}}}Selector", "//Changed[. != 77]"),
            element(f"{{{ns.WSNT}}}Precondition", "//Level[. > 50]"),
        )
        client.invoke(resource, actions.SUBSCRIBE, body)
        assert poke(client, resource, 40) == 0   # precondition fails
        assert poke(client, resource, 77) == 0   # selector fails
        assert poke(client, resource, 88) == 1   # both pass

    def test_invalid_precondition_never_matches(self, rig):
        _, gauge, client, consumer, resource = rig
        subscribe(client, gauge, resource, consumer, precondition="//Level[")
        assert poke(client, resource, 99) == 0
