"""WS-BaseNotification end-to-end: subscribe, notify, pause, unsubscribe."""

import pytest

from repro.soap import SoapFault
from repro.wsn.base import actions
from repro.wsn.topics import TopicDialect
from repro.wsrf.lifetime import actions as rl_actions
from repro.xmllib import element, ns

from tests.wsn.conftest import NS, emit, subscribe


class TestSubscribeNotify:
    def test_notification_reaches_consumer(self, rig):
        _, sensor, _, client, consumer = rig
        subscribe(client, sensor, consumer)
        delivered = emit(client, sensor, value="42")
        assert delivered == 1
        assert len(consumer.received) == 1
        topic, payload = consumer.received[0]
        assert topic == "readings"
        assert payload.tag.local == "Reading"
        assert payload.text() == "42"

    def test_no_subscription_no_delivery(self, rig):
        _, sensor, _, client, consumer = rig
        assert emit(client, sensor) == 0
        assert consumer.received == []

    def test_topic_mismatch_filtered(self, rig):
        _, sensor, _, client, consumer = rig
        subscribe(client, sensor, consumer, topic="alerts")
        assert emit(client, sensor, topic="readings") == 0

    def test_wildcard_topic_subscription(self, rig):
        _, sensor, _, client, consumer = rig
        subscribe(client, sensor, consumer, topic="sensor//overheat", dialect=TopicDialect.FULL)
        assert emit(client, sensor, topic="sensor/rack4/overheat") == 1

    def test_content_selector(self, rig):
        _, sensor, _, client, consumer = rig
        subscribe(client, sensor, consumer, selector="//Reading[. > 10]")
        assert emit(client, sensor, value="5") == 0
        assert emit(client, sensor, value="15") == 1

    def test_multiple_consumers(self, rig):
        from repro.wsn import NotificationConsumer

        deployment, sensor, _, client, consumer = rig
        other = NotificationConsumer(deployment, "client", kind="tcp-receiver")
        subscribe(client, sensor, consumer)
        subscribe(client, sensor, other)
        assert emit(client, sensor) == 2
        assert len(consumer.received) == 1 and len(other.received) == 1

    def test_wrapped_message_structure(self, rig):
        """Messages travel inside <Notify>/<NotificationMessage> by default."""
        deployment, sensor, _, client, consumer = rig
        captured = []
        sink = deployment.add_sink("client", lambda env: captured.append(env))
        from repro.addressing import EndpointReference
        from repro.wsn.base import SubscriptionView  # noqa: F401 (doc import)

        body = element(
            f"{{{ns.WSNT}}}Subscribe",
            EndpointReference.create(sink.address).to_xml(f"{{{ns.WSNT}}}ConsumerReference"),
            element(f"{{{ns.WSNT}}}TopicExpression", "readings",
                    attrs={"Dialect": TopicDialect.CONCRETE.value}),
        )
        client.invoke(sensor.epr(), actions.SUBSCRIBE, body)
        emit(client, sensor)
        envelope = captured[0]
        notify = envelope.body_child()
        assert notify.tag.local == "Notify"
        message = notify.find(f"{{{ns.WSNT}}}NotificationMessage")
        assert message.find(f"{{{ns.WSNT}}}Topic") is not None
        assert message.find(f"{{{ns.WSNT}}}ProducerReference") is not None

    def test_raw_delivery(self, rig):
        _, sensor, _, client, consumer = rig
        subscribe(client, sensor, consumer, use_raw=True)
        emit(client, sensor, value="7")
        topic, payload = consumer.received[0]
        assert topic == ""  # raw messages carry no topic wrapper
        assert payload.text() == "7"

    def test_subscribe_requires_consumer_reference(self, rig):
        _, sensor, _, client, _ = rig
        with pytest.raises(SoapFault, match="no ConsumerReference"):
            client.invoke(sensor.epr(), actions.SUBSCRIBE, element(f"{{{ns.WSNT}}}Subscribe"))

    def test_bad_dialect_faults(self, rig):
        from repro.addressing import EndpointReference

        _, sensor, _, client, consumer = rig
        body = element(
            f"{{{ns.WSNT}}}Subscribe",
            consumer.epr.to_xml(f"{{{ns.WSNT}}}ConsumerReference"),
            element(f"{{{ns.WSNT}}}TopicExpression", "x", attrs={"Dialect": "urn:bogus"}),
        )
        with pytest.raises(SoapFault, match="unknown topic dialect"):
            client.invoke(sensor.epr(), actions.SUBSCRIBE, body)


class TestSubscriptionManagement:
    def test_pause_and_resume(self, rig):
        _, sensor, _, client, consumer = rig
        subscription = subscribe(client, sensor, consumer)
        client.invoke(subscription, actions.PAUSE, element(f"{{{ns.WSNT}}}PauseSubscription"))
        assert emit(client, sensor) == 0
        client.invoke(subscription, actions.RESUME, element(f"{{{ns.WSNT}}}ResumeSubscription"))
        assert emit(client, sensor) == 1

    def test_unsubscribe_via_destroy(self, rig):
        _, sensor, _, client, consumer = rig
        subscription = subscribe(client, sensor, consumer)
        client.invoke(subscription, rl_actions.DESTROY, element(f"{{{ns.WSRF_RL}}}Destroy"))
        assert emit(client, sensor) == 0

    def test_initial_termination_time_expires_subscription(self, rig):
        deployment, sensor, _, client, consumer = rig
        deadline = deployment.network.clock.now + 5000
        subscribe(client, sensor, consumer, termination=repr(deadline))
        assert emit(client, sensor) == 1
        deployment.network.clock.advance_to(deadline + 1)
        assert emit(client, sensor) == 0

    def test_renew_via_set_termination_time(self, rig):
        deployment, sensor, _, client, consumer = rig
        deadline = deployment.network.clock.now + 5000
        subscription = subscribe(client, sensor, consumer, termination=repr(deadline))
        client.invoke(
            subscription,
            rl_actions.SET_TERMINATION_TIME,
            element(
                f"{{{ns.WSRF_RL}}}SetTerminationTime",
                element(f"{{{ns.WSRF_RL}}}RequestedTerminationTime", repr(deadline + 50_000)),
            ),
        )
        deployment.network.clock.advance_to(deadline + 100)
        assert emit(client, sensor) == 1

    def test_subscription_rps(self, rig):
        from repro.wsrf.properties import actions as rp_actions

        _, sensor, _, client, consumer = rig
        subscription = subscribe(client, sensor, consumer)
        response = client.invoke(
            subscription,
            rp_actions.GET,
            element(f"{{{ns.WSRF_RP}}}GetResourceProperty", "ConsumerReference"),
        )
        assert consumer.epr.address in response.text()

    def test_dropped_consumer_does_not_break_producer(self, rig):
        """Failure injection: the consumer sink disappears."""
        deployment, sensor, _, client, consumer = rig
        subscribe(client, sensor, consumer)
        deployment._sinks.clear()  # consumer process dies
        assert emit(client, sensor) == 0  # dropped, not raised


class TestPerResourceSubscriptions:
    def test_subscription_bound_to_resource(self, rig):
        """WSN subscriptions attach to a WS-Resource, not just the service."""
        _, sensor, manager, client, consumer = rig
        epr_a = sensor.create_resource()
        from repro.wsrf import RESOURCE_ID

        key_a = epr_a.property(RESOURCE_ID)
        from repro.addressing import EndpointReference

        body = element(
            f"{{{ns.WSNT}}}Subscribe",
            consumer.epr.to_xml(f"{{{ns.WSNT}}}ConsumerReference"),
            element(f"{{{ns.WSNT}}}TopicExpression", "readings",
                    attrs={"Dialect": TopicDialect.CONCRETE.value}),
        )
        client.invoke(epr_a, actions.SUBSCRIBE, body)
        # Notification for a different resource is filtered out:
        assert sensor.notify("readings", element(f"{{{NS}}}Reading", "1"), resource_key="other") == 0
        assert sensor.notify("readings", element(f"{{{NS}}}Reading", "1"), resource_key=key_a) == 1
