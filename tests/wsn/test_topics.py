"""WS-Topics dialect matching, with property-based checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wsn import TopicDialect, topic_matches


class TestSimpleDialect:
    def test_matches_root_topic_only(self):
        assert topic_matches("job", TopicDialect.SIMPLE, "job")
        assert not topic_matches("job", TopicDialect.SIMPLE, "job/status")
        assert not topic_matches("job", TopicDialect.SIMPLE, "other")

    def test_empty_topic_never_matches(self):
        assert not topic_matches("job", TopicDialect.SIMPLE, "")


class TestConcreteDialect:
    def test_exact_path(self):
        assert topic_matches("job/status/done", TopicDialect.CONCRETE, "job/status/done")
        assert not topic_matches("job/status", TopicDialect.CONCRETE, "job/status/done")
        assert not topic_matches("job/status/done", TopicDialect.CONCRETE, "job/status")

    def test_leading_trailing_slashes_tolerated(self):
        assert topic_matches("/job/status/", TopicDialect.CONCRETE, "job/status")


class TestFullDialect:
    def test_star_matches_exactly_one_level(self):
        assert topic_matches("job/*/done", TopicDialect.FULL, "job/status/done")
        assert not topic_matches("job/*/done", TopicDialect.FULL, "job/done")
        assert not topic_matches("job/*/done", TopicDialect.FULL, "job/a/b/done")

    def test_double_slash_matches_any_depth(self):
        assert topic_matches("job//done", TopicDialect.FULL, "job/done")
        assert topic_matches("job//done", TopicDialect.FULL, "job/status/done")
        assert topic_matches("job//done", TopicDialect.FULL, "job/a/b/c/done")
        assert not topic_matches("job//done", TopicDialect.FULL, "job/status")

    def test_leading_double_slash(self):
        assert topic_matches("//done", TopicDialect.FULL, "done")
        assert topic_matches("//done", TopicDialect.FULL, "job/status/done")

    def test_plain_path_in_full_dialect(self):
        assert topic_matches("job/status", TopicDialect.FULL, "job/status")
        assert not topic_matches("job/status", TopicDialect.FULL, "job")

    def test_star_tail(self):
        assert topic_matches("job/*", TopicDialect.FULL, "job/anything")
        assert not topic_matches("job/*", TopicDialect.FULL, "job")


class TestDialectParsing:
    def test_from_uri_roundtrip(self):
        for dialect in TopicDialect:
            assert TopicDialect.from_uri(dialect.value) is dialect

    def test_unknown_uri_rejected(self):
        with pytest.raises(ValueError, match="unknown topic dialect"):
            TopicDialect.from_uri("urn:mystery")


_segment = st.from_regex(r"[a-z][a-z0-9]{0,5}", fullmatch=True)
_path = st.lists(_segment, min_size=1, max_size=4).map("/".join)


class TestProperties:
    @given(_path)
    @settings(max_examples=80, deadline=None)
    def test_concrete_self_match(self, path):
        assert topic_matches(path, TopicDialect.CONCRETE, path)
        assert topic_matches(path, TopicDialect.FULL, path)

    @given(_path, _segment)
    @settings(max_examples=80, deadline=None)
    def test_extension_breaks_concrete(self, path, extra):
        assert not topic_matches(path, TopicDialect.CONCRETE, f"{path}/{extra}")

    @given(_path)
    @settings(max_examples=80, deadline=None)
    def test_double_slash_prefix_matches_any_suffix_of_itself(self, path):
        segments = path.split("/")
        assert topic_matches(f"//{segments[-1]}", TopicDialect.FULL, path)

    @given(_path)
    @settings(max_examples=80, deadline=None)
    def test_star_per_segment_matches(self, path):
        pattern = "/".join("*" for _ in path.split("/"))
        assert topic_matches(pattern, TopicDialect.FULL, path)
