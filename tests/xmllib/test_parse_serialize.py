"""Parsing + serialization round-trips, including property-based coverage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmllib import XmlParseError, canonicalize, element, parse_xml, serialize
from repro.xmllib.element import XmlElement


class TestParse:
    def test_simple_document(self):
        root = parse_xml('<a xmlns="urn:x"><b>hi</b></a>')
        assert root.tag.namespace == "urn:x"
        assert root.find("{urn:x}b").text() == "hi"

    def test_prefixed_attributes(self):
        root = parse_xml('<a xmlns:p="urn:p" p:x="1" y="2"/>')
        assert root.get("{urn:p}x") == "1"
        assert root.get("y") == "2"

    def test_mixed_content_preserved(self):
        root = parse_xml("<a>one<b/>two</a>")
        assert root.text() == "onetwo"
        assert [c for c in root.children if isinstance(c, str)] == ["one", "two"]

    def test_bytes_input(self):
        assert parse_xml(b"<a>x</a>").text() == "x"

    def test_malformed_raises(self):
        with pytest.raises(XmlParseError):
            parse_xml("<a><b></a>")

    def test_entity_unescaping(self):
        root = parse_xml("<a>&lt;tag&gt; &amp; more</a>")
        assert root.text() == "<tag> & more"


class TestSerialize:
    def test_roundtrip_simple(self):
        original = element("{urn:x}a", element("{urn:x}b", "hi"), attrs={"id": "1"})
        again = parse_xml(serialize(original))
        assert original.structurally_equal(again)

    def test_namespaces_declared_once_at_root(self):
        tree = element("{urn:x}a", element("{urn:y}b", element("{urn:y}c")))
        text = serialize(tree)
        assert text.count('xmlns:') == 2

    def test_preferred_prefixes_used(self):
        from repro.xmllib import ns

        text = serialize(element(f"{{{ns.SOAP}}}Envelope"))
        assert "soap:Envelope" in text

    def test_special_characters_escaped(self):
        tree = element("a", '<&>"', attrs={"attr": 'va"l<'})
        again = parse_xml(serialize(tree))
        assert again.text() == '<&>"'
        assert again.get("attr") == 'va"l<'

    def test_xml_declaration(self):
        assert serialize(element("a"), xml_declaration=True).startswith("<?xml")


# --- property-based round-trip ------------------------------------------

_name = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,8}", fullmatch=True)
_nsuri = st.sampled_from(["", "urn:one", "urn:two", "http://x/y"])
_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc"), blacklist_characters="\r"),
    max_size=20,
).filter(lambda s: s.strip() == s or not s)


def _qname(draw):
    uri = draw(_nsuri)
    local = draw(_name)
    return f"{{{uri}}}{local}" if uri else local


@st.composite
def xml_trees(draw, depth: int = 3) -> XmlElement:
    tag = _qname(draw)
    node = XmlElement(tag)
    n_attrs = draw(st.integers(0, 3))
    for _ in range(n_attrs):
        node.set(_qname(draw), draw(_text))
    n_children = draw(st.integers(0, 3)) if depth > 0 else 0
    for _ in range(n_children):
        if draw(st.booleans()):
            node.append(draw(xml_trees(depth=depth - 1)))
        else:
            node.append(draw(_text))
    return node


class TestPropertyRoundTrip:
    @given(xml_trees())
    @settings(max_examples=120, deadline=None)
    def test_serialize_parse_roundtrip(self, tree):
        again = parse_xml(serialize(tree))
        assert tree.structurally_equal(again)

    @given(xml_trees())
    @settings(max_examples=120, deadline=None)
    def test_canonical_form_stable_across_reparse(self, tree):
        """c14n(tree) must equal c14n(parse(serialize(tree))) — the property
        that makes signature verification possible after transport."""
        again = parse_xml(serialize(tree))
        assert canonicalize(tree) == canonicalize(again)

    @given(xml_trees())
    @settings(max_examples=80, deadline=None)
    def test_canonicalization_idempotent(self, tree):
        once = canonicalize(tree)
        assert canonicalize(parse_xml(once)) == once
