"""Unit tests for the XPath-lite engine."""

import pytest

from repro.xmllib import XPath, XPathError, parse_xml, xpath_matches, xpath_select

DOC = """
<catalog xmlns="urn:shop" xmlns:m="urn:meta">
  <book id="b1" m:lang="en">
    <title>Dune</title>
    <price>9.99</price>
    <author>Herbert</author>
  </book>
  <book id="b2">
    <title>Accelerando</title>
    <price>4.50</price>
    <author>Stross</author>
  </book>
  <dvd id="d1">
    <title>Alien</title>
    <price>12.00</price>
  </dvd>
</catalog>
"""


@pytest.fixture()
def doc():
    return parse_xml(DOC)


class TestPaths:
    def test_child_path(self, doc):
        assert len(xpath_select(doc, "book")) == 2

    def test_absolute_path(self, doc):
        assert len(xpath_select(doc, "/catalog/book")) == 2

    def test_absolute_path_wrong_root(self, doc):
        assert xpath_select(doc, "/nothing/book") == []

    def test_descendant_axis(self, doc):
        titles = xpath_select(doc, "//title")
        assert [t.string_value() for t in titles] == ["Dune", "Accelerando", "Alien"]

    def test_descendant_midpath(self, doc):
        assert len(xpath_select(doc, "/catalog//price")) == 3

    def test_wildcard(self, doc):
        assert len(xpath_select(doc, "*")) == 3

    def test_dot_and_dotdot(self, doc):
        sel = xpath_select(doc, "book/.")
        assert len(sel) == 2
        up = xpath_select(doc, "book/..")
        assert len(up) == 1 and up[0].node.tag.local == "catalog"

    def test_text_nodes(self, doc):
        texts = xpath_select(doc, "book/title/text()")
        assert [t.string_value() for t in texts] == ["Dune", "Accelerando"]

    def test_union(self, doc):
        sel = xpath_select(doc, "book | dvd")
        assert len(sel) == 3

    def test_prefixed_name_test(self, doc):
        sel = xpath_select(doc, "s:book", prefixes={"s": "urn:shop"})
        assert len(sel) == 2

    def test_prefixed_name_test_wrong_namespace(self, doc):
        assert xpath_select(doc, "w:book", prefixes={"w": "urn:wrong"}) == []

    def test_default_prefix_binding_pins_namespace(self, doc):
        assert len(xpath_select(doc, "book", prefixes={"": "urn:shop"})) == 2
        assert xpath_select(doc, "book", prefixes={"": "urn:wrong"}) == []

    def test_undeclared_prefix_raises(self, doc):
        with pytest.raises(XPathError):
            xpath_select(doc, "nope:book")


class TestAttributes:
    def test_attribute_select(self, doc):
        ids = xpath_select(doc, "book/@id")
        assert [a.string_value() for a in ids] == ["b1", "b2"]

    def test_attribute_wildcard(self, doc):
        attrs = xpath_select(doc, "book[1]/@*")
        assert len(attrs) == 2

    def test_namespaced_attribute(self, doc):
        sel = xpath_select(doc, "book/@m:lang", prefixes={"m": "urn:meta"})
        assert [a.string_value() for a in sel] == ["en"]


class TestPredicates:
    def test_position_predicate(self, doc):
        sel = xpath_select(doc, "book[2]/title")
        assert sel[0].string_value() == "Accelerando"

    def test_attribute_equality(self, doc):
        sel = xpath_select(doc, "book[@id='b2']/author")
        assert sel[0].string_value() == "Stross"

    def test_child_text_equality(self, doc):
        sel = xpath_select(doc, "book[title='Dune']/@id")
        assert sel[0].string_value() == "b1"

    def test_numeric_comparison(self, doc):
        sel = xpath_select(doc, "book[price < 5]/title")
        assert [s.string_value() for s in sel] == ["Accelerando"]

    def test_existence_predicate(self, doc):
        assert len(xpath_select(doc, "*[author]")) == 2

    def test_and_or(self, doc):
        sel = xpath_select(doc, "book[price > 1 and @id='b1']")
        assert len(sel) == 1
        sel = xpath_select(doc, "*[author='Stross' or title='Alien']")
        assert len(sel) == 2

    def test_position_function(self, doc):
        sel = xpath_select(doc, "book[position()=last()]")
        assert sel[0].node.get("id") == "b2"

    def test_chained_predicates(self, doc):
        sel = xpath_select(doc, "book[price > 1][1]")
        assert sel[0].node.get("id") == "b1"


class TestFunctions:
    def test_count(self, doc):
        assert XPath("count(book)").evaluate(doc) == 2.0

    def test_contains(self, doc):
        assert xpath_matches(doc, "contains(book[1]/title, 'un')")
        assert not xpath_matches(doc, "contains(book[1]/title, 'zz')")

    def test_starts_with(self, doc):
        assert xpath_matches(doc, "starts-with(dvd/title, 'Al')")

    def test_not(self, doc):
        assert xpath_matches(doc, "not(missing)")

    def test_local_name(self, doc):
        assert XPath("local-name(*)").evaluate(doc) == "book"

    def test_string_number_boolean(self, doc):
        assert XPath("string(book[1]/price)").evaluate(doc) == "9.99"
        assert XPath("number(book[2]/price)").evaluate(doc) == 4.5
        assert XPath("boolean(dvd)").evaluate(doc) is True

    def test_concat_and_length(self, doc):
        assert XPath("concat('a', 'b', 'c')").evaluate(doc) == "abc"
        assert XPath("string-length('four')").evaluate(doc) == 4.0

    def test_normalize_space(self, doc):
        assert XPath("normalize-space('  a   b ')").evaluate(doc) == "a b"

    def test_unknown_function_raises(self, doc):
        with pytest.raises(XPathError):
            XPath("frobnicate(x)").evaluate(doc)


class TestMatchesAndErrors:
    def test_matches_empty_nodeset_false(self, doc):
        assert not xpath_matches(doc, "nonexistent")

    def test_matches_nonempty_true(self, doc):
        assert xpath_matches(doc, "book")

    def test_select_on_boolean_result_raises(self, doc):
        with pytest.raises(XPathError):
            XPath("true()").select(doc)

    def test_syntax_error(self):
        with pytest.raises(XPathError):
            XPath("book[")

    def test_trailing_garbage(self):
        with pytest.raises(XPathError):
            XPath("book )")

    def test_union_of_non_paths_rejected(self):
        with pytest.raises(XPathError):
            XPath("'a' | 'b'")
