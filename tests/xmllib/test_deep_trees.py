"""Depth regression: every tree walker must survive ~1500-deep documents.

Before the iterative rewrites (ISSUE 9), ``parse._convert``,
``serialize._write``, ``serialize.collect_namespaces``, ``c14n._write`` and
``Span.walk`` were recursive and blew the interpreter stack somewhere past
~1000 levels.  These tests build pathological chains well beyond the default
recursion limit and exercise each walker end to end.
"""

from __future__ import annotations

import sys

import pytest

from repro.sim.metrics import SpanRecorder
from repro.xmllib import parse_xml, serialize
from repro.xmllib.c14n import canonicalize
from repro.xmllib.element import XmlElement, content_key, element

DEPTH = 1500


def chain(depth: int = DEPTH) -> XmlElement:
    """A chain of nested elements, built bottom-up, with a leaf payload."""
    node = element("{urn:deep}leaf", "payload")
    for _ in range(depth):
        node = element("{urn:deep}level", node)
    return node


@pytest.fixture(scope="module")
def deep() -> XmlElement:
    root = chain()
    assert DEPTH > sys.getrecursionlimit()
    return root


class TestDeepWalkers:
    def test_serialize_and_parse_round_trip(self, deep):
        text = serialize(deep, xml_declaration=True)
        reparsed = parse_xml(text)
        assert reparsed.structurally_equal(deep)

    def test_canonicalize(self, deep):
        canonical = canonicalize(deep)
        assert canonical.count("<c0:level") == DEPTH
        assert canonicalize(parse_xml(serialize(deep))) == canonical

    def test_content_key_and_copy(self, deep):
        twin = deep.copy()
        assert content_key(twin) == content_key(deep)

    def test_text_and_descendants(self, deep):
        assert deep.text() == "payload"
        count = sum(1 for _ in deep.descendants())
        assert count == DEPTH  # DEPTH - 1 levels below root, plus the leaf

    def test_structural_equality_detects_deep_difference(self, deep):
        other = chain()
        assert deep.structurally_equal(other)
        leaf = other
        while leaf.children and isinstance(leaf.children[0], XmlElement):
            leaf = leaf.children[0]
        leaf.set("changed", "1")
        assert not deep.structurally_equal(other)

    def test_mutating_the_leaf_invalidates_the_whole_chain(self, deep):
        before = content_key(deep)
        leaf = deep
        while leaf.children and isinstance(leaf.children[0], XmlElement):
            leaf = leaf.children[0]
        leaf.append("x")
        assert content_key(deep) != before
        leaf.children.pop()

    def test_span_walk(self):
        recorder = SpanRecorder()
        for i in range(DEPTH):
            recorder.push("level", float(i))
        for i in range(DEPTH):
            recorder.pop(float(DEPTH + i))
        root = recorder.roots[0]
        walked = list(root.walk())
        assert len(walked) == DEPTH
        assert walked[-1][0] == DEPTH - 1
        assert len(root.tree()) == DEPTH
