"""Differential testing of the XPath engine against a brute-force oracle.

For a restricted grammar (child/descendant name steps, wildcards, attribute
leaf) we can enumerate matches by exhaustive tree walking; the engine must
agree on arbitrary generated documents and paths.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmllib import XmlElement, xpath_select
from repro.xmllib.element import element

_names = ("a", "b", "c")


@st.composite
def trees(draw, depth: int = 3) -> XmlElement:
    node = element(draw(st.sampled_from(_names)))
    if draw(st.booleans()):
        node.set(draw(st.sampled_from(("id", "x"))), draw(st.sampled_from(("1", "2"))))
    if depth > 0:
        for _ in range(draw(st.integers(0, 3))):
            node.append(draw(trees(depth=depth - 1)))
    return node


@st.composite
def simple_paths(draw) -> list[tuple[str, str]]:
    """A list of (axis, nodetest) steps: axis in {child, descendant}."""
    steps = []
    for _ in range(draw(st.integers(1, 3))):
        axis = draw(st.sampled_from(("child", "descendant")))
        test = draw(st.sampled_from(_names + ("*",)))
        steps.append((axis, test))
    return steps


def render(steps: list[tuple[str, str]]) -> str:
    out = []
    for axis, test in steps:
        out.append(("//" if axis == "descendant" else "/") + test)
    text = "".join(out)
    return text.lstrip("/") if text.startswith("/") and not text.startswith("//") else text


def oracle_select(root: XmlElement, steps: list[tuple[str, str]]) -> list[XmlElement]:
    current = [root]
    first = True
    for axis, test in steps:
        gathered: list[XmlElement] = []
        for node in current:
            if axis == "child":
                candidates = list(node.element_children())
            elif first:
                # A *leading* "//x" runs from the document node above the
                # root element, so the root itself is a candidate.
                candidates = [node] + list(node.descendants())
            else:
                # Mid-path "x//y" selects strict descendants: y must be a
                # child of x or deeper, never x itself.
                candidates = list(node.descendants())
            for candidate in candidates:
                if test == "*" or candidate.tag.local == test:
                    if candidate not in gathered:
                        gathered.append(candidate)
        current = gathered
        first = False
    # Node-sets are document-ordered; the gathering above is parent-major.
    positions = {id(root): 0}
    for index, node in enumerate(root.descendants(), start=1):
        positions[id(node)] = index
    current.sort(key=lambda n: positions[id(n)])
    return current


class TestAgainstOracle:
    @given(trees(), simple_paths())
    @settings(max_examples=150, deadline=None)
    def test_engine_matches_oracle(self, tree, steps):
        expression = render(steps)
        engine = [r.node for r in xpath_select(tree, expression)]
        expected = oracle_select(tree, steps)
        assert len(engine) == len(expected)
        for a, b in zip(engine, expected):
            assert a is b

    @given(trees())
    @settings(max_examples=60, deadline=None)
    def test_double_slash_star_is_all_descendants_and_self(self, tree):
        hits = [r.node for r in xpath_select(tree, "//*")]
        expected = [tree] + list(tree.descendants())
        assert hits == expected

    @given(trees())
    @settings(max_examples=60, deadline=None)
    def test_child_star_is_element_children(self, tree):
        hits = [r.node for r in xpath_select(tree, "*")]
        assert hits == list(tree.element_children())

    @given(trees())
    @settings(max_examples=60, deadline=None)
    def test_count_agrees_with_selection(self, tree):
        from repro.xmllib.xpath import XPath

        assert XPath("count(//a)").evaluate(tree) == float(
            len(xpath_select(tree, "//a"))
        )
