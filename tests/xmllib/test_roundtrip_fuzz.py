"""Canonical-form fuzz: ``canonicalize(parse_xml(serialize(t))) == canonicalize(t)``.

This is the property the message path's wall-clock fast paths lean on
(DESIGN.md §16): a received tree — whether re-parsed from the wire bytes
or materialized as a verified deep copy — must canonicalize to the same
bytes as the tree that was sent, or signatures would break in transit.
The fuzz sweeps seeded random documents plus the known hazard corners:
mixed content (text interleaved with elements), namespaces used only by
attributes, and CR/TAB characters inside attribute values, which must
survive as character references rather than being whitespace-normalized
away by the receiving parser.

Seeded ``random.Random`` throughout — a failure prints its seed and the
document regenerates from it exactly.
"""

from __future__ import annotations

import random

from repro.testkit.generator import HOSTILE_TEXT, random_xml_element
from repro.xmllib import element, parse_xml, serialize
from repro.xmllib.c14n import canonicalize
from repro.xmllib.memo import caching_disabled


def round_trips(tree) -> bool:
    return canonicalize(parse_xml(serialize(tree))) == canonicalize(tree)


class TestCanonicalRoundTripFuzz:
    def test_seeded_generator_sweep(self):
        for seed in range(250):
            tree = random_xml_element(random.Random(20_000 + seed))
            wire = serialize(tree)
            assert canonicalize(parse_xml(wire)) == canonicalize(tree), (
                f"seed {seed}:\n{wire}"
            )

    def test_sweep_agrees_with_uncached_canonicalizer(self):
        # The same property must hold with every cache disabled, and the
        # cached and uncached canonical bytes must be identical.
        for seed in range(40):
            tree = random_xml_element(random.Random(21_000 + seed))
            cached = canonicalize(tree)
            assert canonicalize(parse_xml(serialize(tree))) == cached
            with caching_disabled():
                assert canonicalize(tree) == cached

    def test_mixed_content(self):
        rng = random.Random(4242)
        for _ in range(60):
            children = []
            for _ in range(rng.randrange(1, 6)):
                children.append(rng.choice(["alpha ", "\n", "x<y&z", "  "]))
                children.append(element("{urn:mix}i", str(rng.randrange(9))))
            children.append("tail\r\n")
            tree = element("{urn:mix}p", *children)
            assert round_trips(tree)

    def test_attribute_only_namespaces(self):
        # The attribute's namespace is the only use of urn:attr-only in the
        # document; prefix allocation and c14n must both still cover it.
        tree = element("plain", element("child", "x"))
        tree.set("{urn:attr-only}marker", "1")
        tree.children[0].set("{urn:attr-only-2}other", "2")
        assert round_trips(tree)
        canonical = canonicalize(tree)
        assert "urn:attr-only" in canonical and "urn:attr-only-2" in canonical

    def test_cr_and_tab_in_attribute_values(self):
        for hostile in ["a\rb", "a\tb", "a\nb", "\r\t\n", "mixed \r tab\t"]:
            tree = element("{urn:h}probe", "body")
            tree.set("{urn:h}value", hostile)
            reparsed = parse_xml(serialize(tree))
            assert reparsed.get("{urn:h}value") == hostile
            assert canonicalize(reparsed) == canonicalize(tree)

    def test_hostile_text_corpus(self):
        for hostile in HOSTILE_TEXT:
            tree = element("probe", hostile, element("sep"), hostile)
            assert round_trips(tree)
