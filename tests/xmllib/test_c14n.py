"""Unit tests for exclusive-style canonicalization."""

from repro.xmllib import canonicalize, element, parse_xml


class TestCanonicalForm:
    def test_attributes_sorted(self):
        one = element("a", attrs={"z": "1", "b": "2"})
        two = element("a", attrs={"b": "2", "z": "1"})
        assert canonicalize(one) == canonicalize(two)
        text = canonicalize(one)
        assert text.index('b="2"') < text.index('z="1"')

    def test_empty_element_uses_start_end_pair(self):
        assert canonicalize(element("a")) == "<a></a>"

    def test_prefix_independent_of_source_prefix(self):
        one = parse_xml('<p:a xmlns:p="urn:x"/>')
        two = parse_xml('<q:a xmlns:q="urn:x"/>')
        assert canonicalize(one) == canonicalize(two)

    def test_namespace_declared_where_first_used(self):
        tree = element("a", element("{urn:x}b"), element("{urn:x}c"))
        text = canonicalize(tree)
        # Both children declare the namespace (exclusive style: at point of use)
        assert text.count('xmlns:c0="urn:x"') == 2

    def test_no_redeclaration_below_ancestor(self):
        tree = element("{urn:x}a", element("{urn:x}b"))
        text = canonicalize(tree)
        assert text.count("xmlns:c0") == 1

    def test_text_escaping_canonical(self):
        tree = element("a", 'x < y & "z"')
        assert canonicalize(tree) == '<a>x &lt; y &amp; "z"</a>'

    def test_carriage_return_normalized(self):
        tree = element("a")
        tree.children = ["line\rline"]
        assert "&#xD;" in canonicalize(tree)

    def test_attr_newline_escaped(self):
        tree = element("a", attrs={"k": "v\n2"})
        assert "&#xA;" in canonicalize(tree)

    def test_structural_equality_implies_canonical_equality(self):
        one = parse_xml('<a xmlns="urn:n"><b attr="1">t</b></a>')
        two = parse_xml('<x:a xmlns:x="urn:n"><x:b attr="1">t</x:b></x:a>')
        assert one.structurally_equal(two)
        assert canonicalize(one) == canonicalize(two)

    def test_different_content_differs(self):
        assert canonicalize(element("a", "1")) != canonicalize(element("a", "2"))
