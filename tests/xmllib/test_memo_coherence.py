"""Mutation-safe memoization: cached bytes must never go stale.

The element tree carries a version counter that every mutation bumps (and
propagates to all ancestors), and the c14n/DSig caches key on the
content key derived from it.  These tests pin the contract from both
sides: version bookkeeping at the unit level, and a seeded property test
asserting that *any* mutation after a cached ``canonicalize()`` /
``sign_element()`` produces output byte-identical to ground truth —
the same computation run under :func:`caching_disabled` on a fresh deep
copy — including mutations made through aliased child references.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto import CertificateAuthority, DsigError, sign_element, verify_element
from repro.xmllib import QName
from repro.xmllib.c14n import canonicalize
from repro.xmllib.element import XmlElement, content_key, element
from repro.xmllib.memo import caching_disabled


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority.create(seed=7)


@pytest.fixture(scope="module")
def identity(ca):
    return ca.issue_identity("alice", seed=11)


class TestVersionCounter:
    def test_append_bumps_self_and_ancestors(self):
        child = element("{u}child")
        root = element("{u}root", child)
        before_root, before_child = root.version, child.version
        child.append("text")
        assert child.version > before_child
        assert root.version > before_root

    def test_attribute_set_bumps(self):
        root = element("{u}root")
        before = root.version
        root.set("{u}attr", "v")
        assert root.version > before

    def test_children_reassignment_bumps(self):
        root = element("{u}root", element("{u}old"))
        before = root.version
        root.children = [element("{u}new")]
        assert root.version > before

    def test_children_inplace_ops_bump(self):
        root = element("{u}root")
        v0 = root.version
        root.children += [element("{u}a")]
        v1 = root.version
        assert v1 > v0
        root.children.insert(0, "lead")
        v2 = root.version
        assert v2 > v1
        root.children.pop()
        assert root.version > v2

    def test_attrs_dict_mutators_bump(self):
        root = element("{u}root", attrs={"a": "1"})
        v0 = root.version
        root.attributes.update({QName.parse("b"): "2"})
        v1 = root.version
        assert v1 > v0
        root.attributes.pop(next(iter(root.attributes)))
        assert root.version > v1

    def test_content_key_changes_on_mutation(self):
        root = element("{u}root", element("{u}child", "x"))
        key = content_key(root)
        assert content_key(root) == key  # memoized, stable
        root.children[0].set("id", "1")
        assert content_key(root) != key

    def test_mutation_via_aliased_reference_invalidates(self):
        shared = element("{u}shared", "payload")
        root = element("{u}root", shared)
        key = content_key(root)
        alias = root.children[0]
        assert alias is shared
        alias.append("more")
        assert content_key(root) != key


def random_tree(rng: random.Random, depth: int = 0) -> XmlElement:
    """A small random tree mixing namespaces, attributes and text."""
    ns = rng.choice(["urn:a", "urn:b", ""])
    node = element(f"{{{ns}}}n{rng.randrange(4)}" if ns else f"n{rng.randrange(4)}")
    for _ in range(rng.randrange(3)):
        node.set(
            rng.choice(["k", "{urn:attr}k", "id"]) + str(rng.randrange(3)),
            f"v{rng.randrange(10)}",
        )
    for _ in range(rng.randrange(4) if depth < 3 else 0):
        if rng.random() < 0.4:
            node.append(f"text{rng.randrange(10)}")
        else:
            node.append(random_tree(rng, depth + 1))
    return node


def mutate(rng: random.Random, root: XmlElement) -> None:
    """One random mutation somewhere in the tree, possibly via an alias."""
    nodes = [root, *root.descendants()]
    target = rng.choice(nodes)
    kind = rng.randrange(3)
    if kind == 0:
        target.append(f"mutated{rng.randrange(100)}")
    elif kind == 1:
        target.set("mutated", str(rng.randrange(100)))
    else:
        target.children.insert(
            rng.randrange(len(target.children) + 1), element("{urn:mut}new")
        )


def ground_truth_c14n(root: XmlElement) -> str:
    with caching_disabled():
        return canonicalize(root.copy())


class TestMutationCoherence:
    def test_canonicalize_after_mutation_matches_fresh_copy(self):
        rng = random.Random(90901)
        for _ in range(40):
            tree = random_tree(rng)
            canonicalize(tree)  # populate the cache
            mutate(rng, tree)
            assert canonicalize(tree) == ground_truth_c14n(tree)

    def test_each_mutation_kind_explicitly(self):
        for mutator in (
            lambda t: t.children[0].append("tail"),
            lambda t: t.children[0].set("{urn:x}a", "v"),
            lambda t: t.children.insert(1, element("{urn:x}ins")),
            lambda t: setattr(t, "children", [element("{urn:x}only")]),
            lambda t: t.attributes.update({QName.parse("top"): "1"}),
        ):
            tree = element("{urn:x}root", element("{urn:x}child", "text"), "mid")
            canonicalize(tree)
            mutator(tree)
            assert canonicalize(tree) == ground_truth_c14n(tree)

    def test_aliased_child_mutation_invalidates_both_trees(self):
        shared = element("{urn:x}shared", "payload")
        left = element("{urn:x}left", shared)
        right = element("{urn:x}right", shared)
        canonicalize(left)
        canonicalize(right)
        shared.append("tampered")
        assert canonicalize(left) == ground_truth_c14n(left)
        assert canonicalize(right) == ground_truth_c14n(right)

    def test_sign_after_mutation_matches_uncached_signature(self, identity):
        cert, keypair = identity
        rng = random.Random(90902)
        for _ in range(8):
            body = random_tree(rng)
            sign_element(body, keypair, cert)  # populate the signature cache
            mutate(rng, body)
            cached = canonicalize(sign_element(body, keypair, cert))
            with caching_disabled():
                fresh = canonicalize(sign_element(body.copy(), keypair, cert))
            assert cached == fresh

    def test_stale_signature_fails_verification_after_mutation(self, identity):
        cert, keypair = identity
        body = element("{urn:x}Body", element("{urn:x}value", "7"))
        signature = sign_element(body, keypair, cert)
        verify_element(body, signature, keypair.public)
        body.children[0].append("8")
        with pytest.raises(DsigError):
            verify_element(body, signature, keypair.public)

    def test_signature_cache_returns_private_copies(self, identity):
        cert, keypair = identity
        body = element("{urn:x}Body", "x")
        first = sign_element(body, keypair, cert)
        second = sign_element(body, keypair, cert)
        assert first is not second
        assert canonicalize(first) == canonicalize(second)
        first.set("tampered", "1")  # mutating one must not poison the cache
        third = sign_element(body, keypair, cert)
        assert canonicalize(third) == canonicalize(second)
