"""Unit tests for qualified names."""

import pytest

from repro.xmllib import QName


class TestParse:
    def test_clark_notation(self):
        qn = QName.parse("{http://example.org/ns}local")
        assert qn.namespace == "http://example.org/ns"
        assert qn.local == "local"

    def test_bare_local_name(self):
        qn = QName.parse("counter")
        assert qn.namespace == ""
        assert qn.local == "counter"

    def test_parse_passes_through_qname(self):
        qn = QName("u", "l")
        assert QName.parse(qn) is qn

    def test_malformed_clark_rejected(self):
        with pytest.raises(ValueError):
            QName.parse("{unterminated")

    def test_empty_local_rejected(self):
        with pytest.raises(ValueError):
            QName("uri", "")

    def test_braces_in_local_rejected(self):
        with pytest.raises(ValueError):
            QName("uri", "bad{name}")


class TestRendering:
    def test_clark_roundtrip(self):
        qn = QName("http://a/b", "c")
        assert QName.parse(qn.clark()) == qn

    def test_clark_without_namespace(self):
        assert QName("", "plain").clark() == "plain"

    def test_equality_and_hash(self):
        assert QName("u", "l") == QName("u", "l")
        assert hash(QName("u", "l")) == hash(QName("u", "l"))
        assert QName("u", "l") != QName("u2", "l")

    def test_sort_key_orders_namespace_first(self):
        names = [QName("b", "a"), QName("a", "z"), QName("a", "a")]
        ordered = sorted(names, key=QName.sort_key)
        assert ordered == [QName("a", "a"), QName("a", "z"), QName("b", "a")]


class TestInterning:
    """``QName.parse`` memoizes (ISSUE 9): repeated Clark strings — the
    overwhelmingly common case on the message path — return the same
    instance, and the sort key is precomputed at construction."""

    def test_parse_returns_interned_instance(self):
        first = QName.parse("{urn:intern}name")
        second = QName.parse("{urn:intern}name")
        assert first is second

    def test_bare_names_interned_too(self):
        assert QName.parse("interned-bare") is QName.parse("interned-bare")

    def test_distinct_strings_distinct_instances(self):
        assert QName.parse("{urn:a}x") is not QName.parse("{urn:b}x")
        assert QName.parse("{urn:a}x") != QName.parse("{urn:b}x")

    def test_interned_equal_to_directly_constructed(self):
        assert QName.parse("{urn:intern}eq") == QName("urn:intern", "eq")
        assert hash(QName.parse("{urn:intern}eq")) == hash(QName("urn:intern", "eq"))

    def test_sort_key_is_precomputed(self):
        qn = QName("urn:k", "local")
        assert qn.sort_key() == ("urn:k", "local")
        assert qn.sort_key() is qn._key

    def test_cache_overflow_resets_not_breaks(self):
        from repro.xmllib import qname as qname_mod

        limit = qname_mod._PARSE_CACHE_LIMIT
        original = dict(qname_mod._PARSE_CACHE)
        try:
            for i in range(limit + 10):
                QName.parse(f"{{urn:flood}}n{i}")
            # The cache stayed bounded and parsing still works afterwards.
            assert len(qname_mod._PARSE_CACHE) <= limit
            assert QName.parse("{urn:flood}after") == QName("urn:flood", "after")
        finally:
            qname_mod._PARSE_CACHE.clear()
            qname_mod._PARSE_CACHE.update(original)
