"""Unit tests for qualified names."""

import pytest

from repro.xmllib import QName


class TestParse:
    def test_clark_notation(self):
        qn = QName.parse("{http://example.org/ns}local")
        assert qn.namespace == "http://example.org/ns"
        assert qn.local == "local"

    def test_bare_local_name(self):
        qn = QName.parse("counter")
        assert qn.namespace == ""
        assert qn.local == "counter"

    def test_parse_passes_through_qname(self):
        qn = QName("u", "l")
        assert QName.parse(qn) is qn

    def test_malformed_clark_rejected(self):
        with pytest.raises(ValueError):
            QName.parse("{unterminated")

    def test_empty_local_rejected(self):
        with pytest.raises(ValueError):
            QName("uri", "")

    def test_braces_in_local_rejected(self):
        with pytest.raises(ValueError):
            QName("uri", "bad{name}")


class TestRendering:
    def test_clark_roundtrip(self):
        qn = QName("http://a/b", "c")
        assert QName.parse(qn.clark()) == qn

    def test_clark_without_namespace(self):
        assert QName("", "plain").clark() == "plain"

    def test_equality_and_hash(self):
        assert QName("u", "l") == QName("u", "l")
        assert hash(QName("u", "l")) == hash(QName("u", "l"))
        assert QName("u", "l") != QName("u2", "l")

    def test_sort_key_orders_namespace_first(self):
        names = [QName("b", "a"), QName("a", "z"), QName("a", "a")]
        ordered = sorted(names, key=QName.sort_key)
        assert ordered == [QName("a", "a"), QName("a", "z"), QName("b", "a")]
