"""Unit tests for the lightweight schema checker."""

import pytest

from repro.xmllib import ElementSpec, QName, Schema, SchemaError, element


def counter_spec() -> ElementSpec:
    return ElementSpec(
        tag=QName("urn:c", "Counter"),
        children={
            QName("urn:c", "Value"): (
                ElementSpec(QName("urn:c", "Value"), text_type="int"),
                1,
                1,
            ),
            QName("urn:c", "Note"): (None, 0, None),
        },
    )


class TestElementSpec:
    def test_valid_document(self):
        doc = element("{urn:c}Counter", element("{urn:c}Value", "3"))
        counter_spec().validate(doc)

    def test_wrong_root_tag(self):
        with pytest.raises(SchemaError, match="expected element"):
            counter_spec().validate(element("{urn:c}Other"))

    def test_missing_required_child(self):
        with pytest.raises(SchemaError, match="minimum 1"):
            counter_spec().validate(element("{urn:c}Counter"))

    def test_too_many_children(self):
        doc = element(
            "{urn:c}Counter",
            element("{urn:c}Value", "1"),
            element("{urn:c}Value", "2"),
        )
        with pytest.raises(SchemaError, match="maximum 1"):
            counter_spec().validate(doc)

    def test_unbounded_child(self):
        doc = element(
            "{urn:c}Counter",
            element("{urn:c}Value", "1"),
            element("{urn:c}Note", "a"),
            element("{urn:c}Note", "b"),
        )
        counter_spec().validate(doc)

    def test_bad_int_text(self):
        doc = element("{urn:c}Counter", element("{urn:c}Value", "NaN!"))
        with pytest.raises(SchemaError, match="not a valid int"):
            counter_spec().validate(doc)

    def test_unexpected_child_closed_content(self):
        doc = element(
            "{urn:c}Counter", element("{urn:c}Value", "1"), element("{urn:c}Intruder")
        )
        with pytest.raises(SchemaError, match="unexpected child"):
            counter_spec().validate(doc)

    def test_open_content_allows_anything(self):
        spec = ElementSpec(tag=QName("", "any"), open_content=True)
        spec.validate(element("any", element("whatever"), element("goes")))

    def test_required_attribute(self):
        spec = ElementSpec(tag=QName("", "a"), required_attributes=(QName("", "id"),))
        spec.validate(element("a", attrs={"id": "1"}))
        with pytest.raises(SchemaError, match="missing required attribute"):
            spec.validate(element("a"))

    def test_empty_text_type(self):
        spec = ElementSpec(tag=QName("", "a"), text_type="empty", open_content=True)
        spec.validate(element("a", element("b", "inner text ok")))
        with pytest.raises(SchemaError, match="must not carry text"):
            spec.validate(element("a", "oops"))

    def test_boolean_and_float_types(self):
        bspec = ElementSpec(tag=QName("", "b"), text_type="boolean")
        bspec.validate(element("b", "true"))
        with pytest.raises(SchemaError):
            bspec.validate(element("b", "maybe"))
        fspec = ElementSpec(tag=QName("", "f"), text_type="float")
        fspec.validate(element("f", "1.25"))
        with pytest.raises(SchemaError):
            fspec.validate(element("f", "one"))


class TestSchema:
    def test_dispatch_by_root(self):
        schema = Schema([counter_spec()])
        schema.validate(element("{urn:c}Counter", element("{urn:c}Value", "0")))

    def test_unknown_root_raises(self):
        with pytest.raises(SchemaError, match="no schema registered"):
            Schema().validate(element("mystery"))

    def test_knows(self):
        schema = Schema([counter_spec()])
        assert schema.knows("{urn:c}Counter")
        assert not schema.knows("{urn:c}Other")
