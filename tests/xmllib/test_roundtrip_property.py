"""Property-style round-trip tests for xmllib, driven by the testkit's
seeded generators: parse(serialize(tree)) must reproduce the tree, for
hundreds of random documents covering namespaces, attributes and every
text-escaping hazard the conformance fuzzer also feeds through the wire.

Seeded ``random.Random`` throughout — a failure prints its seed, and the
tree regenerates from it exactly.
"""

import random

import pytest

from repro.testkit.generator import HOSTILE_TEXT, random_xml_element
from repro.xmllib import QName, element, parse_xml, serialize
from repro.xmllib.element import XmlElement


def _canonical(node: XmlElement):
    """Structural identity: tag, sorted attributes, merged text runs.

    Adjacent text children may legally re-chunk across a parse, so text
    is compared as the concatenation between element children.
    """
    chunks = []
    merged_text = [""]
    for child in node.children:
        if isinstance(child, str):
            merged_text[-1] += child
        else:
            chunks.append(_canonical(child))
            merged_text.append("")
    attributes = tuple(
        sorted((str(key), value) for key, value in node.attributes.items())
    )
    return (str(node.tag), attributes, tuple(merged_text), tuple(chunks))


class TestSeededRoundTrips:
    def test_parse_serialize_parse_identity(self):
        for seed in range(300):
            tree = random_xml_element(random.Random(seed))
            wire = serialize(tree)
            reparsed = parse_xml(wire)
            assert _canonical(reparsed) == _canonical(tree), f"seed {seed}:\n{wire}"
            # And a second trip is a fixed point.
            assert serialize(reparsed) == serialize(parse_xml(serialize(reparsed)))

    def test_every_hostile_text_survives_as_element_text(self):
        for hostile in HOSTILE_TEXT:
            tree = element("probe", hostile)
            assert parse_xml(serialize(tree)).text() == hostile

    def test_every_hostile_text_survives_as_attribute_value(self):
        for hostile in HOSTILE_TEXT:
            if "\n" in hostile or "\t" in hostile:
                # Literal tabs/newlines in attribute values are normalized
                # to spaces by XML attribute-value normalization; skip the
                # whitespace probes here (they are covered as text).
                continue
            tree = element("probe")
            tree.set("value", hostile)
            assert parse_xml(serialize(tree)).get("value") == hostile


class TestQNameAndNamespaces:
    def test_namespaced_tags_round_trip(self):
        for seed in range(100):
            rng = random.Random(10_000 + seed)
            tree = random_xml_element(rng)
            assert parse_xml(serialize(tree)).tag == tree.tag

    def test_qname_parse_of_clark_notation(self):
        name = QName.parse("{urn:testkit:alpha}Probe")
        assert name.namespace == "urn:testkit:alpha"
        assert name.local == "Probe"

    def test_slash_namespace_survives(self):
        tree = element("{urn:testkit:names/with/slashes}Leaf", "x")
        reparsed = parse_xml(serialize(tree))
        assert reparsed.tag.namespace == "urn:testkit:names/with/slashes"
        assert reparsed.text() == "x"
