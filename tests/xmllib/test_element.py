"""Unit tests for the element tree."""

import pytest

from repro.xmllib import QName, XmlElement, element, text_of


class TestConstruction:
    def test_element_helper_builds_children(self):
        node = element("root", element("child"), "text", attrs={"id": "1"})
        assert node.tag == QName("", "root")
        assert node.get("id") == "1"
        assert [c for c in node.children if isinstance(c, str)] == ["text"]

    def test_numeric_children_become_text(self):
        node = element("n", 42)
        assert node.text() == "42"

    def test_empty_string_child_dropped(self):
        node = element("n", "")
        assert node.children == []

    def test_invalid_child_type_rejected(self):
        with pytest.raises(TypeError):
            element("n").append(object())  # type: ignore[arg-type]

    def test_set_get_attributes_with_clark_names(self):
        node = element("n")
        node.set("{u}a", "v")
        assert node.get("{u}a") == "v"
        assert node.get("{u}missing") is None
        assert node.get("{u}missing", "dflt") == "dflt"


class TestNavigation:
    def make_tree(self):
        return element(
            "{ns}root",
            element("{ns}a", "1"),
            element("{ns}b", "2"),
            element("{ns}a", "3"),
            element("{other}a", "4"),
        )

    def test_find_first_match(self):
        tree = self.make_tree()
        found = tree.find("{ns}a")
        assert found is not None and found.text() == "1"

    def test_find_returns_none(self):
        assert self.make_tree().find("{ns}zzz") is None

    def test_find_all(self):
        tree = self.make_tree()
        assert [n.text() for n in tree.find_all("{ns}a")] == ["1", "3"]

    def test_find_local_ignores_namespace(self):
        tree = self.make_tree()
        found = tree.find_local("b")
        assert found is not None and found.text() == "2"

    def test_descendants_depth_first(self):
        tree = element("r", element("a", element("b")), element("c"))
        tags = [d.tag.local for d in tree.descendants()]
        assert tags == ["a", "b", "c"]

    def test_text_concatenates_descendants(self):
        tree = element("r", "x", element("a", "y"), "z")
        assert tree.text() == "xyz"


class TestEqualityAndCopy:
    def test_structural_equality_coalesces_text(self):
        one = element("r", "ab")
        two = element("r", "a", "b")
        # The element() helper coalesces nothing; build raw children.
        two.children = ["a", "b"]
        assert one.structurally_equal(two)

    def test_structural_inequality_on_attrs(self):
        assert not element("r", attrs={"a": "1"}).structurally_equal(element("r"))

    def test_structural_inequality_on_children(self):
        assert not element("r", element("a")).structurally_equal(element("r", element("b")))

    def test_copy_is_deep(self):
        original = element("r", element("a", "x"), attrs={"id": "1"})
        clone = original.copy()
        clone.find("a").append("y")  # type: ignore[union-attr]
        clone.set("id", "2")
        assert original.find("a").text() == "x"  # type: ignore[union-attr]
        assert original.get("id") == "1"
        assert not original.structurally_equal(clone)


class TestTextOf:
    def test_text_of_none_gives_default(self):
        assert text_of(None) == ""
        assert text_of(None, "d") == "d"

    def test_text_of_strips(self):
        assert text_of(element("n", "  x \n")) == "x"
