"""Unit + property tests for WS-Addressing EPRs and headers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.addressing import EndpointReference, MessageHeaders
from repro.xmllib import QName, element, ns, parse_xml, serialize


class TestEndpointReference:
    def test_create_and_lookup(self):
        epr = EndpointReference.create("soap://h/S", {"{urn:x}ResourceID": "r1"})
        assert epr.address == "soap://h/S"
        assert epr.property("{urn:x}ResourceID") == "r1"
        assert epr.property("{urn:x}Missing") is None
        assert epr.property("{urn:x}Missing", "d") == "d"

    def test_with_property_returns_new(self):
        epr = EndpointReference.create("soap://h/S")
        epr2 = epr.with_property("{urn:x}k", "v")
        assert epr.property("{urn:x}k") is None
        assert epr2.property("{urn:x}k") == "v"

    def test_xml_roundtrip(self):
        epr = EndpointReference.create(
            "soap://h/S", {"{urn:x}ResourceID": "r1", "{urn:y}Other": "2"}
        )
        again = EndpointReference.from_xml(parse_xml(serialize(epr.to_xml())))
        assert again == epr

    def test_xml_without_properties(self):
        epr = EndpointReference.create("soap://h/S")
        node = epr.to_xml()
        assert node.find(QName(ns.WSA, "ReferenceProperties")) is None
        assert EndpointReference.from_xml(node) == epr

    def test_missing_address_rejected(self):
        with pytest.raises(ValueError, match="no wsa:Address"):
            EndpointReference.from_xml(element(f"{{{ns.WSA}}}EndpointReference"))

    def test_properties_sorted_for_equality(self):
        a = EndpointReference.create("u", {"{n}b": "2", "{n}a": "1"})
        b = EndpointReference.create("u", {"{n}a": "1", "{n}b": "2"})
        assert a == b

    @given(
        st.dictionaries(
            st.from_regex(r"[A-Za-z][A-Za-z0-9]{0,6}", fullmatch=True),
            st.text(
                alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
                max_size=12,
            ).map(str.strip),
            max_size=4,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, props):
        epr = EndpointReference.create("soap://host/Svc", {f"{{urn:p}}{k}": v for k, v in props.items()})
        again = EndpointReference.from_xml(parse_xml(serialize(epr.to_xml())))
        assert again == epr


class TestMessageHeaders:
    def test_roundtrip_through_header_element(self):
        headers = MessageHeaders(
            to="soap://h/S",
            action="urn:op",
            reply_to=EndpointReference.create("soap://c/sink"),
            relates_to="urn:uuid:1",
            reference_properties=((QName("urn:x", "ResourceID"), "r9"),),
        )
        header_el = element(f"{{{ns.SOAP}}}Header", *headers.to_elements())
        again = MessageHeaders.from_header_element(parse_xml(serialize(header_el)))
        assert again.to == headers.to
        assert again.action == headers.action
        assert again.message_id == headers.message_id
        assert again.reply_to == headers.reply_to
        assert again.relates_to == headers.relates_to
        assert again.reference_properties == headers.reference_properties

    def test_reference_properties_become_headers(self):
        headers = MessageHeaders(
            to="a", action="b", reference_properties=((QName("urn:x", "K"), "v"),)
        )
        tags = [e.tag for e in headers.to_elements()]
        assert QName("urn:x", "K") in tags

    def test_target_epr_reconstruction(self):
        headers = MessageHeaders(
            to="soap://h/S", action="x",
            reference_properties=((QName("urn:x", "ResourceID"), "42"),),
        )
        epr = headers.target_epr()
        assert epr.address == "soap://h/S"
        assert epr.property("{urn:x}ResourceID") == "42"

    def test_missing_to_or_action_rejected(self):
        header_el = element(f"{{{ns.SOAP}}}Header", element(f"{{{ns.WSA}}}To", "x"))
        with pytest.raises(ValueError, match="required"):
            MessageHeaders.from_header_element(header_el)

    def test_security_headers_skipped(self):
        header_el = element(
            f"{{{ns.SOAP}}}Header",
            element(f"{{{ns.WSA}}}To", "a"),
            element(f"{{{ns.WSA}}}Action", "b"),
            element(f"{{{ns.WSSE}}}Security", element(f"{{{ns.DS}}}Signature")),
        )
        headers = MessageHeaders.from_header_element(header_el)
        assert headers.reference_properties == ()

    def test_message_ids_unique(self):
        a = MessageHeaders(to="t", action="a")
        b = MessageHeaders(to="t", action="a")
        assert a.message_id != b.message_id
