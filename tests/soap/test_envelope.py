"""Unit tests for SOAP envelopes, faults and wire messages."""

import pytest

from repro.soap import SoapFault, WireMessage, build_envelope, parse_envelope
from repro.soap.envelope import build_fault_envelope
from repro.xmllib import element, ns, serialize


class TestEnvelope:
    def test_build_and_access(self):
        envelope = build_envelope(
            [element("{urn:h}H1", "x")], [element("{urn:b}Op", "y")]
        )
        assert envelope.header_element("{urn:h}H1").text() == "x"
        assert envelope.body_child().tag.local == "Op"

    def test_parse_roundtrip(self):
        envelope = build_envelope([], [element("{urn:b}Op")])
        again = parse_envelope(serialize(envelope.root))
        assert again.body_child().tag.local == "Op"

    def test_non_envelope_rejected(self):
        with pytest.raises(SoapFault):
            parse_envelope("<notsoap/>")

    def test_empty_body_child_faults(self):
        envelope = build_envelope([], [])
        with pytest.raises(SoapFault, match="empty"):
            envelope.body_child()

    def test_header_created_on_demand(self):
        envelope = parse_envelope(
            f'<e:Envelope xmlns:e="{ns.SOAP}"><e:Body><x/></e:Body></e:Envelope>'
        )
        header = envelope.header
        assert header.tag.local == "Header"
        # inserted before the body
        assert envelope.root.element_children().__next__().tag.local == "Header"


class TestFaults:
    def test_fault_roundtrip(self):
        fault = SoapFault("Client", "you messed up", element("{urn:d}Why", "badly"))
        envelope = build_fault_envelope([], fault)
        wire = WireMessage.from_envelope(envelope)
        parsed = wire.parse()
        assert parsed.is_fault()
        again = parsed.fault()
        assert again.code == "Client"
        assert again.reason == "you messed up"
        assert again.detail is not None and again.detail.text() == "badly"

    def test_fault_without_detail(self):
        fault = SoapFault("Server", "boom")
        parsed = WireMessage.from_envelope(build_fault_envelope([], fault)).parse()
        again = parsed.fault()
        assert again.code == "Server" and again.detail is None

    def test_is_fault_false_for_normal(self):
        envelope = build_envelope([], [element("ok")])
        assert not envelope.is_fault()
        with pytest.raises(ValueError):
            envelope.fault()

    def test_fault_str(self):
        assert "Client: nope" in str(SoapFault("Client", "nope"))


class TestWireMessage:
    def test_sizes(self):
        wire = WireMessage.from_envelope(build_envelope([], [element("a", "é")]))
        assert wire.n_bytes == len(wire.text.encode("utf-8"))
        assert wire.n_kb == pytest.approx(wire.n_bytes / 1024)

    def test_xml_declaration_stripped_on_parse(self):
        wire = WireMessage.from_envelope(build_envelope([], [element("a")]))
        assert wire.text.startswith("<?xml")
        assert wire.parse().body_child().tag.local == "a"
