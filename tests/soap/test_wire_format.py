"""Golden wire-format checks: messages look like period WS-* traffic.

These tests pin the structural vocabulary of each specification — element
names, namespaces, header layout — so refactors cannot silently drift away
from the on-the-wire shapes the paper's implementations exchanged.
"""

import pytest

from repro.apps.counter import CounterScenario, build_transfer_rig, build_wsrf_rig
from repro.container import SecurityMode
from repro.xmllib import ns, parse_xml


@pytest.fixture(scope="module")
def captured():
    """Capture wire text of representative requests via a recording hook."""
    captures = {}

    def capture(rig, label_prefix):
        original_handle = None
        # Wrap every container's handle to record request text.
        deployment = rig.deployment
        for (key, (host, container)) in list(deployment._endpoints.items()):
            if not hasattr(container, "_wire_tap"):
                container._wire_tap = True
                inner = container.handle

                def tapped(message, _inner=inner):
                    captures.setdefault("messages", []).append(message.text)
                    return _inner(message)

                container.handle = tapped
        return captures

    wsrf = build_wsrf_rig(CounterScenario(mode=SecurityMode.X509))
    capture(wsrf, "wsrf")
    counter = wsrf.client.create(3)
    wsrf.client.subscribe(counter, wsrf.consumer)
    wsrf.client.get(counter)
    wsrf.client.set(counter, 4)
    wsrf.client.destroy(counter)

    transfer = build_transfer_rig(CounterScenario())
    capture(transfer, "wxf")
    tcounter = transfer.client.create(1)
    transfer.client.subscribe(tcounter, transfer.consumer)
    transfer.client.set(tcounter, 2)
    return captures["messages"]


def _bodies(captured):
    envelopes = [parse_xml(t[t.find("?>") + 2 :] if t.startswith("<?xml") else t) for t in captured]
    out = []
    for envelope in envelopes:
        body = envelope.find(f"{{{ns.SOAP}}}Body")
        child = next(body.element_children(), None)
        if child is not None:
            out.append((envelope, child))
    return out


class TestEnvelopeShape:
    def test_every_message_is_soap_11(self, captured):
        for text in captured:
            root = parse_xml(text[text.find("?>") + 2 :] if text.startswith("<?xml") else text)
            assert root.tag.namespace == ns.SOAP
            assert root.tag.local == "Envelope"
            locals_ = [c.tag.local for c in root.element_children()]
            assert locals_ == ["Header", "Body"]

    def test_addressing_headers_present(self, captured):
        for text in captured:
            root = parse_xml(text[text.find("?>") + 2 :] if text.startswith("<?xml") else text)
            header = root.find(f"{{{ns.SOAP}}}Header")
            header_tags = {c.tag for c in header.element_children()}
            from repro.xmllib import QName

            assert QName(ns.WSA, "To") in header_tags
            assert QName(ns.WSA, "Action") in header_tags
            assert QName(ns.WSA, "MessageID") in header_tags

    def test_signed_messages_carry_wsse_security_with_dsig(self, captured):
        from repro.xmllib import QName

        signed = 0
        for text in captured:
            root = parse_xml(text[text.find("?>") + 2 :] if text.startswith("<?xml") else text)
            header = root.find(f"{{{ns.SOAP}}}Header")
            security = header.find(QName(ns.WSSE, "Security"))
            if security is None:
                continue
            signed += 1
            signature = security.find(QName(ns.DS, "Signature"))
            assert signature is not None
            assert signature.find(QName(ns.DS, "SignedInfo")) is not None
            assert signature.find(QName(ns.DS, "SignatureValue")) is not None
            assert signature.find(QName(ns.DS, "KeyInfo")) is not None
        assert signed > 0


class TestSpecVocabulary:
    def test_wsrf_rp_message_shapes(self, captured):
        bodies = [child for _, child in _bodies(captured)]
        locals_seen = {b.tag.clark() for b in bodies}
        assert f"{{{ns.WSRF_RP}}}GetResourceProperty" in locals_seen
        assert f"{{{ns.WSRF_RP}}}SetResourceProperties" in locals_seen
        assert f"{{{ns.WSRF_RL}}}Destroy" in locals_seen

    def test_wsnt_subscribe_shape(self, captured):
        for _, body in _bodies(captured):
            if body.tag.clark() == f"{{{ns.WSNT}}}Subscribe":
                assert body.find(f"{{{ns.WSNT}}}ConsumerReference") is not None
                topic = body.find(f"{{{ns.WSNT}}}TopicExpression")
                assert topic is not None and topic.get("Dialect")
                return
        pytest.fail("no wsnt:Subscribe captured")

    def test_wxf_message_shapes(self, captured):
        locals_seen = {b.tag.clark() for _, b in _bodies(captured)}
        assert f"{{{ns.WXF}}}Create" in locals_seen
        assert f"{{{ns.WXF}}}Put" in locals_seen

    def test_wse_subscribe_shape(self, captured):
        for _, body in _bodies(captured):
            if body.tag.clark() == f"{{{ns.WSE}}}Subscribe":
                delivery = body.find(f"{{{ns.WSE}}}Delivery")
                assert delivery is not None
                assert delivery.find(f"{{{ns.WSE}}}NotifyTo") is not None
                return
        pytest.fail("no wse:Subscribe captured")

    def test_reference_properties_ride_as_headers(self, captured):
        """WS-Addressing: the counter's ResourceID appears as a SOAP header
        on every message addressed to the resource."""
        found = False
        for text in captured:
            root = parse_xml(text[text.find("?>") + 2 :] if text.startswith("<?xml") else text)
            header = root.find(f"{{{ns.SOAP}}}Header")
            for child in header.element_children():
                if child.tag.local == "ResourceID":
                    found = True
        assert found
