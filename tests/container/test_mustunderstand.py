"""SOAP mustUnderstand processing."""

import pytest

from repro.addressing import MessageHeaders
from repro.soap import WireMessage
from repro.soap.envelope import build_envelope
from repro.xmllib import element, ns

from tests.container.test_container import ECHO_ACTION, make_deployment


def send_with_header(deployment, service, extra_header):
    headers = MessageHeaders(to=service.address, action=ECHO_ACTION)
    envelope = build_envelope(
        headers.to_elements() + [extra_header], [element("{urn:test}Echo", "x")]
    )
    _, container = deployment.resolve(service.address)
    return container.handle(WireMessage.from_envelope(envelope)).parse()


class TestMustUnderstand:
    def test_unknown_mandatory_header_faults(self):
        deployment, service, _ = make_deployment()
        header = element(
            "{urn:exotic}Transaction",
            "tx-1",
            attrs={f"{{{ns.SOAP}}}mustUnderstand": "1"},
        )
        reply = send_with_header(deployment, service, header)
        assert reply.is_fault()
        fault = reply.fault()
        assert fault.code == "MustUnderstand"
        assert "Transaction" in fault.reason

    def test_unknown_optional_header_ignored(self):
        deployment, service, _ = make_deployment()
        header = element("{urn:exotic}Hint", "whatever")
        reply = send_with_header(deployment, service, header)
        assert not reply.is_fault()

    def test_understood_namespaces_may_be_mandatory(self):
        deployment, service, _ = make_deployment()
        header = element(
            f"{{{ns.WSA}}}FaultTo",
            element(f"{{{ns.WSA}}}Address", "soap://client/sink"),
            attrs={f"{{{ns.SOAP}}}mustUnderstand": "1"},
        )
        reply = send_with_header(deployment, service, header)
        assert not reply.is_fault()

    def test_mustunderstand_zero_ignored(self):
        deployment, service, _ = make_deployment()
        header = element(
            "{urn:exotic}Transaction", "tx", attrs={f"{{{ns.SOAP}}}mustUnderstand": "0"}
        )
        reply = send_with_header(deployment, service, header)
        assert not reply.is_fault()
