"""Integration tests: the generic container end-to-end under each policy."""

import pytest

from repro.container import (
    Deployment,
    MessageContext,
    SecurityMode,
    SecurityPolicy,
    ServiceSkeleton,
    SoapClient,
    web_method,
)
from repro.crypto import CertificateAuthority
from repro.sim import CostModel
from repro.soap import SoapFault
from repro.xmllib import element, text_of

ECHO_ACTION = "urn:test/Echo"
WHO_ACTION = "urn:test/Who"
BOOM_ACTION = "urn:test/Boom"
KEYED_ACTION = "urn:test/Keyed"


class EchoService(ServiceSkeleton):
    service_name = "Echo"

    @web_method(ECHO_ACTION)
    def echo(self, context: MessageContext):
        return element("{urn:test}EchoResponse", context.body.text())

    @web_method(WHO_ACTION)
    def who(self, context: MessageContext):
        sender = str(context.sender) if context.sender else "anonymous"
        return element("{urn:test}WhoResponse", sender)

    @web_method(BOOM_ACTION)
    def boom(self, context: MessageContext):
        raise SoapFault("Server", "exploded on purpose")

    @web_method(KEYED_ACTION)
    def keyed(self, context: MessageContext):
        return element("{urn:test}KeyedResponse", context.resource_key or "none")


def make_deployment(mode=SecurityMode.NONE, costs=None):
    ca = CertificateAuthority.create(seed=7)
    deployment = Deployment(SecurityPolicy(mode), costs or CostModel(), ca)
    server_creds = deployment.issue_credentials("server", seed=20)
    container = deployment.add_container("serverhost", "App", server_creds)
    service = EchoService()
    container.add_service(service)
    client_creds = deployment.issue_credentials("alice", seed=21)
    client = SoapClient(deployment, "clienthost", client_creds)
    return deployment, service, client


class TestRoundTrips:
    @pytest.mark.parametrize("mode", list(SecurityMode))
    def test_echo_under_each_policy(self, mode):
        _, service, client = make_deployment(mode)
        response = client.invoke(service.epr(), ECHO_ACTION, element("{urn:test}Echo", "hi"))
        assert response.text() == "hi"

    def test_sender_identity_with_x509(self):
        _, service, client = make_deployment(SecurityMode.X509)
        response = client.invoke(service.epr(), WHO_ACTION, element("{urn:test}Who"))
        assert "CN=alice" in response.text()

    def test_sender_anonymous_without_signing(self):
        _, service, client = make_deployment(SecurityMode.NONE)
        response = client.invoke(service.epr(), WHO_ACTION, element("{urn:test}Who"))
        assert response.text() == "anonymous"

    def test_fault_propagates_to_client(self):
        _, service, client = make_deployment()
        with pytest.raises(SoapFault, match="exploded"):
            client.invoke(service.epr(), BOOM_ACTION, element("{urn:test}Boom"))

    def test_unknown_action_faults(self):
        _, service, client = make_deployment()
        with pytest.raises(SoapFault, match="does not support action"):
            client.invoke(service.epr(), "urn:test/Nope", element("x"))

    def test_unknown_address_raises(self):
        deployment, _, client = make_deployment()
        from repro.addressing import EndpointReference

        with pytest.raises(LookupError):
            client.invoke(
                EndpointReference.create("soap://nowhere/X"), ECHO_ACTION, element("x")
            )

    def test_reference_properties_reach_service(self):
        _, service, client = make_deployment()
        epr = service.epr({"{urn:test}ResourceID": "r-77"})
        response = client.invoke(epr, KEYED_ACTION, element("{urn:test}Keyed"))
        assert response.text() == "r-77"

    def test_time_advances_per_call(self):
        deployment, service, client = make_deployment()
        t0 = deployment.network.clock.now
        client.invoke(service.epr(), ECHO_ACTION, element("{urn:test}Echo", "x"))
        assert deployment.network.clock.now > t0


class TestSecurityScenarios:
    def test_x509_slower_than_none(self):
        base_elapsed = {}
        for mode in (SecurityMode.NONE, SecurityMode.X509):
            deployment, service, client = make_deployment(mode)
            t0 = deployment.network.clock.now
            client.invoke(service.epr(), ECHO_ACTION, element("{urn:test}Echo", "x"))
            base_elapsed[mode] = deployment.network.clock.now - t0
        assert base_elapsed[SecurityMode.X509] > 3 * base_elapsed[SecurityMode.NONE]

    def test_https_second_call_cheaper(self):
        deployment, service, client = make_deployment(SecurityMode.HTTPS)
        t0 = deployment.network.clock.now
        client.invoke(service.epr(), ECHO_ACTION, element("{urn:test}Echo", "x"))
        cold = deployment.network.clock.now - t0
        t1 = deployment.network.clock.now
        client.invoke(service.epr(), ECHO_ACTION, element("{urn:test}Echo", "x"))
        warm = deployment.network.clock.now - t1
        assert warm < cold - deployment.network.costs.tls_handshake / 2

    def test_unsigned_message_rejected_under_x509(self):
        deployment, service, _ = make_deployment(SecurityMode.X509)
        unsigned_client = SoapClient(deployment, "clienthost", credentials=None)
        # Client cannot even sign; server must fault the unsigned request...
        with pytest.raises((SoapFault, Exception)):
            unsigned_client.invoke(service.epr(), ECHO_ACTION, element("x"))

    def test_unknown_signer_rejected(self):
        deployment, service, _ = make_deployment(SecurityMode.X509)
        rogue_ca = CertificateAuthority.create(common_name="Rogue", seed=99)
        cert, keypair = rogue_ca.issue_identity("mallory", seed=31)
        from repro.container import Credentials

        rogue = SoapClient(deployment, "clienthost", Credentials(cert, keypair))
        with pytest.raises(SoapFault, match="security failure"):
            rogue.invoke(service.epr(), ECHO_ACTION, element("x"))

    def test_signatures_counted_in_metrics(self):
        deployment, service, client = make_deployment(SecurityMode.X509)
        deployment.network.metrics.begin("op", deployment.network.clock.now)
        client.invoke(service.epr(), ECHO_ACTION, element("{urn:test}Echo", "x"))
        trace = deployment.network.metrics.end(deployment.network.clock.now)
        assert trace.signatures == 2  # request + response
        assert trace.verifications == 2
        assert trace.messages == 2


class TestServiceSkeleton:
    def test_duplicate_action_rejected(self):
        class Bad(ServiceSkeleton):
            @web_method("urn:same")
            def a(self, context):
                return None

            @web_method("urn:same")
            def b(self, context):
                return None

        with pytest.raises(ValueError, match="duplicate operation"):
            Bad()

    def test_epr_requires_attachment(self):
        with pytest.raises(RuntimeError, match="not attached"):
            EchoService().epr()

    def test_operations_listing(self):
        ops = EchoService().operations()
        assert ECHO_ACTION in ops and BOOM_ACTION in ops

    def test_duplicate_service_address_rejected(self):
        deployment, service, _ = make_deployment()
        with pytest.raises(ValueError, match="duplicate"):
            service.container.add_service(EchoService())


class TestNotificationSinks:
    def test_sink_delivery_and_overhead_difference(self):
        from repro.soap.envelope import build_envelope

        deployment, service, client = make_deployment()
        received = []
        http_sink = deployment.add_sink("clienthost", lambda env: received.append("http"), "http-server")
        tcp_sink = deployment.add_sink("clienthost", lambda env: received.append("tcp"), "tcp-receiver")

        producer_host = deployment.host("serverhost")
        envelope = build_envelope([], [element("{urn:test}Event", "fired")])
        t0 = deployment.network.clock.now
        assert deployment.deliver_notification(producer_host, http_sink.address, envelope)
        http_cost = deployment.network.clock.now - t0

        envelope2 = build_envelope([], [element("{urn:test}Event", "fired")])
        t1 = deployment.network.clock.now
        assert deployment.deliver_notification(producer_host, tcp_sink.address, envelope2)
        tcp_cost = deployment.network.clock.now - t1

        assert received == ["http", "tcp"]
        assert tcp_cost < http_cost  # the paper's TCP-vs-HTTP notify gap

    def test_unknown_sink_returns_false(self):
        from repro.soap.envelope import build_envelope

        deployment, _, _ = make_deployment()
        ok = deployment.deliver_notification(
            deployment.host("serverhost"), "soap://gone/sink", build_envelope([], [element("e")])
        )
        assert not ok

    def test_signed_notification_verifies(self):
        from repro.soap.envelope import build_envelope

        deployment, service, client = make_deployment(SecurityMode.X509)
        received = []
        sink = deployment.add_sink("clienthost", received.append, "tcp-receiver")
        creds = service.container.credentials
        envelope = build_envelope([], [element("{urn:test}Event", "fired")])
        assert deployment.deliver_notification(
            deployment.host("serverhost"), sink.address, envelope, creds
        )
        assert len(received) == 1
