"""Cache observability on the message path (DESIGN.md §16).

The content-keyed caches expose hit/miss counters precisely so tier-1
can pin the behaviour the msgperf bench depends on: in a two-message
soak the second, identical message is served from the c14n/DSig caches,
while a mutated message keys differently and misses.  And the caches
must be wall-clock-only — the virtual cost ledger of a soak run with
caching enabled is bit-identical to one run under
:func:`caching_disabled`.
"""

from __future__ import annotations

import pytest

from repro.apps.counter.deploy import (
    CounterScenario,
    build_wsrf_rig,
)
from repro.container.security import SecurityMode
from repro.crypto import CertificateAuthority, sign_element
from repro.sim.costs import CostModel
from repro.xmllib import element
from repro.xmllib.memo import (
    cache_stats,
    caching_disabled,
    clear_caches,
    get_cache,
    reset_cache_stats,
)


def x509_rig():
    return build_wsrf_rig(
        CounterScenario(mode=SecurityMode.X509, colocated=False, costs=CostModel())
    )


class TestTwoMessageSoak:
    @pytest.fixture()
    def soak_stats(self):
        """Run create + two identical Gets; return stats bracketing Get #2."""
        clear_caches()
        rig = x509_rig()
        counter = rig.client.create()
        rig.client.get(counter)  # message 1: populates every cache
        reset_cache_stats()
        rig.client.get(counter)  # message 2: should ride the caches
        stats = cache_stats()
        return rig, counter, stats

    def test_second_message_hits_the_signature_caches(self, soak_stats):
        _rig, _counter, stats = soak_stats
        assert stats["dsig.sign"]["hits"] > 0
        assert stats["dsig.sign"]["misses"] == 0
        assert stats["dsig.verify"]["hits"] > 0
        assert stats["dsig.verify"]["misses"] == 0
        assert stats["c14n.text"]["misses"] == 0

    def test_mutated_message_misses(self, soak_stats):
        rig, counter, _ = soak_stats
        # Distinct content (set then get: the resource value changed, so
        # Body bytes differ) must key fresh signatures, not reuse cached ones.
        reset_cache_stats()
        rig.client.set(counter, 5)
        rig.client.get(counter)
        stats = cache_stats()
        assert stats["dsig.sign"]["misses"] > 0

    def test_counters_visible_per_cache(self):
        clear_caches()
        reset_cache_stats()
        ca = CertificateAuthority.create(seed=7)
        cert, keypair = ca.issue_identity("alice", seed=11)
        body = element("{urn:t}Body", "payload")
        sign_element(body, keypair, cert)
        assert get_cache("dsig.sign").stats.misses == 1
        sign_element(body, keypair, cert)
        assert get_cache("dsig.sign").stats.hits == 1
        body.append("mutated")
        sign_element(body, keypair, cert)
        assert get_cache("dsig.sign").stats.misses == 2


class TestCachesAreWallClockOnly:
    def test_soak_ledger_identical_cached_vs_uncached(self):
        def soak():
            rig = x509_rig()
            counter = rig.client.create()
            for _ in range(3):
                rig.client.get(counter)
            rig.client.set(counter, 2)
            value = rig.client.get(counter)
            return value, rig.deployment.network.clock.now, rig.deployment.network.metrics.total_bytes

        clear_caches()
        cached = soak()
        with caching_disabled():
            uncached = soak()
        assert cached == uncached
