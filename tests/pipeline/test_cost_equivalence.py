"""Cost-ledger equivalence: the pipeline refactor must be cost-invisible.

``tests/pipeline/golden_costs.json`` was captured by running the bench
measurement functions on the *pre-pipeline* monolithic implementation
(hard-wired ``SoapClient.invoke`` / ``Container.handle``).  Every virtual
millisecond here is deterministic — seeded RNG, fixed-width message ids —
so the post-refactor ledger must match bit-for-bit, not approximately:
``==`` on floats is the assertion, and any drift means a filter changed a
charge, its order, or a message's bytes.
"""

import json
from pathlib import Path

import pytest

from repro.bench.giab import GIAB_OPS, measure_giab
from repro.bench.hello import HELLO_OPS, HELLO_SERIES, measure_hello_world
from repro.container.security import SecurityMode

GOLDEN = json.loads((Path(__file__).parent / "golden_costs.json").read_text())


class TestHelloEquivalence:
    @pytest.mark.parametrize("mode", list(SecurityMode))
    @pytest.mark.parametrize("label,stack,colocated", HELLO_SERIES)
    def test_hello_ledger_is_bit_identical(self, mode, label, stack, colocated):
        got = measure_hello_world(stack, mode, colocated)
        want = GOLDEN["hello"][mode.value][label]
        assert set(got) == set(HELLO_OPS)
        for op in HELLO_OPS:
            assert got[op] == want[op], (
                f"{mode.value}/{label}/{op}: {got[op]!r} != golden {want[op]!r}"
            )


class TestGiabEquivalence:
    @pytest.mark.parametrize("stack", ("wsrf", "transfer"))
    def test_giab_ledger_is_bit_identical(self, stack):
        got = measure_giab(stack)
        want = GOLDEN["giab"][stack]
        assert set(got) == set(GIAB_OPS)
        for op in GIAB_OPS:
            assert got[op] == want[op], (
                f"{stack}/{op}: {got[op]!r} != golden {want[op]!r}"
            )
