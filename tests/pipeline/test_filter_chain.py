"""Unit tests for the filter chain: ordering, deferral, filter behavior."""

import pytest

from repro.addressing import MessageHeaders
from repro.container import (
    Deployment,
    SecurityMode,
    SecurityPolicy,
    SoapClient,
)
from repro.crypto import CertificateAuthority
from repro.pipeline import (
    AddressingFilter,
    BaseFilter,
    CostAccountingFilter,
    FilterChain,
    MessageFilter,
    MustUnderstandFilter,
    PipelineContext,
    ReliableMessagingFilter,
    SecurityFilter,
    TracingFilter,
)
from repro.reliable.sequence import MESSAGE_NUMBER_HEADER, SEQUENCE_ID_HEADER
from repro.sim import CostModel
from repro.soap import SoapFault, WireMessage
from repro.soap.envelope import build_envelope
from repro.xmllib import element, ns

from tests.container.test_container import ECHO_ACTION, make_deployment


def filter_names(filters):
    return [type(f).__name__ for f in filters]


class TestChainAssembly:
    def test_standard_outbound_order(self):
        deployment, _, _ = make_deployment()
        chain = deployment.pipeline()
        assert filter_names(chain.outbound_filters) == [
            "TracingFilter",
            "ReliableMessagingFilter",
            "AddressingFilter",
            "SecurityFilter",
            "MustUnderstandFilter",
            "CostAccountingFilter",
        ]

    def test_standard_inbound_order_is_not_a_strict_reversal(self):
        # Like WSE's separately-ordered input/output filter collections:
        # inbound needs mustUnderstand *before* security (fault precedence)
        # and WS-RM *after* addressing (replay needs parsed headers).
        deployment, _, _ = make_deployment()
        chain = deployment.pipeline()
        assert filter_names(chain.inbound_filters) == [
            "TracingFilter",
            "CostAccountingFilter",
            "MustUnderstandFilter",
            "SecurityFilter",
            "AddressingFilter",
            "ReliableMessagingFilter",
        ]

    def test_security_filter_is_shared_across_chains(self):
        deployment, service, client = make_deployment()
        container = service.container
        assert client.chain is not container.chain
        assert client.chain.find(SecurityFilter) is deployment.security_filter
        assert container.chain.find(SecurityFilter) is deployment.security_filter
        # The compat surface exposes one handler for the whole deployment.
        assert client.security is container.security
        assert client.security is deployment.security_filter.handler

    def test_reply_cache_is_per_container(self):
        deployment, service, _ = make_deployment()
        other = deployment.add_container("serverhost", "Other")
        assert service.container.request_log is not other.request_log

    def test_find_unknown_filter_raises(self):
        chain = FilterChain(outbound=(), inbound=())
        with pytest.raises(LookupError, match="TracingFilter"):
            chain.find(TracingFilter)

    def test_base_filter_satisfies_protocol(self):
        assert isinstance(BaseFilter(), MessageFilter)


class TestDeferredActions:
    def test_deferred_work_runs_lifo_after_the_pass(self):
        deployment, _, _ = make_deployment()
        order = []

        class First(BaseFilter):
            def outbound(self, ctx):
                order.append("first.pass")
                ctx.defer(lambda: order.append("first.deferred"))

        class Second(BaseFilter):
            def outbound(self, ctx):
                order.append("second.pass")
                ctx.defer(lambda: order.append("second.deferred"))

        chain = FilterChain(outbound=(First(), Second()), inbound=())
        ctx = PipelineContext(deployment=deployment, role="client")
        chain.run_outbound(ctx)
        assert order == ["first.pass", "second.pass", "second.deferred", "first.deferred"]

    def test_deferred_work_runs_even_when_a_filter_raises(self):
        deployment, _, _ = make_deployment()
        ran = []

        class Defers(BaseFilter):
            def outbound(self, ctx):
                ctx.defer(lambda: ran.append("deferred"))

        class Explodes(BaseFilter):
            def outbound(self, ctx):
                raise SoapFault("Server", "boom")

        chain = FilterChain(outbound=(Defers(), Explodes()), inbound=())
        ctx = PipelineContext(deployment=deployment, role="client")
        with pytest.raises(SoapFault):
            chain.run_outbound(ctx)
        assert ran == ["deferred"]


class TestReliableMessagingFilter:
    def test_client_outbound_stamps_the_epr(self):
        deployment, service, client = make_deployment()
        ctx = PipelineContext.client_request(
            deployment, None, service.epr(), ECHO_ACTION,
            element("{urn:test}Echo", "x"), rm_stamp=("urn:repro:seq-test", 4),
        )
        client.chain.run_outbound(ctx)
        props = dict(ctx.epr.reference_properties)
        assert props[SEQUENCE_ID_HEADER] == "urn:repro:seq-test"
        assert props[MESSAGE_NUMBER_HEADER] == "4"
        # ...and the stamp made it onto the wire headers.
        parsed = MessageHeaders.from_header_element(ctx.request_envelope.header)
        assert (SEQUENCE_ID_HEADER, "urn:repro:seq-test") in parsed.reference_properties

    def test_retransmission_is_answered_from_the_reply_cache(self):
        deployment, service, client = make_deployment()
        container = service.container
        stamp = ("urn:repro:seq-replay", 1)
        first = client.invoke(
            service.epr(), ECHO_ACTION, element("{urn:test}Echo", "one"), rm_stamp=stamp
        )
        assert container.request_log.duplicates == 0
        again = client.invoke(
            service.epr(), ECHO_ACTION, element("{urn:test}Echo", "IGNORED"), rm_stamp=stamp
        )
        assert container.request_log.duplicates == 1
        # The cached reply is returned verbatim: the second body is ignored.
        assert again.text() == first.text() == "one"

    def test_unstamped_requests_bypass_the_cache(self):
        deployment, service, client = make_deployment()
        client.invoke(service.epr(), ECHO_ACTION, element("{urn:test}Echo", "a"))
        client.invoke(service.epr(), ECHO_ACTION, element("{urn:test}Echo", "b"))
        assert len(service.container.request_log) == 0


class TestMustUnderstandFilter:
    def _server_ctx(self, deployment, container, extra_headers):
        headers = MessageHeaders(to="soap://x/y", action=ECHO_ACTION)
        envelope = build_envelope(
            headers.to_elements() + extra_headers, [element("{urn:test}Echo")]
        )
        ctx = PipelineContext.server_request(container, WireMessage.from_envelope(envelope))
        ctx.request_envelope = envelope
        return ctx

    def test_unknown_mandatory_header_faults_directly(self):
        deployment, service, _ = make_deployment()
        mandatory = element(
            "{urn:exotic}Transaction", "tx",
            attrs={f"{{{ns.SOAP}}}mustUnderstand": "1"},
        )
        ctx = self._server_ctx(deployment, service.container, [mandatory])
        with pytest.raises(SoapFault) as excinfo:
            MustUnderstandFilter().inbound(ctx)
        assert excinfo.value.code == "MustUnderstand"
        assert "Transaction" in excinfo.value.reason

    def test_understood_and_optional_headers_pass(self):
        deployment, service, _ = make_deployment()
        understood = element(
            f"{{{ns.WSA}}}FaultTo", "soap://sink",
            attrs={f"{{{ns.SOAP}}}mustUnderstand": "true"},
        )
        optional = element("{urn:exotic}Hint", "h")
        ctx = self._server_ctx(deployment, service.container, [understood, optional])
        MustUnderstandFilter().inbound(ctx)  # no fault

    def test_mustunderstand_fault_precedes_security_verification(self):
        # An unsigned message with an exotic mandatory header, sent into an
        # X.509 deployment: the MustUnderstand fault must win (SOAP 1.1
        # processing order), not the missing-signature fault.
        deployment, service, _ = make_deployment(SecurityMode.X509)
        headers = MessageHeaders(to=service.address, action=ECHO_ACTION)
        mandatory = element(
            "{urn:exotic}Tx", "t", attrs={f"{{{ns.SOAP}}}mustUnderstand": "1"}
        )
        envelope = build_envelope(
            headers.to_elements() + [mandatory], [element("{urn:test}Echo")]
        )
        _, container = deployment.resolve(service.address)
        reply = container.handle(WireMessage.from_envelope(envelope)).parse()
        assert reply.is_fault()
        assert reply.fault().code == "MustUnderstand"


class TestUnsignableContainerFaults:
    """Satellite: a credential-less container under X.509 must fault,
    not silently reply unsigned."""

    def _deployment_with_unsignable_container(self):
        ca = CertificateAuthority.create(seed=7)
        deployment = Deployment(SecurityPolicy(SecurityMode.X509), CostModel(), ca)
        container = deployment.add_container("serverhost", "App", credentials=None)
        from tests.container.test_container import EchoService

        service = EchoService()
        container.add_service(service)
        client = SoapClient(
            deployment, "clienthost", deployment.issue_credentials("alice", seed=21)
        )
        return deployment, service, client

    def test_server_emits_fault_instead_of_unsigned_reply(self):
        deployment, service, client = self._deployment_with_unsignable_container()
        headers = MessageHeaders(to=service.address, action=ECHO_ACTION)
        envelope = build_envelope(headers.to_elements(), [element("{urn:test}Echo", "x")])
        client.security.secure_outgoing(envelope, client.credentials)
        _, container = deployment.resolve(service.address)
        reply = container.handle(WireMessage.from_envelope(envelope)).parse()
        assert reply.is_fault()
        fault = reply.fault()
        assert fault.code == "Server"
        assert "cannot sign response" in fault.reason

    def test_client_surfaces_the_server_side_fault(self):
        _, service, client = self._deployment_with_unsignable_container()
        with pytest.raises(SoapFault, match="cannot sign response") as excinfo:
            client.invoke(service.epr(), ECHO_ACTION, element("{urn:test}Echo", "x"))
        assert excinfo.value.code == "Server"

    def test_tampered_response_still_rejected_client_side(self):
        # The unsigned-fault passthrough must not weaken tamper rejection:
        # a *non-fault* response failing verification still raises the
        # client-side security fault.
        deployment, service, client = make_deployment(SecurityMode.X509)
        original = service.container.handle

        def tamper(message):
            reply = original(message)
            assert ">x<" in reply.text
            return WireMessage(reply.text.replace(">x<", ">tampered<"))

        service.container.handle = tamper
        with pytest.raises(SoapFault, match="response security failure"):
            client.invoke(service.epr(), ECHO_ACTION, element("{urn:test}Echo", "x"))


class TestCostAccountingFilter:
    def test_outbound_serializes_and_charges(self):
        deployment, service, client = make_deployment()
        clock = deployment.network.clock
        ctx = PipelineContext.client_request(
            deployment, None, service.epr(), ECHO_ACTION, element("{urn:test}Echo", "x")
        )
        AddressingFilter().outbound(ctx)
        t0 = clock.now
        CostAccountingFilter().outbound(ctx)
        assert ctx.request_message is not None
        costs = deployment.network.costs
        expected = costs.soap_per_message + costs.xml_serialize_per_kb * ctx.request_message.n_kb
        assert clock.now - t0 == expected

    def test_charges_attribute_to_ledger_categories(self):
        deployment, service, client = make_deployment(SecurityMode.X509)
        metrics = deployment.network.metrics
        metrics.begin("op", deployment.network.clock.now)
        client.invoke(service.epr(), ECHO_ACTION, element("{urn:test}Echo", "x"))
        trace = metrics.end(deployment.network.clock.now)
        for category in (
            "client.send", "server.receive", "security.sign",
            "security.verify", "server.send", "client.receive",
        ):
            assert trace.time_by_category[category] > 0, category
