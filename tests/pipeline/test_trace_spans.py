"""Trace spans: the Figure-1 processing order, recorded as data.

The golden-structure tests pin the span tree for one signed, distributed
counter GetValue round-trip to the paper's processing order — on *both*
stacks, which is the point of the shared pipeline: WSRF and
WS-Transfer provably run the same middleware sequence.
"""

import pytest

from repro.apps.counter.deploy import (
    CounterScenario,
    build_transfer_rig,
    build_wsrf_rig,
)
from repro.container.security import SecurityMode
from repro.sim import Clock
from repro.sim.costs import CostModel
from repro.sim.metrics import SpanRecorder

#: Figure 1 as a span-tree fingerprint: marshal+sign, wire, receive+verify,
#: dispatch, sign+send, wire, receive+verify.
SIGNED_ROUND_TRIP = (
    "client.invoke",
    (
        ("client.send", (("security.sign", ()),)),
        ("wire.request", ()),
        ("server.receive", (("security.verify", ()),)),
        ("dispatch", ()),
        ("server.send", (("security.sign", ()),)),
        ("wire.response", ()),
        ("client.receive", (("security.verify", ()),)),
    ),
)

UNSIGNED_ROUND_TRIP = (
    "client.invoke",
    (
        ("client.send", ()),
        ("wire.request", ()),
        ("server.receive", ()),
        ("dispatch", ()),
        ("server.send", ()),
        ("wire.response", ()),
        ("client.receive", ()),
    ),
)


def _rig(stack: str, mode: SecurityMode):
    scenario = CounterScenario(mode, False, CostModel())
    return build_wsrf_rig(scenario) if stack == "wsrf" else build_transfer_rig(scenario)


class TestGoldenStructure:
    @pytest.mark.parametrize("stack", ("wsrf", "transfer"))
    def test_signed_get_round_trip_matches_figure_1(self, stack):
        rig = _rig(stack, SecurityMode.X509)
        counter = rig.client.create(0)
        tracer = rig.deployment.network.metrics.tracer
        tracer.clear()
        rig.client.get(counter)
        assert tracer.open_depth == 0
        assert tracer.last_root().shape() == SIGNED_ROUND_TRIP

    @pytest.mark.parametrize("stack", ("wsrf", "transfer"))
    def test_unsigned_get_has_no_security_spans(self, stack):
        rig = _rig(stack, SecurityMode.NONE)
        counter = rig.client.create(0)
        tracer = rig.deployment.network.metrics.tracer
        tracer.clear()
        rig.client.get(counter)
        assert tracer.last_root().shape() == UNSIGNED_ROUND_TRIP

    @pytest.mark.parametrize("stack", ("wsrf", "transfer"))
    def test_both_stacks_share_one_processing_model(self, stack):
        """Span *names* are stack-independent — the tentpole's guarantee."""
        rig = _rig(stack, SecurityMode.X509)
        counter = rig.client.create(0)
        tracer = rig.deployment.network.metrics.tracer
        tracer.clear()
        rig.client.set(counter, 3)
        names = [span.name for _, span in tracer.last_root().walk()]
        assert names[0] == "client.invoke"
        assert "stack" not in " ".join(names)  # no stack-specific stages


class TestSpanTimings:
    def test_spans_cover_the_whole_operation(self):
        rig = _rig("wsrf", SecurityMode.X509)
        counter = rig.client.create(0)
        network = rig.deployment.network
        network.metrics.tracer.clear()
        t0 = network.clock.now
        rig.client.get(counter)
        root = network.metrics.tracer.last_root()
        assert root.started_at == t0
        assert root.ended_at == network.clock.now
        assert root.elapsed_ms > 0
        # Children partition the parent: each child inside the root window.
        for _, span in root.walk():
            assert root.started_at <= span.started_at <= span.ended_at <= root.ended_at

    def test_dispatch_nests_nested_outcalls(self):
        """A server out-call's client.invoke appears under dispatch."""
        from tests.helpers import fresh_vo

        vo = fresh_vo("wsrf", mode=SecurityMode.X509)
        tracer = vo.deployment.network.metrics.tracer
        tracer.clear()
        vo.client.get_available_resources("sort")
        root = tracer.last_root()
        dispatch = root.find("dispatch")
        assert dispatch is not None
        assert dispatch.find("client.invoke") is not None  # broker → site outcall


class TestSpanRecorder:
    def test_nesting_and_roots(self):
        clock = Clock()
        rec = SpanRecorder()
        with rec.span("outer", clock):
            clock.charge(5.0)
            with rec.span("inner", clock):
                clock.charge(2.0)
        assert [s.name for s in rec.roots] == ["outer"]
        assert rec.roots[0].shape() == ("outer", (("inner", ()),))
        assert rec.roots[0].elapsed_ms == 7.0
        assert rec.roots[0].children[0].elapsed_ms == 2.0

    def test_exception_closes_abandoned_spans(self):
        clock = Clock()
        rec = SpanRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("outer", clock):
                rec.push("abandoned", clock.now)
                raise RuntimeError("boom")
        assert rec.open_depth == 0
        assert rec.last_root().shape() == ("outer", (("abandoned", ()),))

    def test_close_by_identity(self):
        clock = Clock()
        rec = SpanRecorder()
        outer = rec.push("outer", clock.now)
        rec.push("left-open", clock.now)
        clock.charge(3.0)
        rec.close(outer, clock.now)
        assert rec.open_depth == 0
        assert rec.last_root() is outer
        rec.close(outer, clock.now)  # idempotent once closed
        assert len(rec.roots) == 1

    def test_to_dict_round_trips_structure(self):
        clock = Clock()
        rec = SpanRecorder()
        with rec.span("op", clock, detail="urn:test/Get"):
            clock.charge(1.0)
        data = rec.last_root().to_dict()
        assert data["name"] == "op"
        assert data["detail"] == "urn:test/Get"
        assert data["elapsed_ms"] == 1.0
        assert data["children"] == []
