"""Durability: resources survive a container restart on persistent backends.

WSRF.NET "contains built-in support for using an XML database ... or an
in-memory document collection backend" — the point of a database backend is
that WS-Resources outlive the hosting process.  We simulate a restart by
rebuilding the whole deployment over the same file-backend directory.
"""

import pytest

from repro.wsrf import RESOURCE_ID, ResourceHome
from repro.xmldb import FileBackend
from repro.xmllib import element

from tests.helpers import make_client, make_deployment, server_container
from tests.wsrf.conftest import BUMP, NS, CounterService, create_counter


def build_rig(tmp_path):
    deployment = make_deployment()
    container = server_container(deployment)
    home = ResourceHome(
        "counters", deployment.network, backend=FileBackend(str(tmp_path))
    )
    service = CounterService(home)
    container.add_service(service)
    client = make_client(deployment)
    return deployment, service, client


class TestRestart:
    def test_resource_survives_restart(self, tmp_path):
        _, service, client = build_rig(tmp_path)
        epr = create_counter(service, client, initial=7, label="durable")
        client.invoke(epr, BUMP, element(f"{{{NS}}}Bump"))

        # "Restart": a brand-new deployment over the same backend files.
        _, service2, client2 = build_rig(tmp_path)
        epr2 = service2.resource_epr(epr.property(RESOURCE_ID))
        response = client2.invoke(epr2, BUMP, element(f"{{{NS}}}Bump"))
        assert response.text() == "9"

    def test_new_ids_do_not_collide_after_restart(self, tmp_path):
        _, service, client = build_rig(tmp_path)
        first = create_counter(service, client, initial=1)

        _, service2, client2 = build_rig(tmp_path)
        second = create_counter(service2, client2, initial=2)
        assert first.property(RESOURCE_ID) != second.property(RESOURCE_ID)
        # Both remain independently addressable.
        assert service2.home.load(first.property(RESOURCE_ID)).text().strip().startswith("1")

    def test_destroyed_resource_stays_destroyed(self, tmp_path):
        from repro.soap import SoapFault
        from repro.wsrf.lifetime import actions as rl_actions
        from repro.xmllib import ns

        _, service, client = build_rig(tmp_path)
        epr = create_counter(service, client)
        client.invoke(epr, rl_actions.DESTROY, element(f"{{{ns.WSRF_RL}}}Destroy"))

        _, service2, client2 = build_rig(tmp_path)
        epr2 = service2.resource_epr(epr.property(RESOURCE_ID))
        with pytest.raises(SoapFault, match="unknown"):
            client2.invoke(epr2, BUMP, element(f"{{{NS}}}Bump"))

    def test_memory_backend_does_not_survive(self, tmp_path):
        """The contrast: in-memory resources die with the deployment."""
        from repro.soap import SoapFault

        deployment, service, client = (None, None, None)
        d1 = make_deployment()
        c1 = server_container(d1)
        s1 = CounterService(ResourceHome("counters", d1.network))
        c1.add_service(s1)
        cl1 = make_client(d1)
        epr = create_counter(s1, cl1, initial=7)

        d2 = make_deployment()
        c2 = server_container(d2)
        s2 = CounterService(ResourceHome("counters", d2.network))
        c2.add_service(s2)
        cl2 = make_client(d2)
        epr2 = s2.resource_epr(epr.property(RESOURCE_ID))
        with pytest.raises(SoapFault, match="unknown"):
            cl2.invoke(epr2, BUMP, element(f"{{{NS}}}Bump"))
