"""Unit tests for the bench harness: reporting + measurement plumbing."""

import pytest

from repro.bench import figure_to_csv, format_bar_chart, format_figure_table
from repro.bench.runner import measure_virtual


FIGURE = {
    "series A": {"Get": 1.0, "Set": 2.5},
    "series B": {"Get": 3.0, "Set": 4.0, "Extra": 9.0},
}


class TestFigureTable:
    def test_all_ops_in_header(self):
        text = format_figure_table("T", FIGURE)
        assert "Get" in text and "Set" in text and "Extra" in text

    def test_missing_cells_dashed(self):
        text = format_figure_table("T", FIGURE)
        row = next(line for line in text.splitlines() if line.startswith("series A"))
        assert row.rstrip().endswith("-")

    def test_values_formatted(self):
        text = format_figure_table("T", FIGURE)
        assert "2.5" in text and "9.0" in text

    def test_title_underlined(self):
        text = format_figure_table("My Title", FIGURE)
        lines = text.splitlines()
        assert lines[0] == "My Title"
        assert lines[1] == "=" * len("My Title")


class TestCsv:
    def test_header_and_rows(self):
        csv = figure_to_csv(FIGURE)
        lines = csv.strip().splitlines()
        assert lines[0] == "series,Get,Set,Extra"
        assert lines[1].startswith("series A,1.000,2.500,")
        assert lines[1].endswith(",")  # missing Extra is empty

    def test_round_trips_through_split(self):
        csv = figure_to_csv(FIGURE)
        rows = [line.split(",") for line in csv.strip().splitlines()]
        assert float(rows[2][3]) == 9.0


class TestBarChart:
    def test_bars_proportional(self):
        chart = format_bar_chart("C", {"small": 10.0, "big": 50.0}, width=50)
        lines = chart.splitlines()
        small_bar = lines[1].count("#")
        big_bar = lines[2].count("#")
        assert big_bar == 50 and small_bar == 10

    def test_zero_values_no_bar(self):
        chart = format_bar_chart("C", {"nil": 0.0, "one": 1.0})
        assert "|" in chart

    def test_empty_ok(self):
        assert format_bar_chart("C", {}) == "C"


class TestMeasureVirtual:
    def test_trace_covers_exactly_the_operation(self):
        from repro.apps.counter import CounterScenario, build_wsrf_rig

        rig = build_wsrf_rig(CounterScenario())
        counter = rig.client.create(0)
        before = rig.deployment.network.clock.now
        trace = measure_virtual(rig.deployment, "get", lambda: rig.client.get(counter))
        after = rig.deployment.network.clock.now
        assert trace.started_at == before
        assert trace.ended_at == after
        assert trace.elapsed_ms == after - before
        assert trace.messages == 2

    def test_exception_does_not_leak_open_trace(self):
        from repro.apps.counter import CounterScenario, build_wsrf_rig

        rig = build_wsrf_rig(CounterScenario())
        with pytest.raises(ZeroDivisionError):
            measure_virtual(rig.deployment, "boom", lambda: 1 / 0)
        # The recorder is stuck with an active trace; document the contract:
        with pytest.raises(RuntimeError):
            rig.deployment.network.metrics.begin("next", 0)
