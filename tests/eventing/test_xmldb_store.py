"""The XML-database subscription store: API parity with the flat file,
index-maintained Source lookups, and its use in the indexed VO."""

import pytest

from repro.eventing.store import (
    FlatFileSubscriptionStore,
    SubscriptionRecord,
    XmlDbSubscriptionStore,
)
from repro.sim import CostModel, Network


def record(store, ident=None, source="soap://node1/Node/Source", expires=None):
    rec = SubscriptionRecord(
        identifier=ident or store.new_identifier(),
        source_address=source,
        notify_to="soap://client/Consumer",
        expires=expires,
    )
    store.add(rec)
    return rec


@pytest.fixture()
def store():
    return XmlDbSubscriptionStore(Network(CostModel()))


class TestApiParity:
    """Every FlatFileSubscriptionStore behaviour, on the DB-backed store."""

    def test_add_get_roundtrip(self, store):
        rec = record(store)
        assert store.get(rec.identifier) == rec
        assert store.get("uuid:sub-nope") is None
        assert len(store) == 1

    def test_duplicate_id_rejected(self, store):
        rec = record(store)
        with pytest.raises(ValueError, match="duplicate"):
            store.add(rec)

    def test_remove(self, store):
        rec = record(store)
        assert store.remove(rec.identifier) is True
        assert store.remove(rec.identifier) is False
        assert len(store) == 0

    def test_renew(self, store):
        rec = record(store, expires=100.0)
        renewed = store.renew(rec.identifier, 500.0)
        assert renewed is not None and renewed.expires == 500.0
        assert store.get(rec.identifier).expires == 500.0
        assert store.renew("uuid:sub-nope", 1.0) is None

    def test_for_source(self, store):
        a = record(store, source="soap://node1/Node/Source")
        record(store, source="soap://node2/Node/Source")
        b = record(store, source="soap://node1/Node/Source")
        got = store.for_source("soap://node1/Node/Source")
        assert {r.identifier for r in got} == {a.identifier, b.identifier}

    def test_prune_expired(self, store):
        dead = record(store, expires=10.0)
        live = record(store, expires=None)
        dropped = store.prune_expired(now=50.0)
        assert [r.identifier for r in dropped] == [dead.identifier]
        assert store.get(live.identifier) is not None
        assert len(store) == 1

    def test_matches_flat_file_semantics(self):
        network = Network(CostModel())
        flat = FlatFileSubscriptionStore(network)
        db = XmlDbSubscriptionStore(network)
        for source in ("soap://n1/S", "soap://n2/S", "soap://n1/S"):
            ident = flat.new_identifier()
            for s in (flat, db):
                s.add(
                    SubscriptionRecord(
                        identifier=ident,
                        source_address=source,
                        notify_to="soap://client/C",
                    )
                )
        for source in ("soap://n1/S", "soap://n2/S", "soap://n3/S"):
            assert [r.identifier for r in flat.for_source(source)] == [
                r.identifier for r in db.for_source(source)
            ]


class TestIndexedLookup:
    def test_source_index_is_declared_and_maintained(self, store):
        from repro.xmllib import ns

        index = store.collection.find_index(
            XmlDbSubscriptionStore.SOURCE_INDEX_PATH, {"es": ns.EVENTING_STORE}
        )
        assert index is not None
        rec = record(store, source="soap://n1/S")
        assert index.lookup("soap://n1/S") == {rec.identifier}
        store.remove(rec.identifier)
        assert index.lookup("soap://n1/S") == set()

    def test_for_source_cost_independent_of_other_sources(self):
        def lookup_cost(n_other: int) -> float:
            network = Network(CostModel())
            store = XmlDbSubscriptionStore(network)
            record(store, source="soap://hot/S")
            for i in range(n_other):
                record(store, source=f"soap://cold{i:03d}/S")
            before = network.clock.now
            store.for_source("soap://hot/S")
            return network.clock.now - before

        assert lookup_cost(50) == pytest.approx(lookup_cost(2), abs=1e-9)

    def test_unquotable_source_falls_back(self, store):
        awkward = "soap://we\"ird'/S"
        rec = record(store, source=awkward)
        assert [r.identifier for r in store.for_source(awkward)] == [rec.identifier]
