"""WS-Eventing end-to-end: subscribe, fire, renew, expire, unsubscribe."""

import pytest

from repro.container import ServiceSkeleton, web_method
from repro.eventing import (
    EventFilter,
    EventingConsumer,
    EventSourceMixin,
    EventSubscriptionManagerService,
    FlatFileSubscriptionStore,
    NotificationManager,
    actions,
)
from repro.soap import SoapFault
from repro.xmllib import element, ns, text_of

from tests.helpers import make_client, make_deployment, server_container

NS = "urn:test:esensor"
EMIT = f"{NS}/Emit"


class EventfulService(EventSourceMixin, ServiceSkeleton):
    service_name = "Eventful"

    def __init__(self, manager: EventSubscriptionManagerService):
        super().__init__()
        self.event_subscription_manager = manager
        self.notifications = NotificationManager(manager.store)

    @web_method(EMIT)
    def emit(self, context):
        topic = text_of(context.body.find_local("Topic"), "")
        value = text_of(context.body.find_local("Value"), "0")
        delivered = self.notifications.fire(self, element(f"{{{NS}}}Reading", value), topic)
        return element(f"{{{NS}}}EmitResponse", str(delivered))


@pytest.fixture()
def rig():
    deployment = make_deployment()
    container = server_container(deployment)
    store = FlatFileSubscriptionStore(deployment.network)
    manager = EventSubscriptionManagerService(store)
    container.add_service(manager)
    source = EventfulService(manager)
    container.add_service(source)
    client = make_client(deployment)
    consumer = EventingConsumer(deployment, "client")
    return deployment, source, manager, client, consumer


def subscribe(client, source, consumer, *, expires="", filter_expression="", end_to=""):
    from repro.addressing import EndpointReference

    body = element(
        f"{{{ns.WSE}}}Subscribe",
        element(
            f"{{{ns.WSE}}}Delivery",
            consumer.epr.to_xml(f"{{{ns.WSE}}}NotifyTo"),
        ),
    )
    if end_to:
        body.append(EndpointReference.create(end_to).to_xml(f"{{{ns.WSE}}}EndTo"))
    if expires:
        body.append(element(f"{{{ns.WSE}}}Expires", expires))
    if filter_expression:
        body.append(element(f"{{{ns.WSE}}}Filter", filter_expression))
    response = client.invoke(source.epr(), actions.SUBSCRIBE, body)
    manager_el = response.find(f"{{{ns.WSE}}}SubscriptionManager")
    return EndpointReference.from_xml(manager_el)


def emit(client, source, topic="", value="1"):
    response = client.invoke(
        source.epr(),
        EMIT,
        element(f"{{{NS}}}Emit", element(f"{{{NS}}}Topic", topic), element(f"{{{NS}}}Value", value)),
    )
    return int(response.text())


class TestSubscribeAndPush:
    def test_event_reaches_consumer(self, rig):
        _, source, _, client, consumer = rig
        subscribe(client, source, consumer)
        assert emit(client, source, value="9") == 1
        assert len(consumer.received) == 1
        assert consumer.received[0].text() == "9"

    def test_no_subscription_no_delivery(self, rig):
        _, source, _, client, consumer = rig
        assert emit(client, source) == 0

    def test_topic_filter(self, rig):
        _, source, _, client, consumer = rig
        subscribe(client, source, consumer, filter_expression=EventFilter.topic_filter("alerts"))
        assert emit(client, source, topic="readings") == 0
        assert emit(client, source, topic="alerts") == 1

    def test_content_filter(self, rig):
        _, source, _, client, consumer = rig
        subscribe(client, source, consumer, filter_expression="Reading[. > 10]")
        assert emit(client, source, value="5") == 0
        assert emit(client, source, value="20") == 1

    def test_per_resource_subscription_via_filter(self, rig):
        """§3.2: "a filter can be used for registering a subscription per
        resource" — match an id carried inside the event payload."""
        _, source, manager, client, consumer = rig
        subscribe(client, source, consumer, filter_expression="Reading[@rid='r1']")
        evt = element(f"{{{NS}}}Reading", "1", attrs={"rid": "r2"})
        assert source.notifications.fire(source, evt) == 0
        evt = element(f"{{{NS}}}Reading", "1", attrs={"rid": "r1"})
        assert source.notifications.fire(source, evt) == 1

    def test_missing_delivery_faults(self, rig):
        _, source, _, client, _ = rig
        with pytest.raises(SoapFault, match="no Delivery"):
            client.invoke(source.epr(), actions.SUBSCRIBE, element(f"{{{ns.WSE}}}Subscribe"))

    def test_non_push_mode_rejected(self, rig):
        _, source, _, client, consumer = rig
        body = element(
            f"{{{ns.WSE}}}Subscribe",
            element(
                f"{{{ns.WSE}}}Delivery",
                consumer.epr.to_xml(f"{{{ns.WSE}}}NotifyTo"),
                attrs={"Mode": "urn:custom-batching"},
            ),
        )
        with pytest.raises(SoapFault, match="unsupported delivery mode"):
            client.invoke(source.epr(), actions.SUBSCRIBE, body)

    def test_missing_notify_to_faults(self, rig):
        _, source, _, client, _ = rig
        body = element(f"{{{ns.WSE}}}Subscribe", element(f"{{{ns.WSE}}}Delivery"))
        with pytest.raises(SoapFault, match="requires NotifyTo"):
            client.invoke(source.epr(), actions.SUBSCRIBE, body)

    def test_bad_filter_dialect_rejected(self, rig):
        _, source, _, client, consumer = rig
        body = element(
            f"{{{ns.WSE}}}Subscribe",
            element(f"{{{ns.WSE}}}Delivery", consumer.epr.to_xml(f"{{{ns.WSE}}}NotifyTo")),
            element(f"{{{ns.WSE}}}Filter", "x", attrs={"Dialect": "urn:other"}),
        )
        with pytest.raises(SoapFault, match="unsupported filter dialect"):
            client.invoke(source.epr(), actions.SUBSCRIBE, body)


class TestSubscriptionManager:
    def test_get_status_reports_expiry(self, rig):
        deployment, source, _, client, consumer = rig
        deadline = deployment.network.clock.now + 60_000
        sub = subscribe(client, source, consumer, expires=repr(deadline))
        response = client.invoke(sub, actions.GET_STATUS, element(f"{{{ns.WSE}}}GetStatus"))
        assert response.find(f"{{{ns.WSE}}}Expires").text() == repr(deadline)

    def test_get_status_infinite(self, rig):
        _, source, _, client, consumer = rig
        sub = subscribe(client, source, consumer)
        response = client.invoke(sub, actions.GET_STATUS, element(f"{{{ns.WSE}}}GetStatus"))
        assert response.find(f"{{{ns.WSE}}}Expires").text() == "infinity"

    def test_renew_extends_lifetime(self, rig):
        deployment, source, _, client, consumer = rig
        deadline = deployment.network.clock.now + 1000
        sub = subscribe(client, source, consumer, expires=repr(deadline))
        later = deadline + 1_000_000
        client.invoke(
            sub, actions.RENEW,
            element(f"{{{ns.WSE}}}Renew", element(f"{{{ns.WSE}}}Expires", repr(later))),
        )
        deployment.network.clock.advance_to(deadline + 10)
        assert emit(client, source) == 1

    def test_expired_subscription_dropped(self, rig):
        deployment, source, _, client, consumer = rig
        deadline = deployment.network.clock.now + 1000
        subscribe(client, source, consumer, expires=repr(deadline))
        deployment.network.clock.advance_to(deadline + 1)
        assert emit(client, source) == 0

    def test_expired_get_status_faults(self, rig):
        deployment, source, _, client, consumer = rig
        deadline = deployment.network.clock.now + 1000
        sub = subscribe(client, source, consumer, expires=repr(deadline))
        deployment.network.clock.advance_to(deadline + 1)
        with pytest.raises(SoapFault, match="expired"):
            client.invoke(sub, actions.GET_STATUS, element(f"{{{ns.WSE}}}GetStatus"))

    def test_unsubscribe_stops_delivery(self, rig):
        _, source, _, client, consumer = rig
        sub = subscribe(client, source, consumer)
        client.invoke(sub, actions.UNSUBSCRIBE, element(f"{{{ns.WSE}}}Unsubscribe"))
        assert emit(client, source) == 0

    def test_unsubscribe_unknown_faults(self, rig):
        _, source, manager, client, _ = rig
        bogus = manager.epr({f"{{{ns.WSE}}}Identifier": "uuid:sub-none"})
        with pytest.raises(SoapFault, match="unknown subscription"):
            client.invoke(bogus, actions.UNSUBSCRIBE, element(f"{{{ns.WSE}}}Unsubscribe"))

    def test_subscription_end_sent_to_end_to(self, rig):
        deployment, source, _, client, consumer = rig
        end_consumer = EventingConsumer(deployment, "client")
        deadline = deployment.network.clock.now + 500
        subscribe(client, source, consumer, expires=repr(deadline), end_to=end_consumer.epr.address)
        deployment.network.clock.advance_to(deadline + 1)
        emit(client, source)  # triggers prune + SubscriptionEnd
        assert len(end_consumer.ended) == 1

    def test_expires_in_past_rejected(self, rig):
        _, source, _, client, consumer = rig
        with pytest.raises(SoapFault, match="not in the future"):
            subscribe(client, source, consumer, expires="0.0")


class TestFlatFileStore:
    def test_persists_to_real_file(self, rig, tmp_path):
        deployment, _, _, _, _ = rig
        path = str(tmp_path / "subs.xml")
        store = FlatFileSubscriptionStore(deployment.network, path)
        from repro.eventing import SubscriptionRecord

        store.add(SubscriptionRecord("id1", "soap://s/A", "soap://c/sink"))
        again = FlatFileSubscriptionStore.__new__(FlatFileSubscriptionStore)
        again.network = deployment.network
        again.path = path
        assert again.get("id1").notify_to == "soap://c/sink"

    def test_duplicate_id_rejected(self, rig):
        deployment, _, manager, _, _ = rig
        from repro.eventing import SubscriptionRecord

        manager.store.add(SubscriptionRecord("dup", "s", "n"))
        with pytest.raises(ValueError, match="duplicate"):
            manager.store.add(SubscriptionRecord("dup", "s", "n"))

    def test_store_io_charges_time(self, rig):
        deployment, _, manager, _, _ = rig
        from repro.eventing import SubscriptionRecord

        t0 = deployment.network.clock.now
        manager.store.add(SubscriptionRecord("x", "s", "n"))
        assert deployment.network.clock.now > t0


class TestWrapDeliveryMode:
    """The spec's delivery-mode extension point, exercised — and the
    §2.3 interop warning about custom extensions."""

    def _subscribe_with_mode(self, client, source, consumer, mode):
        body = element(
            f"{{{ns.WSE}}}Subscribe",
            element(
                f"{{{ns.WSE}}}Delivery",
                consumer.epr.to_xml(f"{{{ns.WSE}}}NotifyTo"),
                attrs={"Mode": mode},
            ),
        )
        return client.invoke(source.epr(), actions.SUBSCRIBE, body)

    def test_wrap_mode_wraps_events(self, rig):
        from repro.eventing.source import WRAP_MODE

        _, source, _, client, consumer = rig
        self._subscribe_with_mode(client, source, consumer, WRAP_MODE)
        assert emit(client, source, topic="readings", value="5") == 1
        body = consumer.received[0]
        assert body.tag.local == "Wrapper"
        assert body.get("Topic") == "readings"
        assert body.get("Subscription", "").startswith("uuid:sub-")
        inner = next(body.element_children())
        assert inner.text() == "5"

    def test_push_mode_unaffected(self, rig):
        _, source, _, client, consumer = rig
        subscribe(client, source, consumer)
        emit(client, source, value="9")
        assert consumer.received[0].tag.local == "Reading"

    def test_custom_mode_is_an_interop_hazard(self, rig):
        """A subscriber asking a *different* implementation for our Wrap
        mode gets refused — custom extensions don't travel."""
        from repro.eventing.source import WRAP_MODE

        class StrictSource(EventfulService):
            service_name = "StrictSource"

            def wse_subscribe(self, context):
                delivery = context.body.find(f"{{{ns.WSE}}}Delivery")
                if delivery is not None and delivery.get("Mode") not in (
                    None,
                    "http://schemas.xmlsoap.org/ws/2004/08/eventing/DeliveryModes/Push",
                ):
                    raise SoapFault("Client", "unsupported delivery mode")
                return super().wse_subscribe(context)

        deployment, _, manager, client, consumer = rig
        from tests.helpers import server_container

        container = server_container(deployment, host="other-impl")
        strict = StrictSource(manager)
        # Re-register the overridden subscribe (subclass method shadows).
        strict._operations[actions.SUBSCRIBE] = strict.wse_subscribe
        container.add_service(strict)
        with pytest.raises(SoapFault, match="unsupported delivery mode"):
            self._subscribe_with_mode(client, strict, consumer, WRAP_MODE)
