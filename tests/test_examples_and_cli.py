"""Smoke tests: every example and the figure CLI stay runnable."""

import importlib
import io
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES = [
    "quickstart",
    "grid_job_wsrf",
    "grid_job_transfer",
    "brokered_notification",
    "anatomy_of_a_request",
    "figure5_sequence",
    "schema_discovery",
    "lossy_network",
]


@pytest.fixture(autouse=True)
def examples_on_path():
    import os

    examples_dir = os.path.join(os.path.dirname(__file__), "..", "examples")
    sys.path.insert(0, examples_dir)
    yield
    sys.path.remove(examples_dir)


class TestExamples:
    @pytest.mark.parametrize("name", EXAMPLES)
    def test_example_runs_and_prints(self, name):
        module = importlib.import_module(name)
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            module.main()
        assert len(buffer.getvalue().strip()) > 50

    def test_quickstart_shows_notification(self):
        module = importlib.import_module("quickstart")
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            module.main()
        assert "CounterValueChanged" in buffer.getvalue()

    def test_lossy_network_shows_closed_ledger_and_dead_letter(self):
        module = importlib.import_module("lossy_network")
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            module.main()
        out = buffer.getvalue()
        assert "ledger closes" in out
        assert "dead-lettered delivery" in out
        assert "consumer endpoint gone" in out

    def test_figure5_sequence_shows_outcalls(self):
        module = importlib.import_module("figure5_sequence")
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            module.main()
        out = buffer.getvalue()
        assert "server" in out and "out-calls" in out


class TestCli:
    def run_cli(self, *args):
        from repro.__main__ import main

        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = main(list(args))
        return code, buffer.getvalue()

    def test_fig2(self):
        code, out = self.run_cli("fig2")
        assert code == 0
        assert "Figure 2" in out and "WSRF.NET" in out

    def test_multiple_figures(self):
        code, out = self.run_cli("fig2", "fig4")
        assert code == 0
        assert "Figure 2" in out and "Figure 4" in out

    def test_unknown_figure_exits_nonzero(self):
        code, _ = self.run_cli("fig99")
        assert code == 2
