"""Interoperability between two independent WS-Transfer implementations.

Reproduces §2.3/§3.3's argument: clients that stick to the spec core and
keep EPRs opaque interoperate across implementations; clients relying on
custom extensions (EPR naming conventions, out-of-band Put) do not.
"""

import pytest

from repro.addressing import EndpointReference
from repro.apps.counter.clients import TransferCounterClient
from repro.soap import SoapFault
from repro.transfer import TransferResourceService, actions
from repro.transfer.alt import AltTransferService
from repro.xmldb import Collection
from repro.xmllib import element, ns

from tests.helpers import make_client, make_deployment, server_container


@pytest.fixture()
def rig():
    """Both implementations deployed side by side in one VO."""
    deployment = make_deployment()
    container_a = server_container(deployment, host="team-a")
    main = TransferResourceService(Collection("main", deployment.network))
    container_a.add_service(main)
    container_b = server_container(deployment, host="team-b")
    alt = AltTransferService()
    container_b.add_service(alt)
    client = make_client(deployment)
    return deployment, main, alt, client


def spec_only_workflow(client, service_address):
    """A client using only spec-defined messages and opaque EPRs."""
    response = client.invoke(
        EndpointReference.create(service_address),
        actions.CREATE,
        element(f"{{{ns.WXF}}}Create", element("{urn:app}Doc", element("{urn:app}V", "1"))),
    )
    created = response.find(f"{{{ns.WXF}}}ResourceCreated")
    epr = EndpointReference.from_xml(created.find_local("EndpointReference"))

    got = client.invoke(epr, actions.GET, element(f"{{{ns.WXF}}}Get"))
    assert got.find("{urn:app}Doc").find("{urn:app}V").text() == "1"

    client.invoke(
        epr, actions.PUT,
        element(f"{{{ns.WXF}}}Put", element("{urn:app}Doc", element("{urn:app}V", "2"))),
    )
    got = client.invoke(epr, actions.GET, element(f"{{{ns.WXF}}}Get"))
    assert got.find("{urn:app}Doc").find("{urn:app}V").text() == "2"

    client.invoke(epr, actions.DELETE, element(f"{{{ns.WXF}}}Delete"))
    with pytest.raises(SoapFault):
        client.invoke(epr, actions.GET, element(f"{{{ns.WXF}}}Get"))


class TestSpecCoreInteroperates:
    def test_spec_only_client_works_on_main(self, rig):
        _, main, _, client = rig
        spec_only_workflow(client, main.address)

    def test_spec_only_client_works_on_alt(self, rig):
        """Same client bytes, the other team's implementation."""
        _, _, alt, client = rig
        spec_only_workflow(client, alt.address)

    def test_counter_client_survives_the_swap(self, rig):
        """The §4.1 counter proxy keeps EPRs opaque, so it can be re-aimed
        at the alternative implementation and still work (Create/Get/Set/
        Delete; eventing excluded — Plumbtree implements none)."""
        _, _, alt, client = rig
        proxy = TransferCounterClient(client, alt.address)
        counter = proxy.create(initial=3)
        assert proxy.get(counter) == 3
        proxy.set(counter, 8)
        assert proxy.get(counter) == 8
        proxy.delete(counter)
        with pytest.raises(SoapFault):
            proxy.get(counter)


class TestCustomExtensionsBreak:
    def test_epr_naming_convention_breaks(self, rig):
        """The Grid-in-a-Box availability query builds an EPR by the
        "1<app>" convention — service-specific rules the other
        implementation has never heard of."""
        from repro.transfer.service import TRANSFER_RESOURCE_ID

        _, _, alt, client = rig
        convention_epr = EndpointReference.create(alt.address).with_property(
            TRANSFER_RESOURCE_ID, "1sort"
        )
        with pytest.raises(SoapFault, match="unknown resource"):
            client.invoke(convention_epr, actions.GET, element(f"{{{ns.WXF}}}Get"))

    def test_out_of_band_put_breaks(self, rig):
        """The main implementation lets Put create a resource out of band;
        Plumbtree (spec-legally) refuses — same message, different fate."""
        from repro.transfer.service import TRANSFER_RESOURCE_ID

        _, main, alt, client = rig
        body = element(f"{{{ns.WXF}}}Put", element("{urn:app}Doc", "x"))

        main_epr = EndpointReference.create(main.address).with_property(
            TRANSFER_RESOURCE_ID, "byput-7"
        )
        client.invoke(main_epr, actions.PUT, body)  # works

        alt_epr = EndpointReference.create(alt.address).with_property(
            TRANSFER_RESOURCE_ID, "byput-7"
        )
        with pytest.raises(SoapFault, match="unknown resource"):
            client.invoke(alt_epr, actions.PUT, body)

    def test_eventing_subscribe_not_universal(self, rig):
        """The counter client's subscribe relies on WS-Eventing — outside
        WS-Transfer's scope, absent from the other implementation."""
        from repro.eventing.source import actions as wse_actions

        _, _, alt, client = rig
        with pytest.raises(SoapFault, match="does not support action"):
            client.invoke(
                EndpointReference.create(alt.address),
                wse_actions.SUBSCRIBE,
                element(f"{{{ns.WSE}}}Subscribe"),
            )

    def test_foreign_id_property_tolerated_by_liberal_parser(self, rig):
        """Plumbtree is liberal in what it accepts: an EPR carrying the
        main implementation's ResourceID property name still resolves —
        one-directional tolerance, not interoperability."""
        from repro.transfer.service import TRANSFER_RESOURCE_ID

        _, _, alt, client = rig
        response = client.invoke(
            EndpointReference.create(alt.address),
            actions.CREATE,
            element(f"{{{ns.WXF}}}Create", element("{urn:app}Doc", "x")),
        )
        created = response.find(f"{{{ns.WXF}}}ResourceCreated")
        epr = EndpointReference.from_xml(created.find_local("EndpointReference"))
        from repro.transfer.alt import ALT_RESOURCE_ID

        key = epr.property(ALT_RESOURCE_ID)
        relabelled = EndpointReference.create(alt.address).with_property(
            TRANSFER_RESOURCE_ID, key
        )
        got = client.invoke(relabelled, actions.GET, element(f"{{{ns.WXF}}}Get"))
        assert got.find("{urn:app}Doc") is not None
