"""WS-Transfer: the four operations end-to-end."""

import pytest

from repro.addressing import EndpointReference
from repro.soap import SoapFault
from repro.transfer import TRANSFER_RESOURCE_ID, TransferResourceService, actions
from repro.xmldb import Collection
from repro.xmllib import element, ns

from tests.helpers import make_client, make_deployment, server_container


@pytest.fixture()
def rig():
    deployment = make_deployment()
    container = server_container(deployment)
    service = TransferResourceService(Collection("resources", deployment.network))
    container.add_service(service)
    client = make_client(deployment)
    return deployment, service, client


def representation(value="0"):
    return element("{urn:app}Counter", element("{urn:app}Value", value))


def create(client, service, rep=None):
    response = client.invoke(
        service.epr(), actions.CREATE, element(f"{{{ns.WXF}}}Create", rep or representation())
    )
    created = response.find(f"{{{ns.WXF}}}ResourceCreated")
    return EndpointReference.from_xml(created.find_local("EndpointReference"))


class TestCreate:
    def test_create_returns_epr_with_guid(self, rig):
        _, service, client = rig
        epr = create(client, service)
        key = epr.property(TRANSFER_RESOURCE_ID)
        assert key is not None and key.startswith("resources-")

    def test_successive_creates_get_distinct_names(self, rig):
        _, service, client = rig
        a = create(client, service)
        b = create(client, service)
        assert a.property(TRANSFER_RESOURCE_ID) != b.property(TRANSFER_RESOURCE_ID)

    def test_create_stores_representation_unmodified(self, rig):
        _, service, client = rig
        epr = create(client, service, representation("41"))
        stored = service.collection.read(epr.property(TRANSFER_RESOURCE_ID))
        assert stored.find("{urn:app}Value").text() == "41"

    def test_create_without_representation_faults(self, rig):
        _, service, client = rig
        with pytest.raises(SoapFault, match="no resource representation"):
            client.invoke(service.epr(), actions.CREATE, element(f"{{{ns.WXF}}}Create"))

    def test_create_modified_representation_returned(self, rig):
        """A service may alter the representation and must return it then."""

        class Stamping(TransferResourceService):
            service_name = "Stamping"

            def process_create(self, rep, context):
                rep.set("stamped", "yes")
                return rep, rep.copy(), None

        deployment, _, client = rig
        container = server_container(deployment, host="h2")
        service = Stamping(Collection("stamped", deployment.network))
        container.add_service(service)
        response = client.invoke(
            service.epr(), actions.CREATE, element(f"{{{ns.WXF}}}Create", representation())
        )
        created = response.find(f"{{{ns.WXF}}}ResourceCreated")
        returned = created.find("{urn:app}Counter")
        assert returned is not None and returned.get("stamped") == "yes"


class TestGet:
    def test_get_returns_snapshot(self, rig):
        _, service, client = rig
        epr = create(client, service, representation("7"))
        response = client.invoke(epr, actions.GET, element(f"{{{ns.WXF}}}Get"))
        counter = response.find("{urn:app}Counter")
        assert counter.find("{urn:app}Value").text() == "7"

    def test_get_same_schema_as_create(self, rig):
        """The client expects Get's schema to equal what it gave Create."""
        _, service, client = rig
        original = representation("3")
        epr = create(client, service, original)
        response = client.invoke(epr, actions.GET, element(f"{{{ns.WXF}}}Get"))
        assert response.find("{urn:app}Counter").structurally_equal(original)

    def test_get_unknown_resource_faults(self, rig):
        _, service, client = rig
        epr = service.resource_epr("resources-99999999")
        with pytest.raises(SoapFault, match="no resource"):
            client.invoke(epr, actions.GET, element(f"{{{ns.WXF}}}Get"))

    def test_get_without_resource_id_faults(self, rig):
        _, service, client = rig
        with pytest.raises(SoapFault, match="names no resource"):
            client.invoke(service.epr(), actions.GET, element(f"{{{ns.WXF}}}Get"))

    def test_out_of_band_resource_resolved(self, rig):
        """§3.2: a Get may be legitimate although no Create was issued."""

        class OutOfBand(TransferResourceService):
            service_name = "OutOfBand"

            def resolve_out_of_band(self, key, context):
                if key.startswith("wellknown-"):
                    return element("{urn:app}External", key)
                return None

        deployment, _, client = rig
        container = server_container(deployment, host="h3")
        service = OutOfBand(Collection("oob", deployment.network))
        container.add_service(service)
        epr = service.resource_epr("wellknown-42")
        response = client.invoke(epr, actions.GET, element(f"{{{ns.WXF}}}Get"))
        assert response.find("{urn:app}External").text() == "wellknown-42"


class TestPut:
    def test_put_replaces_representation(self, rig):
        _, service, client = rig
        epr = create(client, service, representation("1"))
        client.invoke(epr, actions.PUT, element(f"{{{ns.WXF}}}Put", representation("99")))
        response = client.invoke(epr, actions.GET, element(f"{{{ns.WXF}}}Get"))
        assert response.find("{urn:app}Counter").find("{urn:app}Value").text() == "99"

    def test_put_returns_updated_representation(self, rig):
        _, service, client = rig
        epr = create(client, service)
        response = client.invoke(epr, actions.PUT, element(f"{{{ns.WXF}}}Put", representation("5")))
        assert response.find("{urn:app}Counter") is not None

    def test_put_reads_before_writing(self, rig):
        """The unoptimized read-before-write the paper measures on Set."""
        deployment, service, client = rig
        epr = create(client, service)
        metrics = deployment.network.metrics
        metrics.begin("put", deployment.network.clock.now)
        client.invoke(epr, actions.PUT, element(f"{{{ns.WXF}}}Put", representation("2")))
        trace = metrics.end(deployment.network.clock.now)
        assert trace.db_ops == 2  # one read + one update

    def test_put_without_body_faults(self, rig):
        _, service, client = rig
        epr = create(client, service)
        with pytest.raises(SoapFault, match="no replacement"):
            client.invoke(epr, actions.PUT, element(f"{{{ns.WXF}}}Put"))

    def test_put_can_create_out_of_band(self, rig):
        _, service, client = rig
        epr = service.resource_epr("byput-1")
        client.invoke(epr, actions.PUT, element(f"{{{ns.WXF}}}Put", representation("8")))
        assert service.collection.contains("byput-1")


class TestDelete:
    def test_delete_invalidates_representation(self, rig):
        _, service, client = rig
        epr = create(client, service)
        client.invoke(epr, actions.DELETE, element(f"{{{ns.WXF}}}Delete"))
        with pytest.raises(SoapFault):
            client.invoke(epr, actions.GET, element(f"{{{ns.WXF}}}Get"))

    def test_delete_unknown_faults(self, rig):
        _, service, client = rig
        epr = service.resource_epr("nothing")
        with pytest.raises(SoapFault, match="to delete"):
            client.invoke(epr, actions.DELETE, element(f"{{{ns.WXF}}}Delete"))

    def test_delete_hook_distinguishes_active_resource(self, rig):
        """§3.2: does Delete kill the process or only the representation?"""
        killed = []

        class ProcessService(TransferResourceService):
            service_name = "Proc"

            def process_delete(self, key, context):
                killed.append(key)

        deployment, _, client = rig
        container = server_container(deployment, host="h4")
        service = ProcessService(Collection("procs", deployment.network))
        container.add_service(service)
        epr = create(client, service)
        client.invoke(epr, actions.DELETE, element(f"{{{ns.WXF}}}Delete"))
        assert killed == [epr.property(TRANSFER_RESOURCE_ID)]


class TestMultipleResourceTypes:
    def test_one_service_many_types(self, rig):
        """WS-Transfer allows multiple resource types per service (§2.3)."""
        _, service, client = rig
        counter_epr = create(client, service, representation("1"))
        job_epr = create(client, service, element("{urn:app}Job", element("{urn:app}Cmd", "sort")))
        got_counter = client.invoke(counter_epr, actions.GET, element(f"{{{ns.WXF}}}Get"))
        got_job = client.invoke(job_epr, actions.GET, element(f"{{{ns.WXF}}}Get"))
        assert got_counter.find("{urn:app}Counter") is not None
        assert got_job.find("{urn:app}Job") is not None
