"""Differential property testing: the two stacks must behave identically.

The paper's core claim — "overwhelmingly equivalent in their functionality"
— as an executable property: for any sequence of counter operations, the
WSRF stack, the WS-Transfer stack and a plain Python model must agree on
every observable result.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.apps.counter import CounterScenario, build_transfer_rig, build_wsrf_rig
from repro.soap import SoapFault


class ModelCounterFarm:
    """The oracle: plain dict semantics."""

    def __init__(self):
        self.counters = {}
        self.next_id = 0

    def create(self, initial):
        self.next_id += 1
        self.counters[self.next_id] = initial
        return self.next_id

    def get(self, cid):
        return self.counters[cid]

    def set(self, cid, value):
        if cid not in self.counters:
            raise KeyError(cid)
        self.counters[cid] = value

    def destroy(self, cid):
        del self.counters[cid]


class CounterEquivalence(RuleBasedStateMachine):
    """Drive all three implementations with the same operations."""

    def __init__(self):
        super().__init__()
        self.model = ModelCounterFarm()
        self.wsrf = build_wsrf_rig(CounterScenario())
        self.transfer = build_transfer_rig(CounterScenario())
        # model id -> (wsrf EPR, transfer EPR)
        self.eprs = {}
        self.live = []

    @rule(initial=st.integers(min_value=-1000, max_value=1000))
    def create(self, initial):
        cid = self.model.create(initial)
        self.eprs[cid] = (
            self.wsrf.client.create(initial),
            self.transfer.client.create(initial),
        )
        self.live.append(cid)

    @precondition(lambda self: self.live)
    @rule(data=st.data(), value=st.integers(min_value=-1000, max_value=1000))
    def set_value(self, data, value):
        cid = data.draw(st.sampled_from(self.live))
        self.model.set(cid, value)
        wsrf_epr, transfer_epr = self.eprs[cid]
        self.wsrf.client.set(wsrf_epr, value)
        self.transfer.client.set(transfer_epr, value)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def get_value(self, data):
        cid = data.draw(st.sampled_from(self.live))
        expected = self.model.get(cid)
        wsrf_epr, transfer_epr = self.eprs[cid]
        assert self.wsrf.client.get(wsrf_epr) == expected
        assert self.transfer.client.get(transfer_epr) == expected

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def destroy(self, data):
        cid = data.draw(st.sampled_from(self.live))
        self.model.destroy(cid)
        self.live.remove(cid)
        wsrf_epr, transfer_epr = self.eprs.pop(cid)
        self.wsrf.client.destroy(wsrf_epr)
        self.transfer.client.delete(transfer_epr)
        with pytest.raises(SoapFault):
            self.wsrf.client.get(wsrf_epr)
        with pytest.raises(SoapFault):
            self.transfer.client.get(transfer_epr)

    @invariant()
    def same_population(self):
        assert len(self.live) == len(self.model.counters)


TestCounterEquivalence = CounterEquivalence.TestCase
TestCounterEquivalence.settings = settings(
    max_examples=12,
    stateful_step_count=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestVirtualTimeDeterminism:
    """Identical workloads must produce identical virtual timings — the
    property the benchmark figures rely on."""

    def run_workload(self):
        rig = build_wsrf_rig(CounterScenario())
        counter = rig.client.create(3)
        rig.client.set(counter, 9)
        rig.client.get(counter)
        rig.client.destroy(counter)
        return rig.deployment.network.clock.now

    def test_deterministic(self):
        assert self.run_workload() == self.run_workload()

    @given(values=st.lists(st.integers(min_value=0, max_value=99), min_size=1, max_size=6))
    @settings(max_examples=15, deadline=None)
    def test_elapsed_independent_of_values(self, values):
        """Virtual cost depends on message *sizes*, so same-width values
        must cost exactly the same regardless of content."""

        def run(vals):
            rig = build_wsrf_rig(CounterScenario())
            counter = rig.client.create(0)
            for v in vals:
                rig.client.set(counter, v)
            return rig.deployment.network.clock.now

        same_width = [v % 10 for v in values]  # all single-digit
        assert run(same_width) == run([(v + 3) % 10 for v in same_width])
