"""Direct unit tests for the Grid-in-a-Box substrates."""

import pytest

from repro.apps.giab.jobs import JobSpec, JobState, ProcessSpawner
from repro.apps.giab.storage import FileSystemError, SimulatedFileSystem
from repro.sim import CostModel, Network
from repro.xmllib import parse_xml, serialize


@pytest.fixture()
def net():
    return Network(CostModel())


class TestJobSpec:
    def test_xml_roundtrip(self):
        spec = JobSpec("blast", ("db", "-v"), 1234.5, 2, ("out.txt", "log"))
        again = JobSpec.from_xml(parse_xml(serialize(spec.to_xml())))
        assert again == spec

    def test_defaults(self):
        spec = JobSpec.from_xml(parse_xml("<Job><Command>x</Command></Job>"))
        assert spec.run_time_ms == 100.0
        assert spec.exit_code == 0
        assert spec.output_files == ()

    def test_missing_command_rejected(self):
        with pytest.raises(ValueError, match="no Command"):
            JobSpec.from_xml(parse_xml("<Job/>"))


class TestProcessSpawner:
    def test_spawn_runs_then_exits(self, net):
        spawner = ProcessSpawner(net)
        exits = []
        handle = spawner.spawn(JobSpec("sort", (), 500.0, 3), "/w", on_exit=exits.append)
        assert handle.state is JobState.RUNNING
        net.clock.charge(499)
        assert handle.state is JobState.RUNNING
        net.clock.charge(2)
        assert handle.state is JobState.EXITED
        assert handle.exit_code == 3
        assert exits == [handle]

    def test_spawn_charges_cost(self, net):
        spawner = ProcessSpawner(net)
        t0 = net.clock.now
        spawner.spawn(JobSpec("x"), "/w")
        assert net.clock.now - t0 == pytest.approx(net.costs.process_spawn)

    def test_running_time_tracks_clock(self, net):
        spawner = ProcessSpawner(net)
        handle = spawner.spawn(JobSpec("x", (), 1000.0), "/w")
        start = net.clock.now
        net.clock.charge(300)
        assert handle.running_time(net.clock.now) == pytest.approx(300)
        net.clock.charge(1000)
        # After exit, running time freezes at the exit instant.
        assert handle.running_time(net.clock.now) == pytest.approx(1000.0)

    def test_kill_running(self, net):
        spawner = ProcessSpawner(net)
        exits = []
        handle = spawner.spawn(JobSpec("x", (), 1000.0), "/w", on_exit=exits.append)
        assert spawner.kill(handle.pid)
        assert handle.state is JobState.KILLED
        assert handle.exit_code == -9
        net.clock.charge(2000)
        assert exits == []  # the exit timer was cancelled

    def test_kill_finished_returns_false(self, net):
        spawner = ProcessSpawner(net)
        handle = spawner.spawn(JobSpec("x", (), 10.0), "/w")
        net.clock.charge(20)
        assert not spawner.kill(handle.pid)

    def test_kill_unknown_pid(self, net):
        assert not ProcessSpawner(net).kill(4242)

    def test_reap_finished(self, net):
        spawner = ProcessSpawner(net)
        handle = spawner.spawn(JobSpec("x", (), 10.0), "/w")
        net.clock.charge(20)
        spawner.reap(handle.pid)
        assert spawner.get(handle.pid) is None

    def test_reap_running_refused(self, net):
        spawner = ProcessSpawner(net)
        handle = spawner.spawn(JobSpec("x", (), 1000.0), "/w")
        with pytest.raises(RuntimeError, match="running"):
            spawner.reap(handle.pid)
        assert spawner.get(handle.pid) is not None

    def test_pids_unique(self, net):
        spawner = ProcessSpawner(net)
        pids = {spawner.spawn(JobSpec("x", (), 1.0), "/w").pid for _ in range(10)}
        assert len(pids) == 10


class TestSimulatedFileSystem:
    def test_mkdir_write_read_delete(self, net):
        fs = SimulatedFileSystem(net)
        fs.mkdir("/d")
        fs.write("/d", "f", "content")
        assert fs.read("/d", "f") == "content"
        assert fs.exists("/d", "f")
        fs.delete("/d", "f")
        assert not fs.exists("/d", "f")

    def test_mkdir_twice_fails(self, net):
        fs = SimulatedFileSystem(net)
        fs.mkdir("/d")
        with pytest.raises(FileSystemError, match="exists"):
            fs.mkdir("/d")

    def test_missing_paths_fail(self, net):
        fs = SimulatedFileSystem(net)
        with pytest.raises(FileSystemError):
            fs.write("/nope", "f", "x")
        with pytest.raises(FileSystemError):
            fs.read("/nope", "f")
        with pytest.raises(FileSystemError):
            fs.listdir("/nope")
        with pytest.raises(FileSystemError):
            fs.rmdir("/nope")
        with pytest.raises(FileSystemError):
            fs.delete("/nope", "f")

    def test_rmdir_removes_contents(self, net):
        fs = SimulatedFileSystem(net)
        fs.mkdir("/d")
        fs.write("/d", "a", "1")
        fs.write("/d", "b", "2")
        fs.rmdir("/d")
        assert not fs.exists_dir("/d")

    def test_listdir_sorted(self, net):
        fs = SimulatedFileSystem(net)
        fs.mkdir("/d")
        for name in ("zeta", "alpha", "mid"):
            fs.write("/d", name, "x")
        assert fs.listdir("/d") == ["alpha", "mid", "zeta"]

    def test_costs_scale_with_content(self, net):
        fs = SimulatedFileSystem(net)
        fs.mkdir("/d")
        t0 = net.clock.now
        fs.write("/d", "small", "x" * 1024)
        small = net.clock.now - t0
        t1 = net.clock.now
        fs.write("/d", "large", "x" * 102400)
        large = net.clock.now - t1
        assert large > 50 * small


class TestWireLog:
    def test_disabled_by_default(self):
        from repro.apps.counter import CounterScenario, build_wsrf_rig

        rig = build_wsrf_rig(CounterScenario())
        rig.client.create(0)
        assert rig.deployment.network.metrics.wire_log == []

    def test_logs_requests_responses_and_notifies(self):
        from repro.apps.counter import CounterScenario, build_wsrf_rig

        rig = build_wsrf_rig(CounterScenario())
        metrics = rig.deployment.network.metrics
        metrics.wire_log_enabled = True
        counter = rig.client.create(0)
        rig.client.subscribe(counter, rig.consumer)
        rig.client.set(counter, 1)
        kinds = {entry.kind for entry in metrics.wire_log}
        assert kinds == {"request", "response", "notify"}
        requests = [e for e in metrics.wire_log if e.kind == "request"]
        assert all(e.source == "opteron1" for e in requests)  # co-located client
        assert all(e.n_bytes > 0 for e in metrics.wire_log)

    def test_entries_time_ordered(self):
        from repro.apps.counter import CounterScenario, build_wsrf_rig

        rig = build_wsrf_rig(CounterScenario())
        metrics = rig.deployment.network.metrics
        metrics.wire_log_enabled = True
        counter = rig.client.create(0)
        rig.client.get(counter)
        times = [entry.at for entry in metrics.wire_log]
        assert times == sorted(times)
