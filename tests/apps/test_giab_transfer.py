"""Grid-in-a-Box on WS-Transfer/WS-Eventing: the CRUD-everything version."""

import pytest

from tests.helpers import fresh_vo
from repro.apps.giab.jobs import JobSpec
from repro.container import SecurityMode
from repro.soap import SoapFault


@pytest.fixture()
def vo():
    return fresh_vo("transfer")


class TestAccounts:
    def test_account_check_modes(self, vo):
        # Get on the user's DN answers account existence / privilege.
        assert vo.client.reservation_holder("node1") == ""

    def test_non_admin_cannot_create_accounts(self, vo):
        from repro.apps.giab.transfer import TransferGridAdmin

        impostor = TransferGridAdmin(
            vo.client.soap, vo.account.address, vo.allocation.address
        )
        with pytest.raises(SoapFault, match="may not administer"):
            impostor.add_account("CN=eve")

    def test_removed_account_cannot_reserve(self, vo):
        vo.admin.remove_account(vo.user_dn)
        with pytest.raises(SoapFault, match="no VO account"):
            vo.client.make_reservation("node1")


class TestEprModeDispatch:
    """§4.2.2: Get/Put behaviour depends on the shape of the EPR."""

    def test_mode_1_lists_available(self, vo):
        sites = vo.client.get_available_resources("sort")
        assert {s["host"] for s in sites} == {"node1", "node2"}

    def test_get_site_reports_holder(self, vo):
        vo.client.make_reservation("node1")
        assert vo.client.reservation_holder("node1") == vo.user_dn

    def test_put_mode_r_reserves(self, vo):
        vo.client.make_reservation("node1")
        sites = vo.client.get_available_resources("sort")
        assert {s["host"] for s in sites} == {"node2"}

    def test_put_mode_u_unreserves(self, vo):
        vo.client.make_reservation("node1")
        vo.client.unreserve("node1")
        sites = vo.client.get_available_resources("sort")
        assert {s["host"] for s in sites} == {"node1", "node2"}

    def test_put_mode_t_changes_time(self, vo):
        vo.client.make_reservation("node1", until="5000")
        vo.client.change_reservation_time("node1", "9000")
        # visible via the raw site document
        site = vo.allocation.collection.read("node1")
        assert site.find_local("ReservedUntil").text() == "9000"

    def test_mode_t_without_reservation_faults(self, vo):
        with pytest.raises(SoapFault, match="unreserved site"):
            vo.client.change_reservation_time("node1", "9000")

    def test_double_reservation_rejected(self, vo):
        vo.client.make_reservation("node1")
        with pytest.raises(SoapFault, match="already reserved"):
            vo.client.make_reservation("node1")

    def test_unreserve_foreign_reservation_rejected(self, vo):
        other = vo.deployment.issue_credentials("bob", seed=970)
        vo.admin.add_account(str(other.subject))
        from repro.apps.giab.transfer import TransferGridClient
        from repro.container.client import SoapClient

        bob = TransferGridClient(
            SoapClient(vo.deployment, "workstation", other),
            vo.allocation.address,
            str(other.subject),
        )
        vo.client.make_reservation("node1")
        with pytest.raises(SoapFault, match="belongs to"):
            bob.unreserve("node1")

    def test_site_name_mode_prefix_collision_rejected(self, vo):
        with pytest.raises(SoapFault, match="mode prefix"):
            vo.admin.register_site("Renamed", "x", "y", ["sort"])

    def test_manual_lifetime_failure_mode(self, vo):
        """§4.2.3: "A failure to destroy a reservation after a job is
        finished would prevent the subsequent use of that execution
        resource."  No lifetime machinery exists to save you."""
        vo.client.make_reservation("node1")
        vo.deployment.network.clock.charge(100 * 3600 * 1000.0)  # 100 hours
        sites = vo.client.get_available_resources("sort")
        assert {s["host"] for s in sites} == {"node2"}  # still blocked


class TestFiles:
    def test_upload_list_download_delete(self, vo):
        vo.client.make_reservation("node1")
        data_address = vo.nodes["node1"].data_service.address
        vo.client.upload_file(data_address, "input.dat", "payload " * 100)
        assert vo.client.list_files(data_address) == ["input.dat"]
        assert vo.client.download_file(data_address, "input.dat").startswith("payload")
        vo.client.delete_file(data_address, "input.dat")
        assert vo.client.list_files(data_address) == []

    def test_file_epr_is_dn_slash_filename(self, vo):
        from repro.crypto.x509 import DistinguishedName
        from repro.transfer.service import TRANSFER_RESOURCE_ID

        vo.client.make_reservation("node1")
        epr = vo.client.upload_file(vo.nodes["node1"].data_service.address, "f.txt", "x")
        key = epr.property(TRANSFER_RESOURCE_ID)
        assert key == f"{DistinguishedName.parse(vo.user_dn).hashed()}/f.txt"

    def test_upload_without_reservation_rejected(self, vo):
        with pytest.raises(SoapFault, match="no reservation"):
            vo.client.upload_file(vo.nodes["node1"].data_service.address, "x", "y")

    def test_put_overwrites_existing_file(self, vo):
        vo.client.make_reservation("node1")
        data_address = vo.nodes["node1"].data_service.address
        vo.client.upload_file(data_address, "f", "v1")
        vo.client.overwrite_file(data_address, "f", "v2")
        assert vo.client.download_file(data_address, "f") == "v2"

    def test_put_missing_file_faults(self, vo):
        vo.client.make_reservation("node1")
        with pytest.raises(SoapFault, match="no such file"):
            vo.client.overwrite_file(vo.nodes["node1"].data_service.address, "ghost", "x")

    def test_download_missing_faults(self, vo):
        with pytest.raises(SoapFault, match="no such file"):
            vo.client.download_file(vo.nodes["node1"].data_service.address, "ghost")


class TestJobs:
    def start(self, vo, run_time=500.0, exit_code=0, subscribe=True):
        sites = vo.client.get_available_resources("sort")
        site = sites[0]
        vo.client.make_reservation(site["host"])
        vo.client.upload_file(site["data_address"], "input.dat", "data " * 50)
        job = vo.client.start_job(
            site["exec_address"], JobSpec("sort", ("input.dat",), run_time, exit_code)
        )
        if subscribe:
            vo.client.subscribe_job_exit(site["exec_address"], job, vo.consumer)
        return site, job

    def test_full_flow_with_event(self, vo):
        site, job = self.start(vo)
        assert vo.client.job_status(job) == "Running"
        vo.deployment.network.clock.charge(600)
        assert vo.client.job_status(job) == "Exited"
        assert len(vo.consumer.received) == 1
        event = vo.consumer.received[0]
        assert event.tag.local == "JobExited"
        assert event.find_local("ExitCode").text() == "0"

    def test_manual_unreserve_needed_after_job(self, vo):
        """Un-reserving is an explicit client call on this stack."""
        site, job = self.start(vo, subscribe=False)
        vo.deployment.network.clock.charge(600)
        assert vo.client.get_available_resources("sort") == [] or (
            site["host"] not in {s["host"] for s in vo.client.get_available_resources("sort")}
        )
        vo.client.unreserve(site["host"])
        assert site["host"] in {s["host"] for s in vo.client.get_available_resources("sort")}

    def test_job_without_reservation_rejected(self, vo):
        with pytest.raises(SoapFault, match="no reservation"):
            vo.client.start_job(vo.nodes["node1"].exec_service.address, JobSpec("sort"))

    def test_delete_kills_job_and_representation(self, vo):
        site, job = self.start(vo, run_time=1e9, subscribe=False)
        vo.client.kill_job(job)
        with pytest.raises(SoapFault):
            vo.client.job_status(job)

    def test_representation_outlives_process(self, vo):
        """§3.2: the representation may remain when the process is gone."""
        site, job = self.start(vo, subscribe=False)
        vo.deployment.network.clock.charge(600)
        exec_service = vo.nodes[site["host"]].exec_service
        from repro.transfer.service import TRANSFER_RESOURCE_ID

        key = job.property(TRANSFER_RESOURCE_ID)
        pid = exec_service._pids[key]
        exec_service.spawner.reap(pid)  # the OS forgets the process
        assert vo.client.job_status(job) == "Unknown"  # representation remains

    def test_event_filtered_to_own_job(self, vo):
        site, job = self.start(vo, run_time=500)
        # another job on the other node, not subscribed
        other_site = [s for s in [
            {"host": h, "exec_address": p.exec_service.address, "data_address": p.data_service.address}
            for h, p in vo.nodes.items()
        ] if s["host"] != site["host"]][0]
        vo.client.make_reservation(other_site["host"])
        vo.client.start_job(other_site["exec_address"], JobSpec("sort", (), 400))
        vo.deployment.network.clock.charge(700)
        assert len(vo.consumer.received) == 1


class TestSecurityModes:
    def test_unsigned_vo_works(self):
        vo = fresh_vo("transfer", mode=SecurityMode.NONE)
        assert vo.client.get_available_resources("sort")
