"""The ``indexed`` VO builders: same answers, cheaper queries.

``fresh_vo("wsrf", indexed=True)`` / ``fresh_vo("transfer", indexed=True)``
declare the secondary indexes (host registry, reservations, directories,
site applications) and swap the flat-file subscription store for the
DB-backed one.  Every client-visible answer must match the default VO; the
per-query cost must stop growing with the registry size.
"""

import pytest

from tests.helpers import fresh_vo
from repro.bench.runner import measure_virtual
from repro.container import SecurityMode
from repro.eventing.store import XmlDbSubscriptionStore


def many_hosts(n: int) -> dict[str, list[str]]:
    # every host runs "common"; exactly one also runs "rare"
    return {
        f"node{i:03d}": ["common", "rare"] if i == 0 else ["common"] for i in range(n)
    }


class TestSameAnswers:
    @pytest.mark.parametrize("stack", ["wsrf", "transfer"])
    def test_available_resources_match_default_vo(self, stack):
        plain = fresh_vo(stack, mode=SecurityMode.NONE)
        indexed = fresh_vo(stack, mode=SecurityMode.NONE, indexed=True)
        for application in ("sort", "blast", "render", "absent"):
            assert plain.client.get_available_resources(
                application
            ) == indexed.client.get_available_resources(application)

    def test_wsrf_reservation_flow_on_indexed_vo(self):
        vo = fresh_vo("wsrf", indexed=True)
        vo.client.make_reservation("node1")
        # reserved host disappears from availability (covering index read)
        hosts = [r["host"] for r in vo.client.get_available_resources("sort")]
        assert hosts == ["node2"]
        # upload triggers Data→Reservation checkReservation: the indexed
        # held_by branch must agree with the scan
        directory = vo.client.create_data_directory(vo.nodes["node1"].data_service.address)
        vo.client.upload_file(directory, "in.txt", "payload")
        assert vo.client.list_files(directory) == ["in.txt"]

    def test_transfer_reservation_flow_on_indexed_vo(self):
        vo = fresh_vo("transfer", indexed=True)
        vo.client.make_reservation("node1")
        hosts = [r["host"] for r in vo.client.get_available_resources("sort")]
        assert hosts == ["node2"]
        vo.client.unreserve("node1")
        hosts = [r["host"] for r in vo.client.get_available_resources("sort")]
        assert hosts == ["node1", "node2"]

    def test_transfer_indexed_vo_uses_db_subscription_store(self):
        vo = fresh_vo("transfer", mode=SecurityMode.NONE, indexed=True)
        node = vo.nodes["node1"]
        manager = node.exec_service.notifications
        # the store swap is the only wiring difference on the eventing path
        assert isinstance(manager.store, XmlDbSubscriptionStore)

    def test_data_service_directory_index(self):
        vo = fresh_vo("wsrf", indexed=True)
        vo.client.make_reservation("node1")
        data = vo.nodes["node1"].data_service
        vo.client.create_data_directory(data.address)
        vo.client.create_data_directory(data.address)
        dirs = data.directories()
        assert len(dirs) == 2
        assert data.keys_for_directory(dirs[0]) != []
        assert data.keys_for_directory("/grid/nowhere") == []


class TestQueryScaling:
    """The legacy service scans iterate ``documents()`` uncharged (their
    cost profile is pinned by the golden ledgers), so the index's win shows
    where costs are actually charged: candidate selection is O(hits), and
    the reservation walk — which pays per document — goes flat."""

    def _candidate_cost(self, n: int) -> float:
        vo = fresh_vo("wsrf", mode=SecurityMode.NONE, hosts=many_hosts(n), indexed=True)
        network = vo.deployment.network
        before = network.clock.now
        candidates = vo.allocation.hosts.with_application("rare")
        assert len(candidates) == 1
        return network.clock.now - before

    def test_indexed_candidates_cost_is_flat_in_registry_size(self):
        # O(hits): one matching host costs the same whether 8 or 32 are
        # registered, while a charged scan would pay per registered host
        assert self._candidate_cost(32) == pytest.approx(self._candidate_cost(8), abs=1e-9)

    def _reserved_listing_cost(self, indexed: bool, n_reserved: int) -> float:
        hosts = many_hosts(32)
        vo = fresh_vo("wsrf", mode=SecurityMode.NONE, hosts=hosts, indexed=indexed)
        for host in sorted(hosts)[:n_reserved]:
            vo.client.make_reservation(host)
        network = vo.deployment.network
        before = network.clock.now
        listing = vo.reservation.reservations.reserved_hosts()
        assert len(listing) == n_reserved
        return network.clock.now - before

    def test_indexed_reserved_hosts_listing_beats_per_document_walk(self):
        # the default listing loads every reservation document; the index
        # answers from its value set at one fixed charge
        assert self._reserved_listing_cost(True, 16) < self._reserved_listing_cost(False, 16)

    def test_indexed_reserved_hosts_listing_is_flat(self):
        assert self._reserved_listing_cost(True, 24) == pytest.approx(
            self._reserved_listing_cost(True, 4), abs=1e-9
        )
