"""The datagrid scenario: link fabric, replica table, logic rules, and the
declared services end-to-end on both stacks."""

import pytest

from repro.apps.datagrid import (
    LinkFabric,
    ReplicaCatalogLogic,
    ReplicaTable,
    build_datagrid,
    nearest_replica,
    site_of,
)
from repro.apps.datagrid.links import LAN_TRANSFER_MS, WAN_TRANSFER_MS
from repro.apps.layers.logic import LogicError, UnknownEntity
from repro.sim.network import Network
from repro.soap.envelope import SoapFault
from repro.xmldb.collection import Collection


def _network():
    return Network()


class TestLinkFabric:
    def test_site_of(self):
        assert site_of("se1.cern") == "cern"
        assert site_of("se2.gridlab.utech.edu") == "gridlab.utech.edu"
        assert site_of("opteron1") == "opteron1"

    def test_cost_classes(self):
        links = LinkFabric(_network())
        assert links.cost("se1.cern", "se1.cern") == 0.0
        assert links.cost("se1.cern", "se2.cern") == LAN_TRANSFER_MS
        assert links.cost("se1.cern", "se1.fnal") == WAN_TRANSFER_MS

    def test_transfer_charges_the_link_category(self):
        network = _network()
        links = LinkFabric(network)
        links.transfer("se1.cern", "se1.fnal")
        assert network.metrics.time_by_category["link"] == WAN_TRANSFER_MS

    def test_same_host_transfer_is_free(self):
        network = _network()
        LinkFabric(network).transfer("se1.cern", "se1.cern")
        assert network.metrics.time_by_category["link"] == 0.0


class TestReplicaTable:
    def _table(self, indexed=True):
        table = ReplicaTable(Collection("replicas", _network()))
        if indexed:
            table.declare_indexes()
        return table

    def test_add_and_remove_round_trip(self):
        table = self._table()
        table.add("lfn:f0", "se1.cern")
        table.add("lfn:f0", "se1.fnal")
        assert table.replicas("lfn:f0") == ["se1.cern", "se1.fnal"]
        table.remove("lfn:f0", "se1.cern")
        assert table.replicas("lfn:f0") == ["se1.fnal"]

    def test_last_replica_removes_the_document(self):
        table = self._table()
        table.add("lfn:f0", "se1.cern")
        table.remove("lfn:f0", "se1.cern")
        assert table.replicas("lfn:f0") == []
        assert table.logical_files() == []

    def test_files_on_agrees_with_and_without_index(self):
        for indexed in (True, False):
            table = self._table(indexed)
            table.add("lfn:a", "se1.cern")
            table.add("lfn:b", "se1.cern")
            table.add("lfn:b", "se2.cern")
            assert table.files_on("se1.cern") == ["lfn:a", "lfn:b"], indexed
            assert table.files_on("se2.cern") == ["lfn:b"], indexed
            assert table.files_on("se9.nowhere") == [], indexed


class TestCatalogLogic:
    def _catalog(self):
        table = ReplicaTable(Collection("replicas", _network()))
        table.declare_indexes()
        return ReplicaCatalogLogic(table)

    def test_duplicate_registration_rejected(self):
        catalog = self._catalog()
        catalog.register_replica("lfn:f0", "se1.cern")
        with pytest.raises(LogicError, match="already holds"):
            catalog.register_replica("lfn:f0", "se1.cern")

    def test_unknown_lookups_are_unknown_entity(self):
        catalog = self._catalog()
        with pytest.raises(UnknownEntity):
            catalog.locate_replicas("lfn:nope")
        with pytest.raises(UnknownEntity):
            catalog.unregister_replica("lfn:nope", "se1.cern")


class TestNearestReplica:
    def test_cheapest_link_wins(self):
        links = LinkFabric(_network())
        assert nearest_replica(
            ["se1.fnal", "se1.cern"], "se2.cern", links
        ) == "se1.cern"

    def test_host_name_breaks_ties(self):
        links = LinkFabric(_network())
        assert nearest_replica(
            ["se2.cern", "se1.cern"], "se3.cern", links
        ) == "se1.cern"


@pytest.mark.parametrize("stack", ["wsrf", "transfer"])
class TestDeclaredServicesEndToEnd:
    def test_full_replica_flow(self, stack):
        rig = build_datagrid(stack)
        assert rig.catalog.register_replica("lfn:f0", "se1.cern") is None
        rig.catalog.register_replica("lfn:f0", "se1.fnal")
        assert rig.catalog.locate_replicas("lfn:f0") == ["se1.cern", "se1.fnal"]
        assert rig.catalog.list_files() == ["lfn:f0"]
        assert rig.catalog.files_on("se1.cern") == ["lfn:f0"]
        # Replication picks the LAN source and registers the new copy.
        assert rig.transfer.replicate("lfn:f0", "se2.cern") == "se1.cern"
        assert rig.catalog.locate_replicas("lfn:f0") == [
            "se1.cern", "se1.fnal", "se2.cern",
        ]
        # Stage-in from the same site, without touching the catalog.
        assert rig.transfer.stage_in("lfn:f0", "se2.fnal") == "se1.fnal"
        assert rig.catalog.files_on("se2.fnal") == []
        rig.catalog.unregister_replica("lfn:f0", "se1.cern")
        assert rig.catalog.locate_replicas("lfn:f0") == ["se1.fnal", "se2.cern"]

    def test_faults_cross_the_wire(self, stack):
        rig = build_datagrid(stack)
        with pytest.raises(SoapFault) as caught:
            rig.catalog.locate_replicas("lfn:nope")
        assert "no replicas of lfn:nope" in caught.value.reason
        rig.catalog.register_replica("lfn:f0", "se1.cern")
        with pytest.raises(SoapFault) as caught:
            rig.catalog.register_replica("lfn:f0", "se1.cern")
        assert caught.value.code == "Client"

    def test_replication_charges_link_time(self, stack):
        rig = build_datagrid(stack)
        rig.catalog.register_replica("lfn:f0", "se1.cern")
        rig.transfer.replicate("lfn:f0", "se1.fnal")
        charged = rig.deployment.network.metrics.time_by_category["link"]
        assert charged == WAN_TRANSFER_MS
