"""The service-authoring framework itself: declarations, key codecs,
fault translation, and the per-stack surfaces it generates."""

import pytest

from repro.apps.layers import (
    LogicError,
    Operation,
    ServiceDecl,
    UnknownEntity,
    declared_transfer_client,
    declared_transfer_service,
    declared_wsrf_client,
    declared_wsrf_service,
    transfer_fault,
    transfer_faults,
    wsrf_fault,
    wsrf_faults,
)
from repro.apps.layers.router import lower_camel, snake_case
from repro.soap.envelope import SoapFault
from repro.testkit.comparators import fault_family
from repro.wsrf.basefaults import is_base_fault


class TestNaming:
    def test_lower_camel(self):
        assert lower_camel("RegisterReplica") == "registerReplica"
        assert lower_camel("Get") == "get"

    def test_snake_case(self):
        assert snake_case("RegisterReplica") == "register_replica"
        assert snake_case("LogicalFile") == "logical_file"
        assert snake_case("Host") == "host"


class TestOperationKeys:
    OP = Operation(
        "RegisterReplica", params=("LogicalFile", "Host"),
        verb="create", key_prefix="r:", key_params=("LogicalFile", "Host"),
    )

    def test_key_round_trips(self):
        key = self.OP.key_for({"logical_file": "lfn:f0", "host": "se1.cern"})
        assert key == "r:lfn:f0|se1.cern"
        assert self.OP.parse_key(key) == {
            "logical_file": "lfn:f0", "host": "se1.cern",
        }

    def test_foreign_prefix_rejected(self):
        assert self.OP.parse_key("x:lfn:f0|se1.cern") is None

    def test_wrong_arity_rejected(self):
        assert self.OP.parse_key("r:lfn:f0") is None

    def test_paramless_key_must_be_bare(self):
        bare = Operation("ListFiles", verb="get", key_prefix="all")
        assert bare.parse_key("all") == {}
        assert bare.parse_key("all-the-rest") is None


class TestServiceDeclValidation:
    def test_unknown_verb_rejected(self):
        decl = ServiceDecl("Bad", "http://x", (Operation("Zap", verb="patch"),))
        with pytest.raises(ValueError, match="unknown verb"):
            decl.validate()

    def test_get_with_body_params_rejected(self):
        # get/delete carry no representation: every param must ride the key.
        decl = ServiceDecl(
            "Bad", "http://x",
            (Operation("Find", params=("A", "B"), verb="get", key_params=("A",)),),
        )
        with pytest.raises(ValueError, match="resource key"):
            decl.validate()

    def test_key_params_must_be_params(self):
        decl = ServiceDecl(
            "Bad", "http://x",
            (Operation("Make", params=("A",), verb="create", key_params=("B",)),),
        )
        with pytest.raises(ValueError, match="key_params"):
            decl.validate()


class TestFaultTranslation:
    def test_client_error_renders_per_stack(self):
        error = LogicError("you may not")
        wsrf = wsrf_fault(error)
        wxf = transfer_fault(error)
        assert is_base_fault(wsrf) and wsrf.code == "Client"
        assert not is_base_fault(wxf) and wxf.code == "Client"
        assert wsrf.reason == wxf.reason == "you may not"

    def test_server_error_keeps_kind(self):
        assert wsrf_fault(LogicError("broken", kind="server")).code == "Server"
        assert transfer_fault(LogicError("broken", kind="server")).code == "Server"

    def test_unknown_entity_converges_on_resource_unknown(self):
        # The one place both stacks deliberately share a fault vocabulary:
        # the comparator buckets by (code, error_code), so unknown
        # resources must land in the same family on both wires.
        error = UnknownEntity("no replicas of lfn:x")
        assert fault_family(wsrf_fault(error)) == fault_family(transfer_fault(error))

    def test_context_managers_translate_and_chain(self):
        with pytest.raises(SoapFault) as caught:
            with wsrf_faults():
                raise LogicError("nope")
        assert is_base_fault(caught.value)
        assert isinstance(caught.value.__cause__, LogicError)
        with pytest.raises(SoapFault) as caught:
            with transfer_faults():
                raise LogicError("nope")
        assert not is_base_fault(caught.value)

    def test_non_logic_errors_pass_through(self):
        with pytest.raises(KeyError):
            with wsrf_faults():
                raise KeyError("untranslated")


DECL = ServiceDecl(
    "Echo", "http://repro.example.org/echo",
    (
        Operation(
            "Put", params=("Name", "Value"), verb="create",
            key_prefix="e:", key_params=("Name",),
        ),
        Operation(
            "Get", params=("Name",), verb="get",
            key_prefix="e:", key_params=("Name",), result="Value", arity="one",
        ),
    ),
)


class TestGeneratedSurfaces:
    def test_wsrf_service_exposes_one_action_per_op(self):
        service_type = declared_wsrf_service(DECL)
        assert service_type.__name__ == "WsrfEchoService"
        actions = {
            method.__soap_action__
            for method in vars(service_type).values()
            if hasattr(method, "__soap_action__")
        }
        assert actions == {
            "http://repro.example.org/echo/put",
            "http://repro.example.org/echo/get",
        }

    def test_transfer_service_exposes_declared_verbs_only(self):
        service_type = declared_transfer_service(DECL)
        members = vars(service_type)
        assert "wxf_create" in members and "wxf_get" in members
        # No declared put/delete ops: the base CRUD semantics stay.
        assert "wxf_put" not in members and "wxf_delete" not in members

    def test_clients_share_one_python_surface(self):
        wsrf = declared_wsrf_client(DECL)
        wxf = declared_transfer_client(DECL)
        for client_type in (wsrf, wxf):
            assert callable(getattr(client_type, "put"))
            assert callable(getattr(client_type, "get"))
