"""The ServiceGroup-backed ResourceAllocation variant."""

import pytest

from repro.addressing import EndpointReference
from repro.apps.giab.common import host_info, wsrf_actions
from repro.apps.giab.wsrf.allocation import ServiceGroupAllocationService
from repro.apps.giab.wsrf.reservation import WsrfReservationService
from repro.wsrf import ResourceHome, ServiceGroupService
from repro.wsrf.lifetime import actions as rl_actions
from repro.wsrf.servicegroup import actions as sg_actions
from repro.xmllib import QName, element, ns

from tests.helpers import make_client, make_deployment, server_container


@pytest.fixture()
def rig():
    deployment = make_deployment()
    container = server_container(deployment)
    group = ServiceGroupService(
        ResourceHome("host-group", deployment.network),
        content_rules=(QName(ns.GIAB, "HostInfo"),),
    )
    container.add_service(group)
    reservation = WsrfReservationService(ResourceHome("reservations", deployment.network))
    container.add_service(reservation)
    allocation = ServiceGroupAllocationService(group, reservation.address)
    container.add_service(allocation)
    client = make_client(deployment)
    return deployment, group, reservation, allocation, client


def register_via_group(client, group, host, apps):
    body = element(
        f"{{{ns.WSRF_SG}}}Add",
        EndpointReference.create(f"soap://{host}/Node/Exec").to_xml(f"{{{ns.WSRF_SG}}}MemberEPR"),
        element(
            f"{{{ns.WSRF_SG}}}Content",
            host_info(host, f"soap://{host}/Node/Exec", f"soap://{host}/Node/Data", apps),
        ),
    )
    response = client.invoke(group.epr(), sg_actions.ADD, body)
    return EndpointReference.from_xml(next(response.element_children()))


def available(client, allocation, app):
    response = client.invoke(
        allocation.epr(),
        wsrf_actions.GET_AVAILABLE_RESOURCES,
        element(f"{{{ns.GIAB}}}getAvailableResources", element(f"{{{ns.GIAB}}}Application", app)),
    )
    return [h.find_local("Host").text().strip() for h in response.element_children()]


class TestServiceGroupAllocation:
    def test_members_appear_in_availability(self, rig):
        _, group, _, allocation, client = rig
        register_via_group(client, group, "node1", ["sort"])
        register_via_group(client, group, "node2", ["sort", "blast"])
        assert available(client, allocation, "sort") == ["node1", "node2"]
        assert available(client, allocation, "blast") == ["node2"]

    def test_destroying_entry_removes_host(self, rig):
        _, group, _, allocation, client = rig
        entry = register_via_group(client, group, "node1", ["sort"])
        client.invoke(entry, rl_actions.DESTROY, element(f"{{{ns.WSRF_RL}}}Destroy"))
        assert available(client, allocation, "sort") == []

    def test_reserved_member_filtered(self, rig):
        _, group, reservation, allocation, client = rig
        register_via_group(client, group, "node1", ["sort"])
        client.invoke(
            reservation.epr(),
            wsrf_actions.CREATE_RESERVATION,
            element(f"{{{ns.GIAB}}}createReservation", element(f"{{{ns.GIAB}}}Host", "node1")),
        )
        assert available(client, allocation, "sort") == []

    def test_entry_scheduled_termination_expires_membership(self, rig):
        """Lease-style registration: a host entry with a termination time
        disappears from availability when it expires."""
        deployment, group, _, allocation, client = rig
        entry = register_via_group(client, group, "node1", ["sort"])
        deadline = deployment.network.clock.now + 1000
        client.invoke(
            entry,
            rl_actions.SET_TERMINATION_TIME,
            element(
                f"{{{ns.WSRF_RL}}}SetTerminationTime",
                element(f"{{{ns.WSRF_RL}}}RequestedTerminationTime", repr(deadline)),
            ),
        )
        assert available(client, allocation, "sort") == ["node1"]
        deployment.network.clock.advance_to(deadline + 1)
        assert available(client, allocation, "sort") == []
