"""Stage-out: job output files appear in the data directory (Figure 5,
arrows 10a/10b "Data input/output"), surveyable by the client."""

import pytest

from tests.helpers import fresh_vo
from repro.apps.giab.jobs import JobSpec


class TestWsrfStageOut:
    def run_job(self, vo, exit_code=0):
        site = vo.client.get_available_resources("sort")[0]
        reservation = vo.client.make_reservation(site["host"])
        directory = vo.client.create_data_directory(site["data_address"])
        vo.client.upload_file(directory, "input.dat", "data")
        vo.client.start_job(
            site["exec_address"], reservation, directory,
            JobSpec("sort", ("input.dat",), 100.0, exit_code, output_files=("output.dat", "log.txt")),
        )
        vo.deployment.network.clock.charge(200)
        return directory

    def test_outputs_visible_via_file_list_rp(self):
        vo = fresh_vo("wsrf")
        directory = self.run_job(vo)
        assert vo.client.list_files(directory) == ["input.dat", "log.txt", "output.dat"]

    def test_output_downloadable(self):
        vo = fresh_vo("wsrf")
        directory = self.run_job(vo)
        content = vo.client.download_file(directory, "output.dat")
        assert content.startswith("output of sort")

    def test_failed_job_leaves_no_outputs(self):
        vo = fresh_vo("wsrf")
        directory = self.run_job(vo, exit_code=1)
        assert vo.client.list_files(directory) == ["input.dat"]

    def test_destroyed_directory_tolerated(self):
        """The client destroys the directory while the job runs; the exit
        path must not blow up."""
        vo = fresh_vo("wsrf")
        site = vo.client.get_available_resources("sort")[0]
        reservation = vo.client.make_reservation(site["host"])
        directory = vo.client.create_data_directory(site["data_address"])
        vo.client.upload_file(directory, "in", "x")
        vo.client.start_job(
            site["exec_address"], reservation, directory,
            JobSpec("sort", (), 500.0, output_files=("out",)),
        )
        vo.client.destroy(directory)
        vo.deployment.network.clock.charge(600)  # job exits; no crash


class TestTransferStageOut:
    def test_outputs_visible_in_user_directory(self):
        vo = fresh_vo("transfer")
        site = vo.client.get_available_resources("sort")[0]
        vo.client.make_reservation(site["host"])
        vo.client.upload_file(site["data_address"], "input.dat", "data")
        vo.client.start_job(
            site["exec_address"],
            JobSpec("sort", ("input.dat",), 100.0, output_files=("output.dat",)),
        )
        vo.deployment.network.clock.charge(200)
        assert vo.client.list_files(site["data_address"]) == ["input.dat", "output.dat"]
        assert vo.client.download_file(site["data_address"], "output.dat").startswith(
            "output of sort"
        )
