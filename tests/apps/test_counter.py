"""Integration tests: the counter application on both stacks, all scenarios."""

import pytest

from repro.apps.counter import (
    CounterScenario,
    build_transfer_rig,
    build_wsrf_rig,
)
from repro.container import SecurityMode
from repro.soap import SoapFault

ALL_SCENARIOS = CounterScenario.all_six()
SCENARIO_IDS = [s.label for s in ALL_SCENARIOS]


class TestWsrfCounter:
    @pytest.mark.parametrize("scenario", ALL_SCENARIOS, ids=SCENARIO_IDS)
    def test_full_lifecycle(self, scenario):
        rig = build_wsrf_rig(scenario)
        counter = rig.client.create(initial=5)
        assert rig.client.get(counter) == 5
        rig.client.set(counter, 9)
        assert rig.client.get(counter) == 9
        rig.client.destroy(counter)
        with pytest.raises(SoapFault):
            rig.client.get(counter)

    def test_notification_on_set(self):
        rig = build_wsrf_rig(CounterScenario())
        counter = rig.client.create()
        rig.client.subscribe(counter, rig.consumer)
        rig.client.set(counter, 3)
        assert len(rig.consumer.received) == 1
        topic, payload = rig.consumer.received[0]
        assert topic == "CounterValueChanged"
        assert payload.find_local("NewValue").text() == "3"

    def test_notification_only_for_subscribed_counter(self):
        rig = build_wsrf_rig(CounterScenario())
        counter_a = rig.client.create()
        counter_b = rig.client.create()
        rig.client.subscribe(counter_a, rig.consumer)
        rig.client.set(counter_b, 1)
        assert rig.consumer.received == []
        rig.client.set(counter_a, 1)
        assert len(rig.consumer.received) == 1

    def test_notification_under_signing(self):
        rig = build_wsrf_rig(CounterScenario(mode=SecurityMode.X509))
        counter = rig.client.create()
        rig.client.subscribe(counter, rig.consumer)
        rig.client.set(counter, 7)
        assert len(rig.consumer.received) == 1

    def test_counters_are_independent(self):
        rig = build_wsrf_rig(CounterScenario())
        a = rig.client.create(initial=1)
        b = rig.client.create(initial=100)
        rig.client.set(a, 2)
        assert rig.client.get(b) == 100


class TestTransferCounter:
    @pytest.mark.parametrize("scenario", ALL_SCENARIOS, ids=SCENARIO_IDS)
    def test_full_lifecycle(self, scenario):
        rig = build_transfer_rig(scenario)
        counter = rig.client.create(initial=5)
        assert rig.client.get(counter) == 5
        rig.client.set(counter, 9)
        assert rig.client.get(counter) == 9
        rig.client.delete(counter)
        with pytest.raises(SoapFault):
            rig.client.get(counter)

    def test_notification_on_set(self):
        rig = build_transfer_rig(CounterScenario())
        counter = rig.client.create()
        rig.client.subscribe(counter, rig.consumer)
        rig.client.set(counter, 3)
        assert len(rig.consumer.received) == 1
        assert rig.consumer.received[0].find_local("NewValue").text() == "3"

    def test_notification_filtered_per_counter(self):
        rig = build_transfer_rig(CounterScenario())
        counter_a = rig.client.create()
        counter_b = rig.client.create()
        rig.client.subscribe(counter_a, rig.consumer)
        rig.client.set(counter_b, 1)
        assert rig.consumer.received == []
        rig.client.set(counter_a, 1)
        assert len(rig.consumer.received) == 1

    def test_notification_under_signing(self):
        rig = build_transfer_rig(CounterScenario(mode=SecurityMode.X509))
        counter = rig.client.create()
        rig.client.subscribe(counter, rig.consumer)
        rig.client.set(counter, 7)
        assert len(rig.consumer.received) == 1


class TestCrossStackBehaviour:
    """§4.1.3 behavioural comparisons, asserted rather than eyeballed."""

    def test_functional_equivalence(self):
        """The same client workload produces the same observable results."""
        wsrf = build_wsrf_rig(CounterScenario())
        wxf = build_transfer_rig(CounterScenario())
        for rig, get, set_, create in (
            (wsrf, wsrf.client.get, wsrf.client.set, wsrf.client.create),
            (wxf, wxf.client.get, wxf.client.set, wxf.client.create),
        ):
            counter = create(10)
            set_(counter, 20)
            assert get(counter) == 20

    def test_wsrf_set_avoids_read_before_write(self):
        """WSRF.NET's cache vs the WS-Transfer read-modify-write on Set."""
        wsrf = build_wsrf_rig(CounterScenario())
        wxf = build_transfer_rig(CounterScenario())
        wsrf_counter = wsrf.client.create()
        wxf_counter = wxf.client.create()

        wsrf.deployment.network.metrics.begin("set", wsrf.deployment.network.clock.now)
        wsrf.client.set(wsrf_counter, 1)
        wsrf_trace = wsrf.deployment.network.metrics.end(wsrf.deployment.network.clock.now)

        wxf.deployment.network.metrics.begin("set", wxf.deployment.network.clock.now)
        wxf.client.set(wxf_counter, 1)
        wxf_trace = wxf.deployment.network.metrics.end(wxf.deployment.network.clock.now)

        assert wxf_trace.db_ops > wsrf_trace.db_ops - 1  # wxf pays the extra read
        assert wsrf_trace.elapsed_ms < wxf_trace.elapsed_ms

    def test_notify_faster_on_eventing(self):
        """TCP SoapReceiver vs WSRF.NET's per-delivery HTTP server."""

        def notify_time(rig, subscribe, set_, create):
            counter = create(0)
            subscribe(counter, rig.consumer)
            network = rig.deployment.network
            t0 = network.clock.now
            set_(counter, 1)
            return network.clock.now - t0

        wsrf = build_wsrf_rig(CounterScenario())
        wxf = build_transfer_rig(CounterScenario())
        wsrf_time = notify_time(wsrf, wsrf.client.subscribe, wsrf.client.set, wsrf.client.create)
        wxf_time = notify_time(wxf, wxf.client.subscribe, wxf.client.set, wxf.client.create)
        assert wxf_time < wsrf_time

    def test_wsrf_client_cannot_drive_transfer_service(self):
        """Interop negative test (§5): an existing WSRF-speaking client
        cannot simply be aimed at the corresponding WS-Transfer service."""
        from repro.apps.counter.clients import WsrfCounterClient

        wxf = build_transfer_rig(CounterScenario())
        confused = WsrfCounterClient(wxf.client.soap, wxf.service.address)
        with pytest.raises(SoapFault, match="does not support action"):
            confused.create()
