"""Administrative authorization on both Grid-in-a-Box stacks."""

import pytest

from tests.helpers import fresh_vo
from repro.soap import SoapFault


class TestWsrfAdmin:
    def test_non_admin_cannot_add_accounts(self):
        from repro.apps.giab.wsrf import WsrfGridAdmin

        vo = fresh_vo("wsrf")
        impostor = WsrfGridAdmin(vo.client.soap, vo.account.address, vo.allocation.address)
        with pytest.raises(SoapFault, match="not a VO administrator"):
            impostor.add_account("CN=eve")

    def test_non_admin_cannot_register_hosts(self):
        from repro.apps.giab.wsrf import WsrfGridAdmin

        vo = fresh_vo("wsrf")
        impostor = WsrfGridAdmin(vo.client.soap, vo.account.address, vo.allocation.address)
        with pytest.raises(SoapFault, match="not a VO administrator"):
            impostor.register_host("rogue", "soap://x/E", "soap://x/D", ["sort"])

    def test_admin_lifecycle_accounts(self):
        vo = fresh_vo("wsrf")
        vo.admin.add_account("CN=bob, O=Repro VO", privileges=["run-jobs"])
        vo.admin.remove_account("CN=bob, O=Repro VO")
        with pytest.raises(SoapFault, match="no account"):
            vo.admin.remove_account("CN=bob, O=Repro VO")

    def test_duplicate_account_rejected(self):
        vo = fresh_vo("wsrf")
        with pytest.raises(SoapFault, match="already exists"):
            vo.admin.add_account(vo.user_dn)

    def test_unregister_host_removes_availability(self):
        from repro.apps.giab.common import wsrf_actions
        from repro.addressing import EndpointReference
        from repro.xmllib import element, ns

        vo = fresh_vo("wsrf")
        vo.admin.soap.invoke(
            EndpointReference.create(vo.allocation.address),
            wsrf_actions.UNREGISTER_HOST,
            element(f"{{{ns.GIAB}}}unregisterHost", element(f"{{{ns.GIAB}}}Host", "node1")),
        )
        assert {s["host"] for s in vo.client.get_available_resources("sort")} == {"node2"}

    def test_unregister_unknown_host_faults(self):
        from repro.apps.giab.common import wsrf_actions
        from repro.addressing import EndpointReference
        from repro.xmllib import element, ns

        vo = fresh_vo("wsrf")
        with pytest.raises(SoapFault, match="unknown host"):
            vo.admin.soap.invoke(
                EndpointReference.create(vo.allocation.address),
                wsrf_actions.UNREGISTER_HOST,
                element(f"{{{ns.GIAB}}}unregisterHost", element(f"{{{ns.GIAB}}}Host", "ghost")),
            )

    def test_privilege_check(self):
        from repro.apps.giab.common import wsrf_actions
        from repro.addressing import EndpointReference
        from repro.xmllib import element, ns

        vo = fresh_vo("wsrf")  # alice has run-jobs

        def check(privilege):
            response = vo.client.soap.invoke(
                EndpointReference.create(vo.account.address),
                wsrf_actions.CHECK_PRIVILEGE,
                element(
                    f"{{{ns.GIAB}}}checkPrivilege",
                    element(f"{{{ns.GIAB}}}DN", vo.user_dn),
                    element(f"{{{ns.GIAB}}}Privilege", privilege),
                ),
            )
            return response.text().strip() == "true"

        assert check("run-jobs")
        assert not check("administer")


class TestTransferAdmin:
    def test_non_admin_cannot_register_sites(self):
        from repro.apps.giab.transfer import TransferGridAdmin

        vo = fresh_vo("transfer")
        impostor = TransferGridAdmin(vo.client.soap, vo.account.address, vo.allocation.address)
        with pytest.raises(SoapFault, match="may not register"):
            impostor.register_site("rogue", "x", "y", ["sort"])

    def test_non_admin_cannot_remove_sites(self):
        from repro.apps.giab.transfer import TransferGridAdmin

        vo = fresh_vo("transfer")
        impostor = TransferGridAdmin(vo.client.soap, vo.account.address, vo.allocation.address)
        with pytest.raises(SoapFault, match="may not remove"):
            impostor.remove_site("node1")

    def test_admin_site_lifecycle(self):
        vo = fresh_vo("transfer")
        vo.admin.register_site("node9", "soap://node9/E", "soap://node9/D", ["sort"])
        assert "node9" in {s["host"] for s in vo.client.get_available_resources("sort")}
        vo.admin.remove_site("node9")
        assert "node9" not in {s["host"] for s in vo.client.get_available_resources("sort")}

    def test_account_get_answers_privilege_question(self):
        """Get on the Account service with an Action in the body asks
        "can this user perform this action" (§4.2.2)."""
        from repro.addressing import EndpointReference
        from repro.transfer.service import TRANSFER_RESOURCE_ID, actions
        from repro.xmllib import element, ns

        vo = fresh_vo("transfer")
        epr = EndpointReference.create(vo.account.address).with_property(
            TRANSFER_RESOURCE_ID, vo.user_dn
        )
        yes = vo.client.soap.invoke(
            epr, actions.GET,
            element(f"{{{ns.WXF}}}Get", element(f"{{{ns.GIAB}}}Action", "run-jobs")),
        )
        assert yes.text().strip() == "true"
        no = vo.client.soap.invoke(
            epr, actions.GET,
            element(f"{{{ns.WXF}}}Get", element(f"{{{ns.GIAB}}}Action", "administer")),
        )
        assert no.text().strip() == "false"
