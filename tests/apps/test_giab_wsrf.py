"""Grid-in-a-Box on WSRF/WS-Notification: the full Figure 5 flow."""

import pytest

from tests.helpers import fresh_vo
from repro.apps.giab.jobs import JobSpec
from repro.container import SecurityMode
from repro.soap import SoapFault


@pytest.fixture(scope="module")
def vo():
    return fresh_vo("wsrf")


@pytest.fixture()
def clean_vo():
    return fresh_vo("wsrf")


class TestDiscovery:
    def test_available_resources_by_application(self, vo):
        sites = vo.client.get_available_resources("sort")
        assert {s["host"] for s in sites} == {"node1", "node2"}
        sites = vo.client.get_available_resources("blast")
        assert {s["host"] for s in sites} == {"node1"}

    def test_unknown_application_yields_nothing(self, vo):
        assert vo.client.get_available_resources("quake") == []


class TestReservations:
    def test_reserved_host_disappears_from_availability(self, clean_vo):
        vo = clean_vo
        reservation = vo.client.make_reservation("node1")
        sites = vo.client.get_available_resources("sort")
        assert {s["host"] for s in sites} == {"node2"}
        vo.client.destroy(reservation)
        sites = vo.client.get_available_resources("sort")
        assert {s["host"] for s in sites} == {"node1", "node2"}

    def test_double_reservation_rejected(self, clean_vo):
        vo = clean_vo
        vo.client.make_reservation("node1")
        with pytest.raises(SoapFault, match="already reserved"):
            vo.client.make_reservation("node1")

    def test_reservation_requires_account(self, clean_vo):
        """Figure 5 step 4: reservation checks the VO account."""
        vo = clean_vo
        vo.admin.remove_account(vo.user_dn)
        with pytest.raises(SoapFault, match="no VO account"):
            vo.client.make_reservation("node1")

    def test_unclaimed_reservation_expires(self, clean_vo):
        """Scheduled termination: an unclaimed reservation dies after the
        administrator delta and the host becomes available again."""
        vo = clean_vo
        vo.client.make_reservation("node1")
        vo.deployment.network.clock.charge(4 * 3600 * 1000.0 + 1)
        sites = vo.client.get_available_resources("sort")
        assert {s["host"] for s in sites} == {"node1", "node2"}


class TestDataStaging:
    def test_upload_list_download_delete(self, clean_vo):
        vo = clean_vo
        vo.client.make_reservation("node1")
        data_address = vo.nodes["node1"].data_service.address
        directory = vo.client.create_data_directory(data_address)
        vo.client.upload_file(directory, "input.dat", "payload " * 100)
        assert vo.client.list_files(directory) == ["input.dat"]
        assert vo.client.download_file(directory, "input.dat").startswith("payload")
        vo.client.delete_file(directory, "input.dat")
        assert vo.client.list_files(directory) == []

    def test_upload_without_reservation_rejected(self, clean_vo):
        vo = clean_vo
        data_address = vo.nodes["node1"].data_service.address
        directory = vo.client.create_data_directory(data_address)
        with pytest.raises(SoapFault, match="no reservation"):
            vo.client.upload_file(directory, "x", "y")

    def test_destroy_directory_removes_contents(self, clean_vo):
        vo = clean_vo
        vo.client.make_reservation("node1")
        data_service = vo.nodes["node1"].data_service
        directory = vo.client.create_data_directory(data_service.address)
        vo.client.upload_file(directory, "a", "1")
        assert len(data_service.filesystem.directories()) == 1
        vo.client.destroy(directory)
        assert data_service.filesystem.directories() == []


class TestJobExecution:
    def run_flow(self, vo, run_time=500.0, exit_code=0, subscribe=True):
        sites = vo.client.get_available_resources("sort")
        site = sites[0]
        reservation = vo.client.make_reservation(site["host"])
        directory = vo.client.create_data_directory(site["data_address"])
        vo.client.upload_file(directory, "input.dat", "data " * 50)
        job = vo.client.start_job(
            site["exec_address"],
            reservation,
            directory,
            JobSpec("sort", ("input.dat",), run_time, exit_code),
        )
        if subscribe:
            vo.client.subscribe_job_exit(job, vo.consumer)
        return site, reservation, directory, job

    def test_full_flow_with_notification(self, clean_vo):
        vo = clean_vo
        site, reservation, directory, job = self.run_flow(vo)
        assert vo.client.job_status(job) == "Running"
        vo.deployment.network.clock.charge(600)
        assert vo.client.job_status(job) == "Exited"
        assert len(vo.consumer.received) == 1
        topic, payload = vo.consumer.received[0]
        assert topic == "job/exited"
        # "This notification message will contain the job's EPR."
        assert payload.find_local("JobEPR") is not None
        assert payload.find_local("ExitCode").text() == "0"

    def test_reservation_autodestroyed_after_job(self, clean_vo):
        """Un-reserving happens automatically in the WSRF version —
        Figure 6 reports no WSRF bar for Unreserve Resource."""
        vo = clean_vo
        site, reservation, directory, job = self.run_flow(vo, subscribe=False)
        vo.deployment.network.clock.charge(600)
        sites = vo.client.get_available_resources("sort")
        assert site["host"] in {s["host"] for s in sites}

    def test_wrong_owner_rejected(self, clean_vo):
        vo = clean_vo
        other_creds = vo.deployment.issue_credentials("mallory", seed=950)
        from repro.apps.giab.wsrf import WsrfGridClient
        from repro.container.client import SoapClient

        vo.admin.add_account(str(other_creds.subject))
        mallory = WsrfGridClient(
            SoapClient(vo.deployment, "workstation", other_creds),
            vo.allocation.address,
            vo.reservation.address,
        )
        reservation = vo.client.make_reservation("node1")
        directory = mallory.create_data_directory(vo.nodes["node1"].data_service.address)
        with pytest.raises(SoapFault, match="belongs to"):
            mallory.start_job(
                vo.nodes["node1"].exec_service.address,
                reservation,
                directory,
                JobSpec("sort"),
            )

    def test_wrong_host_rejected(self, clean_vo):
        vo = clean_vo
        reservation = vo.client.make_reservation("node1")
        directory = vo.client.create_data_directory(vo.nodes["node2"].data_service.address)
        with pytest.raises(SoapFault, match="not this ExecService's host"):
            vo.client.start_job(
                vo.nodes["node2"].exec_service.address,
                reservation,
                directory,
                JobSpec("sort"),
            )

    def test_destroy_kills_running_job(self, clean_vo):
        vo = clean_vo
        site, reservation, directory, job = self.run_flow(vo, run_time=1e9, subscribe=False)
        assert vo.client.job_status(job) == "Running"
        vo.client.destroy(job)
        with pytest.raises(SoapFault):
            vo.client.job_status(job)
        spawner = vo.nodes[site["host"]].exec_service.spawner
        assert all(h.state.value != "Running" for h in spawner.processes.values())

    def test_nonzero_exit_code_reported(self, clean_vo):
        vo = clean_vo
        site, reservation, directory, job = self.run_flow(vo, exit_code=3)
        vo.deployment.network.clock.charge(600)
        _, payload = vo.consumer.received[0]
        assert payload.find_local("ExitCode").text() == "3"


class TestSecurityModes:
    def test_unsigned_vo_works_without_identity_checks(self):
        vo = fresh_vo("wsrf", mode=SecurityMode.NONE)
        sites = vo.client.get_available_resources("sort")
        assert sites


class TestAllSecurityModes:
    @pytest.mark.parametrize("mode", list(SecurityMode))
    def test_job_flow_under_each_policy(self, mode):
        """Smoke: the whole Figure 5 flow under every security scenario."""
        from repro.apps.giab.jobs import JobSpec as Spec

        vo = fresh_vo("wsrf", mode=mode)
        site = vo.client.get_available_resources("sort")[0]
        reservation = vo.client.make_reservation(site["host"])
        directory = vo.client.create_data_directory(site["data_address"])
        vo.client.upload_file(directory, "in", "x" * 512)
        job = vo.client.start_job(
            site["exec_address"], reservation, directory, Spec("sort", (), 50.0)
        )
        vo.deployment.network.clock.charge(100)
        assert vo.client.job_status(job) == "Exited"


class TestJobResourceProperties:
    """"Clients can ... either poll for or subscribe to receive
    asynchronous notifications of job status" — the polling side."""

    def test_poll_job_rps_through_lifecycle(self, clean_vo):
        from repro.wsrf.properties import actions as rp_actions
        from repro.xmllib import element, ns

        vo = clean_vo
        site = vo.client.get_available_resources("sort")[0]
        reservation = vo.client.make_reservation(site["host"])
        directory = vo.client.create_data_directory(site["data_address"])
        vo.client.upload_file(directory, "in", "x")
        job = vo.client.start_job(
            site["exec_address"], reservation, directory, JobSpec("sort", (), 400.0, 5)
        )

        def rps():
            response = vo.client.soap.invoke(
                job,
                rp_actions.GET_MULTIPLE,
                element(
                    f"{{{ns.WSRF_RP}}}GetMultipleResourceProperties",
                    element(f"{{{ns.WSRF_RP}}}ResourceProperty", "Status"),
                    element(f"{{{ns.WSRF_RP}}}ResourceProperty", "ExitCode"),
                    element(f"{{{ns.WSRF_RP}}}ResourceProperty", "RunningTime"),
                ),
            )
            status = response.find(f"{{{ns.GIAB}}}Status")
            exit_code = response.find(f"{{{ns.GIAB}}}ExitCode")
            running = response.find(f"{{{ns.GIAB}}}RunningTime")
            return (
                status.text() if status is not None else None,
                exit_code.text() if exit_code is not None else None,
                float(running.text()) if running is not None else None,
            )

        status, exit_code, running1 = rps()
        assert status == "Running" and exit_code is None
        vo.deployment.network.clock.charge(100)
        _, _, running2 = rps()
        assert running2 > running1  # RunningTime advances with the clock
        vo.deployment.network.clock.charge(400)
        status, exit_code, running3 = rps()
        assert status == "Exited" and exit_code == "5"
        assert running3 == pytest.approx(400.0)  # frozen at exit

    def test_query_job_resource_properties(self, clean_vo):
        """QueryResourceProperties over a job's RP document."""
        from repro.wsrf.properties import actions as rp_actions
        from repro.xmllib import element, ns

        vo = clean_vo
        site = vo.client.get_available_resources("sort")[0]
        reservation = vo.client.make_reservation(site["host"])
        directory = vo.client.create_data_directory(site["data_address"])
        vo.client.upload_file(directory, "in", "x")
        job = vo.client.start_job(
            site["exec_address"], reservation, directory, JobSpec("sort", (), 100.0)
        )
        vo.deployment.network.clock.charge(150)
        response = vo.client.soap.invoke(
            job,
            rp_actions.QUERY,
            element(
                f"{{{ns.WSRF_RP}}}QueryResourceProperties",
                element(
                    f"{{{ns.WSRF_RP}}}QueryExpression",
                    "count(//Status[. = 'Exited']) = 1",
                    attrs={"Dialect": "http://www.w3.org/TR/1999/REC-xpath-19991116"},
                ),
            ),
        )
        assert response.text().strip() in ("True", "true")
