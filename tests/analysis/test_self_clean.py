"""Tier-1 gate: the tree must lint clean against its own rules.

Everything the paper-conformance rules flag in ``src/repro`` must either
be fixed or carried in ``lint-baseline.json`` with a justification.
"""

from pathlib import Path

from repro.analysis import run_analysis
from repro.analysis.baseline import Baseline

REPO_ROOT = Path(__file__).parents[2]


def _run_from_repo_root(monkeypatch, baseline):
    # Baseline entries key on repo-relative paths, so lint from the root.
    monkeypatch.chdir(REPO_ROOT)
    return run_analysis(["src/repro"], baseline=baseline)


def test_src_repro_has_no_new_findings(monkeypatch):
    baseline = Baseline.load(str(REPO_ROOT / "lint-baseline.json"))
    result = _run_from_repo_root(monkeypatch, baseline)
    assert result.parse_failures == []
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.findings == [], f"new lint findings:\n{rendered}"


def test_baseline_entries_still_match_real_findings(monkeypatch):
    """A stale baseline (code fixed, entry left behind) should be pruned."""
    baseline = Baseline.load(str(REPO_ROOT / "lint-baseline.json"))
    result = _run_from_repo_root(monkeypatch, baseline)
    assert len(result.baselined) == len(baseline), (
        "baseline carries entries that no longer correspond to findings"
    )


def test_every_baseline_entry_is_justified():
    baseline = Baseline.load(str(REPO_ROOT / "lint-baseline.json"))
    for entry in baseline.entries.values():
        assert entry["justification"].strip()
