"""Unit tests for the analysis engine: registry, baseline round-trip,
inline suppression, JSON report schema, and CLI exit codes."""

import json
from pathlib import Path

import pytest

from repro.analysis import all_checkers, get_checker, register, run_analysis
from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.cli import main
from repro.analysis.engine import clear_context_cache, context_for
from repro.analysis.findings import Finding
from repro.analysis.registry import rule_table, unregister
from repro.analysis.reporters import JSON_REPORT_VERSION, render_json, render_text

FIXTURES = str(Path(__file__).parent / "fixtures")
REPO_ROOT = Path(__file__).parents[2]


class TestRegistry:
    def test_builtin_rules_registered(self):
        assert list(all_checkers()) == [
            "RPO01", "RPO02", "RPO03", "RPO04", "RPO05", "RPO06", "RPO07",
            "RPO08", "RPO09", "RPO10", "RPO11", "RPO12", "RPO13", "RPO14",
            "RPO15",
        ]

    def test_get_checker(self):
        checker = get_checker("RPO03")
        assert checker is not None
        assert checker.rule_id == "RPO03"

    def test_rule_table_has_descriptions(self):
        table = rule_table()
        assert set(table) == set(all_checkers())
        assert all(table.values())

    def test_register_requires_rule_id(self):
        with pytest.raises(ValueError):
            register(type("NoId", (), {}))

    def test_register_rejects_duplicates(self):
        class Extra:
            rule_id = "RPO99"
            description = "test rule"

            def check(self, module):
                return iter(())

        register(Extra)
        try:
            with pytest.raises(ValueError):
                register(type("Clash", (), {"rule_id": "RPO99"}))
            assert "RPO99" in all_checkers()
        finally:
            unregister("RPO99")


def _finding(**overrides):
    values = dict(
        rule="RPO04",
        path="src/repro/x.py",
        line=12,
        col=4,
        symbol="X.y",
        message="hard-coded namespace URI",
    )
    values.update(overrides)
    return Finding(**values)


class TestBaseline:
    def test_round_trip(self, tmp_path):
        baseline = Baseline.from_findings(
            [_finding(), _finding(rule="RPO05", symbol="Z.w")], "known drift"
        )
        path = tmp_path / "baseline.json"
        baseline.save(str(path))
        loaded = Baseline.load(str(path))
        assert len(loaded) == 2
        assert loaded.covers(_finding())
        assert loaded.justification_for(_finding()) == "known drift"

    def test_fingerprint_ignores_line_numbers(self):
        baseline = Baseline.from_findings([_finding(line=12)], "why")
        assert baseline.covers(_finding(line=99))

    def test_fingerprint_tracks_message(self):
        baseline = Baseline.from_findings([_finding()], "why")
        assert not baseline.covers(_finding(message="a different defect"))

    def test_load_rejects_empty_justification(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "rule": "RPO04", "path": "x.py", "symbol": "s",
                "message": "m", "justification": "",
            }],
        }))
        with pytest.raises(BaselineError):
            Baseline.load(str(path))

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(BaselineError):
            Baseline.load(str(path))

    def test_fingerprint_normalizes_counts_and_whitespace(self):
        baseline = Baseline.from_findings(
            [_finding(message="retried 3 times  across 2 hosts")], "why"
        )
        assert baseline.covers(
            _finding(message="retried 11 times across 40 hosts")
        )
        assert not baseline.covers(
            _finding(message="retried 11 times across 40 sockets")
        )

    def test_save_writes_version_2(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([_finding()], "why").save(str(path))
        document = json.loads(path.read_text())
        assert document["version"] == 2

    def test_v1_document_loads_and_resaves_as_v2(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "rule": "RPO04", "path": "src/repro/x.py", "symbol": "X.y",
                "message": "hard-coded namespace URI",
                "justification": "legacy entry",
            }],
        }))
        loaded = Baseline.load(str(path))
        assert loaded.loaded_version == 1
        assert loaded.covers(_finding())
        assert loaded.justification_for(_finding()) == "legacy entry"
        migrated = tmp_path / "migrated.json"
        loaded.save(str(migrated))
        assert json.loads(migrated.read_text())["version"] == 2


class TestSuppression:
    def test_inline_disable_drops_finding(self, tmp_path):
        source = (
            'from repro.xmllib import QName\n'
            'A = QName("http://example.org/made-up", "A")  # repro-lint: disable=RPO04\n'
            'B = QName("http://example.org/made-up", "B")\n'
        )
        target = tmp_path / "module.py"
        target.write_text(source)
        result = run_analysis([str(target)])
        assert [f.line for f in result.findings] == [3]

    def test_disable_all(self, tmp_path):
        target = tmp_path / "module.py"
        target.write_text(
            '_NS = "http://example.org/made-up"  # repro-lint: disable=all\n'
        )
        result = run_analysis([str(target)])
        assert result.findings == []


class TestReports:
    def test_json_schema(self):
        result = run_analysis([FIXTURES])
        document = json.loads(render_json(result))
        assert document["version"] == JSON_REPORT_VERSION
        assert document["tool"] == "repro-lint"
        assert set(document["rules"]) == set(all_checkers())
        summary = document["summary"]
        assert set(summary) == {
            "files_scanned", "total", "new", "baselined", "parse_failures",
        }
        assert summary["new"] == len(result.findings)
        assert summary["total"] == summary["new"] + summary["baselined"]
        for entry in document["findings"]:
            assert set(entry) == {
                "rule", "severity", "path", "line", "col", "symbol",
                "message", "fingerprint", "normalized_fingerprint",
                "baselined",
            }
            assert entry["severity"] in ("warning", "error")
            assert len(entry["fingerprint"]) == 16
            assert len(entry["normalized_fingerprint"]) == 16

    def test_text_report_summary_line(self):
        result = run_analysis([FIXTURES])
        lines = render_text(result).splitlines()
        assert lines[-1].startswith("repro-lint: ")
        assert f"{len(result.findings)} new findings" in lines[-1]

    def test_parse_failure_reported_and_fails_run(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n")
        result = run_analysis([str(target)])
        assert result.exit_code == 1
        assert "RPO00" in render_text(result)


class TestContextCache:
    def test_unchanged_file_is_not_reparsed(self, tmp_path):
        target = tmp_path / "module.py"
        target.write_text("def f():\n    return 1\n")
        clear_context_cache()
        first = context_for(str(target))
        assert context_for(str(target)) is first

    def test_edited_file_is_reparsed(self, tmp_path):
        target = tmp_path / "module.py"
        target.write_text("def f():\n    return 1\n")
        clear_context_cache()
        first = context_for(str(target))
        target.write_text("def f():\n    return 2\n")
        second = context_for(str(target))
        assert second is not first

    def test_clear_drops_entries(self, tmp_path):
        target = tmp_path / "module.py"
        target.write_text("def f():\n    return 1\n")
        first = context_for(str(target))
        clear_context_cache()
        assert context_for(str(target)) is not first


class TestPerformanceBudget:
    def test_full_tree_under_wall_clock_budget(self):
        import time

        clear_context_cache()
        start = time.monotonic()
        result = run_analysis([str(REPO_ROOT / "src" / "repro")])
        elapsed = time.monotonic() - start
        assert result.files_scanned > 100
        assert elapsed < 10.0, f"full-tree analysis took {elapsed:.1f}s"


class TestCli:
    def test_fixture_violations_exit_1(self, capsys):
        assert main([FIXTURES, "--no-baseline"]) == 1
        out = capsys.readouterr().out
        for rule in all_checkers():
            assert rule in out

    def test_clean_fixture_exits_0(self, capsys):
        assert main([f"{FIXTURES}/clean.py", "--no-baseline"]) == 0

    def test_missing_path_exits_2(self, capsys):
        assert main(["no/such/path"]) == 2

    def test_bad_baseline_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text("{nope")
        assert main([f"{FIXTURES}/clean.py", "--baseline", str(bad)]) == 2

    def test_rule_filter(self, capsys):
        assert main([f"{FIXTURES}/rpo06_bad.py", "--no-baseline", "--rule", "RPO04"]) == 0
        assert main([f"{FIXTURES}/rpo06_bad.py", "--no-baseline", "--rule", "RPO06"]) == 1

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([FIXTURES, "--write-baseline", str(baseline)]) == 0
        assert main([FIXTURES, "--baseline", str(baseline)]) == 0

    def test_list_rules(self, capsys):
        assert main(["--rules"]) == 0
        out = capsys.readouterr().out
        assert "RPO01" in out and "RPO06" in out and "RPO13" in out

    def test_format_json(self, capsys):
        main([FIXTURES, "--no-baseline", "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert document["tool"] == "repro-lint"
        assert document["summary"]["new"] > 0

    def test_out_writes_report_and_prints_summary(self, tmp_path, capsys):
        out = tmp_path / "nested" / "report.json"
        main([FIXTURES, "--no-baseline", "--format", "json", "--out", str(out)])
        printed = capsys.readouterr().out
        assert printed.startswith("repro-lint: ")
        assert str(out) in printed
        document = json.loads(out.read_text())
        assert document["summary"]["new"] > 0

    def test_fail_on_new_accepts_committed_report(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        main([FIXTURES, "--no-baseline", "--format", "json", "--out", str(report)])
        capsys.readouterr()
        assert main(
            [FIXTURES, "--no-baseline", "--fail-on-new", str(report)]
        ) == 1  # fixture findings are "new", but none are novel vs the report
        assert "repro-lint: not in" not in capsys.readouterr().out

    def test_fail_on_new_rejects_novel_finding(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        main([
            f"{FIXTURES}/rpo04_bad.py", "--no-baseline",
            "--format", "json", "--out", str(report),
        ])
        capsys.readouterr()
        assert main(
            [f"{FIXTURES}/rpo06_bad.py", "--no-baseline",
             "--fail-on-new", str(report)]
        ) == 1
        assert f"not in {report}" in capsys.readouterr().out

    def test_fail_on_new_bad_report_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "report.json"
        bad.write_text("{nope")
        assert main(
            [f"{FIXTURES}/clean.py", "--no-baseline", "--fail-on-new", str(bad)]
        ) == 2
