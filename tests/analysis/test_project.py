"""Unit tests for the project-wide symbol table and call graph."""

from repro.analysis.context import ModuleContext
from repro.analysis.project import MODULE_SCOPE, ProjectContext


def _ctx(name: str, source: str) -> ModuleContext:
    return ModuleContext.build(f"{name}.py", source)


def _project(**modules: str) -> ProjectContext:
    return ProjectContext([_ctx(name, source) for name, source in modules.items()])


class TestResolution:
    def test_direct_name_call(self):
        project = _project(alpha=(
            "def helper():\n"
            "    return 1\n"
            "def entry():\n"
            "    return helper()\n"
        ))
        assert "alpha.helper" in project.callees_closure("alpha.entry")

    def test_self_method_resolves_to_own_class(self):
        project = _project(alpha=(
            "class Worker:\n"
            "    def run(self):\n"
            "        return self.step()\n"
            "    def step(self):\n"
            "        return 1\n"
            "class Other:\n"
            "    def step(self):\n"
            "        return 2\n"
        ))
        callees = project.callees_closure("alpha.Worker.run")
        assert "alpha.Worker.step" in callees
        assert "alpha.Other.step" not in callees
        [site] = project.functions["alpha.Worker.run"].call_sites
        assert not site.dynamic

    def test_cross_module_from_import(self):
        project = _project(
            beta="def helper():\n    return 1\n",
            alpha=(
                "from beta import helper\n"
                "def entry():\n"
                "    return helper()\n"
            ),
        )
        assert "beta.helper" in project.callees_closure("alpha.entry")

    def test_dynamic_dispatch_by_name_fallback(self):
        project = _project(alpha=(
            "class Wsrf:\n"
            "    def process(self):\n"
            "        return 1\n"
            "class Transfer:\n"
            "    def process(self):\n"
            "        return 2\n"
            "def drive(stack):\n"
            "    return stack.process()\n"
        ))
        callees = project.callees_closure("alpha.drive")
        assert {"alpha.Wsrf.process", "alpha.Transfer.process"} <= callees
        [site] = project.functions["alpha.drive"].call_sites
        assert site.dynamic

    def test_generic_attrs_produce_no_edges(self):
        project = _project(alpha=(
            "class Log:\n"
            "    def append(self, line):\n"
            "        return line\n"
            "def note(parts, line):\n"
            "    parts.append(line)\n"
        ))
        assert project.callees_closure("alpha.note") == frozenset()

    def test_nested_def_gets_parent_edge(self):
        project = _project(alpha=(
            "def outer():\n"
            "    def inner():\n"
            "        return 1\n"
            "    return inner\n"
        ))
        assert "alpha.outer.inner" in project.callees_closure("alpha.outer")

    def test_function_at_finds_tracked_node(self):
        module = _ctx("alpha", "def solo():\n    return 1\n")
        project = ProjectContext([module])
        node = module.tree.body[0]
        info = project.function_at(module, node)
        assert info is not None and info.qualname == "alpha.solo"


class TestClosures:
    def test_cycles_terminate(self):
        project = _project(alpha=(
            "def a():\n    return b()\n"
            "def b():\n    return c()\n"
            "def c():\n    return a()\n"
        ))
        closure = project.callees_closure("alpha.a")
        assert closure == {"alpha.a", "alpha.b", "alpha.c"}
        assert project.callers_closure("alpha.c") == {
            "alpha.a", "alpha.b", "alpha.c",
        }

    def test_reaches(self):
        project = _project(alpha=(
            "def sink():\n    return 0\n"
            "def mid():\n    return sink()\n"
            "def top():\n    return mid()\n"
            "def lonely():\n    return 1\n"
        ))
        assert project.reaches("alpha.top", {"alpha.sink"})
        assert not project.reaches("alpha.lonely", {"alpha.sink"})


class TestRuntimeReachability:
    SOURCE = (
        "REGISTRY = {}\n"
        "def install(func):\n"
        "    REGISTRY[func.__name__] = func\n"
        "    return func\n"
        "@install\n"
        "def handler_body():\n"
        "    return helper()\n"
        "def helper():\n"
        "    return 1\n"
        "install(helper)\n"
    )

    def test_module_scope_is_a_caller(self):
        project = _project(alpha=self.SOURCE)
        assert f"alpha.{MODULE_SCOPE}" in project.callers_closure("alpha.install")

    def test_import_time_only_function_is_not_runtime_reachable(self):
        # install is only ever invoked while the module loads (decorator
        # plus a module-scope call).
        project = _project(alpha=self.SOURCE)
        assert not project.runtime_reachable("alpha.install")

    def test_function_caller_makes_runtime_reachable(self):
        project = _project(alpha=self.SOURCE)
        assert project.runtime_reachable("alpha.helper")


class TestHandlers:
    SOURCE = (
        "from repro.container.service import ServiceSkeleton, web_method\n"
        "class CounterService(ServiceSkeleton):\n"
        "    @web_method('urn:made-up:Add')\n"
        "    def add(self, context):\n"
        "        return self._apply()\n"
        "    def _apply(self):\n"
        "        return deep()\n"
        "def deep():\n"
        "    return 1\n"
        "def offline():\n"
        "    return 2\n"
    )

    def test_handler_flag(self):
        project = _project(alpha=self.SOURCE)
        assert [info.qualname for info in project.handlers()] == [
            "alpha.CounterService.add"
        ]

    def test_handler_reach_is_transitive(self):
        project = _project(alpha=self.SOURCE)
        assert [info.qualname for info in project.handler_reach("alpha.deep")] == [
            "alpha.CounterService.add"
        ]
        assert project.handler_reach("alpha.offline") == []

    def test_handler_reach_includes_self(self):
        project = _project(alpha=self.SOURCE)
        reached = project.handler_reach("alpha.CounterService.add")
        assert [info.qualname for info in reached] == ["alpha.CounterService.add"]


class TestSingle:
    def test_single_wraps_one_module(self):
        module = _ctx("alpha", "def solo():\n    return 1\n")
        project = ProjectContext.single(module)
        assert list(project.functions) == ["alpha.solo"]
