"""Fixture: xmldb derived state poked from outside the Collection API (RPO13)."""


def poison_cache(cache, key, document):
    cache._cache[key] = document


def drop_entry(cache, key):
    del cache._cache[key]


def hand_edit_index(index, value, key):
    index._postings.setdefault(value, set()).add(key)


def bypass_collection(backend, key, document):
    backend.store(key, document)


def forget(collection, key):
    collection._backend.remove(key)


def attach_raw(collection, path, index):
    collection.indexes[path] = index


def proper(collection, key, document):
    # The owning API keeps cache/index/backend in sync — must NOT be flagged.
    collection.upsert(key, document)
