"""Fixture: a WS-Transfer service missing Put and Delete (RPO01), plus an
actions table with a hard-coded URI.  Parsed by the linter, never imported."""

from repro.container.service import MessageContext, ServiceSkeleton, web_method
from repro.transfer.service import actions


class partial_actions:
    CREATE = "http://example.org/made-up/transfer/Create"
    GET = "http://example.org/made-up/transfer/Get"
    PUT = "http://example.org/made-up/transfer/Put"
    DELETE = "http://example.org/made-up/transfer/Delete"


class HalfTransferService(ServiceSkeleton):
    @web_method(actions.CREATE)
    def wxf_create(self, context: MessageContext):
        return None

    @web_method(actions.GET)
    def wxf_get(self, context: MessageContext):
        return None
