"""Fixture: direct message-processing handler use outside repro.pipeline."""

from repro.container.security import SecurityHandler
from repro.reliable.sequence import InboundRequestLog


class HandRolledProxy:
    """Reconstructs the pre-pipeline world: per-call-site handler wiring."""

    def __init__(self, deployment):
        self.security = SecurityHandler(
            deployment.policy, deployment.network, deployment.ca, deployment.trust
        )
        self.request_log = InboundRequestLog()


def qualified_use(security_module, deployment):
    # Module-qualified access is the same violation.
    return security_module.SecurityHandler(deployment.policy, deployment.network)


def drives_the_chain(deployment):
    # The sanctioned shape: compose a chain, never touch the handlers.
    return deployment.pipeline()
