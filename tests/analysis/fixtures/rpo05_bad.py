"""Fixture: message work escaping the sim cost model (RPO05)."""

from repro.soap.wire import WireMessage
from repro.xmllib import serialize


def send_for_free(envelope, transport):
    message = WireMessage.from_envelope(envelope)
    transport.push(message)


def persist_for_free(envelope, path):
    text = serialize(envelope)
    with open(path, "w") as handle:
        handle.write(text)


def charge_invisibly(network, ms):
    network.clock.charge(ms)
