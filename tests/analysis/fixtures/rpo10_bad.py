"""Fixture: ambient entropy leaking into run results (RPO10)."""

import os
import random
import time
from datetime import datetime
from os import urandom
from uuid import uuid4

from repro.container.service import MessageContext, ServiceSkeleton, web_method


def stamp():
    return time.time()


def wall():
    return datetime.now()


def jitter():
    return random.random() * 2


def unseeded():
    return random.Random()


def os_entropy():
    return os.urandom(8)


def imported_entropy():
    return urandom(4), uuid4()


def by_address(items):
    return sorted(items, key=id)


def id_keyed(obj, cache):
    cache[id(obj)] = obj
    return {id(obj): obj}


def set_order(parts):
    out = []
    for part in {"mail", "http", "ftp"}:
        out.append(part)
    for part in set(parts):
        out.append(part)
    return out


def seeded_ok(seed):
    # random.Random(seed) is explicitly seeded — must NOT be flagged.
    return random.Random(seed).random()


class TimestampService(ServiceSkeleton):
    @web_method("http://example.org/made-up-time/Read")
    def read_time(self, context: MessageContext):
        return self._now()

    def _now(self):
        # Handler-reachable entropy: severity escalates to error.
        return time.time()
