"""Fixture: WSRF-stack operations leaking bare exceptions (RPO03).  The
``wsrf_`` filename prefix puts it in the rule's scope."""

from repro.container.service import MessageContext, web_method
from repro.soap.envelope import SoapFault
from repro.wsrf.programming import WsResourceService


class LeakyResourceService(WsResourceService):
    @web_method("http://example.org/made-up-wsrf/Poke")
    def poke(self, context: MessageContext):
        raise ValueError("leaks a Python idiom across the SOAP boundary")

    @web_method("http://example.org/made-up-wsrf/Prod")
    def prod(self, context: MessageContext):
        raise SoapFault("Client", "no wsbf:BaseFault detail")
