"""Fixture: a handler mutating module-level state (RPO06)."""

from repro.container.service import MessageContext, ServiceSkeleton, web_method

SUBSCRIBERS = []
REGISTRY = {}
COUNTER = 0


class LeakyStateService(ServiceSkeleton):
    @web_method("http://example.org/made-up-state/Register")
    def register(self, context: MessageContext):
        global COUNTER
        COUNTER += 1
        SUBSCRIBERS.append(context.sender)
        REGISTRY[str(context.sender)] = COUNTER
        return None
