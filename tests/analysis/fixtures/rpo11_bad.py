"""Fixture: clock.charge laundered through wrapper functions (RPO11)."""


def bump(clock, ms):
    # The bare-name receiver hides the charge from RPO05's pattern.
    clock.charge(ms)


def advance_quietly(sim_clock, ms):
    sim_clock.advance(ms)


def handle_request(network, cost):
    bump(network.clock, cost)


def outer(network):
    handle_request(network, 5)


def charge_properly(network, ms):
    # Attribution-preserving path — must NOT be flagged.
    network.charge(ms, "soap")
