"""Fixture: a logic-layer module that smuggles wire machinery below the
router seam (the ``_logic.py`` suffix opts this file into RPO15)."""

import repro.soap
from repro.container import SecurityMode
from repro.pipeline.filters import SecurityFilter
from repro import container


def decide_with_the_wire(policy, sender):
    # Inner layers must not know SOAP exists: this ties business rules to
    # one stack's envelope/security types.
    fault = repro.soap.SoapFault("Sender", "no")
    if policy.mode is SecurityMode.X509:
        return SecurityFilter, fault
    return container, None


def sanctioned_shape(accounts, sender):
    # The clean alternative: pure rules over plain values; the router
    # translates any LogicError into the stack's fault idiom.
    return sender in accounts
