"""Fixture: virtual time moved or timers mutated outside the kernel (RPO14)."""


def jump_timeline(clock, ms):
    clock.advance_to(clock.now + ms)


def jump_via_network(self):
    self.network.clock.advance_to(1000.0)


def adhoc_timer(self, deadline, callback):
    return self.clock.schedule(deadline, callback)


def adhoc_delayed_timer(clock, callback):
    return clock.schedule_after(250.0, callback)


def forget_timer(self, handle):
    self.network.clock.cancel(handle)


def proper_charge(clock):
    # Charging cost is the sanctioned way to consume time — must NOT be flagged.
    clock.charge(12.5)


def proper_kernel_timer(kernel, callback):
    # Kernel-owned timers carry the sanitizer's <timer> scope — not flagged.
    kernel.call_after(250.0, callback)


def unrelated_schedule(planner, job):
    # 'schedule' on a non-clock receiver is not this rule's business.
    planner.schedule(job)


def unrelated_cancel(subscription):
    subscription.cancel(reason="expired")
