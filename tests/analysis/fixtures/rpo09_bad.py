"""Fixture: mutable state shared across simulated hosts (RPO09)."""

_LEASES = {}
pending = []

# Populated while the module loads: import-time mutation is single-threaded
# and pre-host, so this must NOT be flagged.
IMPORT_TIME = {}
IMPORT_TIME["seeded"] = True


def record_lease(key, epr):
    _LEASES[key] = epr


def flush_pending():
    pending.clear()


class SubscriptionBook:
    subscribers = []
    index: dict = {}

    # SCREAMING_CASE is the constant-table convention — not flagged here;
    # runtime mutation of it would be caught by the module-level pass.
    ROUTES = {"wsrf": 1, "transfer": 2}

    def __init__(self):
        self.local = []  # per-instance state is fine
