"""Fixture: an event source that strands its subscribers (RPO02) — accepts
Subscribe but has no lifetime operations and no subscription manager."""

from repro.container.service import MessageContext, ServiceSkeleton, web_method
from repro.eventing.source import actions


class StrandingEventSource(ServiceSkeleton):
    @web_method(actions.SUBSCRIBE)
    def subscribe(self, context: MessageContext):
        return None


class ForgetfulManager(ServiceSkeleton):
    @web_method(actions.RENEW)
    def renew(self, context: MessageContext):
        return None

    @web_method(actions.UNSUBSCRIBE)
    def unsubscribe(self, context: MessageContext):
        return None
