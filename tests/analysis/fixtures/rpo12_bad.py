"""Fixture: shared state settled after notification fan-out (RPO12)."""

from contextlib import contextmanager


class ChattyNotifier:
    def __init__(self):
        self.records = []
        self.deliverer = None
        self.sequence = 0
        self.cursor = None

    def drop(self, record):
        self.deliverer.deliver(record)
        self.records.remove(record)  # a re-entrant handler sees the record

    def renumber(self, record):
        self.deliverer.notify(record)
        self.sequence = self.sequence + 1

    def stream(self, items):
        for item in items:
            yield item
            self.cursor = item

    def settle_first(self, record):
        # State settles before the fan-out — must NOT be flagged.
        self.records.remove(record)
        self.deliverer.deliver(record)


@contextmanager
def scope(ctx):
    # Mutate-after-yield is the contextmanager contract — exempt.
    yield ctx
    ctx.depth = 0
