"""Fixture: hard-coded namespace URIs in all three shapes (RPO04)."""

from repro.xmllib import QName, element

_NS = "http://example.org/made-up/drifted"

BAD_QNAME = QName("http://example.org/made-up/drifted", "Thing")


def build():
    return element("{http://example.org/made-up/drifted}Thing")
