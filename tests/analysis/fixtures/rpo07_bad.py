"""Fixture: wall-clock waits in retransmission code (RPO07)."""

import time
from time import sleep as nap


def backoff_for_real(attempt):
    time.sleep(0.04 * 2**attempt)


class Retransmitter:
    def retry(self, attempts):
        for attempt in range(attempts):
            nap(0.01)


def wait_virtually(network, policy, attempt, rng):
    # The compliant shape: virtual backoff, charged and attributed.
    network.charge(policy.backoff_ms(attempt, rng), "reliable.backoff")
