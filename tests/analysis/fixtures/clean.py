"""Fixture: conformant code that must produce zero findings."""

from repro.container.service import MessageContext, ServiceSkeleton, web_method
from repro.transfer.service import actions
from repro.xmllib import QName, element, ns

RESOURCE_MARKER = QName(ns.REPRO_TRANSFER, "Marker")


class WholeTransferService(ServiceSkeleton):
    def __init__(self):
        super().__init__()
        self.documents = {}

    @web_method(actions.CREATE)
    def wxf_create(self, context: MessageContext):
        return element(f"{{{ns.WXF}}}ResourceCreated")

    @web_method(actions.GET)
    def wxf_get(self, context: MessageContext):
        return element(f"{{{ns.WXF}}}GetResponse")

    @web_method(actions.PUT)
    def wxf_put(self, context: MessageContext):
        return element(f"{{{ns.WXF}}}PutResponse")

    @web_method(actions.DELETE)
    def wxf_delete(self, context: MessageContext):
        return element(f"{{{ns.WXF}}}DeleteResponse")
