"""Per-checker tests: each rule fires on its bad fixture and stays quiet
on the clean one."""

from pathlib import Path

from repro.analysis.engine import analyze_file

FIXTURES = Path(__file__).parent / "fixtures"


def findings_for(fixture: str, rule: str):
    return [
        f for f in analyze_file(str(FIXTURES / fixture)) if f.rule == rule
    ]


class TestRpo01TransferQuartet:
    def test_partial_service_flagged(self):
        findings = findings_for("rpo01_bad.py", "RPO01")
        quartet = [f for f in findings if f.symbol == "HalfTransferService"]
        assert len(quartet) == 1
        assert "DELETE" in quartet[0].message and "PUT" in quartet[0].message

    def test_hardcoded_action_uris_flagged(self):
        findings = findings_for("rpo01_bad.py", "RPO01")
        table = [f for f in findings if f.symbol.startswith("partial_actions.")]
        assert {f.symbol.split(".")[1] for f in table} == {
            "CREATE", "GET", "PUT", "DELETE",
        }

    def test_clean_passes(self):
        assert findings_for("clean.py", "RPO01") == []


class TestRpo02EventingQuartet:
    def test_stranding_source_flagged(self):
        findings = findings_for("rpo02_bad.py", "RPO02")
        assert any(f.symbol == "StrandingEventSource" for f in findings)

    def test_partial_manager_flagged(self):
        findings = findings_for("rpo02_bad.py", "RPO02")
        partial = [f for f in findings if f.symbol == "ForgetfulManager"]
        assert len(partial) == 1
        assert "GET_STATUS" in partial[0].message

    def test_clean_passes(self):
        assert findings_for("clean.py", "RPO02") == []


class TestRpo03FaultDiscipline:
    def test_bare_and_soap_raises_flagged(self):
        findings = findings_for("wsrf_bad_faults.py", "RPO03")
        assert {f.symbol for f in findings} == {
            "LeakyResourceService.poke",
            "LeakyResourceService.prod",
        }

    def test_scope_is_wsrf_stack_only(self):
        # Same raise shapes outside wsrf/wsn paths are not this rule's business.
        assert findings_for("rpo06_bad.py", "RPO03") == []


class TestRpo04NamespaceHygiene:
    def test_all_three_shapes_flagged(self):
        findings = findings_for("rpo04_bad.py", "RPO04")
        assert len(findings) == 3
        messages = " / ".join(f.message for f in findings)
        assert "Clark notation" in messages
        assert "module/class constant" in messages

    def test_clean_passes(self):
        assert findings_for("clean.py", "RPO04") == []


class TestRpo05SimCost:
    def test_all_three_shapes_flagged(self):
        findings = findings_for("rpo05_bad.py", "RPO05")
        by_symbol = {f.symbol: f for f in findings}
        assert set(by_symbol) == {
            "send_for_free", "persist_for_free", "charge_invisibly",
        }
        assert all(f.severity == "warning" for f in findings)

    def test_clean_passes(self):
        assert findings_for("clean.py", "RPO05") == []


class TestRpo06HandlerState:
    def test_global_subscript_and_mutator_flagged(self):
        findings = findings_for("rpo06_bad.py", "RPO06")
        messages = " / ".join(f.message for f in findings)
        assert "global COUNTER" in messages
        assert "'SUBSCRIBERS'" in messages
        assert "'REGISTRY'" in messages

    def test_clean_passes(self):
        assert findings_for("clean.py", "RPO06") == []


class TestRpo07WallClock:
    def test_module_and_aliased_sleeps_flagged(self):
        findings = findings_for("rpo07_bad.py", "RPO07")
        assert {f.symbol for f in findings} == {
            "backoff_for_real", "Retransmitter.retry",
        }
        assert all(f.severity == "error" for f in findings)
        assert all("clock.charge" in f.message for f in findings)

    def test_charged_backoff_not_flagged(self):
        findings = findings_for("rpo07_bad.py", "RPO07")
        assert not any(f.symbol == "wait_virtually" for f in findings)

    def test_clean_passes(self):
        assert findings_for("clean.py", "RPO07") == []


class TestRpo08PipelineBoundary:
    def test_direct_imports_and_qualified_use_flagged(self):
        findings = findings_for("rpo08_bad.py", "RPO08")
        messages = " | ".join(f.message for f in findings)
        assert "SecurityHandler" in messages
        assert "InboundRequestLog" in messages
        # Two imports, two attribute uses in __init__ is zero (names bound
        # locally), one module-qualified call.
        assert len(findings) >= 3
        assert all(f.severity == "error" for f in findings)

    def test_chain_driver_shape_not_flagged(self):
        findings = findings_for("rpo08_bad.py", "RPO08")
        assert not any("pipeline()" in f.message for f in findings)

    def test_owning_modules_are_exempt(self):
        import repro.container.security as security_mod
        import repro.pipeline.filters as filters_mod
        import repro.reliable.sequence as sequence_mod

        for mod in (security_mod, filters_mod, sequence_mod):
            assert [f for f in analyze_file(mod.__file__) if f.rule == "RPO08"] == []

    def test_clean_passes(self):
        assert findings_for("clean.py", "RPO08") == []


class TestRpo09HostIsolation:
    def test_runtime_mutated_module_mutables_flagged(self):
        findings = findings_for("rpo09_bad.py", "RPO09")
        by_symbol = {f.symbol for f in findings}
        assert "record_lease" in by_symbol
        assert "flush_pending" in by_symbol

    def test_class_level_mutable_defaults_flagged(self):
        findings = findings_for("rpo09_bad.py", "RPO09")
        assert "SubscriptionBook.subscribers" in {f.symbol for f in findings}
        assert "SubscriptionBook.index" in {f.symbol for f in findings}

    def test_import_time_mutation_not_flagged(self):
        # IMPORT_TIME is populated at module scope — pre-host, exempt.
        findings = findings_for("rpo09_bad.py", "RPO09")
        assert not any("IMPORT_TIME" in f.message for f in findings)

    def test_screaming_case_class_constant_not_flagged(self):
        findings = findings_for("rpo09_bad.py", "RPO09")
        assert not any(f.symbol.endswith(".ROUTES") for f in findings)

    def test_clean_passes(self):
        assert findings_for("clean.py", "RPO09") == []


class TestRpo10Determinism:
    def test_entropy_sources_flagged(self):
        findings = findings_for("rpo10_bad.py", "RPO10")
        messages = " | ".join(f.message for f in findings)
        assert "time.time()" in messages
        assert "datetime.now()" in messages
        assert "random.random()" in messages
        assert "random.Random() with no seed" in messages
        assert "os.urandom()" in messages
        assert "uuid.uuid4()" in messages
        assert "id()" in messages
        assert "iteration order of a set" in messages
        assert "sorting by id()" in messages

    def test_seeded_random_not_flagged(self):
        findings = findings_for("rpo10_bad.py", "RPO10")
        assert not any(f.symbol == "seeded_ok" for f in findings)

    def test_handler_reachable_entropy_is_error(self):
        findings = findings_for("rpo10_bad.py", "RPO10")
        severities = {f.symbol: f.severity for f in findings}
        assert severities["TimestampService._now"] == "error"
        assert severities["stamp"] == "warning"

    def test_clean_passes(self):
        assert findings_for("clean.py", "RPO10") == []


class TestRpo11CostEscape:
    def test_wrappers_flagged(self):
        findings = findings_for("rpo11_bad.py", "RPO11")
        wrappers = {f.symbol for f in findings if "bare-name receiver" in f.message}
        assert wrappers == {"bump", "advance_quietly"}

    def test_transitive_callers_flagged(self):
        findings = findings_for("rpo11_bad.py", "RPO11")
        launderers = {f.symbol for f in findings if "reaches" in f.message}
        assert launderers == {"handle_request", "outer"}

    def test_network_charge_not_flagged(self):
        findings = findings_for("rpo11_bad.py", "RPO11")
        assert not any(f.symbol == "charge_properly" for f in findings)

    def test_clean_passes(self):
        assert findings_for("clean.py", "RPO11") == []


class TestRpo12Reentrancy:
    def test_mutation_after_fanout_flagged(self):
        findings = findings_for("rpo12_bad.py", "RPO12")
        assert {f.symbol for f in findings} == {
            "ChattyNotifier.drop",
            "ChattyNotifier.renumber",
            "ChattyNotifier.stream",
        }

    def test_settle_before_fanout_not_flagged(self):
        findings = findings_for("rpo12_bad.py", "RPO12")
        assert not any(f.symbol == "ChattyNotifier.settle_first" for f in findings)

    def test_contextmanager_exempt(self):
        findings = findings_for("rpo12_bad.py", "RPO12")
        assert not any(f.symbol == "scope" for f in findings)

    def test_clean_passes(self):
        assert findings_for("clean.py", "RPO12") == []


class TestRpo13StoreDiscipline:
    def test_internal_pokes_flagged(self):
        findings = findings_for("rpo13_bad.py", "RPO13")
        assert {f.symbol for f in findings} == {
            "poison_cache", "drop_entry", "hand_edit_index",
            "bypass_collection", "forget", "attach_raw",
        }

    def test_collection_api_not_flagged(self):
        findings = findings_for("rpo13_bad.py", "RPO13")
        assert not any(f.symbol == "proper" for f in findings)

    def test_owning_layer_is_exempt(self):
        import repro.xmldb.cache as cache_mod
        import repro.xmldb.index as index_mod

        for mod in (cache_mod, index_mod):
            assert [f for f in analyze_file(mod.__file__) if f.rule == "RPO13"] == []

    def test_clean_passes(self):
        assert findings_for("clean.py", "RPO13") == []


class TestRpo14KernelOwnsTime:
    def test_direct_advance_and_timer_mutation_flagged(self):
        findings = findings_for("rpo14_bad.py", "RPO14")
        assert {f.symbol for f in findings} == {
            "jump_timeline", "jump_via_network",
            "adhoc_timer", "adhoc_delayed_timer", "forget_timer",
        }

    def test_messages_name_the_offending_method(self):
        findings = findings_for("rpo14_bad.py", "RPO14")
        by_symbol = {f.symbol: f.message for f in findings}
        assert "clock.advance_to" in by_symbol["jump_timeline"]
        assert "clock.schedule_after" in by_symbol["adhoc_delayed_timer"]
        assert "call_at/call_after" in by_symbol["forget_timer"]

    def test_charging_and_kernel_timers_not_flagged(self):
        findings = findings_for("rpo14_bad.py", "RPO14")
        assert not any(
            f.symbol in ("proper_charge", "proper_kernel_timer") for f in findings
        )

    def test_non_clock_receivers_not_flagged(self):
        findings = findings_for("rpo14_bad.py", "RPO14")
        assert not any(
            f.symbol in ("unrelated_schedule", "unrelated_cancel") for f in findings
        )

    def test_sim_substrate_is_exempt(self):
        import repro.sim.kernel as kernel_mod

        assert [f for f in analyze_file(kernel_mod.__file__) if f.rule == "RPO14"] == []

    def test_clean_passes(self):
        assert findings_for("clean.py", "RPO14") == []


class TestRpo15LayerDiscipline:
    def test_every_banned_import_shape_flagged(self):
        findings = findings_for("rpo15_bad_logic.py", "RPO15")
        # import repro.soap / from repro.container import / from
        # repro.pipeline.filters import / from repro import container.
        assert len(findings) == 4
        roots = " | ".join(f.message for f in findings)
        assert "repro.soap" in roots
        assert "repro.container" in roots
        assert "repro.pipeline" in roots
        assert all(f.severity == "error" for f in findings)

    def test_message_points_at_the_router_seam(self):
        findings = findings_for("rpo15_bad_logic.py", "RPO15")
        assert all("router layer" in f.message for f in findings)

    def test_real_inner_layers_are_clean(self):
        import repro.apps.datagrid.db as dg_db
        import repro.apps.datagrid.logic as dg_logic
        import repro.apps.giab.db as giab_db
        import repro.apps.giab.logic as giab_logic
        import repro.apps.layers.db as layers_db
        import repro.apps.layers.logic as layers_logic

        for mod in (
            dg_db, dg_logic, giab_db, giab_logic, layers_db, layers_logic,
        ):
            assert [f for f in analyze_file(mod.__file__) if f.rule == "RPO15"] == []

    def test_routers_stay_out_of_scope(self):
        # Routers are *supposed* to touch the wire: the rule keys on the
        # logic.py/db.py layer convention, not on the package.
        import repro.apps.giab.wsrf.data as router_mod

        assert [f for f in analyze_file(router_mod.__file__) if f.rule == "RPO15"] == []

    def test_clean_passes(self):
        assert findings_for("clean.py", "RPO15") == []
