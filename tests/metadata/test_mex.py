"""WS-MetadataExchange: schema discovery end-to-end."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.container import ServiceSkeleton, web_method
from repro.metadata import (
    DIALECT_OPERATIONS,
    DIALECT_RESOURCE_PROPERTIES,
    DIALECT_SCHEMA,
    MetadataExchangeMixin,
    fetch_metadata,
    schema_from_xml,
    schema_to_xml,
)
from repro.xmllib import ElementSpec, QName, SchemaError, element, parse_xml, serialize

from tests.helpers import make_client, make_deployment, server_container


def counter_schema() -> ElementSpec:
    return ElementSpec(
        tag=QName("urn:c", "Counter"),
        children={
            QName("urn:c", "Value"): (
                ElementSpec(QName("urn:c", "Value"), text_type="int"),
                1,
                1,
            )
        },
    )


class DescribedService(MetadataExchangeMixin, ServiceSkeleton):
    service_name = "Described"

    @web_method("urn:app/DoThing")
    def do_thing(self, context):
        return element("{urn:app}Done")


@pytest.fixture()
def rig():
    deployment = make_deployment()
    container = server_container(deployment)
    service = DescribedService()
    service.advertise_schema(counter_schema())
    container.add_service(service)
    client = make_client(deployment)
    return deployment, service, client


class TestSchemaXml:
    def test_roundtrip(self):
        spec = counter_schema()
        again = schema_from_xml(parse_xml(serialize(schema_to_xml(spec))))
        assert again.tag == spec.tag
        assert set(again.children) == set(spec.children)
        child, lo, hi = again.children[QName("urn:c", "Value")]
        assert (lo, hi) == (1, 1)
        assert child.text_type == "int"

    def test_unbounded_roundtrip(self):
        spec = ElementSpec(
            tag=QName("", "list"),
            children={QName("", "item"): (None, 0, None)},
            open_content=True,
        )
        again = schema_from_xml(parse_xml(serialize(schema_to_xml(spec))))
        assert again.children[QName("", "item")][2] is None
        assert again.open_content

    def test_required_attributes_roundtrip(self):
        spec = ElementSpec(
            tag=QName("u", "a"), required_attributes=(QName("", "id"), QName("v", "x"))
        )
        again = schema_from_xml(parse_xml(serialize(schema_to_xml(spec))))
        assert set(again.required_attributes) == set(spec.required_attributes)

    def test_not_a_schema_rejected(self):
        with pytest.raises(ValueError, match="not a schema element"):
            schema_from_xml(element("random"))

    @given(
        st.lists(
            st.tuples(
                st.from_regex(r"[A-Za-z][A-Za-z0-9]{0,6}", fullmatch=True),
                st.integers(0, 3),
                st.one_of(st.none(), st.integers(1, 5)),
            ),
            max_size=5,
            unique_by=lambda t: t[0],
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip_any_children(self, children):
        spec = ElementSpec(tag=QName("urn:x", "Root"))
        for name, lo, hi in children:
            if hi is not None and hi < lo:
                lo, hi = hi, lo
            spec.children[QName("urn:x", name)] = (None, lo, hi)
        again = schema_from_xml(parse_xml(serialize(schema_to_xml(spec))))
        assert again.children == spec.children


class TestGetMetadata:
    def test_operations_dialect(self, rig):
        _, service, client = rig
        metadata = fetch_metadata(client, service.address, DIALECT_OPERATIONS)
        assert metadata.supports("urn:app/DoThing")
        assert metadata.supports(
            "http://schemas.xmlsoap.org/ws/2004/09/mex/GetMetadata"
        )
        assert metadata.schemas == []

    def test_schema_dialect_enables_client_side_validation(self, rig):
        """The §3.2 fix: discover the schema instead of hard-coding it."""
        _, service, client = rig
        metadata = fetch_metadata(client, service.address, DIALECT_SCHEMA)
        spec = metadata.schema_for("{urn:c}Counter")
        assert spec is not None
        spec.validate(element("{urn:c}Counter", element("{urn:c}Value", "3")))
        with pytest.raises(SchemaError):
            spec.validate(element("{urn:c}Counter", element("{urn:c}Value", "NaN")))

    def test_all_dialects_by_default(self, rig):
        _, service, client = rig
        metadata = fetch_metadata(client, service.address)
        assert metadata.operations and metadata.schemas

    def test_wsrf_service_advertises_resource_properties(self):
        from repro.metadata import MetadataExchangeMixin
        from repro.wsrf import ResourceHome
        from tests.wsrf.conftest import CounterService

        class DescribedCounter(MetadataExchangeMixin, CounterService):
            service_name = "DescribedCounter"

        deployment = make_deployment()
        container = server_container(deployment)
        service = DescribedCounter(ResourceHome("c", deployment.network))
        container.add_service(service)
        client = make_client(deployment)
        metadata = fetch_metadata(client, service.address, DIALECT_RESOURCE_PROPERTIES)
        locals_ = {qn.local for qn in metadata.resource_properties}
        assert {"Value", "DoubleValue", "Label"} <= locals_

    def test_transfer_counter_discovery_flow(self):
        """A WS-Transfer client discovers the counter schema via MEX and
        validates a representation before Create — no hard-coding."""
        from repro.apps.counter import CounterScenario, build_transfer_rig
        from repro.apps.counter.transfer_service import counter_representation
        from repro.metadata import MetadataExchangeMixin
        from repro.xmllib import ns as nsmod

        rig = build_transfer_rig(CounterScenario())
        # Upgrade the deployed service in place with MEX support:
        service = rig.service
        service.__class__ = type(
            "MexTransferCounter", (MetadataExchangeMixin, type(service)), {}
        )
        service._operations[
            "http://schemas.xmlsoap.org/ws/2004/09/mex/GetMetadata"
        ] = service.mex_get_metadata
        service.advertise_schema(
            ElementSpec(
                tag=QName(nsmod.COUNTER, "Counter"),
                children={
                    QName(nsmod.COUNTER, "Value"): (
                        ElementSpec(QName(nsmod.COUNTER, "Value"), text_type="int"),
                        1,
                        1,
                    )
                },
            )
        )
        metadata = fetch_metadata(rig.client.soap, service.address, DIALECT_SCHEMA)
        spec = metadata.schema_for(QName(nsmod.COUNTER, "Counter"))
        spec.validate(counter_representation(5))


class TestWsdlDialect:
    def test_wsdl_served_via_mex(self, rig):
        """The real-world MEX use: fetch the service's WSDL contract."""
        from repro.metadata.exchange import DIALECT_WSDL

        _, service, client = rig
        metadata = fetch_metadata(client, service.address, DIALECT_WSDL)
        assert metadata.wsdl is not None
        assert metadata.wsdl.action_supported("urn:app/DoThing")
        assert metadata.wsdl.address == service.address

    def test_wsdl_carries_advertised_types(self, rig):
        from repro.metadata.exchange import DIALECT_WSDL

        _, service, client = rig
        metadata = fetch_metadata(client, service.address, DIALECT_WSDL)
        spec = metadata.wsdl.schema_for(QName("urn:c", "Counter"))
        assert spec is not None
        spec.validate(element("{urn:c}Counter", element("{urn:c}Value", "1")))

    def test_wsdl_included_in_full_fetch(self, rig):
        _, service, client = rig
        metadata = fetch_metadata(client, service.address)
        assert metadata.wsdl is not None and metadata.operations
