"""Unit and property tests for primes and RSA signatures."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import RsaKeyPair, SignatureError, generate_prime, is_probable_prime


# A small keypair generated once per test module: keygen is the slow part.
@pytest.fixture(scope="module")
def keypair():
    return RsaKeyPair.generate(bits=512, seed=42)


class TestPrimes:
    def test_known_primes(self):
        for p in (2, 3, 5, 101, 7919, 104729):
            assert is_probable_prime(p)

    def test_known_composites(self):
        for c in (0, 1, 4, 100, 7917, 561, 41041):  # incl. Carmichael numbers
            assert not is_probable_prime(c)

    def test_generated_prime_has_exact_bits(self):
        rng = random.Random(1)
        for bits in (64, 128, 256):
            p = generate_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_deterministic_for_seed(self):
        assert generate_prime(64, random.Random(9)) == generate_prime(64, random.Random(9))

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_prime(4, random.Random(0))


class TestKeyGeneration:
    def test_deterministic(self):
        k1 = RsaKeyPair.generate(bits=512, seed=5)
        k2 = RsaKeyPair.generate(bits=512, seed=5)
        assert (k1.n, k1.e, k1.d) == (k2.n, k2.e, k2.d)

    def test_different_seeds_differ(self):
        assert RsaKeyPair.generate(bits=512, seed=1).n != RsaKeyPair.generate(bits=512, seed=2).n

    def test_modulus_size(self, keypair):
        assert keypair.n.bit_length() == 512
        assert keypair.byte_length == 64

    def test_public_strips_private(self, keypair):
        pub = keypair.public
        assert pub.n == keypair.n and pub.e == keypair.e
        assert not hasattr(pub, "d")


class TestSignatures:
    def test_sign_verify_roundtrip(self, keypair):
        sig = keypair.sign(b"hello grid")
        keypair.public.verify(b"hello grid", sig)

    def test_sha256_roundtrip(self, keypair):
        sig = keypair.sign(b"msg", hash_name="sha256")
        keypair.public.verify(b"msg", sig, hash_name="sha256")

    def test_wrong_message_rejected(self, keypair):
        sig = keypair.sign(b"original")
        with pytest.raises(SignatureError):
            keypair.public.verify(b"tampered", sig)

    def test_wrong_hash_rejected(self, keypair):
        sig = keypair.sign(b"m", hash_name="sha1")
        with pytest.raises(SignatureError):
            keypair.public.verify(b"m", sig, hash_name="sha256")

    def test_bitflip_rejected(self, keypair):
        sig = bytearray(keypair.sign(b"m"))
        sig[10] ^= 0x01
        with pytest.raises(SignatureError):
            keypair.public.verify(b"m", bytes(sig))

    def test_wrong_key_rejected(self, keypair):
        other = RsaKeyPair.generate(bits=512, seed=99)
        sig = keypair.sign(b"m")
        with pytest.raises(SignatureError):
            other.public.verify(b"m", sig)

    def test_wrong_length_rejected(self, keypair):
        with pytest.raises(SignatureError):
            keypair.public.verify(b"m", b"\x00" * 10)

    def test_unsupported_hash_rejected(self, keypair):
        with pytest.raises(SignatureError):
            keypair.sign(b"m", hash_name="md5")

    def test_fingerprint_stable_and_short(self, keypair):
        f1 = keypair.public.fingerprint()
        assert f1 == keypair.public.fingerprint()
        assert len(f1) == 16

    @given(st.binary(max_size=256))
    @settings(max_examples=25, deadline=None)
    def test_property_roundtrip_any_message(self, message):
        keypair = RsaKeyPair.generate(bits=512, seed=42)
        keypair.public.verify(message, keypair.sign(message))

    @given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_property_distinct_messages_never_cross_verify(self, m1, m2):
        if m1 == m2:
            return
        keypair = RsaKeyPair.generate(bits=512, seed=42)
        sig = keypair.sign(m1)
        with pytest.raises(SignatureError):
            keypair.public.verify(m2, sig)
