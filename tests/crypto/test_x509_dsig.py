"""Unit tests for certificates, the CA, and XML-DSig."""

import pytest

from repro.crypto import (
    Certificate,
    CertificateAuthority,
    CertificateError,
    DistinguishedName,
    DsigError,
    RsaKeyPair,
    sign_element,
    verify_element,
)
from repro.xmllib import element, parse_xml, serialize


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority.create(seed=7)


@pytest.fixture(scope="module")
def identity(ca):
    return ca.issue_identity("alice", seed=11)


class TestDistinguishedName:
    def test_str_format(self):
        dn = DistinguishedName("alice", organization="UVa", unit="CS", country="US")
        assert str(dn) == "CN=alice, OU=CS, O=UVa, C=US"

    def test_parse_roundtrip(self):
        dn = DistinguishedName("alice", organization="UVa", unit="CS", country="US")
        assert DistinguishedName.parse(str(dn)) == dn

    def test_parse_requires_cn(self):
        with pytest.raises(CertificateError):
            DistinguishedName.parse("O=NoName")

    def test_parse_tolerates_whitespace_and_unknown(self):
        dn = DistinguishedName.parse(" CN = bob , O=Org, X=ignored ")
        assert dn.common_name == "bob"
        assert dn.organization == "Org"

    def test_hashed_stable(self):
        dn = DistinguishedName("alice")
        assert dn.hashed() == dn.hashed()
        assert len(dn.hashed()) == 12
        assert dn.hashed() != DistinguishedName("bob").hashed()


class TestCertificates:
    def test_issue_and_check(self, ca, identity):
        cert, _ = identity
        cert.check(ca.keypair.public, at_time=100.0)

    def test_serials_increment(self, ca):
        c1, _ = ca.issue_identity("u1", seed=21)
        c2, _ = ca.issue_identity("u2", seed=22)
        assert c2.serial > c1.serial

    def test_expired_rejected(self, ca):
        keypair = RsaKeyPair.generate(bits=512, seed=31)
        cert = ca.issue(
            DistinguishedName("shortlived"), keypair.public, not_before=0, not_after=10
        )
        cert.check(ca.keypair.public, at_time=5)
        with pytest.raises(CertificateError, match="not valid"):
            cert.check(ca.keypair.public, at_time=11)

    def test_wrong_issuer_key_rejected(self, ca, identity):
        cert, _ = identity
        other = CertificateAuthority.create(common_name="Evil CA", seed=666)
        with pytest.raises(CertificateError, match="bad issuer signature"):
            cert.check(other.keypair.public, at_time=1)

    def test_forged_subject_rejected(self, ca, identity):
        cert, _ = identity
        forged = Certificate(
            subject=DistinguishedName("mallory"),
            issuer=cert.issuer,
            public_key=cert.public_key,
            serial=cert.serial,
            not_before=cert.not_before,
            not_after=cert.not_after,
            signature=cert.signature,
        )
        with pytest.raises(CertificateError):
            forged.check(ca.keypair.public, at_time=1)


class TestXmlDsig:
    def body(self):
        return element(
            "{urn:app}Request", element("{urn:app}Value", "41"), attrs={"id": "r1"}
        )

    def test_sign_verify_roundtrip(self, identity):
        cert, keypair = identity
        body = self.body()
        signature = sign_element(body, keypair, cert)
        verify_element(body, signature, cert.public_key)

    def test_verify_after_wire_roundtrip(self, identity):
        """Signature must survive serialize → parse (prefix loss etc.)."""
        cert, keypair = identity
        body = self.body()
        signature = sign_element(body, keypair, cert)
        wire_body = parse_xml(serialize(body))
        wire_sig = parse_xml(serialize(signature))
        verify_element(wire_body, wire_sig, cert.public_key)

    def test_tampered_content_rejected(self, identity):
        cert, keypair = identity
        body = self.body()
        signature = sign_element(body, keypair, cert)
        body.find("{urn:app}Value").children = ["42"]
        with pytest.raises(DsigError, match="digest mismatch"):
            verify_element(body, signature, cert.public_key)

    def test_tampered_attribute_rejected(self, identity):
        cert, keypair = identity
        body = self.body()
        signature = sign_element(body, keypair, cert)
        body.set("id", "r2")
        with pytest.raises(DsigError):
            verify_element(body, signature, cert.public_key)

    def test_swapped_signature_rejected(self, identity, ca):
        cert, keypair = identity
        body = self.body()
        other_body = element("{urn:app}Request", element("{urn:app}Value", "43"))
        signature_other = sign_element(other_body, keypair, cert)
        with pytest.raises(DsigError):
            verify_element(body, signature_other, cert.public_key)

    def test_resigned_signedinfo_rejected(self, identity, ca):
        """An attacker re-signing SignedInfo with their own key must fail
        against the legitimate subject's public key."""
        cert, keypair = identity
        mallory = RsaKeyPair.generate(bits=512, seed=1337)
        body = self.body()
        signature = sign_element(body, mallory, cert)
        with pytest.raises(DsigError, match="RSA signature"):
            verify_element(body, signature, cert.public_key)

    def test_signer_subject_extraction(self, identity):
        from repro.crypto.xmldsig import signer_subject

        cert, keypair = identity
        signature = sign_element(self.body(), keypair, cert)
        assert signer_subject(signature) == str(cert.subject)

    def test_malformed_signature_elements(self, identity):
        cert, _ = identity
        body = self.body()
        with pytest.raises(DsigError, match="no SignedInfo"):
            verify_element(body, element("{http://www.w3.org/2000/09/xmldsig#}Signature"), cert.public_key)
