"""Failure injection across the stack: storage faults, tampering, expiry."""

import pytest

from repro.container import SecurityMode
from repro.soap import SoapFault, WireMessage
from repro.xmldb.backends import MemoryBackend
from repro.xmllib import element

from tests.container.test_container import ECHO_ACTION, make_deployment as make_echo
from tests.helpers import make_deployment


class FlakyBackend(MemoryBackend):
    """A backend that fails on demand."""

    def __init__(self):
        super().__init__()
        self.fail_next = 0

    def _maybe_fail(self):
        if self.fail_next > 0:
            self.fail_next -= 1
            raise IOError("simulated disk failure")

    def load(self, key):
        self._maybe_fail()
        return super().load(key)

    def store(self, key, text):
        self._maybe_fail()
        super().store(key, text)


class TestStorageFailures:
    def build_counter_rig(self):
        from repro.wsrf import ResourceHome
        from tests.helpers import make_client, server_container
        from tests.wsrf.conftest import CounterService

        deployment = make_deployment()
        container = server_container(deployment)
        backend = FlakyBackend()
        home = ResourceHome("counters", deployment.network, backend=backend)
        service = CounterService(home)
        container.add_service(service)
        client = make_client(deployment)
        return deployment, service, client, backend

    def test_disk_failure_surfaces_and_service_recovers(self):
        from tests.wsrf.conftest import BUMP, NS, create_counter

        deployment, service, client, backend = self.build_counter_rig()
        epr = create_counter(service, client, initial=1)
        backend.fail_next = 1
        with pytest.raises((SoapFault, IOError)):
            client.invoke(epr, BUMP, element(f"{{{NS}}}Bump"))
        # After the glitch the service keeps working.
        response = client.invoke(epr, BUMP, element(f"{{{NS}}}Bump"))
        assert response.text() in ("2", "3")  # depends where the failure hit


class TestWireTampering:
    def test_tampered_signed_request_rejected(self):
        """Bit-flip a signed request on the wire: the container must refuse
        it and answer with a security fault, not process it."""
        deployment, service, client = make_echo(SecurityMode.X509)
        from repro.addressing import MessageHeaders
        from repro.soap.envelope import build_envelope

        headers = MessageHeaders(to=service.address, action=ECHO_ACTION)
        envelope = build_envelope(headers.to_elements(), [element("{urn:test}Echo", "legit")])
        client.security.secure_outgoing(envelope, client.credentials)
        wire = WireMessage.from_envelope(envelope)
        tampered = WireMessage(wire.text.replace("legit", "evil!"))
        _, container = deployment.resolve(service.address)
        reply = container.handle(tampered).parse()
        assert reply.is_fault()
        assert "security failure" in reply.fault().reason

    def test_stripped_signature_rejected(self):
        deployment, service, client = make_echo(SecurityMode.X509)
        from repro.addressing import MessageHeaders
        from repro.soap.envelope import build_envelope

        headers = MessageHeaders(to=service.address, action=ECHO_ACTION)
        envelope = build_envelope(headers.to_elements(), [element("{urn:test}Echo", "x")])
        # never signed at all
        wire = WireMessage.from_envelope(envelope)
        _, container = deployment.resolve(service.address)
        reply = container.handle(wire).parse()
        assert reply.is_fault()
        assert "signed" in reply.fault().reason


class TestCredentialExpiry:
    def test_expired_certificate_rejected_mid_session(self):
        from repro.container import Credentials, SoapClient
        from tests.container.test_container import EchoService
        from tests.helpers import server_container

        deployment = make_deployment(SecurityMode.X509)
        container = server_container(deployment)
        service = EchoService()
        container.add_service(service)

        # A client certificate that expires at t=5000 virtual ms.
        cert, keypair = None, None
        from repro.crypto import DistinguishedName, RsaKeyPair

        keypair = RsaKeyPair.generate(seed=871)
        cert = deployment.ca.issue(
            DistinguishedName("shortlived"), keypair.public, not_before=0, not_after=5000
        )
        deployment.add_trust(cert)
        client = SoapClient(deployment, "clienthost", Credentials(cert, keypair))

        client.invoke(service.epr(), ECHO_ACTION, element("{urn:test}Echo", "ok"))
        deployment.network.clock.charge(10_000)
        with pytest.raises(SoapFault, match="security failure"):
            client.invoke(service.epr(), ECHO_ACTION, element("{urn:test}Echo", "late"))


class TestGridRaces:
    def test_reservation_expires_before_job_start(self):
        """The unclaimed-reservation race: the client dawdles past the
        administrator delta, then tries to start the job."""
        from tests.helpers import fresh_vo
        from repro.apps.giab.jobs import JobSpec

        vo = fresh_vo("wsrf")
        reservation = vo.client.make_reservation("node1")
        directory = vo.client.create_data_directory(vo.nodes["node1"].data_service.address)
        vo.deployment.network.clock.charge(4 * 3600 * 1000.0 + 1)  # past the delta
        with pytest.raises(SoapFault, match="unknown"):
            vo.client.start_job(
                vo.nodes["node1"].exec_service.address, reservation, directory, JobSpec("sort")
            )

    def test_consumer_death_does_not_break_job_completion(self):
        from tests.helpers import fresh_vo
        from repro.apps.giab.jobs import JobSpec

        vo = fresh_vo("wsrf")
        exec_service = vo.nodes["node1"].exec_service
        observed = []
        exec_service.on_delivery_failure = lambda view, reason: observed.append(
            (view.consumer_address, reason)
        )
        reservation = vo.client.make_reservation("node1")
        directory = vo.client.create_data_directory(vo.nodes["node1"].data_service.address)
        vo.client.upload_file(directory, "in", "x")
        # Long enough that the job outlives the subscribe exchange (whose
        # signing charges take several hundred virtual ms).
        job = vo.client.start_job(
            exec_service.address, reservation, directory,
            JobSpec("sort", (), 5000.0),
        )
        vo.client.subscribe_job_exit(job, vo.consumer)
        assert vo.consumer.received == []  # job still running
        vo.deployment._sinks.clear()  # the client process dies
        vo.deployment.network.clock.charge(6000)  # job finishes anyway
        assert vo.client.job_status(job) == "Exited"
        # ... and the reservation was still auto-released:
        assert "node1" in {s["host"] for s in vo.client.get_available_resources("sort")}
        # The dropped notification was NOT silent: the producer recorded the
        # failure, told the observer, and terminated the dead subscription.
        assert exec_service.delivery_failures == [
            (vo.consumer.sink.address, "consumer endpoint gone")
        ]
        assert observed == exec_service.delivery_failures
        assert exec_service.subscription_manager.active_subscriptions(
            exec_service.address
        ) == []

    def test_transfer_consumer_death_is_observed_and_subscription_ended(self):
        from tests.helpers import fresh_vo
        from repro.apps.giab.jobs import JobSpec

        vo = fresh_vo("transfer")
        exec_service = vo.nodes["node1"].exec_service
        observed = []
        exec_service.notifications.on_delivery_failure = (
            lambda record, reason: observed.append((record.notify_to, reason))
        )
        vo.client.make_reservation("node1")
        vo.client.upload_file(vo.nodes["node1"].data_service.address, "in", "x")
        job = vo.client.start_job(
            exec_service.address, JobSpec("sort", (), 5000.0)
        )
        vo.client.subscribe_job_exit(exec_service.address, job, vo.consumer)
        assert vo.consumer.received == []  # job still running
        vo.deployment._sinks.clear()  # the client process dies
        vo.deployment.network.clock.charge(6000)  # job finishes anyway
        assert vo.client.job_status(job) == "Exited"
        # The eventing stack surfaces the failure and drops the subscription.
        assert exec_service.notifications.delivery_failures == [
            (vo.consumer.sink.address, "consumer endpoint gone")
        ]
        assert observed == exec_service.notifications.delivery_failures
        assert exec_service.notifications.store.for_source(exec_service.address) == []

    def test_stale_transfer_reservation_blocks_until_admin_intervenes(self):
        """WS-Transfer's manual-lifetime failure mode, resolved the hard way:
        the admin deletes and re-registers the site."""
        from tests.helpers import fresh_vo

        vo = fresh_vo("transfer")
        vo.client.make_reservation("node1")
        # client vanishes; a week passes; node1 still blocked
        vo.deployment.network.clock.charge(7 * 24 * 3600 * 1000.0)
        assert "node1" not in {s["host"] for s in vo.client.get_available_resources("sort")}
        pair = vo.nodes["node1"]
        vo.admin.remove_site("node1")
        vo.admin.register_site(
            "node1", pair.exec_service.address, pair.data_service.address, ["blast", "sort"]
        )
        assert "node1" in {s["host"] for s in vo.client.get_available_resources("sort")}


class TestSubscriptionEdgeCases:
    def test_wsn_subscription_expiring_exactly_at_deadline(self):
        from repro.wsn import NotificationConsumer
        from tests.wsn.conftest import SensorService, subscribe, emit
        from repro.wsn.base import SubscriptionManagerService
        from repro.wsrf import ResourceHome
        from tests.helpers import make_client, server_container

        deployment = make_deployment()
        container = server_container(deployment)
        manager = SubscriptionManagerService(ResourceHome("subs", deployment.network))
        container.add_service(manager)
        sensor = SensorService(ResourceHome("sensor", deployment.network))
        sensor.subscription_manager = manager
        container.add_service(sensor)
        client = make_client(deployment)
        consumer = NotificationConsumer(deployment, "client")

        deadline = deployment.network.clock.now + 1000
        subscribe(client, sensor, consumer, termination=repr(deadline))
        deployment.network.clock.advance_to(deadline)  # exactly at the deadline
        assert emit(client, sensor) == 0  # termination fires at <= deadline


class TestAsymmetricTrust:
    def test_unsigned_response_rejected_by_signing_client(self):
        """A container with no credentials cannot sign its responses; in an
        X.509 deployment the *client* must refuse them."""
        from repro.container import SoapClient
        from tests.container.test_container import ECHO_ACTION, EchoService
        from tests.helpers import make_client

        deployment = make_deployment(SecurityMode.X509)
        # Deliberately credential-less container:
        container = deployment.add_container("serverhost", "App", credentials=None)
        service = EchoService()
        container.add_service(service)
        client = make_client(deployment)
        with pytest.raises(SoapFault, match="requires credentials|security failure"):
            client.invoke(service.epr(), ECHO_ACTION, element("{urn:test}Echo", "x"))

    def test_signed_fault_responses_verify(self):
        """Even fault responses are signed and verified end-to-end."""
        from tests.container.test_container import BOOM_ACTION, make_deployment as make_echo

        deployment, service, client = make_echo(SecurityMode.X509)
        with pytest.raises(SoapFault, match="exploded"):
            client.invoke(service.epr(), BOOM_ACTION, element("{urn:test}Boom"))
