"""Shared fixtures/helpers for stack tests: a one-call VO deployment."""

from __future__ import annotations

from repro.container import Deployment, SecurityMode, SecurityPolicy, SoapClient
from repro.crypto import CertificateAuthority
from repro.sim import CostModel


def make_deployment(
    mode: SecurityMode = SecurityMode.NONE,
    costs: CostModel | None = None,
) -> Deployment:
    ca = CertificateAuthority.create(seed=7)
    return Deployment(SecurityPolicy(mode), costs or CostModel(), ca)


def server_container(deployment: Deployment, host: str = "server", name: str = "App"):
    creds = deployment.issue_credentials(f"container-{host}-{name}", seed=hash((host, name)) % 10_000 + 100)
    return deployment.add_container(host, name, creds)


def make_client(deployment: Deployment, host: str = "client", cn: str = "alice", seed: int = 77):
    creds = deployment.issue_credentials(cn, seed=seed)
    return SoapClient(deployment, host, creds)


def fresh_vo(
    stack: str,
    *,
    mode: SecurityMode = SecurityMode.X509,
    indexed: bool = False,
    reliable: bool = False,
    **overrides,
):
    """The canonical Grid-in-a-Box VO for tests: one factory for both
    stacks so suites stop hand-rolling builder calls.  ``reliable`` turns
    on the default WS-RM retry policy; extra keyword arguments pass
    through to the underlying builder (hosts=, costs=, registered=...)."""
    from repro.apps.giab import build_transfer_vo, build_wsrf_vo
    from repro.reliable.policy import RetryPolicy

    if stack not in ("wsrf", "transfer"):
        raise ValueError(f"unknown stack: {stack!r}")
    builder = build_wsrf_vo if stack == "wsrf" else build_transfer_vo
    reliability = RetryPolicy() if reliable else None
    return builder(mode=mode, indexed=indexed, reliability=reliability, **overrides)
