"""Shared fixtures/helpers for stack tests: a one-call VO deployment."""

from __future__ import annotations

from repro.container import Deployment, SecurityMode, SecurityPolicy, SoapClient
from repro.crypto import CertificateAuthority
from repro.sim import CostModel


def make_deployment(
    mode: SecurityMode = SecurityMode.NONE,
    costs: CostModel | None = None,
) -> Deployment:
    ca = CertificateAuthority.create(seed=7)
    return Deployment(SecurityPolicy(mode), costs or CostModel(), ca)


def server_container(deployment: Deployment, host: str = "server", name: str = "App"):
    creds = deployment.issue_credentials(f"container-{host}-{name}", seed=hash((host, name)) % 10_000 + 100)
    return deployment.add_container(host, name, creds)


def make_client(deployment: Deployment, host: str = "client", cn: str = "alice", seed: int = 77):
    creds = deployment.issue_credentials(cn, seed=seed)
    return SoapClient(deployment, host, creds)
