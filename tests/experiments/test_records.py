"""The committed records stay in contract with the current specs.

These are the cheap halves of the regression gate: no re-measurement,
just the committed ``results/experiments/*.json`` checked for fingerprint
skew, invariant violations and artifact/docs staleness.  The expensive
half (fresh runs diffed cell-by-cell) lives in ``scripts/check.sh`` via
``python -m repro experiments --check``.
"""

import pytest

from repro.experiments import check_artifacts, evaluate_invariants
from repro.experiments.cli import DEFAULT_RESULTS_DIR
from repro.experiments.docgen import check_docs
from repro.experiments.engine import ExperimentEngine
from repro.experiments.registry import all_specs, get_spec, smoke_specs, spec_names

ENGINE = ExperimentEngine(DEFAULT_RESULTS_DIR)


@pytest.mark.parametrize("name", spec_names())
def test_committed_record_matches_spec_contract(name):
    spec = get_spec(name)
    record = ENGINE.load_record(name)
    assert record.fingerprint == spec.fingerprint(), (
        f"{name}: the grid contract changed since the record was written; "
        f"regenerate with `python -m repro experiments --run {name}`"
    )
    assert record.cell_ids() == [spec.cell_id(p) for p in spec.grid()]
    assert evaluate_invariants(spec, record) == []


@pytest.mark.parametrize("name", spec_names())
def test_committed_artifacts_render_from_the_record(name):
    spec = get_spec(name)
    record = ENGINE.load_record(name)
    assert check_artifacts(spec, record, DEFAULT_RESULTS_DIR) == []


def test_experiments_md_is_fresh():
    assert check_docs(DEFAULT_RESULTS_DIR) == []


def test_smoke_subset_is_cheap_and_nonempty():
    smoke = list(smoke_specs())
    assert smoke, "CI smoke gate would be vacuous"
    assert all(len(spec.grid()) <= 4 for spec in smoke)
    assert {spec.name for spec in smoke} < {spec.name for spec in all_specs()}
