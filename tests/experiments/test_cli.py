"""The ``python -m repro experiments`` surface, against a temp results dir.

Uses the registry's cheapest real spec (``spec_complexity``: 2 cells of
pure counting) so the CLI paths run in milliseconds.
"""

import json

import pytest

from repro.experiments.cli import experiments_main


class TestList:
    def test_list_mentions_every_spec(self, capsys):
        assert experiments_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig2_hello_nosec", "msgperf", "datagrid"):
            assert name in out

    def test_no_action_prints_help_and_exits_2(self, capsys):
        assert experiments_main([]) == 2

    def test_unknown_spec_name_is_an_error(self):
        with pytest.raises(SystemExit, match="no experiment spec named"):
            experiments_main(["--run", "no_such_spec"])


class TestRunAndCheck:
    def test_run_then_check_round_trips(self, tmp_path, capsys):
        results = str(tmp_path)
        assert experiments_main(["--run", "spec_complexity", "--results", results]) == 0
        assert (tmp_path / "experiments" / "spec_complexity.json").exists()
        assert experiments_main(["--check", "spec_complexity", "--results", results]) == 0
        out = capsys.readouterr().out
        assert "spec_complexity: ok" in out

    def test_tampered_record_fails_the_check(self, tmp_path, capsys):
        results = str(tmp_path)
        experiments_main(["--run", "spec_complexity", "--results", results])
        record_path = tmp_path / "experiments" / "spec_complexity.json"
        payload = json.loads(record_path.read_text())
        cell = payload["cells"][0]
        leaf = next(k for k, v in cell["values"].items() if isinstance(v, (int, float)))
        cell["values"][leaf] = cell["values"][leaf] + 1
        record_path.write_text(json.dumps(payload))
        assert experiments_main(["--check", "spec_complexity", "--results", results]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_json_summary_reports_ok(self, tmp_path, capsys):
        results = str(tmp_path)
        experiments_main(["--run", "spec_complexity", "--results", results])
        capsys.readouterr()
        code = experiments_main(
            ["--check", "spec_complexity", "--results", results, "--json"]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["ok"] is True
        assert summary["check"]["spec_complexity"]["ok"] is True

    def test_resume_flag_reuses_checkpoints(self, tmp_path, capsys):
        results = str(tmp_path)
        experiments_main(["--run", "spec_complexity", "--results", results])
        capsys.readouterr()
        assert (
            experiments_main(
                ["--run", "spec_complexity", "--resume", "--results", results]
            )
            == 0
        )
        assert "0 measured, 2 resumed" in capsys.readouterr().out
