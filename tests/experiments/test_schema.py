"""Schema round-trip properties and validation failures."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import (
    SCHEMA_VERSION,
    CellResult,
    RunRecord,
    SchemaError,
    dumps_canonical,
    numeric_leaves,
)

# JSON-representable cell payloads: scalar leaves under nested dicts/lists.
_scalars = st.one_of(
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
    st.none(),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)
_payloads = st.dictionaries(st.text(min_size=1, max_size=8), _values, max_size=4)
_params = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(st.text(max_size=8), st.integers(-100, 100), st.booleans()),
    max_size=3,
)


class TestCellRoundTrip:
    @given(params=_params, seed=st.integers(0, 2**32 - 1), values=_payloads)
    @settings(max_examples=80, deadline=None)
    def test_cell_survives_json_round_trip(self, params, seed, values):
        cell = CellResult(cell_id="mode=x", params=params, seed=seed, values=values)
        wire = json.loads(json.dumps(cell.to_json()))
        assert CellResult.from_json(wire) == cell

    @given(params=_params, seed=st.integers(0, 2**32 - 1), values=_payloads)
    @settings(max_examples=80, deadline=None)
    def test_record_dumps_loads_is_identity(self, params, seed, values):
        record = RunRecord(
            spec="toy",
            fingerprint="abcd" * 4,
            config={"k": 1},
            cells=[CellResult(cell_id="c", params=params, seed=seed, values=values)],
        )
        loaded = RunRecord.loads(record.dumps())
        assert loaded == record
        # Canonical serialization is idempotent: re-dumping the loaded
        # record reproduces the exact bytes the gate diffs.
        assert loaded.dumps() == record.dumps()

class TestCanonicalBytes:
    def test_key_order_does_not_change_bytes(self):
        assert dumps_canonical({"b": 1, "a": 2}) == dumps_canonical({"a": 2, "b": 1})

    def test_trailing_newline(self):
        assert dumps_canonical({}).endswith("\n")


class TestValidation:
    def _payload(self):
        return {
            "schema_version": SCHEMA_VERSION,
            "spec": "toy",
            "fingerprint": "f" * 16,
            "config": {},
            "cells": [
                {"cell_id": "a", "params": {}, "seed": 1, "values": {"x": 1.0}}
            ],
        }

    def test_missing_key_rejected(self):
        for key in ("schema_version", "spec", "fingerprint", "cells"):
            payload = self._payload()
            del payload[key]
            with pytest.raises(SchemaError, match=key):
                RunRecord.from_json(payload)

    def test_unsupported_schema_version_rejected(self):
        payload = self._payload()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="schema version"):
            RunRecord.from_json(payload)

    def test_duplicate_cell_ids_rejected(self):
        payload = self._payload()
        payload["cells"].append(dict(payload["cells"][0]))
        with pytest.raises(SchemaError, match="duplicate"):
            RunRecord.from_json(payload)

    def test_boolean_seed_rejected(self):
        payload = self._payload()
        payload["cells"][0]["seed"] = True
        with pytest.raises(SchemaError, match="seed"):
            RunRecord.from_json(payload)

    def test_garbage_text_rejected(self):
        with pytest.raises(SchemaError, match="not valid JSON"):
            RunRecord.loads("{not json")


class TestNumericLeaves:
    def test_flattens_nested_paths(self):
        leaves = numeric_leaves({"a": {"b": [1, 2.5]}, "c": 3})
        assert leaves == {"a.b.0": 1.0, "a.b.1": 2.5, "c": 3.0}

    def test_booleans_and_strings_are_not_numbers(self):
        assert numeric_leaves({"ok": True, "name": "x", "n": 0}) == {"n": 0.0}

    @given(values=_payloads)
    @settings(max_examples=60, deadline=None)
    def test_every_leaf_is_a_finite_float(self, values):
        for path, value in numeric_leaves(values).items():
            assert isinstance(path, str)
            assert isinstance(value, float)
            assert value == value  # no NaN sneaks through
