"""Engine determinism, checkpointing and resume semantics."""

import json
import os

import pytest

from repro.experiments import (
    EngineError,
    ExperimentEngine,
    GridIncomplete,
    run_in_memory,
)
from tests.experiments.conftest import CountingMeasure, make_toy_spec


class TestGridExecution:
    def test_grid_runs_in_declared_order(self, tmp_path):
        measure = CountingMeasure()
        spec = make_toy_spec(measure=measure)
        record = ExperimentEngine(str(tmp_path)).run(spec)
        assert [cell.cell_id for cell in record.cells] == [
            "mode=none,stack=wsrf",
            "mode=none,stack=transfer",
            "mode=x509,stack=wsrf",
            "mode=x509,stack=transfer",
        ]
        assert measure.calls == [cell.params for cell in record.cells]

    def test_cell_seeds_derive_from_base_seed(self, tmp_path):
        spec = make_toy_spec(seed=0)
        reseeded = make_toy_spec(seed=7)
        for cell in run_in_memory(spec).cells:
            assert cell.seed == spec.cell_seed(cell.cell_id)
        assert [c.seed for c in run_in_memory(spec).cells] != [
            c.seed for c in run_in_memory(reseeded).cells
        ]

    def test_non_dict_measurement_is_an_error(self):
        spec = make_toy_spec(measure=lambda params, seed: 42.0)
        with pytest.raises(EngineError, match="expected dict"):
            run_in_memory(spec)


class TestDeterminism:
    def test_two_full_runs_are_bit_identical(self, tmp_path):
        spec = make_toy_spec()
        first = ExperimentEngine(str(tmp_path / "a")).run(spec)
        second = ExperimentEngine(str(tmp_path / "b")).run(spec)
        assert first.dumps() == second.dumps()

    def test_persisted_record_matches_in_memory_run(self, tmp_path):
        spec = make_toy_spec()
        engine = ExperimentEngine(str(tmp_path))
        engine.run(spec)
        assert engine.load_record(spec.name).dumps() == run_in_memory(spec).dumps()

    def test_artifacts_written_from_record(self, tmp_path):
        spec = make_toy_spec()
        engine = ExperimentEngine(str(tmp_path))
        record = engine.run(spec)
        for name, text in spec.artifacts(record).items():
            with open(tmp_path / name, encoding="utf-8") as fh:
                assert fh.read() == text


class TestResume:
    def test_kill_after_n_cells_then_resume_is_bit_identical(self, tmp_path):
        reference = run_in_memory(make_toy_spec())
        measure = CountingMeasure()
        spec = make_toy_spec(measure=measure)
        engine = ExperimentEngine(str(tmp_path))
        with pytest.raises(GridIncomplete) as excinfo:
            engine.run(spec, max_cells=2)
        assert len(excinfo.value.completed) == 2
        assert len(measure.calls) == 2
        # The resumed run measures only the remaining cells...
        record = engine.run(spec, resume=True)
        assert len(measure.calls) == 4
        assert engine.last_stats.resumed == 2
        assert engine.last_stats.measured == 2
        # ...and completes the grid bit-identically to an uninterrupted run.
        assert record.dumps() == reference.dumps()

    def test_full_resume_re_measures_nothing(self, tmp_path):
        measure = CountingMeasure()
        spec = make_toy_spec(measure=measure)
        engine = ExperimentEngine(str(tmp_path))
        first = engine.run(spec)
        calls_after_first = len(measure.calls)
        second = engine.run(spec, resume=True)
        assert len(measure.calls) == calls_after_first
        assert engine.last_stats.resumed == 4
        assert second.dumps() == first.dumps()

    def test_changed_fingerprint_invalidates_checkpoints(self, tmp_path):
        engine = ExperimentEngine(str(tmp_path))
        engine.run(make_toy_spec(seed=0))
        measure = CountingMeasure()
        reseeded = make_toy_spec(seed=1, measure=measure)
        assert reseeded.fingerprint() != make_toy_spec(seed=0).fingerprint()
        engine.run(reseeded, resume=True)
        # Same cell filenames on disk, but the stale fingerprint forces a
        # full re-measure rather than silently mixing two contracts.
        assert len(measure.calls) == 4
        assert engine.last_stats.resumed == 0

    def test_torn_checkpoint_is_re_measured(self, tmp_path):
        engine = ExperimentEngine(str(tmp_path))
        spec = make_toy_spec()
        record = engine.run(spec)
        torn = engine.checkpoint_path(spec, record.cells[1].cell_id)
        with open(torn, "w", encoding="utf-8") as fh:
            fh.write('{"fingerprint": "truncated')
        measure = CountingMeasure()
        respec = make_toy_spec(measure=measure)
        resumed = engine.run(respec, resume=True)
        assert [c["stack"] for c in measure.calls] == ["transfer"]
        assert resumed.dumps() == record.dumps()

    def test_checkpoint_files_are_canonical_json(self, tmp_path):
        engine = ExperimentEngine(str(tmp_path))
        spec = make_toy_spec()
        engine.run(spec)
        directory = engine.checkpoint_dir(spec.name)
        names = sorted(os.listdir(directory))
        assert len(names) == 4
        for name in names:
            with open(os.path.join(directory, name), encoding="utf-8") as fh:
                payload = json.load(fh)
            assert payload["fingerprint"] == spec.fingerprint()

    def test_clear_checkpoints(self, tmp_path):
        engine = ExperimentEngine(str(tmp_path))
        spec = make_toy_spec()
        engine.run(spec)
        engine.clear_checkpoints(spec)
        assert os.listdir(engine.checkpoint_dir(spec.name)) == []

    def test_missing_record_error_names_the_run_command(self, tmp_path):
        with pytest.raises(EngineError, match="--run toy"):
            ExperimentEngine(str(tmp_path)).load_record("toy")
