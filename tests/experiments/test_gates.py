"""The regression gates, exercised with planted tampering.

Every failure class check.sh relies on is demonstrated here: a planted
ordering flip, planted drift beyond tolerance, invariant violations, a
changed grid contract, missing/extra cells, and stale artifacts.
"""

import dataclasses

from repro.experiments import (
    CellResult,
    ExperimentEngine,
    check_against_record,
    check_artifacts,
    find_drift,
    find_ordering_flips,
    make_record,
    run_in_memory,
)
from tests.experiments.conftest import make_toy_spec, toy_measure


def tampered(record, cell_index, **new_values):
    """A copy of ``record`` with one cell's values overridden."""
    cells = list(record.cells)
    target = cells[cell_index]
    cells[cell_index] = CellResult(
        cell_id=target.cell_id,
        params=target.params,
        seed=target.seed,
        values={**target.values, **new_values},
    )
    return dataclasses.replace(record, cells=cells)


class TestOrderingFlips:
    def test_identical_runs_have_no_flips(self):
        spec = make_toy_spec()
        record = run_in_memory(spec)
        assert find_ordering_flips(record, record) == []

    def test_planted_flip_is_detected(self):
        spec = make_toy_spec()
        recorded = run_in_memory(spec)
        # Recorded: wsrf get (10.0) > transfer get (6.0) under mode=none.
        # Plant the reversal in the fresh run.
        fresh = tampered(run_in_memory(spec), 0, get_ms=1.0)
        flips = find_ordering_flips(recorded, fresh)
        assert flips
        assert any("get_ms" in flip and "mode=none,stack=wsrf" in flip for flip in flips)

    def test_ties_are_not_flips(self):
        spec = make_toy_spec()
        recorded = run_in_memory(spec)
        # Collapse a strict ordering into a tie: suspicious, but not a flip
        # (drift catches it; the flip gate only fires on reversals).
        fresh = tampered(run_in_memory(spec), 0, get_ms=6.0)
        assert find_ordering_flips(recorded, fresh) == []


class TestDrift:
    def test_identical_runs_have_no_drift(self):
        record = run_in_memory(make_toy_spec())
        assert find_drift(record, record, tolerance=0.0) == []

    def test_planted_drift_beyond_tolerance_is_reported(self):
        spec = make_toy_spec()
        recorded = run_in_memory(spec)
        fresh = tampered(run_in_memory(spec), 0, get_ms=10.5)  # +5%
        assert find_drift(recorded, fresh, tolerance=0.0)
        assert find_drift(recorded, fresh, tolerance=0.01)
        assert find_drift(recorded, fresh, tolerance=0.10) == []

    def test_vanished_and_appeared_leaves_are_reported(self):
        spec = make_toy_spec()
        recorded = run_in_memory(spec)
        cells = list(run_in_memory(spec).cells)
        target = cells[0]
        values = dict(target.values)
        del values["get_ms"]
        values["surprise_ms"] = 1.0
        cells[0] = CellResult(
            cell_id=target.cell_id, params=target.params, seed=target.seed, values=values
        )
        fresh = dataclasses.replace(recorded, cells=cells)
        problems = find_drift(recorded, fresh, tolerance=1.0)
        assert any("vanished" in p for p in problems)
        assert any("appeared" in p for p in problems)


class TestCheckAgainstRecord:
    def test_clean_run_passes(self):
        spec = make_toy_spec()
        report = check_against_record(spec, run_in_memory(spec), run_in_memory(spec))
        assert report.ok
        assert report.lines() == []

    def test_fingerprint_change_is_structural_and_short_circuits(self):
        spec = make_toy_spec()
        recorded = run_in_memory(spec)
        fresh = run_in_memory(make_toy_spec(seed=1))
        report = check_against_record(spec, recorded, fresh)
        assert not report.ok
        assert "fingerprint changed" in report.structural_problems[0]
        # No noise from downstream classes once the contract moved.
        assert report.drift_violations == []

    def test_missing_cell_is_structural(self):
        spec = make_toy_spec()
        recorded = run_in_memory(spec)
        fresh = dataclasses.replace(recorded, cells=list(recorded.cells[:-1]))
        report = check_against_record(spec, recorded, fresh)
        assert any("missing" in p for p in report.structural_problems)

    def test_invariant_violation_fails_even_for_shape_gate(self):
        def inverted(params, seed):
            values = toy_measure(params, seed)
            if params["mode"] == "x509":
                values["get_ms"] = 0.5
            return values

        spec = make_toy_spec(measure=inverted, gate="shape")
        recorded = run_in_memory(spec)
        report = check_against_record(spec, recorded, run_in_memory(spec))
        assert report.invariant_violations
        assert not report.ok

    def test_shape_gate_ignores_drift_and_flips(self):
        spec = make_toy_spec(gate="shape")
        recorded = run_in_memory(spec)
        fresh = tampered(run_in_memory(spec), 0, get_ms=9.0)  # drifted but ordered
        report = check_against_record(spec, recorded, fresh)
        assert report.ok

    def test_exact_gate_fails_on_the_same_drift(self):
        spec = make_toy_spec()
        recorded = run_in_memory(spec)
        fresh = tampered(run_in_memory(spec), 0, get_ms=9.0)
        report = check_against_record(spec, recorded, fresh)
        assert report.drift_violations
        assert report.lines()


class TestCheckArtifacts:
    def test_written_artifacts_pass(self, tmp_path):
        spec = make_toy_spec()
        engine = ExperimentEngine(str(tmp_path))
        record = engine.run(spec)
        assert check_artifacts(spec, record, str(tmp_path)) == []

    def test_missing_artifact_reported(self, tmp_path):
        spec = make_toy_spec()
        record = make_record(spec, run_in_memory(spec).cells)
        problems = check_artifacts(spec, record, str(tmp_path))
        assert problems and "missing" in problems[0]

    def test_stale_artifact_reported(self, tmp_path):
        spec = make_toy_spec()
        engine = ExperimentEngine(str(tmp_path))
        record = engine.run(spec)
        name = next(iter(spec.artifacts(record)))
        with open(tmp_path / name, "a", encoding="utf-8") as fh:
            fh.write("tampered\n")
        problems = check_artifacts(spec, record, str(tmp_path))
        assert problems and "stale" in problems[0]
