"""Shared toy specs for the experiment-engine tests.

The real registry specs are exercised by the bench wrappers; here a tiny
deterministic spec (2 axes, 4 cells, pure arithmetic) keeps the engine /
gate / CLI tests fast and lets them count measure() invocations.
"""

from repro.experiments import Axis, ExperimentSpec, PairOrdering, Predicate


def toy_measure(params: dict, seed: int) -> dict:
    base = {"wsrf": 10.0, "transfer": 6.0}[params["stack"]]
    security = {"none": 0.0, "x509": 40.0}[params["mode"]]
    return {
        "get_ms": base + security,
        "create_ms": 2.0 * base + security,
        "seed_echo": seed % 97,
    }


def make_toy_spec(*, seed: int = 0, measure=toy_measure, **overrides) -> ExperimentSpec:
    """A 2x2 spec with one ordering and one predicate invariant."""
    fields = dict(
        name="toy",
        title="Toy: hello-world shaped grid",
        axes=(
            Axis("mode", ("none", "x509")),
            Axis("stack", ("wsrf", "transfer")),
        ),
        measure=measure,
        seed=seed,
        invariants=(
            PairOrdering(
                name="x509_slower",
                claim="signing always costs more than no security",
                metric="get_ms",
                greater={"mode": "x509"},
                lesser={"mode": "none"},
            ),
            Predicate(
                name="all_positive",
                claim="every latency is positive",
                fn=lambda record: [
                    f"{cell.cell_id}: get_ms <= 0"
                    for cell in record.cells
                    if cell.values["get_ms"] <= 0
                ],
            ),
        ),
        to_figure=lambda record: {
            cell.cell_id: {"Get": cell.values["get_ms"]} for cell in record.cells
        },
    )
    fields.update(overrides)
    return ExperimentSpec(**fields)


class CountingMeasure:
    """A measure callable that counts invocations per cell id."""

    def __init__(self, inner=toy_measure):
        self.inner = inner
        self.calls: list[dict] = []

    def __call__(self, params: dict, seed: int) -> dict:
        self.calls.append(dict(params))
        return self.inner(params, seed)
