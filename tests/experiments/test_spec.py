"""Spec declaration validation, grid expansion and invariant evaluation."""

import dataclasses

import pytest

from repro.experiments import (
    Axis,
    PairOrdering,
    Predicate,
    SpecError,
    evaluate_invariants,
    make_record,
    run_in_memory,
)
from tests.experiments.conftest import make_toy_spec, toy_measure


class TestAxis:
    def test_rejects_bad_names(self):
        for name in ("", "Mode", "mode-x", "mode x"):
            with pytest.raises(SpecError):
                Axis(name, ("a",))

    def test_rejects_empty_and_duplicate_values(self):
        with pytest.raises(SpecError, match="no values"):
            Axis("mode", ())
        with pytest.raises(SpecError, match="duplicate"):
            Axis("mode", ("a", "a"))

    def test_rejects_non_scalar_values(self):
        with pytest.raises(SpecError, match="not a JSON scalar"):
            Axis("mode", (("tuple",),))


class TestSpecShape:
    def test_grid_is_outer_axis_slowest(self):
        spec = make_toy_spec()
        assert [p["mode"] for p in spec.grid()] == ["none", "none", "x509", "x509"]

    def test_cell_id_requires_every_axis(self):
        spec = make_toy_spec()
        with pytest.raises(SpecError, match="do not cover"):
            spec.cell_id({"mode": "none"})
        assert spec.cell_id({"mode": "none", "stack": "wsrf"}) == "mode=none,stack=wsrf"

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(SpecError, match="duplicate axis"):
            make_toy_spec(axes=(Axis("mode", ("a",)), Axis("mode", ("b",))))

    def test_unknown_gate_rejected(self):
        with pytest.raises(SpecError, match="gate"):
            make_toy_spec(gate="fuzzy")

    def test_fingerprint_tracks_the_grid_contract(self):
        base = make_toy_spec()
        assert base.fingerprint() == make_toy_spec().fingerprint()
        assert base.fingerprint() != make_toy_spec(seed=1).fingerprint()
        assert base.fingerprint() != make_toy_spec(config={"k": 1}).fingerprint()
        assert (
            base.fingerprint()
            != make_toy_spec(
                axes=(Axis("mode", ("none",)), Axis("stack", ("wsrf", "transfer")))
            ).fingerprint()
        )
        # The measurement *code* is not part of the contract.
        assert base.fingerprint() == make_toy_spec(measure=lambda p, s: {}).fingerprint()


class TestInvariants:
    def test_clean_record_has_no_violations(self):
        spec = make_toy_spec()
        assert evaluate_invariants(spec, run_in_memory(spec)) == []

    def test_ordering_violation_is_reported_per_leaf(self):
        # An inverted measurement: x509 *cheaper* than none.
        def inverted(params, seed):
            values = toy_measure(params, seed)
            if params["mode"] == "x509":
                values["get_ms"] = 1.0
            return values

        spec = make_toy_spec(measure=inverted)
        violations = evaluate_invariants(spec, run_in_memory(spec))
        assert len(violations) == 2  # one per stack
        assert all("x509_slower" in v for v in violations)

    def test_zero_pair_selector_is_itself_a_violation(self):
        spec = make_toy_spec()
        ghost = PairOrdering(
            name="ghost",
            metric="get_ms",
            greater={"mode": "tls13"},
            lesser={"mode": "none"},
        )
        flagged = dataclasses.replace(spec, invariants=(ghost,))
        violations = evaluate_invariants(flagged, run_in_memory(flagged))
        assert violations == ["ghost: selector matched no cell pairs"]

    def test_ordering_factor_demands_a_margin(self):
        spec = make_toy_spec()
        steep = PairOrdering(
            name="x509_much_slower",
            metric="get_ms",
            greater={"mode": "x509"},
            lesser={"mode": "none"},
            factor=100.0,
        )
        demanding = dataclasses.replace(spec, invariants=(steep,))
        assert evaluate_invariants(demanding, run_in_memory(demanding))

    def test_mismatched_selector_axes_rejected(self):
        with pytest.raises(SpecError, match="same axes"):
            PairOrdering(name="bad", greater={"mode": "x509"}, lesser={"stack": "wsrf"})

    def test_predicate_violations_carry_the_invariant_name(self):
        spec = make_toy_spec()
        failing = Predicate(name="nope", fn=lambda record: ["always wrong"])
        record = run_in_memory(spec)
        assert evaluate_invariants(
            dataclasses.replace(spec, invariants=(failing,)), record
        ) == ["nope: always wrong"]


class TestArtifacts:
    def test_figure_csv_artifact_is_slugified(self):
        spec = make_toy_spec()
        record = run_in_memory(spec)
        names = list(spec.artifacts(record))
        assert names == ["toy_hello_world_shaped_grid.csv"]

    def test_extra_artifacts_merge_in(self):
        spec = make_toy_spec(
            extra_artifacts=lambda record: {"BENCH_toy.json": "{}\n"}
        )
        record = run_in_memory(spec)
        assert set(spec.artifacts(record)) == {
            "toy_hello_world_shaped_grid.csv",
            "BENCH_toy.json",
        }

    def test_make_record_carries_fingerprint_and_config(self):
        spec = make_toy_spec(config={"k": 3})
        record = make_record(spec, [])
        assert record.fingerprint == spec.fingerprint()
        assert record.config == {"k": 3}
