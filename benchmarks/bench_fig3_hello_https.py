"""FIG3 — Figure 3: "Hello World" over HTTPS.

Thin wrapper over the ``fig3_hello_https`` experiment spec.  The common
hello-world shape lives in the spec's invariants; what stays here are the
*cross-spec* claims — "Due to socket caching, HTTPS performance is much
faster": with resumed TLS sessions the figure looks like the no-security
one plus a modest per-KB delta, nothing like the X.509 signing figure.
"""

import pytest

from benchmarks.conftest import record_figure
from repro.apps.counter.deploy import CounterScenario, build_transfer_rig, build_wsrf_rig
from repro.bench import hello_world_figure
from repro.container import SecurityMode
from repro.experiments import evaluate_invariants, run_in_memory
from repro.experiments.registry import get_spec

MODE = SecurityMode.HTTPS
SPEC = get_spec("fig3_hello_https")

CO_WSRF = "Co-located WSRF.NET"
CO_WXF = "Co-located WS-Transfer / WS-Eventing"


@pytest.fixture(scope="module")
def figure():
    rec = run_in_memory(SPEC)
    fig = SPEC.figure(rec)
    record_figure(SPEC.title, fig)
    return rec, fig


@pytest.fixture(scope="module")
def nosec_figure():
    return hello_world_figure(SecurityMode.NONE)


class TestShape:
    def test_spec_invariants_hold(self, figure):
        rec, _ = figure
        assert evaluate_invariants(SPEC, rec) == []

    def test_https_close_to_nosec_thanks_to_session_cache(self, figure, nosec_figure):
        """Warm HTTPS adds only a small delta over plain HTTP."""
        _, fig = figure
        for series_label in (CO_WSRF, CO_WXF):
            for op in ("Get", "Set", "Create", "Destroy"):
                delta = fig[series_label][op] - nosec_figure[series_label][op]
                assert 0 <= delta < 8.0

    def test_cold_handshake_would_dominate(self):
        """Ablation check: without the session cache a single HTTPS call
        pays the full handshake (why socket caching matters)."""
        from repro.bench import measure_hello_world
        from repro.sim.costs import CostModel

        costs = CostModel()
        no_cache = costs.replace(tls_resume=costs.tls_handshake)
        cached = measure_hello_world("wsrf", MODE, True)
        uncached = measure_hello_world("wsrf", MODE, True, costs=no_cache)
        assert uncached["Get"] > cached["Get"] + costs.tls_handshake / 2


class TestWallClock:
    @pytest.fixture(scope="class")
    def wsrf_rig(self):
        rig = build_wsrf_rig(CounterScenario(MODE, colocated=True))
        rig.counter = rig.client.create(0)
        return rig

    @pytest.fixture(scope="class")
    def transfer_rig(self):
        rig = build_transfer_rig(CounterScenario(MODE, colocated=True))
        rig.counter = rig.client.create(0)
        return rig

    def test_bench_wsrf_get_https(self, benchmark, figure, wsrf_rig):
        benchmark(lambda: wsrf_rig.client.get(wsrf_rig.counter))

    def test_bench_wsrf_set_https(self, benchmark, wsrf_rig):
        benchmark(lambda: wsrf_rig.client.set(wsrf_rig.counter, 3))

    def test_bench_transfer_get_https(self, benchmark, transfer_rig):
        benchmark(lambda: transfer_rig.client.get(transfer_rig.counter))

    def test_bench_transfer_set_https(self, benchmark, transfer_rig):
        benchmark(lambda: transfer_rig.client.set(transfer_rig.counter, 3))
