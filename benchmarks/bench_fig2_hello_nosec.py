"""FIG2 — Figure 2: "Hello World" with no security.

Regenerates the four bar groups (co-located/distributed × stack) over
Get/Set/Create/Destroy/Notify, and wall-clock-benchmarks the underlying
operations.  Shape checks assert the paper's qualitative findings.
"""

import pytest

from benchmarks.conftest import record_figure
from repro.apps.counter.deploy import CounterScenario, build_transfer_rig, build_wsrf_rig
from repro.bench import hello_world_figure
from repro.container import SecurityMode

MODE = SecurityMode.NONE
TITLE = "Figure 2: Hello World, no security"


@pytest.fixture(scope="module")
def figure():
    fig = hello_world_figure(MODE)
    record_figure(TITLE, fig)
    return fig


@pytest.fixture(scope="module")
def wsrf_rig():
    rig = build_wsrf_rig(CounterScenario(MODE, colocated=True))
    rig.counter = rig.client.create(0)
    return rig


@pytest.fixture(scope="module")
def transfer_rig():
    rig = build_transfer_rig(CounterScenario(MODE, colocated=True))
    rig.counter = rig.client.create(0)
    return rig


class TestShape:
    """The paper's qualitative claims, asserted against the figure data."""

    def test_create_is_slowest_crud_op(self, figure):
        for series in figure.values():
            for op in ("Get", "Set", "Destroy"):
                assert series["Create"] > series[op]

    def test_wsrf_set_faster_than_transfer_set(self, figure):
        assert figure["Co-located WSRF.NET"]["Set"] < figure["Co-located WS-Transfer / WS-Eventing"]["Set"]

    def test_eventing_notify_considerably_better(self, figure):
        wsrf = figure["Co-located WSRF.NET"]["Notify"]
        eventing = figure["Co-located WS-Transfer / WS-Eventing"]["Notify"]
        assert eventing < 0.75 * wsrf

    def test_distributed_adds_modest_overhead(self, figure):
        for placement_pair in (
            ("Co-located WSRF.NET", "Distributed WSRF.NET"),
            ("Co-located WS-Transfer / WS-Eventing", "Distributed WS-Transfer / WS-Eventing"),
        ):
            co, dist = placement_pair
            for op in figure[co]:
                assert figure[dist][op] > figure[co][op]
                assert figure[dist][op] < 1.5 * figure[co][op]

    def test_overall_comparable(self, figure):
        """"They are overwhelmingly equivalent in their ... implied
        performance": no op differs by more than ~2.5x across stacks."""
        for op in ("Get", "Set", "Create", "Destroy"):
            a = figure["Co-located WSRF.NET"][op]
            b = figure["Co-located WS-Transfer / WS-Eventing"][op]
            assert max(a, b) / min(a, b) < 2.5


class TestWallClock:
    def test_bench_wsrf_get(self, benchmark, figure, wsrf_rig):
        benchmark(lambda: wsrf_rig.client.get(wsrf_rig.counter))

    def test_bench_wsrf_set(self, benchmark, wsrf_rig):
        benchmark(lambda: wsrf_rig.client.set(wsrf_rig.counter, 5))

    def test_bench_wsrf_create(self, benchmark, wsrf_rig):
        benchmark(lambda: wsrf_rig.client.create(0))

    def test_bench_transfer_get(self, benchmark, figure, transfer_rig):
        benchmark(lambda: transfer_rig.client.get(transfer_rig.counter))

    def test_bench_transfer_set(self, benchmark, transfer_rig):
        benchmark(lambda: transfer_rig.client.set(transfer_rig.counter, 5))

    def test_bench_transfer_create(self, benchmark, transfer_rig):
        benchmark(lambda: transfer_rig.client.create(0))

    def test_bench_wsrf_notify(self, benchmark, wsrf_rig):
        counter = wsrf_rig.client.create(0)
        wsrf_rig.client.subscribe(counter, wsrf_rig.consumer)
        benchmark(lambda: wsrf_rig.client.set(counter, 1))

    def test_bench_transfer_notify(self, benchmark, transfer_rig):
        counter = transfer_rig.client.create(0)
        transfer_rig.client.subscribe(counter, transfer_rig.consumer)
        benchmark(lambda: transfer_rig.client.set(counter, 1))
