"""FIG2 — Figure 2: "Hello World" with no security.

Thin wrapper over the ``fig2_hello_nosec`` experiment spec: the paper's
qualitative claims (Create slowest, write-through cache advantage, TCP
vs HTTP notify, bounded distribution overhead, cross-stack parity) live
in the spec's invariants.  This module re-runs the grid in memory,
re-evaluates them, and wall-clock-benchmarks the underlying operations.
"""

import pytest

from benchmarks.conftest import record_figure
from repro.apps.counter.deploy import CounterScenario, build_transfer_rig, build_wsrf_rig
from repro.container import SecurityMode
from repro.experiments import evaluate_invariants, run_in_memory
from repro.experiments.registry import get_spec

MODE = SecurityMode.NONE
SPEC = get_spec("fig2_hello_nosec")


@pytest.fixture(scope="module")
def record():
    rec = run_in_memory(SPEC)
    record_figure(SPEC.title, SPEC.figure(rec))
    return rec


@pytest.fixture(scope="module")
def wsrf_rig():
    rig = build_wsrf_rig(CounterScenario(MODE, colocated=True))
    rig.counter = rig.client.create(0)
    return rig


@pytest.fixture(scope="module")
def transfer_rig():
    rig = build_transfer_rig(CounterScenario(MODE, colocated=True))
    rig.counter = rig.client.create(0)
    return rig


class TestShape:
    """The paper's qualitative claims, declared on the spec."""

    def test_spec_invariants_hold(self, record):
        assert evaluate_invariants(SPEC, record) == []

    def test_grid_covers_all_four_cells(self, record):
        assert len(record.cells) == 4
        assert {cell.params["placement"] for cell in record.cells} == {
            "colocated", "distributed",
        }


class TestWallClock:
    def test_bench_wsrf_get(self, benchmark, record, wsrf_rig):
        benchmark(lambda: wsrf_rig.client.get(wsrf_rig.counter))

    def test_bench_wsrf_set(self, benchmark, wsrf_rig):
        benchmark(lambda: wsrf_rig.client.set(wsrf_rig.counter, 5))

    def test_bench_wsrf_create(self, benchmark, wsrf_rig):
        benchmark(lambda: wsrf_rig.client.create(0))

    def test_bench_transfer_get(self, benchmark, record, transfer_rig):
        benchmark(lambda: transfer_rig.client.get(transfer_rig.counter))

    def test_bench_transfer_set(self, benchmark, transfer_rig):
        benchmark(lambda: transfer_rig.client.set(transfer_rig.counter, 5))

    def test_bench_transfer_create(self, benchmark, transfer_rig):
        benchmark(lambda: transfer_rig.client.create(0))

    def test_bench_wsrf_notify(self, benchmark, wsrf_rig):
        counter = wsrf_rig.client.create(0)
        wsrf_rig.client.subscribe(counter, wsrf_rig.consumer)
        benchmark(lambda: wsrf_rig.client.set(counter, 1))

    def test_bench_transfer_notify(self, benchmark, transfer_rig):
        counter = transfer_rig.client.create(0)
        transfer_rig.client.subscribe(counter, transfer_rig.consumer)
        benchmark(lambda: transfer_rig.client.set(counter, 1))
