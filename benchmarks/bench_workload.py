"""LOAD — workload-level comparison (extension).

Runs an identical synthetic job stream end-to-end on both stacks: the
workload-level integral of Figure 6.  Expected shape: the per-job cost gap
narrows relative to the Instantiate-Job gap (most of a job's wall time is
common work — staging, the job itself, cleanup), but WSRF's extra out-calls
keep it measurably more expensive per job, partially offset by WS-Transfer's
explicit unreserve call.
"""

import pytest

from benchmarks.conftest import record_figure
from repro.bench.workload import (
    GridWorkload,
    run_workload_transfer,
    run_workload_wsrf,
)

TITLE = "Workload comparison: 12-job synthetic stream (X.509)"


@pytest.fixture(scope="module")
def results():
    workload = GridWorkload(seed=7, n_jobs=12)
    wsrf = run_workload_wsrf(workload)
    transfer = run_workload_transfer(workload)
    record_figure(
        TITLE,
        {
            "WS-Transfer / WS-Eventing": {
                "jobs": float(transfer.completed),
                "virtual ms": transfer.virtual_ms,
                "ms/job": transfer.ms_per_job,
                "messages": float(transfer.messages),
            },
            "WSRF.NET": {
                "jobs": float(wsrf.completed),
                "virtual ms": wsrf.virtual_ms,
                "ms/job": wsrf.ms_per_job,
                "messages": float(wsrf.messages),
            },
        },
    )
    return workload, wsrf, transfer


class TestWorkloadShape:
    def test_all_jobs_complete_on_both_stacks(self, results):
        workload, wsrf, transfer = results
        assert wsrf.completed == workload.n_jobs
        assert transfer.completed == workload.n_jobs
        assert wsrf.skipped_no_resource == 0

    def test_wsrf_costs_more_messages(self, results):
        _, wsrf, transfer = results
        assert wsrf.messages > transfer.messages

    def test_per_job_gap_narrower_than_instantiate_gap(self, results):
        """Common per-job work (staging, run time, cleanup) dilutes the
        instantiate-time difference at workload level."""
        _, wsrf, transfer = results
        workload_ratio = wsrf.ms_per_job / transfer.ms_per_job
        assert 1.0 < workload_ratio < 1.73  # below the Figure 6 instantiate ratio

    def test_deterministic(self):
        workload = GridWorkload(seed=11, n_jobs=4)
        first = run_workload_wsrf(workload)
        second = run_workload_wsrf(workload)
        assert first.virtual_ms == second.virtual_ms
        assert first.messages == second.messages

    def test_workload_generation_deterministic(self):
        assert GridWorkload(seed=3).items == GridWorkload(seed=3).items
        assert GridWorkload(seed=3).items != GridWorkload(seed=4).items


class TestWallClock:
    def test_bench_wsrf_workload(self, benchmark, results):
        workload = GridWorkload(seed=5, n_jobs=4)
        benchmark.pedantic(lambda: run_workload_wsrf(workload), rounds=3, iterations=1)

    def test_bench_transfer_workload(self, benchmark):
        workload = GridWorkload(seed=5, n_jobs=4)
        benchmark.pedantic(lambda: run_workload_transfer(workload), rounds=3, iterations=1)
