"""LOAD — workload-level comparison (extension).

Thin wrapper over the ``workload`` experiment spec: an identical
synthetic job stream end-to-end on both stacks — the workload-level
integral of Figure 6.  The expected shape (the per-job cost gap narrows
relative to the Instantiate-Job gap, but WSRF's extra out-calls keep it
measurably more expensive) is the spec's invariants; the determinism
contract of the generator and runners stays pinned here.
"""

import pytest

from benchmarks.conftest import record_figure
from repro.bench.workload import (
    GridWorkload,
    run_workload_transfer,
    run_workload_wsrf,
)
from repro.experiments import evaluate_invariants, run_in_memory
from repro.experiments.registry import get_spec

SPEC = get_spec("workload")


@pytest.fixture(scope="module")
def record():
    rec = run_in_memory(SPEC)
    record_figure(SPEC.title, SPEC.figure(rec))
    return rec


class TestWorkloadShape:
    def test_spec_invariants_hold(self, record):
        assert evaluate_invariants(SPEC, record) == []

    def test_deterministic(self):
        workload = GridWorkload(seed=11, n_jobs=4)
        first = run_workload_wsrf(workload)
        second = run_workload_wsrf(workload)
        assert first.virtual_ms == second.virtual_ms
        assert first.messages == second.messages

    def test_workload_generation_deterministic(self):
        assert GridWorkload(seed=3).items == GridWorkload(seed=3).items
        assert GridWorkload(seed=3).items != GridWorkload(seed=4).items


class TestWallClock:
    def test_bench_wsrf_workload(self, benchmark, record):
        workload = GridWorkload(seed=5, n_jobs=4)
        benchmark.pedantic(lambda: run_workload_wsrf(workload), rounds=3, iterations=1)

    def test_bench_transfer_workload(self, benchmark):
        workload = GridWorkload(seed=5, n_jobs=4)
        benchmark.pedantic(lambda: run_workload_transfer(workload), rounds=3, iterations=1)
