"""Shared benchmark plumbing: figure registry + terminal reporting.

Every figure bench records its virtual-time table here; at the end of the
run the tables are printed (so they land in ``bench_output.txt``) and
written as CSV under ``results/``.
"""

from __future__ import annotations

import os

_FIGURES: dict[str, dict[str, dict[str, float]]] = {}
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


def record_figure(name: str, figure: dict[str, dict[str, float]]) -> None:
    _FIGURES[name] = figure


def write_spec_artifacts(spec, record) -> None:
    """Write every artifact a spec renders from ``record`` under results/."""
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    for name, text in spec.artifacts(record).items():
        with open(os.path.join(_RESULTS_DIR, name), "w", encoding="utf-8") as fh:
            fh.write(text)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _FIGURES:
        return
    from repro.bench.report import format_figure_table, write_figure_csv

    terminalreporter.write_line("")
    terminalreporter.write_line("reproduced figures (virtual ms, single request)")
    terminalreporter.write_line("-" * 72)
    for name, figure in _FIGURES.items():
        terminalreporter.write_line("")
        for line in format_figure_table(name, figure).splitlines():
            terminalreporter.write_line(line)
        write_figure_csv(_RESULTS_DIR, name, figure)
