"""Shared benchmark plumbing: figure registry + terminal reporting.

Every figure bench records its virtual-time table here; at the end of the
run the tables are printed (so they land in ``bench_output.txt``) and
written as CSV under ``results/``.
"""

from __future__ import annotations

import os

_FIGURES: dict[str, dict[str, dict[str, float]]] = {}
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


def record_figure(name: str, figure: dict[str, dict[str, float]]) -> None:
    _FIGURES[name] = figure


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _FIGURES:
        return
    from repro.bench.report import figure_to_csv, format_figure_table

    os.makedirs(_RESULTS_DIR, exist_ok=True)
    terminalreporter.write_line("")
    terminalreporter.write_line("reproduced figures (virtual ms, single request)")
    terminalreporter.write_line("-" * 72)
    for name, figure in _FIGURES.items():
        terminalreporter.write_line("")
        for line in format_figure_table(name, figure).splitlines():
            terminalreporter.write_line(line)
        safe = name.lower().replace(" ", "_").replace(":", "").replace("/", "-")
        with open(os.path.join(_RESULTS_DIR, f"{safe}.csv"), "w", encoding="utf-8") as fh:
            fh.write(figure_to_csv(figure))
