"""SCALE — scaling characterization (extension; no figure in the paper).

Thin wrapper over the ``scaling`` experiment spec.  The paper measures
single requests on a 2-node VO; the spec characterizes how the
reproduced systems scale with the quantities a real deployment grows:
registered hosts (availability queries walk the registry and the DB
query cost is per-document), notification fan-out (one delivery per
subscriber), and staged-file size (per-KB costs in transport, signing
and filesystem).  The monotonicity/linearity claims are the spec's
``scaling_shapes`` predicate.
"""

import pytest

from benchmarks.conftest import record_figure
from repro.apps.counter.deploy import CounterScenario, build_wsrf_rig
from repro.apps.giab import build_wsrf_vo
from repro.container import SecurityMode
from repro.experiments import evaluate_invariants, run_in_memory
from repro.experiments.registry import get_spec

SPEC = get_spec("scaling")


@pytest.fixture(scope="module")
def record():
    rec = run_in_memory(SPEC)
    record_figure(SPEC.title, SPEC.figure(rec))
    return rec


class TestScalingShapes:
    def test_spec_invariants_hold(self, record):
        assert evaluate_invariants(SPEC, record) == []

    def test_all_three_series_swept(self, record):
        assert {cell.params["series"] for cell in record.cells} == {
            "hosts", "subscribers", "kib",
        }


class TestWallClock:
    def test_bench_availability_32_hosts(self, benchmark, record):
        hosts = {f"node{i:03d}": ["sort"] for i in range(32)}
        vo = build_wsrf_vo(mode=SecurityMode.NONE, hosts=hosts)
        benchmark(lambda: vo.client.get_available_resources("sort"))

    def test_bench_fanout_16(self, benchmark):
        rig = build_wsrf_rig(CounterScenario())
        counter = rig.client.create(0)
        from repro.wsn import NotificationConsumer

        for _ in range(16):
            consumer = NotificationConsumer(rig.deployment, "client")
            rig.client.subscribe(counter, consumer)
        benchmark(lambda: rig.client.set(counter, 1))
