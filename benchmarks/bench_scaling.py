"""SCALE — scaling characterization (extension; no figure in the paper).

The paper measures single requests on a 2-node VO.  These benches
characterize how the reproduced systems scale with the quantities a real
deployment grows: registered hosts (availability queries walk the registry
and the DB query cost is per-document), notification fan-out (one delivery
per subscriber), and staged-file size (per-KB costs in transport, signing
and filesystem).
"""

import pytest

from benchmarks.conftest import record_figure
from repro.apps.counter.deploy import CounterScenario, build_wsrf_rig
from repro.apps.giab import build_wsrf_vo
from repro.bench.runner import measure_virtual
from repro.container import SecurityMode

TITLE = "Scaling characterization (virtual ms)"


def availability_time(n_hosts: int) -> float:
    hosts = {f"node{i:03d}": ["sort"] for i in range(n_hosts)}
    vo = build_wsrf_vo(mode=SecurityMode.NONE, hosts=hosts)
    vo.client.get_available_resources("sort")  # warm caches
    return measure_virtual(
        vo.deployment, "avail", lambda: vo.client.get_available_resources("sort")
    ).elapsed_ms


def fanout_time(n_subscribers: int) -> float:
    rig = build_wsrf_rig(CounterScenario())
    counter = rig.client.create(0)
    from repro.wsn import NotificationConsumer

    for _ in range(n_subscribers):
        consumer = NotificationConsumer(rig.deployment, "client")
        rig.client.subscribe(counter, consumer)
    return measure_virtual(
        rig.deployment, "set+notify", lambda: rig.client.set(counter, 1)
    ).elapsed_ms


def upload_time(n_kb: int) -> float:
    vo = build_wsrf_vo(mode=SecurityMode.NONE)
    vo.client.make_reservation("node1")
    directory = vo.client.create_data_directory(vo.nodes["node1"].data_service.address)
    payload = "x" * (n_kb * 1024)
    return measure_virtual(
        vo.deployment, "upload", lambda: vo.client.upload_file(directory, "f", payload)
    ).elapsed_ms


@pytest.fixture(scope="module")
def scaling_table():
    table = {
        "GetAvailableResources vs hosts": {
            "2": availability_time(2),
            "8": availability_time(8),
            "32": availability_time(32),
        },
        "Set+Notify vs subscribers": {
            "1": fanout_time(1),
            "4": fanout_time(4),
            "16": fanout_time(16),
        },
        "UploadFile vs KiB": {
            "16": upload_time(16),
            "64": upload_time(64),
            "256": upload_time(256),
        },
    }
    record_figure(TITLE, table)
    return table


class TestScalingShapes:
    def test_availability_grows_sublinearly_but_grows(self, scaling_table):
        row = scaling_table["GetAvailableResources vs hosts"]
        assert row["2"] < row["8"] < row["32"]
        # Per-document query cost: 16x the hosts must not cost 16x the time
        # (fixed per-call overheads amortize).
        assert row["32"] < 16 * row["2"]

    def test_notification_fanout_linear(self, scaling_table):
        row = scaling_table["Set+Notify vs subscribers"]
        assert row["1"] < row["4"] < row["16"]
        per_sub_4 = (row["4"] - row["1"]) / 3
        per_sub_16 = (row["16"] - row["4"]) / 12
        assert per_sub_16 == pytest.approx(per_sub_4, rel=0.5)

    def test_upload_linear_in_size(self, scaling_table):
        row = scaling_table["UploadFile vs KiB"]
        assert row["16"] < row["64"] < row["256"]
        slope_low = (row["64"] - row["16"]) / (64 - 16)
        slope_high = (row["256"] - row["64"]) / (256 - 64)
        assert slope_high == pytest.approx(slope_low, rel=0.3)


class TestWallClock:
    def test_bench_availability_32_hosts(self, benchmark, scaling_table):
        hosts = {f"node{i:03d}": ["sort"] for i in range(32)}
        vo = build_wsrf_vo(mode=SecurityMode.NONE, hosts=hosts)
        benchmark(lambda: vo.client.get_available_resources("sort"))

    def test_bench_fanout_16(self, benchmark):
        rig = build_wsrf_rig(CounterScenario())
        counter = rig.client.create(0)
        from repro.wsn import NotificationConsumer

        for _ in range(16):
            consumer = NotificationConsumer(rig.deployment, "client")
            rig.client.subscribe(counter, consumer)
        benchmark(lambda: rig.client.set(counter, 1))
