"""RELIAB — both stacks under a lossy wire (extension, DESIGN §9).

Sweeps the counter-notification path and the Grid-in-a-Box job path on
both stacks across {0, 1, 5, 10}% message loss (plus the duplication /
reset / delay mix of ``FaultSpec.lossy``), with the WS-RM layer armed.
Expected shape: every cell's accounting ledger closes (delivered +
dead-lettered == assigned — nothing silently lost), clean-wire cells pay
zero reliability overhead, lossy cells pay latency for retransmission +
backoff, and every cell reproduces exactly under the same seed.
"""

import pytest

from benchmarks.conftest import record_figure
from repro.bench.reliability import (
    LOSS_RATES,
    run_counter_reliability,
    run_giab_reliability,
)

STACKS = ("wsrf", "transfer")
LABELS = {"wsrf": "WSRF.NET", "transfer": "WS-Transfer"}


def _figure(cells):
    clean = {stack: cells[(stack, 0.0)].virtual_ms for stack in STACKS}
    return {
        f"{LABELS[stack]} @ {rate:.0%} loss": {
            "virtual ms": cell.virtual_ms,
            "overhead x": cell.virtual_ms / clean[stack],
            "delivered": float(cell.notifications_delivered),
            "retransmits": float(
                cell.notification_retransmissions + cell.request_retransmissions
            ),
            "dup suppressed": float(cell.duplicates_suppressed),
            "dead-lettered": float(cell.dead_letters_total),
        }
        for (stack, rate), cell in cells.items()
    }


@pytest.fixture(scope="module")
def counter_cells():
    cells = {
        (stack, rate): run_counter_reliability(stack, rate)
        for stack in STACKS
        for rate in LOSS_RATES
    }
    record_figure("Reliability: counter notifications under loss", _figure(cells))
    return cells


@pytest.fixture(scope="module")
def giab_cells():
    cells = {
        (stack, rate): run_giab_reliability(stack, rate)
        for stack in STACKS
        for rate in LOSS_RATES
    }
    record_figure("Reliability: GiaB job flow under loss (X.509)", _figure(cells))
    return cells


class TestLedger:
    """The acceptance bar: zero lost-and-unreported messages anywhere."""

    def test_counter_ledger_closes_in_every_cell(self, counter_cells):
        for cell in counter_cells.values():
            assert cell.ledger_closed, (cell.stack, cell.loss_rate)

    def test_giab_ledger_closes_in_every_cell(self, giab_cells):
        for cell in giab_cells.values():
            assert cell.ledger_closed, (cell.stack, cell.loss_rate)

    def test_dead_letters_all_observable(self, counter_cells, giab_cells):
        """Anything not delivered is in the dead-letter log, nowhere else."""
        for cell in list(counter_cells.values()) + list(giab_cells.values()):
            undelivered = cell.notifications_assigned - cell.notifications_delivered
            assert undelivered <= cell.dead_letters_total


class TestShape:
    def test_clean_wire_has_zero_reliability_overhead(self, counter_cells, giab_cells):
        for cells in (counter_cells, giab_cells):
            for stack in STACKS:
                cell = cells[(stack, 0.0)]
                assert cell.completed == cell.operations
                assert cell.notification_retransmissions == 0
                assert cell.request_retransmissions == 0
                assert cell.duplicates_suppressed == 0
                assert cell.dead_letters_total == 0

    def test_all_operations_survive_every_loss_rate(self, counter_cells, giab_cells):
        """With the bench retry policy, 10% loss loses no operation."""
        for cells in (counter_cells, giab_cells):
            for cell in cells.values():
                assert cell.completed == cell.operations, (cell.stack, cell.loss_rate)

    def test_loss_costs_latency(self, counter_cells, giab_cells):
        for cells in (counter_cells, giab_cells):
            for stack in STACKS:
                clean = cells[(stack, 0.0)].virtual_ms
                for rate in LOSS_RATES[1:]:
                    assert cells[(stack, rate)].virtual_ms > clean

    def test_retransmissions_appear_under_heavy_loss(self, counter_cells, giab_cells):
        for cells in (counter_cells, giab_cells):
            for stack in STACKS:
                for rate in (0.05, 0.10):
                    cell = cells[(stack, rate)]
                    total = (
                        cell.notification_retransmissions
                        + cell.request_retransmissions
                    )
                    assert total > 0, (cell.stack, rate)

    def test_injector_actually_misbehaved(self, counter_cells):
        cell = counter_cells[("wsrf", 0.10)]
        assert cell.messages_lost + cell.connections_reset > 0


class TestDeterminism:
    """DESIGN §9's contract: same seed + same ops ⇒ identical results."""

    def test_counter_cell_reproduces_exactly(self, counter_cells):
        again = run_counter_reliability("wsrf", 0.10)
        assert again.fingerprint == counter_cells[("wsrf", 0.10)].fingerprint

    def test_giab_cell_reproduces_exactly(self, giab_cells):
        again = run_giab_reliability("transfer", 0.10)
        assert again.fingerprint == giab_cells[("transfer", 0.10)].fingerprint


class TestWallClock:
    def test_bench_counter_reliability_lossy(self, benchmark):
        benchmark.pedantic(
            lambda: run_counter_reliability("transfer", 0.05),
            rounds=3,
            iterations=1,
        )
