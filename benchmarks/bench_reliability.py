"""RELIAB — both stacks under a lossy wire (extension, DESIGN §9).

Thin wrapper over the ``reliability_counter`` and ``reliability_giab``
experiment specs: the counter-notification path and the Grid-in-a-Box
job path on both stacks across {0, 1, 5, 10}% message loss (plus the
duplication / reset / delay mix of ``FaultSpec.lossy``), with the WS-RM
layer armed.  Ledger closure, zero clean-wire overhead, latency cost
under loss and retransmission activity are the specs' invariants; the
same-seed determinism contract stays pinned here.
"""

import pytest

from benchmarks.conftest import record_figure
from repro.bench.reliability import run_counter_reliability, run_giab_reliability
from repro.experiments import evaluate_invariants, run_in_memory
from repro.experiments.registry import get_spec

COUNTER_SPEC = get_spec("reliability_counter")
GIAB_SPEC = get_spec("reliability_giab")


@pytest.fixture(scope="module")
def counter_record():
    rec = run_in_memory(COUNTER_SPEC)
    record_figure(COUNTER_SPEC.title, COUNTER_SPEC.figure(rec))
    return rec


@pytest.fixture(scope="module")
def giab_record():
    rec = run_in_memory(GIAB_SPEC)
    record_figure(GIAB_SPEC.title, GIAB_SPEC.figure(rec))
    return rec


class TestLedger:
    """The acceptance bar: zero lost-and-unreported messages anywhere."""

    def test_counter_spec_invariants_hold(self, counter_record):
        assert evaluate_invariants(COUNTER_SPEC, counter_record) == []

    def test_giab_spec_invariants_hold(self, giab_record):
        assert evaluate_invariants(GIAB_SPEC, giab_record) == []


class TestDeterminism:
    """DESIGN §9's contract: same seed + same ops ⇒ identical results."""

    def test_counter_cell_reproduces_exactly(self):
        first = run_counter_reliability("wsrf", 0.10)
        again = run_counter_reliability("wsrf", 0.10)
        assert again.fingerprint == first.fingerprint

    def test_giab_cell_reproduces_exactly(self):
        first = run_giab_reliability("transfer", 0.10)
        again = run_giab_reliability("transfer", 0.10)
        assert again.fingerprint == first.fingerprint


class TestWallClock:
    def test_bench_counter_reliability_lossy(self, benchmark):
        benchmark.pedantic(
            lambda: run_counter_reliability("transfer", 0.05),
            rounds=3,
            iterations=1,
        )
