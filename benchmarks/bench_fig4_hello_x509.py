"""FIG4 — Figure 4: "Hello World" with X.509 signing of request + response.

Thin wrapper over the ``fig4_hello_x509`` experiment spec.  The common
hello-world shape lives in the spec's invariants; what stays here are the
cross-spec claims — "The overhead of the security processing is so large
that the performance differences between the two underlying systems tend
to fade in significance": every bar is several times its Figure 2
counterpart, and the cross-stack gaps shrink in relative terms.
"""

import pytest

from benchmarks.conftest import record_figure
from repro.apps.counter.deploy import CounterScenario, build_transfer_rig, build_wsrf_rig
from repro.bench import hello_world_figure
from repro.container import SecurityMode
from repro.experiments import evaluate_invariants, run_in_memory
from repro.experiments.registry import get_spec

MODE = SecurityMode.X509
SPEC = get_spec("fig4_hello_x509")

CO_WSRF = "Co-located WSRF.NET"
CO_WXF = "Co-located WS-Transfer / WS-Eventing"


@pytest.fixture(scope="module")
def figure():
    rec = run_in_memory(SPEC)
    fig = SPEC.figure(rec)
    record_figure(SPEC.title, fig)
    return rec, fig


@pytest.fixture(scope="module")
def nosec_figure():
    return hello_world_figure(SecurityMode.NONE)


class TestShape:
    def test_spec_invariants_hold(self, figure):
        rec, _ = figure
        assert evaluate_invariants(SPEC, rec) == []

    def test_signing_dominates(self, figure, nosec_figure):
        """Every operation is at least 3x its no-security time."""
        _, fig = figure
        for label in (CO_WSRF, CO_WXF):
            for op in ("Get", "Set", "Create", "Destroy", "Notify"):
                assert fig[label][op] > 3 * nosec_figure[label][op]

    def test_relative_differences_fade(self, figure, nosec_figure):
        """Percentage-wise gaps between the stacks shrink under signing."""
        _, fig = figure
        for op in ("Get", "Set"):
            gap_nosec = abs(nosec_figure[CO_WSRF][op] - nosec_figure[CO_WXF][op]) / max(
                nosec_figure[CO_WSRF][op], nosec_figure[CO_WXF][op]
            )
            gap_signed = abs(fig[CO_WSRF][op] - fig[CO_WXF][op]) / max(
                fig[CO_WSRF][op], fig[CO_WXF][op]
            )
            assert gap_signed < gap_nosec

    def test_signature_counts(self):
        """A signed round trip carries exactly two signatures (request and
        response), each verified once."""
        from repro.bench.runner import measure_virtual

        rig = build_wsrf_rig(CounterScenario(MODE, colocated=True))
        counter = rig.client.create(0)
        trace = measure_virtual(rig.deployment, "Get", lambda: rig.client.get(counter))
        assert trace.signatures == 2
        assert trace.verifications == 2


class TestWallClock:
    """Real RSA signing happens per message here, so these wall-clock
    numbers include genuine asymmetric crypto."""

    @pytest.fixture(scope="class")
    def wsrf_rig(self):
        rig = build_wsrf_rig(CounterScenario(MODE, colocated=True))
        rig.counter = rig.client.create(0)
        return rig

    @pytest.fixture(scope="class")
    def transfer_rig(self):
        rig = build_transfer_rig(CounterScenario(MODE, colocated=True))
        rig.counter = rig.client.create(0)
        return rig

    def test_bench_wsrf_get_signed(self, benchmark, figure, wsrf_rig):
        benchmark(lambda: wsrf_rig.client.get(wsrf_rig.counter))

    def test_bench_wsrf_set_signed(self, benchmark, wsrf_rig):
        benchmark(lambda: wsrf_rig.client.set(wsrf_rig.counter, 3))

    def test_bench_transfer_get_signed(self, benchmark, transfer_rig):
        benchmark(lambda: transfer_rig.client.get(transfer_rig.counter))

    def test_bench_transfer_set_signed(self, benchmark, transfer_rig):
        benchmark(lambda: transfer_rig.client.set(transfer_rig.counter, 3))
