"""SCEN-6 — §4.1.3: the full six-scenario matrix in one sweep.

Thin wrapper over the ``scenarios_sweep`` experiment spec: every
(scenario × stack) row over the five counter operations — the complete
data behind Figures 2-4 plus the cross-scenario comparisons §4.1.3 makes
in prose, declared as the spec's ordering invariants.
"""

import pytest

from benchmarks.conftest import record_figure
from repro.bench import measure_hello_world
from repro.container import SecurityMode
from repro.experiments import evaluate_invariants, run_in_memory
from repro.experiments.registry import get_spec

SPEC = get_spec("scenarios_sweep")


@pytest.fixture(scope="module")
def record():
    rec = run_in_memory(SPEC)
    record_figure(SPEC.title, SPEC.figure(rec))
    return rec


class TestSweepShape:
    def test_all_twelve_rows_present(self, record):
        assert len(SPEC.figure(record)) == 12

    def test_spec_invariants_hold(self, record):
        assert evaluate_invariants(SPEC, record) == []


class TestWallClock:
    def test_bench_full_sweep(self, benchmark, record):
        benchmark.pedantic(
            lambda: measure_hello_world("wsrf", SecurityMode.NONE, True),
            rounds=3,
            iterations=1,
        )
