"""SCEN-6 — §4.1.3: the full six-scenario matrix in one sweep.

One table: every (scenario × stack) row over the five counter operations.
This is the complete data behind Figures 2-4 plus the cross-scenario
comparisons §4.1.3 makes in prose.
"""

import pytest

from benchmarks.conftest import record_figure
from repro.bench import measure_hello_world
from repro.container import SecurityMode

TITLE = "Six-scenario sweep: all counter operations"

SCENARIOS = [
    (mode, colocated)
    for mode in (SecurityMode.NONE, SecurityMode.X509, SecurityMode.HTTPS)
    for colocated in (True, False)
]


def _label(mode: SecurityMode, colocated: bool, stack: str) -> str:
    placement = "co-located" if colocated else "distributed"
    stack_name = "WSRF.NET" if stack == "wsrf" else "WS-Transfer"
    return f"{mode.value}/{placement}/{stack_name}"


@pytest.fixture(scope="module")
def sweep():
    table = {}
    for mode, colocated in SCENARIOS:
        for stack in ("transfer", "wsrf"):
            table[_label(mode, colocated, stack)] = measure_hello_world(stack, mode, colocated)
    record_figure(TITLE, table)
    return table


class TestSweepShape:
    def test_all_twelve_rows_present(self, sweep):
        assert len(sweep) == 12

    def test_x509_is_the_slowest_scenario_everywhere(self, sweep):
        for colocated in (True, False):
            for stack in ("transfer", "wsrf"):
                for op in ("Get", "Set", "Create", "Destroy", "Notify"):
                    signed = sweep[_label(SecurityMode.X509, colocated, stack)][op]
                    for other in (SecurityMode.NONE, SecurityMode.HTTPS):
                        assert signed > sweep[_label(other, colocated, stack)][op]

    def test_https_between_none_and_x509(self, sweep):
        for stack in ("transfer", "wsrf"):
            for op in ("Get", "Set"):
                none = sweep[_label(SecurityMode.NONE, True, stack)][op]
                https = sweep[_label(SecurityMode.HTTPS, True, stack)][op]
                x509 = sweep[_label(SecurityMode.X509, True, stack)][op]
                assert none < https < x509

    def test_security_processing_dominates_x509(self, sweep):
        """Adding security "makes percentage wise differences in
        performance between the two implementations even less notable"."""
        for op in ("Get", "Set"):
            nosec_gap = abs(
                sweep[_label(SecurityMode.NONE, True, "wsrf")][op]
                - sweep[_label(SecurityMode.NONE, True, "transfer")][op]
            ) / sweep[_label(SecurityMode.NONE, True, "transfer")][op]
            signed_gap = abs(
                sweep[_label(SecurityMode.X509, True, "wsrf")][op]
                - sweep[_label(SecurityMode.X509, True, "transfer")][op]
            ) / sweep[_label(SecurityMode.X509, True, "transfer")][op]
            assert signed_gap < nosec_gap


class TestWallClock:
    def test_bench_full_sweep(self, benchmark, sweep):
        benchmark.pedantic(
            lambda: measure_hello_world("wsrf", SecurityMode.NONE, True),
            rounds=3,
            iterations=1,
        )
