"""TAB-SPEC — §2.3/§3.3 qualitative comparison, quantified.

Thin wrapper over the ``spec_complexity`` experiment spec.  The paper has
no numbered table here, but it argues from the relative size of the two
specification sets ("WS-Transfer is a less complex specification than
WSRF (in terms of the number and scope of functions defined)"); the spec
counts the spec-defined operations each stack's implementation carries
and pins the per-specification counts as invariants.
"""

import pytest

from benchmarks.conftest import record_figure
from repro.experiments import evaluate_invariants, run_in_memory
from repro.experiments.registry import get_spec

SPEC = get_spec("spec_complexity")


@pytest.fixture(scope="module")
def record():
    rec = run_in_memory(SPEC)
    record_figure(SPEC.title, SPEC.figure(rec))
    return rec


class TestComplexityClaims:
    def test_spec_invariants_hold(self, record):
        assert evaluate_invariants(SPEC, record) == []

    def test_totals_are_sums_of_parts(self, record):
        for series in SPEC.figure(record).values():
            parts = [v for name, v in series.items() if name != "total"]
            assert series["total"] == sum(parts)


class TestWallClock:
    def test_bench_counting(self, benchmark, record):
        benchmark(
            lambda: [SPEC.measure({"stack": stack}, 0) for stack in ("wsrf", "transfer")]
        )
