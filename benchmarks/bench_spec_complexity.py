"""TAB-SPEC — §2.3/§3.3 qualitative comparison, quantified.

The paper has no numbered table here, but it argues from the relative size
of the two specification sets ("WS-Transfer is a less complex specification
than WSRF (in terms of the number and scope of functions defined)").  This
bench counts the spec-defined operations each stack's implementation
carries and records them as a table.
"""

import pytest

from benchmarks.conftest import record_figure
from repro.eventing.source import actions as wse_actions
from repro.transfer.service import actions as wxf_actions
from repro.wsn.base import actions as wsnt_actions
from repro.wsn.broker import actions as wsbr_actions
from repro.wsrf.lifetime import actions as rl_actions
from repro.wsrf.properties import actions as rp_actions
from repro.wsrf.servicegroup import actions as sg_actions

TITLE = "Spec complexity: operations defined per stack"


def _count(actions_class) -> int:
    return sum(
        1 for name, value in vars(actions_class).items()
        if not name.startswith("_") and isinstance(value, str)
    )


def spec_operation_counts() -> dict[str, dict[str, float]]:
    wsrf_specs = {
        "WS-ResourceProperties": _count(rp_actions),
        "WS-ResourceLifetime": _count(rl_actions),
        "WS-ServiceGroup": _count(sg_actions),
        "WS-BaseNotification": _count(wsnt_actions),
        "WS-BrokeredNotification": _count(wsbr_actions),
    }
    transfer_specs = {
        "WS-Transfer": _count(wxf_actions),
        # SUBSCRIPTION_END is an event, not an operation clients invoke.
        "WS-Eventing": _count(wse_actions) - 1,
    }
    return {
        "WSRF / WS-Notification": {
            **{k: float(v) for k, v in wsrf_specs.items()},
            "total": float(sum(wsrf_specs.values())),
        },
        "WS-Transfer / WS-Eventing": {
            **{k: float(v) for k, v in transfer_specs.items()},
            "total": float(sum(transfer_specs.values())),
        },
    }


@pytest.fixture(scope="module")
def counts():
    table = spec_operation_counts()
    record_figure(TITLE, table)
    return table


class TestComplexityClaims:
    def test_wsrf_stack_defines_more_operations(self, counts):
        assert (
            counts["WSRF / WS-Notification"]["total"]
            > counts["WS-Transfer / WS-Eventing"]["total"]
        )

    def test_ws_transfer_has_exactly_four_operations(self, counts):
        assert counts["WS-Transfer / WS-Eventing"]["WS-Transfer"] == 4

    def test_eventing_core_operations(self, counts):
        # Subscribe, Renew, GetStatus, Unsubscribe
        assert counts["WS-Transfer / WS-Eventing"]["WS-Eventing"] == 4

    def test_wsrf_spec_count(self, counts):
        wsrf = counts["WSRF / WS-Notification"]
        assert wsrf["WS-ResourceProperties"] == 4
        assert wsrf["WS-ResourceLifetime"] == 2


class TestWallClock:
    def test_bench_counting(self, benchmark, counts):
        benchmark(spec_operation_counts)
