"""MSG-BROKER — §3.1's demand-based publishing claims.

"In total ... a demand based publisher registration interaction can involve
as many as six separate Web services.  More messages are generated in
response to a demand based publisher scenario than in any other spec, by
what we estimate to be an order of magnitude at a minimum."
"""

import pytest

from benchmarks.conftest import record_figure
from repro.addressing import EndpointReference
from repro.bench.runner import measure_virtual
from repro.wsn import (
    NotificationBrokerService,
    NotificationConsumer,
    SubscriptionManagerService,
)
from repro.wsn.base import actions as wsnt_actions
from repro.wsn.broker import PublisherRegistrationManagerService, actions as wsbr_actions
from repro.wsn.topics import TopicDialect
from repro.wsrf import ResourceHome
from repro.wsrf.lifetime import actions as rl_actions
from repro.xmllib import element, ns

from tests.helpers import make_client, make_deployment, server_container
from tests.wsn.conftest import EMIT, NS, SensorService

TITLE = "Brokered-notification message counts (per §3.1 scenario)"


def build_brokered_rig():
    deployment = make_deployment()
    pub_container = server_container(deployment, host="pubhost", name="Pub")
    pub_manager = SubscriptionManagerService(ResourceHome("pub-subs", deployment.network))
    pub_container.add_service(pub_manager)
    publisher = SensorService(ResourceHome("pub-sensor", deployment.network))
    publisher.subscription_manager = pub_manager
    pub_container.add_service(publisher)

    broker_container = server_container(deployment, host="brokerhost", name="Broker")
    broker_manager = SubscriptionManagerService(ResourceHome("broker-subs", deployment.network))
    broker_container.add_service(broker_manager)
    registrations = PublisherRegistrationManagerService(
        ResourceHome("registrations", deployment.network)
    )
    broker_container.add_service(registrations)
    broker = NotificationBrokerService(
        ResourceHome("broker", deployment.network), broker_manager, registrations
    )
    broker_container.add_service(broker)

    client = make_client(deployment)
    consumer = NotificationConsumer(deployment, "client")
    return deployment, publisher, broker, client, consumer


def run_demand_scenario(deployment, publisher, broker, client, consumer):
    """Register a demand-based publisher, subscribe, publish, unsubscribe."""
    register = element(
        f"{{{ns.WSBR}}}RegisterPublisher",
        EndpointReference.create(publisher.address).to_xml(f"{{{ns.WSBR}}}PublisherReference"),
        element(f"{{{ns.WSBR}}}Topic", "readings"),
        element(f"{{{ns.WSBR}}}Demand", "true"),
    )
    client.invoke(broker.epr(), wsbr_actions.REGISTER_PUBLISHER, register)
    subscribe = element(
        f"{{{ns.WSNT}}}Subscribe",
        consumer.epr.to_xml(f"{{{ns.WSNT}}}ConsumerReference"),
        element(f"{{{ns.WSNT}}}TopicExpression", "readings",
                attrs={"Dialect": TopicDialect.CONCRETE.value}),
    )
    response = client.invoke(broker.epr(), wsnt_actions.SUBSCRIBE, subscribe)
    subscription = EndpointReference.from_xml(next(response.element_children()))
    client.invoke(
        publisher.epr(), EMIT,
        element(f"{{{NS}}}Emit", element(f"{{{NS}}}Topic", "readings"), element(f"{{{NS}}}Value", "1")),
    )
    client.invoke(subscription, rl_actions.DESTROY, element(f"{{{ns.WSRF_RL}}}Destroy"))


def run_plain_subscribe(deployment, publisher, client, consumer):
    body = element(
        f"{{{ns.WSNT}}}Subscribe",
        consumer.epr.to_xml(f"{{{ns.WSNT}}}ConsumerReference"),
        element(f"{{{ns.WSNT}}}TopicExpression", "readings",
                attrs={"Dialect": TopicDialect.CONCRETE.value}),
    )
    client.invoke(publisher.epr(), wsnt_actions.SUBSCRIBE, body)


@pytest.fixture(scope="module")
def traces():
    deployment, publisher, broker, client, consumer = build_brokered_rig()
    plain = measure_virtual(
        deployment, "plain subscribe",
        lambda: run_plain_subscribe(deployment, publisher, client, consumer),
    )
    demand = measure_virtual(
        deployment, "demand scenario",
        lambda: run_demand_scenario(deployment, publisher, broker, client, consumer),
    )
    record_figure(
        TITLE,
        {
            "plain Subscribe": {"messages": float(plain.messages), "services": float(len(plain.services_touched)), "virtual ms": plain.elapsed_ms},
            "demand-based scenario": {"messages": float(demand.messages), "services": float(len(demand.services_touched)), "virtual ms": demand.elapsed_ms},
        },
    )
    return plain, demand


class TestPaperClaims:
    def test_many_more_messages(self, traces):
        plain, demand = traces
        assert demand.messages >= 5 * plain.messages

    def test_multiple_services_involved(self, traces):
        _, demand = traces
        # Wire-visible endpoints: publisher, publisher's manager, broker,
        # broker's manager, consumer sink (registration manager is an
        # in-container create, not a wire target).
        assert len(demand.services_touched) >= 4

    def test_single_service_for_plain_subscribe(self, traces):
        plain, _ = traces
        assert len(plain.services_touched) == 1


class TestWallClock:
    def test_bench_demand_scenario(self, benchmark, traces):
        def scenario():
            deployment, publisher, broker, client, consumer = build_brokered_rig()
            run_demand_scenario(deployment, publisher, broker, client, consumer)

        benchmark.pedantic(scenario, rounds=5, iterations=1)

    def test_bench_plain_subscribe(self, benchmark):
        deployment, publisher, broker, client, consumer = build_brokered_rig()
        benchmark(lambda: run_plain_subscribe(deployment, publisher, client, consumer))
