"""MSG-BROKER — §3.1's demand-based publishing claims.

Thin wrapper over the ``brokered_messages`` experiment spec: "In total
... a demand based publisher registration interaction can involve as
many as six separate Web services.  More messages are generated in
response to a demand based publisher scenario than in any other spec, by
what we estimate to be an order of magnitude at a minimum."  The message
explosion claims live in the spec's ``brokered_claims`` predicate; the
rig and scenario drivers live in :mod:`repro.bench.brokered`.
"""

import pytest

from benchmarks.conftest import record_figure
from repro.bench.brokered import (
    build_brokered_rig,
    run_demand_scenario,
    run_plain_subscribe,
)
from repro.experiments import evaluate_invariants, run_in_memory
from repro.experiments.registry import cell_values, get_spec

SPEC = get_spec("brokered_messages")


@pytest.fixture(scope="module")
def record():
    rec = run_in_memory(SPEC)
    record_figure(SPEC.title, SPEC.figure(rec))
    return rec


class TestPaperClaims:
    def test_spec_invariants_hold(self, record):
        assert evaluate_invariants(SPEC, record) == []

    def test_order_of_magnitude_gap_in_virtual_time(self, record):
        values = cell_values(record, workload="brokered")
        assert values["demand"]["virtual_ms"] > values["plain"]["virtual_ms"]


class TestWallClock:
    def test_bench_demand_scenario(self, benchmark, record):
        def scenario():
            deployment, publisher, broker, client, consumer = build_brokered_rig()
            run_demand_scenario(deployment, publisher, broker, client, consumer)

        benchmark.pedantic(scenario, rounds=5, iterations=1)

    def test_bench_plain_subscribe(self, benchmark):
        deployment, publisher, broker, client, consumer = build_brokered_rig()
        benchmark(lambda: run_plain_subscribe(deployment, publisher, client, consumer))
