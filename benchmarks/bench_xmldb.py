"""XMLDB — secondary-index scaling (extension; no figure in the paper).

Sweeps the registry size over 10/100/1000/5000 HostInfo documents and
contrasts the scan query path (``db_query_base + per_doc × N``) with the
same lookup answered from a declared secondary index (O(hits)).  An
expression no index can cover runs against the indexed collection and must
reproduce the scan curve bit-identically — the planner's fallback
guarantee.  Results land in ``results/xmldb_scaling.{csv,json}``.

Run via pytest (wall-clock + virtual) or ``python -m repro xmldb``.
"""

import json
import os

import pytest

from benchmarks.conftest import record_figure
from repro.bench.report import figure_to_csv
from repro.bench.xmldb import (
    PREFIXES,
    SIZES,
    UNINDEXABLE,
    build_corpus,
    host_lookup,
    query_cost,
    scan_cost_model,
    xmldb_scaling_figure,
)

TITLE = "XML DB scaling: indexed query vs collection scan"
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


@pytest.fixture(scope="module")
def xmldb_table():
    table = xmldb_scaling_figure()
    record_figure(TITLE, table)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "xmldb_scaling.csv"), "w", encoding="utf-8") as fh:
        fh.write(figure_to_csv(table))
    with open(os.path.join(RESULTS_DIR, "xmldb_scaling.json"), "w", encoding="utf-8") as fh:
        json.dump(table, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return table


class TestScalingShapes:
    def test_scan_matches_cost_model_exactly(self, xmldb_table):
        # The scan path is charged db_query_base + per_doc × N — the pinned
        # pre-index cost formula, reproduced at every swept size.
        for n in SIZES:
            assert xmldb_table["scan host lookup"][str(n)] == pytest.approx(
                scan_cost_model(n), abs=1e-6
            )

    def test_indexed_lookup_is_flat(self, xmldb_table):
        row = xmldb_table["indexed host lookup"]
        values = [row[str(n)] for n in SIZES]
        assert max(values) - min(values) < 0.5  # O(hits), not O(N)

    def test_indexed_at_least_10x_cheaper_at_1000_docs(self, xmldb_table):
        scan = xmldb_table["scan host lookup"]["1000"]
        indexed = xmldb_table["indexed host lookup"]["1000"]
        assert scan >= 10 * indexed

    def test_unindexable_expression_reproduces_scan_curve(self, xmldb_table):
        # Fallback guarantee: with indexes declared, an expression the
        # planner cannot cover charges exactly what the plain scan does.
        for n in SIZES:
            assert (
                xmldb_table["unindexable (falls back to scan)"][str(n)]
                == pytest.approx(xmldb_table["scan host lookup"][str(n)], abs=1e-9)
            )

    def test_indexed_and_scan_agree_on_results(self):
        n = 100
        plain = build_corpus(n, indexed=False)
        fast = build_corpus(n, indexed=True)
        for expression in (host_lookup(n), UNINDEXABLE, "//g:Application[. = 'sort']"):
            keys = plain.query_keys(expression, PREFIXES)
            assert keys == fast.query_keys(expression, PREFIXES)
            assert keys, expression  # the corpus must actually match


class TestWallClock:
    def test_bench_indexed_lookup_1000(self, benchmark, xmldb_table):
        collection = build_corpus(1000, indexed=True)
        benchmark(lambda: query_cost(collection, host_lookup(1000)))

    def test_bench_scan_lookup_1000(self, benchmark, xmldb_table):
        collection = build_corpus(1000, indexed=False)
        benchmark(lambda: query_cost(collection, host_lookup(1000)))
