"""XMLDB — secondary-index scaling (extension; no figure in the paper).

Thin wrapper over the ``xmldb_scaling`` experiment spec: registry sizes
of 10/100/1000/5000 HostInfo documents, the scan query path
(``db_query_base + per_doc × N``) against the same lookup answered from
a declared secondary index (O(hits)), and the planner-fallback guarantee
(an uncoverable expression reproduces the scan curve bit-identically).
Results land in ``results/xmldb_scaling.{csv,json}``.  The result-set
agreement between the two query paths stays pinned here.

Run via pytest (wall-clock + virtual) or ``python -m repro xmldb``.
"""

import pytest

from benchmarks.conftest import record_figure, write_spec_artifacts
from repro.bench.xmldb import PREFIXES, UNINDEXABLE, build_corpus, host_lookup, query_cost
from repro.experiments import evaluate_invariants, run_in_memory
from repro.experiments.registry import get_spec

SPEC = get_spec("xmldb_scaling")


@pytest.fixture(scope="module")
def record():
    rec = run_in_memory(SPEC)
    record_figure(SPEC.title, SPEC.figure(rec))
    write_spec_artifacts(SPEC, rec)
    return rec


class TestScalingShapes:
    def test_spec_invariants_hold(self, record):
        assert evaluate_invariants(SPEC, record) == []

    def test_indexed_and_scan_agree_on_results(self):
        n = 100
        plain = build_corpus(n, indexed=False)
        fast = build_corpus(n, indexed=True)
        for expression in (host_lookup(n), UNINDEXABLE, "//g:Application[. = 'sort']"):
            keys = plain.query_keys(expression, PREFIXES)
            assert keys == fast.query_keys(expression, PREFIXES)
            assert keys, expression  # the corpus must actually match


class TestWallClock:
    def test_bench_indexed_lookup_1000(self, benchmark, record):
        collection = build_corpus(1000, indexed=True)
        benchmark(lambda: query_cost(collection, host_lookup(1000)))

    def test_bench_scan_lookup_1000(self, benchmark, record):
        collection = build_corpus(1000, indexed=False)
        benchmark(lambda: query_cost(collection, host_lookup(1000)))
