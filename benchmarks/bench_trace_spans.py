"""TRACE — per-message span trees from the pipeline's TracingFilter.

Thin wrapper over the ``trace_spans`` experiment spec.  Every benchmark
scenario already emits span trees (the tracing filter runs in every
chain); the spec turns them into artifacts: a per-stage breakdown figure
plus a full span-tree report — ``results/trace_spans_x509.csv`` and
``.json`` — for one signed distributed Get and one Notify per stack.
Stage coverage, round-trip partition and the security-dominates claim
are the spec's ``trace_claims`` predicate.
"""

import json
import os

import pytest

from benchmarks.conftest import record_figure, write_spec_artifacts
from repro.experiments import evaluate_invariants, run_in_memory
from repro.experiments.registry import get_spec

SPEC = get_spec("trace_spans")
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


@pytest.fixture(scope="module")
def record():
    rec = run_in_memory(SPEC)
    record_figure(SPEC.title, SPEC.figure(rec))
    write_spec_artifacts(SPEC, rec)
    return rec


class TestStageBreakdown:
    def test_spec_invariants_hold(self, record):
        assert evaluate_invariants(SPEC, record) == []


class TestSpanReportArtifacts:
    def test_csv_and_json_reports_land_in_results(self, record):
        csv_path = os.path.join(RESULTS_DIR, "trace_spans_x509.csv")
        header = open(csv_path, encoding="utf-8").readline().strip()
        assert header == "series,depth,span,started_at,ended_at,elapsed_ms,detail"
        json_path = os.path.join(RESULTS_DIR, "trace_spans_x509.json")
        loaded = json.load(open(json_path, encoding="utf-8"))
        assert loaded["WSRF.NET"]["Get"]["name"] == "client.invoke"
        assert loaded["WSRF.NET"]["Get"]["children"][0]["name"] == "client.send"
