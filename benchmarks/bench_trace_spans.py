"""TRACE — per-message span trees from the pipeline's TracingFilter.

Every benchmark scenario already emits span trees (the tracing filter
runs in every chain); this bench turns them into artifacts: a per-stage
breakdown figure (via the common CSV machinery) plus a full span-tree
report — ``results/trace_spans_x509.csv`` and ``.json`` — for one signed
distributed Get and one Notify per stack.
"""

import json
import os

import pytest

from benchmarks.conftest import record_figure
from repro.bench import span_figure, span_trees, spans_to_csv, trace_round_trip
from repro.container import SecurityMode

TITLE = "Trace spans: signed distributed Get per stage"
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

STAGES = (
    "client.send", "wire.request", "server.receive", "dispatch",
    "server.send", "wire.response", "client.receive",
)


@pytest.fixture(scope="module")
def figure():
    fig = span_figure(SecurityMode.X509)
    record_figure(TITLE, fig)
    return fig


@pytest.fixture(scope="module")
def trees():
    return {
        label: trace_round_trip(stack)
        for label, stack in (("WS-Transfer / WS-Eventing", "transfer"), ("WSRF.NET", "wsrf"))
    }


class TestStageBreakdown:
    def test_all_figure_1_stages_present(self, figure):
        for series in figure.values():
            assert tuple(series) == STAGES

    def test_stages_partition_the_round_trip(self, trees):
        """Top-level stages account for the whole invoke (no untraced gap:
        the sim is synchronous, so stage boundaries touch)."""
        for ops in trees.values():
            root = ops["Get"]
            total = sum(child.elapsed_ms for child in root.children)
            assert abs(total - root.elapsed_ms) < 1e-9

    def test_security_processing_dominates_signed_get(self, figure):
        """The paper's signing observation, visible inside one message:
        the four security-bearing stages outweigh the pure wire time."""
        for series in figure.values():
            security_stages = (
                series["client.send"] + series["server.receive"]
                + series["server.send"] + series["client.receive"]
            )
            wire = series["wire.request"] + series["wire.response"]
            assert security_stages > wire

    def test_notify_tree_present_for_both_stacks(self, trees):
        for ops in trees.values():
            notify = ops["Notify"]
            names = {span.name for _, span in notify.walk()}
            assert {"notify.deliver", "notify.send", "wire.notify", "notify.receive"} <= names


class TestSpanReportArtifacts:
    def test_csv_and_json_reports_land_in_results(self, trees):
        os.makedirs(RESULTS_DIR, exist_ok=True)
        flat = {
            f"{label}/{op}": root
            for label, ops in trees.items()
            for op, root in ops.items()
        }
        csv_path = os.path.join(RESULTS_DIR, "trace_spans_x509.csv")
        with open(csv_path, "w", encoding="utf-8") as fh:
            fh.write(spans_to_csv(flat))
        json_path = os.path.join(RESULTS_DIR, "trace_spans_x509.json")
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(span_trees(SecurityMode.X509), fh, indent=2, sort_keys=True)

        header = open(csv_path, encoding="utf-8").readline().strip()
        assert header == "series,depth,span,started_at,ended_at,elapsed_ms,detail"
        loaded = json.load(open(json_path, encoding="utf-8"))
        assert loaded["WSRF.NET"]["Get"]["name"] == "client.invoke"
        assert loaded["WSRF.NET"]["Get"]["children"][0]["name"] == "client.send"
