"""Loadgen — offered load vs latency under the kernel (extension; no
figure in the paper).

Thin wrapper over the ``loadgen`` experiment spec: open-loop Poisson
arrivals over both stacks in the paper's hardest mode (X.509 signing,
distributed placement), recording the trajectory ROADMAP item 3 tracks —
p50/p95/p99 latency, virtual throughput and messages/sec, and the server
host's high-water queue depth at each offered load.  Monotone p95
growth, saturation and queue-depth claims are the spec's invariants.
The sweep is fully seeded, so ``results/BENCH_loadgen.json`` is
byte-reproducible and gated by ``scripts/check.sh``.

Run via pytest (adds a wall-clock benchmark of one loaded run) or
``python -m repro loadgen``.
"""

import pytest

from benchmarks.conftest import record_figure, write_spec_artifacts
from repro.bench.loadgen import BENCH_RATES, STACKS, run_load
from repro.experiments import evaluate_invariants, run_in_memory
from repro.experiments.registry import get_spec

SPEC = get_spec("loadgen")


@pytest.fixture(scope="module")
def record():
    rec = run_in_memory(SPEC)
    record_figure(SPEC.title, SPEC.figure(rec))
    write_spec_artifacts(SPEC, rec)
    return rec


class TestTrajectoryShape:
    def test_spec_invariants_hold(self, record):
        assert evaluate_invariants(SPEC, record) == []

    def test_three_points_per_stack(self, record):
        for stack in STACKS:
            assert sum(1 for cell in record.cells if cell.params["stack"] == stack) == 3


class TestWallClock:
    @pytest.mark.parametrize("stack", STACKS)
    def test_bench_loaded_run(self, benchmark, stack):
        benchmark(
            lambda: run_load(stack, rate_per_sec=BENCH_RATES[-1], requests=30)
        )
