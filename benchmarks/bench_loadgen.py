"""Loadgen — offered load vs latency under the kernel (extension; no
figure in the paper).

Sweeps open-loop Poisson arrivals over both stacks in the paper's
hardest mode (X.509 signing, distributed placement) and records the
trajectory ROADMAP item 3 tracks: p50/p95/p99 latency, virtual
throughput and messages/sec, and the server host's high-water queue
depth at each offered load.  The sweep is fully seeded — every number
derives from the virtual clock — so ``results/BENCH_loadgen.json`` is
byte-reproducible and ``scripts/check.sh`` diffs a fresh regeneration
against the committed file.

Run via pytest (adds a wall-clock benchmark of one loaded run) or
``python -m repro loadgen``.
"""

import json
import os

import pytest

from benchmarks.conftest import record_figure
from repro.bench.loadgen import BENCH_RATES, STACKS, run_load, sweep

TITLE = "Open-loop load: offered load vs p95 latency (X.509, distributed)"
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
BENCH_PATH = os.path.join(RESULTS_DIR, "BENCH_loadgen.json")


@pytest.fixture(scope="module")
def loadgen_report():
    report = sweep()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(BENCH_PATH, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    record_figure(
        TITLE,
        {
            stack: {
                f"{row['offered_per_sec']:g}/s": row["latency"]["p95_ms"]
                for row in rows
            }
            for stack, rows in report["stacks"].items()
        },
    )
    return report


class TestTrajectoryShape:
    def test_at_least_three_points_per_stack(self, loadgen_report):
        for stack in STACKS:
            assert len(loadgen_report["stacks"][stack]) >= 3

    def test_every_request_accounted_for(self, loadgen_report):
        n = loadgen_report["config"]["requests_per_point"]
        for rows in loadgen_report["stacks"].values():
            for row in rows:
                assert row["completed"] + row["rejected"] + row["failed"] == n
                assert row["failed"] == 0

    def test_p95_grows_with_offered_load(self, loadgen_report):
        # Open loop: pushing past the service rate must lengthen the queue,
        # so p95 latency is strictly increasing across the swept rates.
        for rows in loadgen_report["stacks"].values():
            p95s = [row["latency"]["p95_ms"] for row in rows]
            assert p95s == sorted(p95s)
            assert p95s[-1] > 2 * p95s[0]

    def test_throughput_saturates(self, loadgen_report):
        # Doubling offered load from the middle to the top rate must not
        # double completions/sec — the single worker is the bottleneck.
        for rows in loadgen_report["stacks"].values():
            mid, top = rows[-2], rows[-1]
            assert top["throughput_per_sec"] < 1.5 * mid["throughput_per_sec"]

    def test_queue_depth_rises_with_load(self, loadgen_report):
        for rows in loadgen_report["stacks"].values():
            depths = [max(row["max_queue_depth"].values()) for row in rows]
            assert depths[-1] > depths[0]

    def test_queueing_delay_observed_under_saturation(self, loadgen_report):
        for rows in loadgen_report["stacks"].values():
            assert rows[-1]["queueing"]["p95_ms"] > 0


class TestWallClock:
    @pytest.mark.parametrize("stack", STACKS)
    def test_bench_loaded_run(self, benchmark, stack):
        benchmark(
            lambda: run_load(stack, rate_per_sec=BENCH_RATES[-1], requests=30)
        )
