"""Msgperf — wall-clock message-path throughput, memoized vs uncached
(ISSUE 9 / ROADMAP item 2; no figure in the paper).

Unlike the other benches, the headline numbers here are *wall-clock* and
therefore machine-dependent: ``results/BENCH_msgperf.json`` is regenerated
by this bench (or ``python -m repro msgperf --json``) but gated in
``scripts/check.sh`` by the shape check ``python -m repro msgperf --check``
— structure, deterministic virtual costs and the cached/uncached ordering
must hold, while absolute throughput may drift with the host.  The tests
below pin exactly the machine-independent claims: the 10x speedup floor on
the signed soak, virtual-cost invariance across caching modes, and caches
that actually get hit.
"""

import json
import os

import pytest

from benchmarks.conftest import record_figure
from repro.bench.msgperf import MIN_SOAK_SPEEDUP, TITLE, run_msgperf, run_soak

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
BENCH_PATH = os.path.join(RESULTS_DIR, "BENCH_msgperf.json")


@pytest.fixture(scope="module")
def msgperf_report():
    report = run_msgperf()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(BENCH_PATH, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    record_figure(
        TITLE,
        {
            "soak (msg/s)": {
                "cached": report["soak"]["cached"]["messages_per_sec"],
                "uncached": report["soak"]["uncached"]["messages_per_sec"],
                "speedup x": report["soak"]["speedup"],
            },
            "xmldb (doc/s)": {
                "cached": report["xmldb"]["cached"]["docs_per_sec"],
                "uncached": report["xmldb"]["uncached"]["docs_per_sec"],
                "speedup x": report["xmldb"]["speedup"],
            },
        },
    )
    return report


class TestTrajectoryShape:
    def test_soak_speedup_meets_the_floor(self, msgperf_report):
        soak = msgperf_report["soak"]
        assert soak["speedup"] >= MIN_SOAK_SPEEDUP == soak["min_speedup"]

    def test_virtual_costs_identical_across_modes(self, msgperf_report):
        soak = msgperf_report["soak"]
        assert (
            soak["cached"]["virtual_ms_per_op"]
            == soak["uncached"]["virtual_ms_per_op"]
            > 0
        )

    def test_caches_were_exercised(self, msgperf_report):
        stats = msgperf_report["cache_stats"]
        assert stats["dsig.sign"]["hits"] > stats["dsig.sign"]["misses"]
        assert stats["dsig.verify"]["hits"] > 0
        assert sum(s["hits"] for s in stats.values()) > 0

    def test_xmldb_not_pessimized(self, msgperf_report):
        # Caching must never cost the one-shot document workload more than
        # noise: the cached build stays within 25% of the uncached one.
        assert msgperf_report["xmldb"]["speedup"] >= 0.75

    def test_report_round_trips_through_json(self, msgperf_report):
        with open(BENCH_PATH, encoding="utf-8") as fh:
            assert json.load(fh) == msgperf_report


class TestWallClock:
    def test_bench_cached_soak(self, benchmark):
        benchmark(lambda: run_soak(30))

    def test_bench_uncached_soak(self, benchmark):
        benchmark(lambda: run_soak(10, uncached=True))
