"""Ablations: which results are mechanism, which are calibration?

Three kinds of checks:

1. **Mechanism ablations** — disable one modelled mechanism (write-through
   cache, persistent-TCP delivery, TLS resumption) and verify the paper's
   corresponding observation disappears, i.e. the result really is caused
   by the mechanism the paper credits.  These stay here: they compare
   *modified* cost models, outside the spec's fixed grid.
2. **Robustness sweep** — the ``ablation_robustness`` experiment spec:
   perturb each load-bearing cost-model entry by ±50% and verify the
   headline orderings survive, i.e. the conclusions are not artifacts of
   the calibration constants.
3. Wall-clock benches of the ablated configurations.
"""

import pytest

from benchmarks.conftest import record_figure
from repro.bench import measure_hello_world
from repro.bench.ablation import PERTURBED_ENTRIES, orderings_hold
from repro.container import SecurityMode
from repro.experiments import evaluate_invariants, run_in_memory
from repro.experiments.registry import get_spec
from repro.sim.costs import CostModel

BASE = CostModel()
SPEC = get_spec("ablation_robustness")


def hello(stack: str, mode=SecurityMode.NONE, costs: CostModel | None = None):
    return measure_hello_world(stack, mode, colocated=True, costs=costs)


class TestMechanismAblations:
    def test_without_cache_wsrf_set_advantage_vanishes(self):
        """Charge cache hits like full DB reads → WSRF's Set and Get lose
        their edge (the paper credits "write-through resource caching")."""
        no_cache = BASE.replace(cache_hit=BASE.db_read)
        with_cache = hello("wsrf")
        without_cache = hello("wsrf", costs=no_cache)
        transfer = hello("transfer")
        assert with_cache["Set"] < transfer["Set"]
        assert without_cache["Set"] > with_cache["Set"] + 0.9 * (BASE.db_read - BASE.cache_hit)

    def test_without_tcp_receiver_notify_gap_vanishes(self):
        """Give WS-Eventing the same per-delivery overhead as the embedded
        HTTP server → Notify parity (the TCP-vs-HTTP issue is the cause)."""
        same_delivery = BASE.replace(notify_tcp_overhead=BASE.notify_http_overhead)
        wsrf = hello("wsrf")
        transfer_ablated = hello("transfer", costs=same_delivery)
        transfer_normal = hello("transfer")
        assert transfer_normal["Notify"] < 0.8 * wsrf["Notify"]
        assert transfer_ablated["Notify"] > 0.85 * wsrf["Notify"]

    def test_without_session_resumption_https_is_not_cheap(self):
        """Force every HTTPS exchange to a full handshake → the "socket
        caching" result disappears."""
        cold = BASE.replace(tls_resume=BASE.tls_handshake)
        warm_fig = hello("wsrf", SecurityMode.HTTPS)
        cold_fig = hello("wsrf", SecurityMode.HTTPS, costs=cold)
        assert cold_fig["Get"] > warm_fig["Get"] + BASE.tls_handshake / 2

    def test_signing_cost_is_the_x509_story(self):
        """Set RSA costs to zero → the X.509 figure collapses towards the
        no-security one."""
        free_crypto = BASE.replace(rsa_sign=0.0, rsa_verify=0.0, security_policy_check=0.0)
        signed = hello("wsrf", SecurityMode.X509)
        signed_free = hello("wsrf", SecurityMode.X509, costs=free_crypto)
        plain = hello("wsrf")
        assert signed["Get"] > 5 * plain["Get"]
        assert signed_free["Get"] < 2 * plain["Get"]


class TestCalibrationRobustness:
    def test_create_vs_set_needs_slow_inserts(self):
        """The one genuinely calibration-sensitive ordering: WS-Transfer's
        "Create slowest" holds iff insert ≳ read+update (true for Xindice:
        "Creating resources (and adding them to the database) in particular
        is always slower than reading or updating them")."""
        baseline = hello("transfer")
        assert baseline["Create"] > baseline["Set"]
        fast_inserts = BASE.replace(db_insert=BASE.db_insert * 0.5)
        flipped = hello("transfer", costs=fast_inserts)
        assert flipped["Create"] < flipped["Set"]

    @pytest.mark.parametrize("entry", PERTURBED_ENTRIES)
    @pytest.mark.parametrize("factor", (0.5, 1.5))
    def test_orderings_survive_perturbation(self, entry, factor):
        perturbed = BASE.replace(**{entry: getattr(BASE, entry) * factor})
        assert orderings_hold(perturbed) == []

    def test_sweep_summary_recorded(self):
        record = run_in_memory(SPEC)
        record_figure(SPEC.title, SPEC.figure(record))
        assert evaluate_invariants(SPEC, record) == []


class TestWallClock:
    def test_bench_hello_measurement_pipeline(self, benchmark):
        benchmark.pedantic(lambda: hello("wsrf"), rounds=3, iterations=1)

    def test_bench_ablated_pipeline(self, benchmark):
        no_cache = BASE.replace(cache_hit=BASE.db_read)
        benchmark.pedantic(lambda: hello("wsrf", costs=no_cache), rounds=3, iterations=1)
