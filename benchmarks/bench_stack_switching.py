"""SWITCH — §5's switching question, quantified.

"How easy is it to switch from one stack to the other?"  The facade
gateways in ``repro.bridge`` make an unmodified client of stack A drive a
service of stack B; this bench measures what that indirection costs per
operation, in both directions.
"""

import pytest

from benchmarks.conftest import record_figure
from repro.apps.counter import (
    CounterScenario,
    TransferCounterClient,
    WsrfCounterClient,
    build_transfer_rig,
    build_wsrf_rig,
)
from repro.bench.runner import measure_virtual
from repro.bridge import COUNTER_MAPPING, TransferFacadeService, WsrfFacadeService

TITLE = "Stack switching: native vs bridged operation cost"


def build_bridged_pair():
    """(native wsrf client, wsrf client over transfer backing) and the
    reverse pair, all in independent deployments."""
    wsrf_rig = build_wsrf_rig(CounterScenario())

    wxf_rig = build_transfer_rig(CounterScenario())
    gateway = wxf_rig.deployment.add_container(
        "gateway-host", "Gateway", wxf_rig.deployment.issue_credentials("gw", seed=601)
    )
    wsrf_facade = WsrfFacadeService(wxf_rig.service.address, COUNTER_MAPPING)
    gateway.add_service(wsrf_facade)
    bridged_wsrf_client = WsrfCounterClient(wxf_rig.client.soap, wsrf_facade.address)

    wsrf_rig2 = build_wsrf_rig(CounterScenario())
    gateway2 = wsrf_rig2.deployment.add_container(
        "gateway-host", "Gateway", wsrf_rig2.deployment.issue_credentials("gw", seed=602)
    )
    transfer_facade = TransferFacadeService(wsrf_rig2.service.address, COUNTER_MAPPING)
    gateway2.add_service(transfer_facade)
    bridged_transfer_client = TransferCounterClient(
        wsrf_rig2.client.soap, transfer_facade.address
    )

    wxf_native = build_transfer_rig(CounterScenario())
    return wsrf_rig, (wxf_rig, bridged_wsrf_client), (wsrf_rig2, bridged_transfer_client), wxf_native


def _measure_ops(deployment, client, destroy_name):
    results = {}
    counter = client.create(0)
    results["Get"] = measure_virtual(deployment, "Get", lambda: client.get(counter)).elapsed_ms
    results["Set"] = measure_virtual(deployment, "Set", lambda: client.set(counter, 7)).elapsed_ms
    created = {}
    results["Create"] = measure_virtual(
        deployment, "Create", lambda: created.update(epr=client.create(0))
    ).elapsed_ms
    destroy = getattr(client, destroy_name)
    results["Destroy"] = measure_virtual(
        deployment, "Destroy", lambda: destroy(created["epr"])
    ).elapsed_ms
    return results


@pytest.fixture(scope="module")
def figure():
    wsrf_rig, (wxf_rig, bridged_wsrf), (wsrf_rig2, bridged_wxf), wxf_native = build_bridged_pair()
    fig = {
        "native WSRF client → WSRF service": _measure_ops(
            wsrf_rig.deployment, wsrf_rig.client, "destroy"
        ),
        "WSRF client → facade → WS-Transfer service": _measure_ops(
            wxf_rig.deployment, bridged_wsrf, "destroy"
        ),
        "native WS-Transfer client → WS-Transfer service": _measure_ops(
            wxf_native.deployment, wxf_native.client, "delete"
        ),
        "WS-Transfer client → facade → WSRF service": _measure_ops(
            wsrf_rig2.deployment, bridged_wxf, "delete"
        ),
    }
    record_figure(TITLE, fig)
    return fig


class TestSwitchingCosts:
    def test_bridging_always_costs_more(self, figure):
        for op in ("Get", "Set", "Create", "Destroy"):
            assert (
                figure["WSRF client → facade → WS-Transfer service"][op]
                > figure["native WSRF client → WSRF service"][op]
            )
            assert (
                figure["WS-Transfer client → facade → WSRF service"][op]
                > figure["native WS-Transfer client → WS-Transfer service"][op]
            )

    def test_bridged_set_is_the_worst_case(self, figure):
        """The WSRF→Transfer Set pays Get+Put on the backing service."""
        bridged = figure["WSRF client → facade → WS-Transfer service"]
        native = figure["native WSRF client → WSRF service"]
        assert bridged["Set"] > 2.5 * native["Set"]

    def test_bridging_stays_within_an_order_of_magnitude(self, figure):
        """Switching is expensive but feasible — the §5 takeaway."""
        for bridged_label, native_label in (
            ("WSRF client → facade → WS-Transfer service", "native WSRF client → WSRF service"),
            ("WS-Transfer client → facade → WSRF service", "native WS-Transfer client → WS-Transfer service"),
        ):
            for op in ("Get", "Set", "Create", "Destroy"):
                assert figure[bridged_label][op] < 10 * figure[native_label][op]


class TestWallClock:
    def test_bench_native_get(self, benchmark, figure):
        rig = build_wsrf_rig(CounterScenario())
        counter = rig.client.create(0)
        benchmark(lambda: rig.client.get(counter))

    def test_bench_bridged_get(self, benchmark):
        rig = build_transfer_rig(CounterScenario())
        gateway = rig.deployment.add_container(
            "gateway-host", "Gateway", rig.deployment.issue_credentials("gw", seed=603)
        )
        facade = WsrfFacadeService(rig.service.address, COUNTER_MAPPING)
        gateway.add_service(facade)
        client = WsrfCounterClient(rig.client.soap, facade.address)
        counter = client.create(0)
        benchmark(lambda: client.get(counter))
