"""SWITCH — §5's switching question, quantified.

Thin wrapper over the ``stack_switching`` experiment spec: "How easy is
it to switch from one stack to the other?"  The facade gateways in
``repro.bridge`` make an unmodified client of stack A drive a service of
stack B; the spec measures what that indirection costs per operation, in
both directions, and pins the cost envelope (always more than native,
never more than 10x, Set the worst case) as ordering invariants.
"""

import pytest

from benchmarks.conftest import record_figure
from repro.apps.counter import CounterScenario, WsrfCounterClient, build_transfer_rig, build_wsrf_rig
from repro.bridge import COUNTER_MAPPING, WsrfFacadeService
from repro.experiments import evaluate_invariants, run_in_memory
from repro.experiments.registry import get_spec

SPEC = get_spec("stack_switching")


@pytest.fixture(scope="module")
def record():
    rec = run_in_memory(SPEC)
    record_figure(SPEC.title, SPEC.figure(rec))
    return rec


class TestSwitchingCosts:
    def test_spec_invariants_hold(self, record):
        assert evaluate_invariants(SPEC, record) == []

    def test_all_four_routes_measured(self, record):
        assert len(record.cells) == 4


class TestWallClock:
    def test_bench_native_get(self, benchmark, record):
        rig = build_wsrf_rig(CounterScenario())
        counter = rig.client.create(0)
        benchmark(lambda: rig.client.get(counter))

    def test_bench_bridged_get(self, benchmark):
        rig = build_transfer_rig(CounterScenario())
        gateway = rig.deployment.add_container(
            "gateway-host", "Gateway", rig.deployment.issue_credentials("gw", seed=603)
        )
        facade = WsrfFacadeService(rig.service.address, COUNTER_MAPPING)
        gateway.add_service(facade)
        client = WsrfCounterClient(rig.client.soap, facade.address)
        counter = client.create(0)
        benchmark(lambda: client.get(counter))
