"""Datagrid replica staging — the declared-services sweep (extension; no
figure in the paper).

Thin wrapper over the ``datagrid`` experiment spec: the fixed
replica-staging workload through the generated ReplicaCatalog /
DataTransfer services on both stacks across the six security×placement
cells.  The layered framework's claims — shared logic means identical
source decisions and identical ``link`` charges everywhere, with only
the wire cost varying per stack/cell — are the spec's invariants.  The
same sweep is byte-committed as ``results/BENCH_datagrid.json`` and
gated by ``scripts/check.sh``.
"""

import pytest

from benchmarks.conftest import record_figure, write_spec_artifacts
from repro.apps.datagrid import DatagridScenario
from repro.bench.datagrid import STACKS, run_staging
from repro.experiments import evaluate_invariants, run_in_memory
from repro.experiments.registry import get_spec

SPEC = get_spec("datagrid")


@pytest.fixture(scope="module")
def record():
    rec = run_in_memory(SPEC)
    record_figure(SPEC.title, SPEC.figure(rec))
    write_spec_artifacts(SPEC, rec)
    return rec


class TestSharedLogicInvariants:
    def test_spec_invariants_hold(self, record):
        assert evaluate_invariants(SPEC, record) == []

    def test_all_twelve_cells_measured(self, record):
        assert len(record.cells) == 12


class TestWallClock:
    @pytest.mark.parametrize("stack", STACKS)
    def test_bench_staging_run(self, benchmark, stack):
        benchmark(lambda: run_staging(stack, DatagridScenario()))
