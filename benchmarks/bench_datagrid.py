"""Datagrid replica staging — the declared-services sweep (extension; no
figure in the paper).

Runs the fixed replica-staging workload through the generated
ReplicaCatalog/DataTransfer services on both stacks across the six
security×placement cells and pins the layered framework's claims: shared
logic means identical source decisions and identical ``link`` charges
everywhere, with only the wire cost varying per stack/cell.  The same
sweep is byte-committed as ``results/BENCH_datagrid.json`` and diffed by
``scripts/check.sh``; regenerate with
``python -m repro datagrid --json results/BENCH_datagrid.json``.
"""

import json
import os

import pytest

from benchmarks.conftest import record_figure
from repro.apps.datagrid import DatagridScenario
from repro.bench.datagrid import EXPECTED_SOURCES, STACKS, run_staging, sweep

TITLE = "Datagrid replica staging (virtual ms per cell)"
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
BENCH_PATH = os.path.join(RESULTS_DIR, "BENCH_datagrid.json")


@pytest.fixture(scope="module")
def datagrid_report():
    report = sweep()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(BENCH_PATH, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    record_figure(
        TITLE,
        {
            cell: {stack: row["virtual_ms"] for stack, row in stacks.items()}
            for cell, stacks in report["cells"].items()
        },
    )
    return report


class TestSharedLogicInvariants:
    def test_source_decisions_identical_everywhere(self, datagrid_report):
        for cell, stacks in datagrid_report["cells"].items():
            for stack, row in stacks.items():
                assert row["sources"] == EXPECTED_SOURCES, (cell, stack)

    def test_link_charges_identical_everywhere(self, datagrid_report):
        # 40 (LAN replicate) + 400 (WAN replicate) + 40 (same-site
        # stage-in) + 0 (local stage-in): pure host-name topology, blind
        # to stack, security and placement.
        for cell, stacks in datagrid_report["cells"].items():
            for stack, row in stacks.items():
                assert row["link_ms"] == 480.0, (cell, stack)

    def test_catalog_state_identical_everywhere(self, datagrid_report):
        rows = [
            row
            for stacks in datagrid_report["cells"].values()
            for row in stacks.values()
        ]
        for row in rows:
            assert row["events_replicas"] == ["se1.cern", "se1.fnal", "se2.cern"]
            assert row["se1.cern_files"] == ["lfn:calib", "lfn:events"]

    def test_message_counts_match_across_stacks(self, datagrid_report):
        # Same declared ops, same out-calls: one request/response pair per
        # operation on either wire idiom.
        for cell, stacks in datagrid_report["cells"].items():
            counts = {row["messages"] for row in stacks.values()}
            assert len(counts) == 1, cell


class TestWireCostShape:
    def test_security_costs_dominate(self, datagrid_report):
        cells = datagrid_report["cells"]
        for stack in STACKS:
            none = cells["co-located/none"][stack]["virtual_ms"]
            x509 = cells["co-located/x509"][stack]["virtual_ms"]
            https = cells["co-located/https"][stack]["virtual_ms"]
            assert x509 > https > none

    def test_distribution_adds_wire_time(self, datagrid_report):
        cells = datagrid_report["cells"]
        for mode in ("none", "x509", "https"):
            for stack in STACKS:
                colocated = cells[f"co-located/{mode}"][stack]["virtual_ms"]
                distributed = cells[f"distributed/{mode}"][stack]["virtual_ms"]
                assert distributed > colocated


class TestWallClock:
    @pytest.mark.parametrize("stack", STACKS)
    def test_bench_staging_run(self, benchmark, stack):
        benchmark(lambda: run_staging(stack, DatagridScenario()))
