"""Shared shape assertions for the three hello-world figures."""

from __future__ import annotations

CO_WSRF = "Co-located WSRF.NET"
CO_WXF = "Co-located WS-Transfer / WS-Eventing"
DIST_WSRF = "Distributed WSRF.NET"
DIST_WXF = "Distributed WS-Transfer / WS-Eventing"


def assert_common_hello_shape(figure: dict[str, dict[str, float]]) -> None:
    """Invariants the paper reports for *every* security scenario."""
    for series in figure.values():
        for op in ("Get", "Set", "Destroy"):
            assert series["Create"] > series[op], "Create must be the slowest CRUD op"
    assert figure[CO_WSRF]["Set"] < figure[CO_WXF]["Set"], "write-through cache advantage"
    assert figure[CO_WXF]["Notify"] < figure[CO_WSRF]["Notify"], "TCP vs HTTP notify"
    for co, dist in ((CO_WSRF, DIST_WSRF), (CO_WXF, DIST_WXF)):
        for op in figure[co]:
            assert figure[co][op] < figure[dist][op] < 1.5 * figure[co][op]
