"""FIG6 — Figure 6: Grid-in-a-Box performance comparison.

Six measured client operations under X.509 signing.  The paper's reading:
"The greatest factor influencing the performance of individual operations
is the number of web service outcalls (and message signings) triggered on
the server" — asserted below via the metrics traces.
"""

import pytest

from benchmarks.conftest import record_figure
from repro.apps.giab import build_transfer_vo, build_wsrf_vo
from repro.apps.giab.jobs import JobSpec
from repro.bench.giab import GIAB_OPS, measure_giab

TITLE = "Figure 6: Grid-in-a-Box comparison (X.509 signing)"


@pytest.fixture(scope="module")
def figure():
    wsrf_results, wsrf_traces = measure_giab("wsrf", with_traces=True)
    wxf_results, wxf_traces = measure_giab("transfer", with_traces=True)
    fig = {
        "WS-Transfer / WS-Eventing": wxf_results,
        "WSRF.NET": wsrf_results,
    }
    record_figure(TITLE, fig)
    # The analysis behind the figure: per-operation message/signing counts.
    record_figure(
        "Figure 6 analysis: messages (and signatures) per operation",
        {
            "WS-Transfer messages": {op: float(t.messages) for op, t in wxf_traces.items()},
            "WS-Transfer signatures": {op: float(t.signatures) for op, t in wxf_traces.items()},
            "WSRF.NET messages": {op: float(t.messages) for op, t in wsrf_traces.items()},
            "WSRF.NET signatures": {op: float(t.signatures) for op, t in wsrf_traces.items()},
        },
    )
    return fig, wsrf_traces, wxf_traces


class TestShape:
    def test_all_six_operations_measured(self, figure):
        fig, _, _ = figure
        for series in fig.values():
            assert set(series) == set(GIAB_OPS)

    def test_delete_file_single_call_comparable(self, figure):
        """"The Delete File operation involves a single call in both
        implementations ... the results of these operations are comparable."""
        fig, wsrf_traces, wxf_traces = figure
        assert wsrf_traces["Delete File"].messages == 2  # request + response
        assert wxf_traces["Delete File"].messages == 2
        a = fig["WSRF.NET"]["Delete File"]
        b = fig["WS-Transfer / WS-Eventing"]["Delete File"]
        assert max(a, b) / min(a, b) < 1.3

    def test_upload_file_pair_of_calls_comparable(self, figure):
        """Upload File "requires a pair of calls in both"."""
        fig, wsrf_traces, wxf_traces = figure
        assert wsrf_traces["Upload File"].messages == 4  # 2 calls × (req+resp)
        assert wxf_traces["Upload File"].messages == 4
        a = fig["WSRF.NET"]["Upload File"]
        b = fig["WS-Transfer / WS-Eventing"]["Upload File"]
        assert max(a, b) / min(a, b) < 1.3

    def test_instantiate_job_wsrf_needs_more_outcalls(self, figure):
        """"the WSRF implementation requires several more outcalls to
        Instantiate a Job than the WS-Transfer version"."""
        fig, wsrf_traces, wxf_traces = figure
        assert wsrf_traces["Instantiate Job"].messages > wxf_traces["Instantiate Job"].messages + 2
        assert (
            fig["WSRF.NET"]["Instantiate Job"]
            > 1.4 * fig["WS-Transfer / WS-Eventing"]["Instantiate Job"]
        )

    def test_unreserve_free_on_wsrf(self, figure):
        """"Un-reserving a resource also happens automatically in the WSRF
        version (so no time is reported)."""
        fig, _, _ = figure
        assert fig["WSRF.NET"]["Unreserve Resource"] == 0.0
        assert fig["WS-Transfer / WS-Eventing"]["Unreserve Resource"] > 0

    def test_signings_track_outcalls(self, figure):
        """More messages ⇒ more signings ⇒ more time (§4.2.3)."""
        _, wsrf_traces, _ = figure
        ordered = sorted(
            (t for t in wsrf_traces.values()),
            key=lambda t: t.messages,
        )
        assert ordered[0].signatures <= ordered[-1].signatures
        assert wsrf_traces["Instantiate Job"].signatures >= 8

    def test_instantiate_dominated_by_design_not_specs(self, figure):
        """"The performance differences between individual spec-defined
        operations are small enough, that the overall design of a system
        dictates how fast it will run": the cross-stack Instantiate gap is
        far larger than any single-operation gap in Figure 4."""
        fig, _, _ = figure
        gap = (
            fig["WSRF.NET"]["Instantiate Job"]
            - fig["WS-Transfer / WS-Eventing"]["Instantiate Job"]
        )
        assert gap > 100  # several whole signed round trips


class TestWallClock:
    @pytest.fixture(scope="class")
    def wsrf_vo(self):
        return build_wsrf_vo()

    @pytest.fixture(scope="class")
    def transfer_vo(self):
        return build_transfer_vo()

    def test_bench_wsrf_get_available(self, benchmark, figure, wsrf_vo):
        benchmark(lambda: wsrf_vo.client.get_available_resources("sort"))

    def test_bench_transfer_get_available(self, benchmark, transfer_vo):
        benchmark(lambda: transfer_vo.client.get_available_resources("sort"))

    def test_bench_wsrf_full_job_flow(self, benchmark, wsrf_vo):
        """One complete reserve→stage→run cycle (round-robin over nodes)."""
        vo = wsrf_vo
        state = {"n": 0}

        def flow():
            sites = vo.client.get_available_resources("sort")
            if not sites:
                return
            site = sites[state["n"] % len(sites)]
            state["n"] += 1
            reservation = vo.client.make_reservation(site["host"])
            directory = vo.client.create_data_directory(site["data_address"])
            vo.client.upload_file(directory, "in.dat", "x" * 1024)
            vo.client.start_job(
                site["exec_address"], reservation, directory, JobSpec("sort", (), 50.0)
            )
            vo.deployment.network.clock.charge(60)

        benchmark.pedantic(flow, rounds=5, iterations=1)

    def test_bench_transfer_full_job_flow(self, benchmark, transfer_vo):
        vo = transfer_vo
        state = {"n": 0}

        def flow():
            sites = vo.client.get_available_resources("sort")
            if not sites:
                return
            site = sites[state["n"] % len(sites)]
            state["n"] += 1
            vo.client.make_reservation(site["host"])
            vo.client.upload_file(site["data_address"], "in.dat", "x" * 1024)
            vo.client.start_job(site["exec_address"], JobSpec("sort", (), 50.0))
            vo.deployment.network.clock.charge(60)
            vo.client.unreserve(site["host"])

        benchmark.pedantic(flow, rounds=5, iterations=1)
