"""FIG6 — Figure 6: Grid-in-a-Box performance comparison.

Thin wrapper over the ``fig6_giab`` experiment spec.  Six measured client
operations under X.509 signing; the paper's reading — "The greatest
factor influencing the performance of individual operations is the
number of web service outcalls (and message signings) triggered on the
server" — is asserted by the spec's ``giab_claims`` predicate.
"""

import pytest

from benchmarks.conftest import record_figure
from repro.apps.giab import build_transfer_vo, build_wsrf_vo
from repro.apps.giab.jobs import JobSpec
from repro.bench.giab import GIAB_OPS
from repro.experiments import evaluate_invariants, run_in_memory
from repro.experiments.registry import fig6_analysis_figure, get_spec

SPEC = get_spec("fig6_giab")


@pytest.fixture(scope="module")
def record():
    rec = run_in_memory(SPEC)
    record_figure(SPEC.title, SPEC.figure(rec))
    # The analysis behind the figure: per-operation message/signing counts.
    record_figure(
        "Figure 6 analysis: messages (and signatures) per operation",
        fig6_analysis_figure(rec),
    )
    return rec


class TestShape:
    def test_spec_invariants_hold(self, record):
        assert evaluate_invariants(SPEC, record) == []

    def test_all_six_operations_measured(self, record):
        for series in SPEC.figure(record).values():
            assert set(series) == set(GIAB_OPS)


class TestWallClock:
    @pytest.fixture(scope="class")
    def wsrf_vo(self):
        return build_wsrf_vo()

    @pytest.fixture(scope="class")
    def transfer_vo(self):
        return build_transfer_vo()

    def test_bench_wsrf_get_available(self, benchmark, record, wsrf_vo):
        benchmark(lambda: wsrf_vo.client.get_available_resources("sort"))

    def test_bench_transfer_get_available(self, benchmark, transfer_vo):
        benchmark(lambda: transfer_vo.client.get_available_resources("sort"))

    def test_bench_wsrf_full_job_flow(self, benchmark, wsrf_vo):
        """One complete reserve→stage→run cycle (round-robin over nodes)."""
        vo = wsrf_vo
        state = {"n": 0}

        def flow():
            sites = vo.client.get_available_resources("sort")
            if not sites:
                return
            site = sites[state["n"] % len(sites)]
            state["n"] += 1
            reservation = vo.client.make_reservation(site["host"])
            directory = vo.client.create_data_directory(site["data_address"])
            vo.client.upload_file(directory, "in.dat", "x" * 1024)
            vo.client.start_job(
                site["exec_address"], reservation, directory, JobSpec("sort", (), 50.0)
            )
            vo.deployment.network.clock.charge(60)

        benchmark.pedantic(flow, rounds=5, iterations=1)

    def test_bench_transfer_full_job_flow(self, benchmark, transfer_vo):
        vo = transfer_vo
        state = {"n": 0}

        def flow():
            sites = vo.client.get_available_resources("sort")
            if not sites:
                return
            site = sites[state["n"] % len(sites)]
            state["n"] += 1
            vo.client.make_reservation(site["host"])
            vo.client.upload_file(site["data_address"], "in.dat", "x" * 1024)
            vo.client.start_job(site["exec_address"], JobSpec("sort", (), 50.0))
            vo.deployment.network.clock.charge(60)
            vo.client.unreserve(site["host"])

        benchmark.pedantic(flow, rounds=5, iterations=1)
