"""Wire messages: an envelope plus its serialized form.

Messages really are serialized before "transmission" and re-parsed on
receipt — the byte counts that drive transport costs are genuine, and
signature verification runs against a re-parsed tree exactly as it would
after crossing a real wire.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soap.envelope import Envelope, parse_envelope
from repro.xmllib import serialize


@dataclass(frozen=True)
class WireMessage:
    """One message in flight."""

    text: str

    @classmethod
    def from_envelope(cls, envelope: Envelope) -> "WireMessage":
        return cls(serialize(envelope.root, xml_declaration=True))

    @property
    def n_bytes(self) -> int:
        return len(self.text.encode("utf-8"))

    @property
    def n_kb(self) -> float:
        return self.n_bytes / 1024.0

    def parse(self) -> Envelope:
        text = self.text
        if text.startswith("<?xml"):
            end = text.find("?>")
            text = text[end + 2 :]
        return parse_envelope(text)
