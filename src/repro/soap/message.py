"""Wire messages: an envelope plus its serialized form.

Messages really are serialized before "transmission" — the byte counts
that drive transport costs are always genuine.  On receipt the tree is
normally re-parsed from those bytes, exactly as it would be after
crossing a real wire; as a wall-clock memoization (DESIGN.md §16), a
message may instead materialize the receiver's tree as a deep copy of
the sender's envelope — but only when the envelope's content key still
matches the one recorded at serialization time, proving the source was
not mutated after send, in which case the copy and the re-parse are
equivalent trees (the round-trip property the c14n fuzz tests pin).
Under :func:`repro.xmllib.memo.caching_disabled` every receipt is a full
re-parse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.soap.envelope import Envelope, parse_envelope
from repro.xmllib import serialize
from repro.xmllib.element import content_key
from repro.xmllib.memo import memo_enabled


@dataclass(frozen=True)
class WireMessage:
    """One message in flight."""

    text: str
    #: The envelope this message was serialized from, plus its content key
    #: at serialization time (wall-clock fast path only; never compared).
    _source: Envelope | None = field(default=None, compare=False, repr=False)
    _source_key: tuple | None = field(default=None, compare=False, repr=False)

    @classmethod
    def from_envelope(cls, envelope: Envelope) -> "WireMessage":
        if memo_enabled():
            # Keying before serializing warms the tree's memos, which is
            # what arms serialize()'s fragment reuse for this envelope.
            key = content_key(envelope.root)
            return cls(serialize(envelope.root, xml_declaration=True), envelope, key)
        return cls(serialize(envelope.root, xml_declaration=True))

    @property
    def n_bytes(self) -> int:
        return len(self.text.encode("utf-8"))

    @property
    def n_kb(self) -> float:
        return self.n_bytes / 1024.0

    def parse(self) -> Envelope:
        source = self._source
        if (
            source is not None
            and memo_enabled()
            and content_key(source.root) == self._source_key
        ):
            return Envelope(source.root.copy())
        text = self.text
        if text.startswith("<?xml"):
            end = text.find("?>")
            text = text[end + 2 :]
        return parse_envelope(text)
