"""SOAP envelope construction, faults, and wire messages."""

from repro.soap.envelope import (
    Envelope,
    SoapFault,
    build_envelope,
    parse_envelope,
)
from repro.soap.message import WireMessage

__all__ = [
    "Envelope",
    "SoapFault",
    "build_envelope",
    "parse_envelope",
    "WireMessage",
]
