"""SOAP envelopes and faults."""

from __future__ import annotations

from dataclasses import dataclass

from repro.xmllib import QName, element, ns, parse_xml, text_of
from repro.xmllib.element import XmlElement

_ENVELOPE = QName(ns.SOAP, "Envelope")
_HEADER = QName(ns.SOAP, "Header")
_BODY = QName(ns.SOAP, "Body")
_FAULT = QName(ns.SOAP, "Fault")


class SoapFault(Exception):
    """A SOAP fault, raised by services and re-raised client-side.

    ``code`` is the fault code local name ("Client"/"Server" or a
    spec-defined code); ``detail`` optionally carries a structured payload
    (WS-BaseFaults uses this).
    """

    def __init__(self, code: str, reason: str, detail: XmlElement | None = None):
        super().__init__(f"{code}: {reason}")
        self.code = code
        self.reason = reason
        self.detail = detail

    def to_body_element(self) -> XmlElement:
        fault = element(
            _FAULT,
            element("faultcode", f"soap:{self.code}"),
            element("faultstring", self.reason),
        )
        if self.detail is not None:
            fault.append(element("detail", self.detail))
        return fault

    @classmethod
    def from_body_element(cls, fault: XmlElement) -> "SoapFault":
        code = text_of(fault.find_local("faultcode"))
        if ":" in code:
            code = code.rsplit(":", 1)[1]
        reason = text_of(fault.find_local("faultstring"))
        detail_wrapper = fault.find_local("detail")
        detail = None
        if detail_wrapper is not None:
            detail = next(detail_wrapper.element_children(), None)
        return cls(code or "Server", reason or "unspecified fault", detail)


@dataclass
class Envelope:
    """A parsed SOAP envelope with convenient header/body access."""

    root: XmlElement

    @property
    def header(self) -> XmlElement:
        node = self.root.find(_HEADER)
        if node is None:
            node = element(_HEADER)
            self.root.children.insert(0, node)
        return node

    @property
    def body(self) -> XmlElement:
        node = self.root.find(_BODY)
        if node is None:
            raise SoapFault("Client", "envelope has no soap:Body")
        return node

    def body_child(self) -> XmlElement:
        """The single payload element inside the Body."""
        child = next(self.body.element_children(), None)
        if child is None:
            raise SoapFault("Client", "empty soap:Body")
        return child

    def header_element(self, tag: str | QName) -> XmlElement | None:
        return self.header.find(tag)

    def is_fault(self) -> bool:
        return self.body.find(_FAULT) is not None

    def fault(self) -> SoapFault:
        fault_el = self.body.find(_FAULT)
        if fault_el is None:
            raise ValueError("envelope is not a fault")
        return SoapFault.from_body_element(fault_el)


def build_envelope(
    headers: list[XmlElement] | None,
    body_children: list[XmlElement] | None,
) -> Envelope:
    root = element(
        _ENVELOPE,
        element(_HEADER, *(headers or [])),
        element(_BODY, *(body_children or [])),
    )
    return Envelope(root)


def build_fault_envelope(headers: list[XmlElement] | None, fault: SoapFault) -> Envelope:
    return build_envelope(headers, [fault.to_body_element()])


def parse_envelope(text: str) -> Envelope:
    root = parse_xml(text)
    if root.tag != _ENVELOPE:
        raise SoapFault("Client", f"not a SOAP envelope: {root.tag.clark()}")
    return Envelope(root)
