"""Command-line figure regeneration: ``python -m repro [figure...]``.

With no arguments, regenerates every figure from the paper's evaluation and
prints it as a table.  Arguments select individual figures:
``fig2 fig3 fig4 fig6 sweep switch reliab xmldb hello``.

``python -m repro experiments`` drives the declarative experiment engine
(see :mod:`repro.experiments.cli`): ``--list``/``--run``/``--resume``
manage the recorded grids, ``--check``/``--smoke``/``--soak`` gate fresh
runs against the committed records, and ``--docs``/``--check-docs``
regenerate EXPERIMENTS.md from them.

``python -m repro conformance`` instead runs the differential dual-stack
conformance sweep (see :mod:`repro.testkit.cli`), ``python -m repro
loadgen`` the open-loop kernel load generator (see
:mod:`repro.bench.loadgen`; ``--smoke`` is the CI determinism gate),
``python -m repro datagrid`` the declared-services replica-staging sweep
(see :mod:`repro.bench.datagrid`), and ``python -m repro msgperf`` the
wall-clock message-path throughput bench (see :mod:`repro.bench.msgperf`;
``--smoke`` and ``--check`` are the CI gates).

``hello`` is the CI bench smoke: one signed round-trip per stack through
the filter pipeline, reported per pipeline stage plus the full span tree.
"""

from __future__ import annotations

import sys

from repro.bench import (
    format_figure_table,
    hello_world_figure,
    measure_giab,
    measure_hello_world,
)
from repro.container import SecurityMode


def _fig2() -> None:
    print(format_figure_table(
        "Figure 2: Hello World, no security", hello_world_figure(SecurityMode.NONE)
    ))


def _fig3() -> None:
    print(format_figure_table(
        "Figure 3: Hello World, HTTPS", hello_world_figure(SecurityMode.HTTPS)
    ))


def _fig4() -> None:
    print(format_figure_table(
        "Figure 4: Hello World, X.509 signing", hello_world_figure(SecurityMode.X509)
    ))


def _fig6() -> None:
    print(format_figure_table(
        "Figure 6: Grid-in-a-Box comparison (X.509)",
        {
            "WS-Transfer / WS-Eventing": measure_giab("transfer"),
            "WSRF.NET": measure_giab("wsrf"),
        },
    ))


def _sweep() -> None:
    table = {}
    for mode in (SecurityMode.NONE, SecurityMode.X509, SecurityMode.HTTPS):
        for colocated in (True, False):
            for stack in ("transfer", "wsrf"):
                placement = "co-located" if colocated else "distributed"
                stack_name = "WSRF.NET" if stack == "wsrf" else "WS-Transfer"
                table[f"{mode.value}/{placement}/{stack_name}"] = measure_hello_world(
                    stack, mode, colocated
                )
    print(format_figure_table("Six-scenario sweep", table))


def _switch() -> None:
    from repro.bench.switching import switching_figure

    print(format_figure_table(
        "Stack switching: native vs bridged", switching_figure()
    ))


def _reliab() -> None:
    from repro.bench.reliability import LOSS_RATES, run_counter_reliability

    table = {}
    for stack, label in (("wsrf", "WSRF.NET"), ("transfer", "WS-Transfer")):
        clean = None
        for rate in LOSS_RATES:
            cell = run_counter_reliability(stack, rate)
            clean = clean if clean is not None else cell.virtual_ms
            table[f"{label} @ {rate:.0%} loss"] = {
                "virtual ms": cell.virtual_ms,
                "overhead x": cell.virtual_ms / clean,
                "delivered": float(cell.notifications_delivered),
                "retransmits": float(
                    cell.notification_retransmissions + cell.request_retransmissions
                ),
                "dup suppressed": float(cell.duplicates_suppressed),
                "dead-lettered": float(cell.dead_letters_total),
            }
    print(format_figure_table(
        "Reliability: counter notifications under loss", table
    ))


def _xmldb() -> None:
    """XML DB scaling smoke: indexed vs scan query cost over 10..5000 docs."""
    from repro.bench import format_figure_table, xmldb_scaling_figure

    print(format_figure_table(
        "XML DB scaling: indexed query vs collection scan", xmldb_scaling_figure()
    ))


def _hello() -> None:
    """Bench smoke: one signed round-trip per stack, per pipeline stage."""
    from repro.bench import (
        TRACE_SERIES,
        format_span_tree,
        stage_breakdown,
        trace_round_trip,
    )

    trees = {label: trace_round_trip(stack) for label, stack in TRACE_SERIES}
    print(format_figure_table(
        "Bench smoke: signed distributed Get per pipeline stage",
        {label: stage_breakdown(ops["Get"]) for label, ops in trees.items()},
    ))
    label = "WSRF.NET"
    print()
    print(f"{label} Get span tree:")
    print(format_span_tree(trees[label]["Get"]))


FIGURES = {
    "fig2": _fig2,
    "fig3": _fig3,
    "fig4": _fig4,
    "fig6": _fig6,
    "sweep": _sweep,
    "switch": _switch,
    "reliab": _reliab,
    "xmldb": _xmldb,
    "hello": _hello,
}


def main(argv: list[str]) -> int:
    if argv and argv[0] == "experiments":
        from repro.experiments.cli import experiments_main

        return experiments_main(argv[1:])
    if argv and argv[0] == "conformance":
        from repro.testkit.cli import conformance_main

        return conformance_main(argv[1:])
    if argv and argv[0] == "loadgen":
        from repro.bench.loadgen import loadgen_main

        return loadgen_main(argv[1:])
    if argv and argv[0] == "datagrid":
        from repro.bench.datagrid import datagrid_main

        return datagrid_main(argv[1:])
    if argv and argv[0] == "msgperf":
        from repro.bench.msgperf import msgperf_main

        return msgperf_main(argv[1:])
    wanted = argv or [name for name in FIGURES if name != "switch"]
    unknown = [name for name in wanted if name not in FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(FIGURES)}", file=sys.stderr)
        return 2
    for index, name in enumerate(wanted):
        if index:
            print()
        FIGURES[name]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
