"""XPath-lite: the query-language subset shared across both stacks.

Supported grammar (a practical subset of XPath 1.0):

* absolute and relative location paths: ``/a/b``, ``a/b``, ``//a``, ``.``,
  ``..``, ``a//b``
* node tests: qualified names (resolved against a caller-supplied prefix
  map), ``*``, ``prefix:*``, ``text()``, ``node()``
* the attribute axis: ``@attr``, ``@*``
* predicates: positions (``[2]``), comparisons (``[price > 3]``,
  ``[@id='x']``), nested relative paths (``[child/grand]``), boolean
  ``and`` / ``or``
* union: ``a | b``
* functions: ``count``, ``contains``, ``starts-with``, ``not``, ``true``,
  ``false``, ``position``, ``last``, ``local-name``, ``name``, ``string``,
  ``number``, ``boolean``, ``concat``, ``string-length``, ``normalize-space``

Results follow XPath 1.0 typing: node-sets (lists of :class:`NodeResult`),
strings, numbers or booleans, with the standard coercions for comparisons.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable

from repro.xmllib.element import XmlElement
from repro.xmllib.qname import QName


class XPathError(ValueError):
    """Raised on syntax errors or unsupported constructs."""


# ---------------------------------------------------------------------------
# Node wrappers.  The engine tracks parentage externally (XmlElement nodes do
# not carry parent pointers) by wrapping every selected node.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodeResult:
    """A node in a node-set: an element, attribute or text node."""

    kind: str  # "element" | "attribute" | "text" | "root"
    node: Any  # XmlElement for elements/root; str value for text
    parent: "NodeResult | None"
    name: QName | None = None  # attribute name when kind == "attribute"

    def string_value(self) -> str:
        if self.kind in ("element", "root"):
            return self.node.text() if isinstance(self.node, XmlElement) else ""
        return str(self.node)


def _root_result(root: XmlElement) -> NodeResult:
    """Wrap ``root`` as the document node containing one element."""
    return NodeResult("root", root, None)


def _children_of(ctx: NodeResult) -> list[NodeResult]:
    if ctx.kind == "root":
        return [NodeResult("element", ctx.node, ctx)]
    if ctx.kind != "element":
        return []
    out: list[NodeResult] = []
    for child in ctx.node.children:
        if isinstance(child, XmlElement):
            out.append(NodeResult("element", child, ctx))
        elif child:
            out.append(NodeResult("text", child, ctx))
    return out


def _document_order_key(result: NodeResult) -> tuple:
    """Sort key placing node-set members in document order.

    Attributes sort just after their owner element and before its children
    (the "a" < "c" tuple trick); positions are found by identity so text
    nodes and repeated tags order correctly.
    """
    key: list[tuple[str, int]] = []
    node = result
    while node.parent is not None:
        parent = node.parent
        if node.kind == "attribute":
            attrs = sorted(parent.node.attributes, key=QName.sort_key)
            key.append(("a", attrs.index(node.name)))
        elif parent.kind == "root":
            key.append(("c", 0))
        else:
            children = parent.node.children
            idx = next(
                (i for i, child in enumerate(children) if child is node.node), 0
            )
            key.append(("c", idx))
        node = parent
    return tuple(reversed(key))


def _descendants_or_self(ctx: NodeResult) -> list[NodeResult]:
    out = [ctx]
    for child in _children_of(ctx):
        if child.kind == "element":
            out.extend(_descendants_or_self(child))
        else:
            out.append(child)
    return out


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<number>\d+(?:\.\d+)?)
      | (?P<literal>'[^']*'|"[^"]*")
      | (?P<dslash>//)
      | (?P<dotdot>\.\.)
      | (?P<op><=|>=|!=|=|<|>|\||/|\[|\]|\(|\)|@|,|\.|\*)
      | (?P<name>[A-Za-z_][\w.\-]*)
      | (?P<colon>:)
    )""",
    re.VERBOSE,
)


def _tokenize(expr: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(expr):
        match = _TOKEN_RE.match(expr, pos)
        if not match or match.end() == pos:
            rest = expr[pos:].lstrip()
            if not rest:
                break
            raise XPathError(f"cannot tokenize XPath at: {rest!r}")
        pos = match.end()
        for kind in ("number", "literal", "dslash", "dotdot", "op", "name", "colon"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Step:
    axis: str  # "child" | "attribute" | "descendant-or-self" | "self" | "parent"
    test: str  # "name" | "wildcard" | "ns-wildcard" | "text" | "node"
    name: tuple[str, str] | None  # (prefix, local) for name/ns-wildcard tests
    predicates: tuple["Expr", ...]


@dataclass(frozen=True)
class PathExpr:
    absolute: bool
    steps: tuple[Step, ...]


@dataclass(frozen=True)
class UnionExpr:
    paths: tuple[PathExpr, ...]


@dataclass(frozen=True)
class BinaryExpr:
    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class FunctionCall:
    name: str
    args: tuple["Expr", ...]


@dataclass(frozen=True)
class LiteralExpr:
    value: str


@dataclass(frozen=True)
class NumberExpr:
    value: float


Expr = "UnionExpr | PathExpr | BinaryExpr | FunctionCall | LiteralExpr | NumberExpr"


# ---------------------------------------------------------------------------
# Planner-facing shapes.  The XML database's query planner (repro.xmldb.index)
# must decide whether an expression is covered by a declared index without
# re-implementing this module's grammar, so the compiled expression exposes
# its structure in normalized form: prefixes resolved to URIs, so two
# expressions written against different prefix maps compare equal exactly
# when they select the same nodes.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StepKey:
    """One location step, normalized for structural comparison."""

    axis: str
    test: str
    uri: str | None
    local: str | None


@dataclass(frozen=True)
class PlanShape:
    """The index-relevant structure of ``path[value_path = 'literal']``.

    ``steps`` is the location path with the final step's predicate stripped;
    ``value_steps`` is the relative path inside that predicate (empty for a
    bare ``.``); ``literal`` is the compared string, or ``None`` when the
    path carries no predicate at all (the shape of an index declaration).
    """

    absolute: bool
    steps: tuple[StepKey, ...]
    value_steps: tuple[StepKey, ...]
    literal: str | None

    @property
    def signature(self) -> tuple:
        """Identity of the document path the shape reads values from."""
        return (self.absolute, self.steps + self.value_steps)


def xpath_literal(value: str) -> str | None:
    """Quote ``value`` as an XPath string literal.

    XPath 1.0 has no escape mechanism, so a value containing both quote
    kinds cannot be written as a literal — callers get ``None`` and must
    fall back to scanning.
    """
    if "'" not in value:
        return f"'{value}'"
    if '"' not in value:
        return f'"{value}"'
    return None


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise XPathError("unexpected end of XPath expression")
        self.pos += 1
        return token

    def accept(self, kind: str, value: str | None = None) -> bool:
        token = self.peek()
        if token and token[0] == kind and (value is None or token[1] == value):
            self.pos += 1
            return True
        return False

    def expect(self, kind: str, value: str | None = None) -> tuple[str, str]:
        token = self.peek()
        if token is None or token[0] != kind or (value is not None and token[1] != value):
            raise XPathError(f"expected {value or kind}, got {token}")
        self.pos += 1
        return token

    # expr := or-expr
    def parse_expr(self):
        return self.parse_or()

    def parse_or(self):
        left = self.parse_and()
        while self._at_keyword("or"):
            self.pos += 1
            left = BinaryExpr("or", left, self.parse_and())
        return left

    def parse_and(self):
        left = self.parse_comparison()
        while self._at_keyword("and"):
            self.pos += 1
            left = BinaryExpr("and", left, self.parse_comparison())
        return left

    def _at_keyword(self, word: str) -> bool:
        token = self.peek()
        return bool(token and token[0] == "name" and token[1] == word)

    def parse_comparison(self):
        left = self.parse_union()
        token = self.peek()
        if token and token[0] == "op" and token[1] in ("=", "!=", "<", ">", "<=", ">="):
            self.pos += 1
            right = self.parse_union()
            return BinaryExpr(token[1], left, right)
        return left

    def parse_union(self):
        first = self.parse_value()
        paths = [first]
        while self.accept("op", "|"):
            paths.append(self.parse_value())
        if len(paths) == 1:
            return first
        for path in paths:
            if not isinstance(path, PathExpr):
                raise XPathError("union '|' requires location paths")
        return UnionExpr(tuple(paths))

    def parse_value(self):
        token = self.peek()
        if token is None:
            raise XPathError("unexpected end of expression")
        kind, value = token
        if kind == "literal":
            self.pos += 1
            return LiteralExpr(value[1:-1])
        if kind == "number":
            self.pos += 1
            return NumberExpr(float(value))
        if kind == "op" and value == "(":
            self.pos += 1
            inner = self.parse_expr()
            self.expect("op", ")")
            return inner
        if kind == "name" and self._is_function_call():
            return self.parse_function()
        return self.parse_path()

    def _is_function_call(self) -> bool:
        # A name followed immediately by "(" that isn't a node-type test
        # handled inside path parsing (text()/node() appear via parse_path).
        token = self.peek()
        after = self.tokens[self.pos + 1] if self.pos + 1 < len(self.tokens) else None
        if token and token[0] == "name" and after == ("op", "("):
            return token[1] not in ("text", "node")
        return False

    def parse_function(self):
        name = self.expect("name")[1]
        self.expect("op", "(")
        args: list[Any] = []
        if not self.accept("op", ")"):
            args.append(self.parse_expr())
            while self.accept("op", ","):
                args.append(self.parse_expr())
            self.expect("op", ")")
        return FunctionCall(name, tuple(args))

    def parse_path(self) -> PathExpr:
        absolute = False
        steps: list[Step] = []
        token = self.peek()
        if token and token[0] == "dslash":
            absolute = True
            self.pos += 1
            steps.append(Step("descendant-or-self", "node", None, ()))
        elif token and token == ("op", "/"):
            absolute = True
            self.pos += 1
        steps.append(self.parse_step())
        while True:
            token = self.peek()
            if token and token[0] == "dslash":
                self.pos += 1
                steps.append(Step("descendant-or-self", "node", None, ()))
                steps.append(self.parse_step())
            elif token == ("op", "/"):
                self.pos += 1
                steps.append(self.parse_step())
            else:
                break
        return PathExpr(absolute, tuple(steps))

    def parse_step(self) -> Step:
        token = self.peek()
        if token is None:
            raise XPathError("expected a step")
        axis = "child"
        if token == ("op", "@"):
            axis = "attribute"
            self.pos += 1
        elif token[0] == "dotdot":
            self.pos += 1
            return Step("parent", "node", None, ())
        elif token == ("op", "."):
            self.pos += 1
            return Step("self", "node", None, ())

        test, name = self.parse_node_test(axis)
        predicates: list[Any] = []
        while self.accept("op", "["):
            predicates.append(self.parse_expr())
            self.expect("op", "]")
        return Step(axis, test, name, tuple(predicates))

    def parse_node_test(self, axis: str) -> tuple[str, tuple[str, str] | None]:
        token = self.peek()
        if token is None:
            raise XPathError("expected a node test")
        if token == ("op", "*"):
            self.pos += 1
            return "wildcard", None
        if token[0] != "name":
            raise XPathError(f"expected a node test, got {token}")
        first = self.next()[1]
        if self.accept("colon"):
            nxt = self.peek()
            if nxt == ("op", "*"):
                self.pos += 1
                return "ns-wildcard", (first, "*")
            local = self.expect("name")[1]
            return "name", (first, local)
        if first in ("text", "node") and self.accept("op", "("):
            self.expect("op", ")")
            if axis == "attribute":
                raise XPathError(f"{first}() not valid on attribute axis")
            return first, None
        return "name", ("", first)


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


def _to_number(value: Any) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            return float("nan")
    if isinstance(value, list):
        return _to_number(_to_string(value))
    return float("nan")


def _to_string(value: Any) -> str:
    if isinstance(value, list):
        return value[0].string_value() if value else ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value != value:
            return "NaN"
        if value == int(value):
            return str(int(value))
        return str(value)
    return str(value)


def _to_bool(value: Any) -> bool:
    if isinstance(value, list):
        return bool(value)
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value != 0 and value == value
    return bool(value)


def _compare(op: str, left: Any, right: Any) -> bool:
    # Node-set comparisons follow XPath's existential semantics.
    if isinstance(left, list) and isinstance(right, list):
        return any(
            _compare(op, a.string_value(), b.string_value()) for a in left for b in right
        )
    if isinstance(left, list):
        return any(_compare(op, a.string_value(), right) for a in left)
    if isinstance(right, list):
        return any(_compare(op, left, b) for b in right)

    if op in ("<", ">", "<=", ">="):
        ln, rn = _to_number(left), _to_number(right)
        if ln != ln or rn != rn:  # NaN
            return False
        return {"<": ln < rn, ">": ln > rn, "<=": ln <= rn, ">=": ln >= rn}[op]

    if isinstance(left, bool) or isinstance(right, bool):
        result = _to_bool(left) == _to_bool(right)
    elif isinstance(left, float) or isinstance(right, float):
        result = _to_number(left) == _to_number(right)
    else:
        result = _to_string(left) == _to_string(right)
    return result if op == "=" else not result


class XPath:
    """A compiled XPath-lite expression.

    ``prefixes`` maps XML prefixes used in the expression to namespace URIs.
    An unprefixed name test matches that local name in *any* namespace — the
    pragmatic choice for SOAP processing, where property documents routinely
    move between namespaces (the paper's QueryResourceProperties usage does
    the same).  Bind the empty prefix explicitly to pin a namespace.
    """

    def __init__(self, expression: str, prefixes: dict[str, str] | None = None) -> None:
        self.expression = expression
        self.prefixes = dict(prefixes or {})
        parser = _Parser(_tokenize(expression))
        self.ast = parser.parse_expr()
        if parser.peek() is not None:
            raise XPathError(f"trailing tokens in XPath: {expression!r}")

    # -- public API --------------------------------------------------------

    @staticmethod
    def _context(root: XmlElement) -> NodeResult:
        # Relative paths start at the root *element*; "/" climbs to the
        # document node above it (lxml's Element.xpath semantics).
        return NodeResult("element", root, _root_result(root))

    def select(self, root: XmlElement) -> list[NodeResult]:
        """Evaluate and return a node-set (raises if result is not one)."""
        result = self._eval(self.ast, self._context(root), 1, 1)
        if not isinstance(result, list):
            raise XPathError(
                f"XPath {self.expression!r} evaluates to {type(result).__name__}, not a node-set"
            )
        return result

    def evaluate(self, root: XmlElement) -> Any:
        """Evaluate to whatever the expression yields (node-set/str/num/bool)."""
        return self._eval(self.ast, self._context(root), 1, 1)

    def matches(self, root: XmlElement) -> bool:
        """Effective boolean value of the result — the filter entry point."""
        return _to_bool(self.evaluate(root))

    def plan_shape(self) -> PlanShape | None:
        """The expression's :class:`PlanShape`, if it has one.

        Only a single location path qualifies, predicate-free except for at
        most one predicate on the *final* step of the form
        ``value_path = 'literal'`` (either operand order) where
        ``value_path`` is ``.``, a relative predicate-free path, or an
        attribute.  Everything richer — unions, functions, booleans,
        positional or non-final predicates, comparisons against numbers or
        node-sets — returns ``None``: the planner must scan.
        """
        path = self.ast
        if not isinstance(path, PathExpr) or not path.steps:
            return None
        if any(step.predicates for step in path.steps[:-1]):
            return None
        try:
            steps = tuple(self._step_key(step) for step in path.steps)
        except XPathError:
            return None  # undeclared prefix: let evaluation raise, not us
        last = path.steps[-1]
        if not last.predicates:
            return PlanShape(path.absolute, steps, (), None)
        if len(last.predicates) != 1:
            return None
        predicate = last.predicates[0]
        if not isinstance(predicate, BinaryExpr) or predicate.op != "=":
            return None
        sides = (predicate.left, predicate.right)
        literal = next((s.value for s in sides if isinstance(s, LiteralExpr)), None)
        value_path = next((s for s in sides if isinstance(s, PathExpr)), None)
        if literal is None or value_path is None or value_path.absolute:
            return None
        if any(step.predicates for step in value_path.steps):
            return None
        try:
            value_steps = tuple(self._step_key(s) for s in value_path.steps)
        except XPathError:
            return None
        # A bare `.` (or a leading `./`) contributes nothing to the path.
        value_steps = tuple(k for k in value_steps if k.axis != "self")
        return PlanShape(path.absolute, steps, value_steps, literal)

    def _step_key(self, step: Step) -> StepKey:
        if step.test in ("name", "ns-wildcard"):
            uri, local = self._resolve(step.name)  # type: ignore[arg-type]
            return StepKey(step.axis, step.test, uri, local)
        return StepKey(step.axis, step.test, None, None)

    # -- internals ----------------------------------------------------------

    def _resolve(self, name: tuple[str, str]) -> tuple[str | None, str]:
        prefix, local = name
        if prefix:
            if prefix not in self.prefixes:
                raise XPathError(f"undeclared XPath prefix: {prefix!r}")
            return self.prefixes[prefix], local
        if "" in self.prefixes:
            return self.prefixes[""], local
        return None, local  # any-namespace match

    def _eval(self, expr: Any, ctx: NodeResult, position: int, size: int) -> Any:
        if isinstance(expr, LiteralExpr):
            return expr.value
        if isinstance(expr, NumberExpr):
            return expr.value
        if isinstance(expr, BinaryExpr):
            if expr.op == "and":
                return _to_bool(self._eval(expr.left, ctx, position, size)) and _to_bool(
                    self._eval(expr.right, ctx, position, size)
                )
            if expr.op == "or":
                return _to_bool(self._eval(expr.left, ctx, position, size)) or _to_bool(
                    self._eval(expr.right, ctx, position, size)
                )
            left = self._eval(expr.left, ctx, position, size)
            right = self._eval(expr.right, ctx, position, size)
            return _compare(expr.op, left, right)
        if isinstance(expr, FunctionCall):
            return self._eval_function(expr, ctx, position, size)
        if isinstance(expr, UnionExpr):
            seen: list[NodeResult] = []
            for path in expr.paths:
                for node in self._eval_path(path, ctx):
                    if node not in seen:
                        seen.append(node)
            return seen
        if isinstance(expr, PathExpr):
            return self._eval_path(expr, ctx)
        raise XPathError(f"unsupported expression node: {expr!r}")

    def _eval_function(self, call: FunctionCall, ctx: NodeResult, position: int, size: int) -> Any:
        args = [self._eval(a, ctx, position, size) for a in call.args]
        name = call.name
        if name == "count":
            if len(args) != 1 or not isinstance(args[0], list):
                raise XPathError("count() takes one node-set argument")
            return float(len(args[0]))
        if name == "contains":
            return _to_string(args[0]).find(_to_string(args[1])) >= 0
        if name == "starts-with":
            return _to_string(args[0]).startswith(_to_string(args[1]))
        if name == "not":
            return not _to_bool(args[0])
        if name == "true":
            return True
        if name == "false":
            return False
        if name == "position":
            return float(position)
        if name == "last":
            return float(size)
        if name in ("local-name", "name"):
            target = args[0] if args else [ctx]
            if not isinstance(target, list) or not target:
                return ""
            node = target[0]
            qn: QName | None
            if node.kind == "attribute":
                qn = node.name
            elif node.kind == "element":
                qn = node.node.tag
            else:
                qn = None
            if qn is None:
                return ""
            return qn.local  # prefixes are serialization artifacts here
        if name == "string":
            return _to_string(args[0] if args else [ctx])
        if name == "number":
            return _to_number(args[0] if args else _to_string([ctx]))
        if name == "boolean":
            return _to_bool(args[0])
        if name == "concat":
            return "".join(_to_string(a) for a in args)
        if name == "string-length":
            return float(len(_to_string(args[0] if args else [ctx])))
        if name == "normalize-space":
            return " ".join(_to_string(args[0] if args else [ctx]).split())
        raise XPathError(f"unsupported XPath function: {name}()")

    def _eval_path(self, path: PathExpr, ctx: NodeResult) -> list[NodeResult]:
        if path.absolute:
            node = ctx
            while node.parent is not None:
                node = node.parent
            current = [node]
        else:
            current = [ctx]
        for step in path.steps:
            current = self._eval_step(step, current)
        return current

    def _eval_step(self, step: Step, nodes: list[NodeResult]) -> list[NodeResult]:
        gathered: list[NodeResult] = []
        for node in nodes:
            candidates = self._axis_nodes(step, node)
            candidates = [c for c in candidates if self._node_test(step, c)]
            for predicate in step.predicates:
                kept = []
                size = len(candidates)
                for idx, candidate in enumerate(candidates, start=1):
                    value = self._eval(predicate, candidate, idx, size)
                    if isinstance(value, float):
                        if value == idx:
                            kept.append(candidate)
                    elif _to_bool(value):
                        kept.append(candidate)
                candidates = kept
            for candidate in candidates:
                if candidate not in gathered:
                    gathered.append(candidate)
        # XPath 1.0 node-sets are document-ordered — observable through
        # positional predicates and query results, so sort, don't assume.
        gathered.sort(key=_document_order_key)
        return gathered

    def _axis_nodes(self, step: Step, ctx: NodeResult) -> list[NodeResult]:
        if step.axis == "child":
            return _children_of(ctx)
        if step.axis == "self":
            return [ctx]
        if step.axis == "parent":
            return [ctx.parent] if ctx.parent is not None else []
        if step.axis == "descendant-or-self":
            return _descendants_or_self(ctx)
        if step.axis == "attribute":
            if ctx.kind != "element":
                return []
            return [
                NodeResult("attribute", value, ctx, name=key)
                for key, value in sorted(ctx.node.attributes.items(), key=lambda kv: kv[0].sort_key())
            ]
        raise XPathError(f"unsupported axis: {step.axis}")

    def _node_test(self, step: Step, node: NodeResult) -> bool:
        if step.test == "node":
            return True
        if step.test == "text":
            return node.kind == "text"
        if step.axis == "attribute":
            if node.kind != "attribute":
                return False
            qn = node.name
        else:
            if node.kind != "element":
                return False
            qn = node.node.tag
        assert qn is not None
        if step.test == "wildcard":
            return True
        if step.test == "ns-wildcard":
            uri, _ = self._resolve(step.name)  # type: ignore[arg-type]
            return uri is None or qn.namespace == uri
        uri, local = self._resolve(step.name)  # type: ignore[arg-type]
        if qn.local != local:
            return False
        return uri is None or qn.namespace == uri


# Simple compiled-expression cache: filter expressions are evaluated per
# notification, so recompiling each time would dominate profile output.
_CACHE: dict[tuple[str, tuple[tuple[str, str], ...]], XPath] = {}
_CACHE_LIMIT = 512


def compile_xpath(expression: str, prefixes: dict[str, str] | None = None) -> XPath:
    key = (expression, tuple(sorted((prefixes or {}).items())))
    hit = _CACHE.get(key)
    if hit is None:
        hit = XPath(expression, prefixes)
        if len(_CACHE) >= _CACHE_LIMIT:
            _CACHE.clear()
        _CACHE[key] = hit
    return hit


def xpath_select(root: XmlElement, expression: str, prefixes: dict[str, str] | None = None) -> list[NodeResult]:
    """One-shot select helper (uses the compiled-expression cache)."""
    return compile_xpath(expression, prefixes).select(root)


def xpath_matches(root: XmlElement, expression: str, prefixes: dict[str, str] | None = None) -> bool:
    """One-shot boolean filter helper (uses the compiled-expression cache)."""
    return compile_xpath(expression, prefixes).matches(root)
