"""Namespace URIs for every specification in the two stacks.

The URIs are the historical 2004/2005-era ones that the paper's
implementations used, so serialized messages read like period traffic.
"""

# Core Web services plumbing
SOAP = "http://schemas.xmlsoap.org/soap/envelope/"
WSA = "http://schemas.xmlsoap.org/ws/2004/08/addressing"
XSD = "http://www.w3.org/2001/XMLSchema"
XSI = "http://www.w3.org/2001/XMLSchema-instance"
DS = "http://www.w3.org/2000/09/xmldsig#"
WSSE = "http://docs.oasis-open.org/wss/2004/01/oasis-200401-wss-wssecurity-secext-1.0.xsd"
WSU = "http://docs.oasis-open.org/wss/2004/01/oasis-200401-wss-wssecurity-utility-1.0.xsd"

# Stack A: WSRF + WS-Notification (OASIS drafts contemporaneous with the paper)
WSRF_RP = "http://docs.oasis-open.org/wsrf/2004/06/wsrf-WS-ResourceProperties-1.2-draft-01.xsd"
WSRF_RL = "http://docs.oasis-open.org/wsrf/2004/06/wsrf-WS-ResourceLifetime-1.2-draft-01.xsd"
WSRF_SG = "http://docs.oasis-open.org/wsrf/2004/06/wsrf-WS-ServiceGroup-1.2-draft-01.xsd"
WSRF_BF = "http://docs.oasis-open.org/wsrf/2004/06/wsrf-WS-BaseFaults-1.2-draft-01.xsd"
WSNT = "http://docs.oasis-open.org/wsn/2004/06/wsn-WS-BaseNotification-1.2-draft-01.xsd"
WSTOP = "http://docs.oasis-open.org/wsn/2004/06/wsn-WS-Topics-1.2-draft-01.xsd"
WSBR = "http://docs.oasis-open.org/wsn/2004/06/wsn-WS-BrokeredNotification-1.2-draft-01.xsd"

# Stack B: WS-Transfer + WS-Eventing (Microsoft/BEA member submissions)
WXF = "http://schemas.xmlsoap.org/ws/2004/09/transfer"
WSE = "http://schemas.xmlsoap.org/ws/2004/08/eventing"
MEX = "http://schemas.xmlsoap.org/ws/2004/09/mex"

# Reliability (WS-ReliableMessaging, 2005-02 member submission) — used by
# repro.reliable's sequence/ack headers on both stacks
WSRM = "http://schemas.xmlsoap.org/ws/2005/02/rm"

# Algorithm identifiers and query/topic dialect URIs
DSIG_RSA_SHA1 = DS + "rsa-sha1"
DSIG_SHA1 = DS + "sha1"
XPATH_DIALECT = "http://www.w3.org/TR/1999/REC-xpath-19991116"
WSDL = "http://schemas.xmlsoap.org/wsdl/"
TOPIC_SIMPLE = "http://docs.oasis-open.org/wsn/2004/06/TopicExpression/Simple"
TOPIC_CONCRETE = "http://docs.oasis-open.org/wsn/2004/06/TopicExpression/Concrete"
TOPIC_FULL = "http://docs.oasis-open.org/wsn/2004/06/TopicExpression/Full"
WSE_DELIVERY_PUSH = WSE + "/DeliveryModes/Push"

# This reproduction's application namespaces
COUNTER = "http://repro.example.org/counter"
GIAB = "http://repro.example.org/grid-in-a-box"
DATAGRID = "http://repro.example.org/datagrid"
REPRO_WSRF = "http://repro.example.org/wsrf"
WSRF_FIELDS = "http://repro.example.org/wsrf/fields"
WSRF_APP = "http://repro.example.org/wsrf/app"
WSRFNET = "http://repro.example.org/wsrf.net"
REPRO_TRANSFER = "http://repro.example.org/transfer"
ALT_TRANSFER = "http://alt.example.org/transfer"
EVENTING_STORE = "http://repro.example.org/eventing/store"
WSE_DELIVERY_WRAP = "http://repro.example.org/eventing/DeliveryModes/Wrap"
MEX_DIALECT_OPERATIONS = "http://repro.example.org/mex/dialect/operations"
MEX_DIALECT_SCHEMA = "http://repro.example.org/mex/dialect/representation-schema"
MEX_DIALECT_RP = "http://repro.example.org/mex/dialect/resource-properties"

#: Preferred prefixes used by the serializers (purely cosmetic).
PREFERRED_PREFIXES = {
    SOAP: "soap",
    WSA: "wsa",
    XSD: "xsd",
    XSI: "xsi",
    DS: "ds",
    WSSE: "wsse",
    WSU: "wsu",
    WSRF_RP: "wsrp",
    WSRF_RL: "wsrl",
    WSRF_SG: "wssg",
    WSRF_BF: "wsbf",
    WSNT: "wsnt",
    WSTOP: "wstop",
    WSBR: "wsbr",
    WXF: "wxf",
    WSE: "wse",
    MEX: "mex",
    WSRM: "wsrm",
    COUNTER: "cnt",
    GIAB: "giab",
    DATAGRID: "dg",
}
