"""Qualified names (namespace URI + local part)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class QName:
    """An XML qualified name.

    ``namespace`` is the full namespace URI ("" for no namespace) and
    ``local`` the local part.  The Clark notation ``{uri}local`` is accepted
    by :meth:`parse` and produced by :meth:`clark`.

    Instances are immutable, so :meth:`parse` interns them: parsing the
    same Clark string twice returns the same object, which makes the
    per-message tag churn on the SOAP path allocation-free.
    """

    namespace: str
    local: str
    _key: tuple[str, str] = field(init=False, repr=False, compare=False, default=("", ""))

    def __post_init__(self) -> None:
        if not self.local:
            raise ValueError("QName local part must be non-empty")
        if "{" in self.local or "}" in self.local:
            raise ValueError(f"invalid local part: {self.local!r}")
        object.__setattr__(self, "_key", (self.namespace, self.local))

    @classmethod
    def parse(cls, name: "str | QName") -> "QName":
        """Accept a QName, a Clark-notation string, or a bare local name."""
        if isinstance(name, QName):
            return name
        cached = _PARSE_CACHE.get(name)
        if cached is not None:
            return cached
        if name.startswith("{"):
            end = name.find("}")
            if end < 0:
                raise ValueError(f"malformed Clark name: {name!r}")
            parsed = cls(name[1:end], name[end + 1 :])
        else:
            parsed = cls("", name)
        if len(_PARSE_CACHE) >= _PARSE_CACHE_LIMIT:
            _PARSE_CACHE.clear()
        _PARSE_CACHE[name] = parsed
        return parsed

    def clark(self) -> str:
        """Render in Clark notation (``{uri}local``; bare local if no ns)."""
        if self.namespace:
            return "{%s}%s" % (self.namespace, self.local)
        return self.local

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.clark()

    def sort_key(self) -> tuple[str, str]:
        """Canonical ordering key: namespace URI first, then local part."""
        return self._key


# QName is frozen, so interning parsed names is safe; the cache is reset
# wholesale if a pathological workload ever produces unbounded distinct
# names.  Worst case on a collision or reset is a re-parse, never a
# different QName.
_PARSE_CACHE: dict[str, QName] = {}
_PARSE_CACHE_LIMIT = 8192
