"""Qualified names (namespace URI + local part)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class QName:
    """An XML qualified name.

    ``namespace`` is the full namespace URI ("" for no namespace) and
    ``local`` the local part.  The Clark notation ``{uri}local`` is accepted
    by :meth:`parse` and produced by :meth:`clark`.
    """

    namespace: str
    local: str

    def __post_init__(self) -> None:
        if not self.local:
            raise ValueError("QName local part must be non-empty")
        if "{" in self.local or "}" in self.local:
            raise ValueError(f"invalid local part: {self.local!r}")

    @classmethod
    def parse(cls, name: "str | QName") -> "QName":
        """Accept a QName, a Clark-notation string, or a bare local name."""
        if isinstance(name, QName):
            return name
        if name.startswith("{"):
            end = name.find("}")
            if end < 0:
                raise ValueError(f"malformed Clark name: {name!r}")
            return cls(name[1:end], name[end + 1 :])
        return cls("", name)

    def clark(self) -> str:
        """Render in Clark notation (``{uri}local``; bare local if no ns)."""
        if self.namespace:
            return "{%s}%s" % (self.namespace, self.local)
        return self.local

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.clark()

    def sort_key(self) -> tuple[str, str]:
        """Canonical ordering key: namespace URI first, then local part."""
        return (self.namespace, self.local)
