"""Namespace-aware XML infoset used by every layer of the stacks.

This package is a from-scratch substrate (see DESIGN.md §3): a qualified-name
model, an element tree with mixed content, a parser, serializers (compact and
canonical/exclusive-c14n), an XPath-lite query engine and a light structural
schema checker.

The canonicalizer is what XML-DSig signs over; the XPath engine is shared by
WSRF ``QueryResourceProperties``, WS-Notification/WS-Eventing filters and the
Xindice-like XML database.
"""

from repro.xmllib.qname import QName
from repro.xmllib import ns
from repro.xmllib.element import XmlElement, element, text_of
from repro.xmllib.parse import parse_xml, XmlParseError
from repro.xmllib.serialize import serialize
from repro.xmllib.c14n import canonicalize
from repro.xmllib.xpath import XPath, XPathError, xpath_select, xpath_matches
from repro.xmllib.schema import Schema, ElementSpec, SchemaError

__all__ = [
    "QName",
    "ns",
    "XmlElement",
    "element",
    "text_of",
    "parse_xml",
    "XmlParseError",
    "serialize",
    "canonicalize",
    "XPath",
    "XPathError",
    "xpath_select",
    "xpath_matches",
    "Schema",
    "ElementSpec",
    "SchemaError",
]
