"""Exclusive-style XML canonicalization.

XML-DSig signs a byte stream, so both signer and verifier must serialize a
tree to *exactly* the same bytes even after the tree has been re-parsed
(which loses original prefixes and attribute order).  The canonical form
implemented here follows the spirit of Exclusive XML Canonicalization:

* prefixes are derived solely from the set of namespace URIs in the subtree,
  assigned in first-use document order (so they survive a parse round-trip);
* a namespace is declared on the outermost element where it becomes visibly
  used, never redeclared below;
* namespace declarations come first (sorted by prefix), then attributes
  sorted by (namespace URI, local name);
* text is escaped with the canonical replacements and carriage returns are
  normalized;
* empty elements use an explicit start/end tag pair (never ``<a/>``).

Two structurally-equal trees therefore canonicalize to identical bytes —
which also makes the canonical text a pure function of the tree's *content*,
so whole-tree results are memoized in a content-keyed cache: the second
message of a soak canonicalizes its (unchanged) body in one dict lookup.
Mutating any node bumps version counters up the tree (see
:mod:`repro.xmllib.element`), changing the content key, so a stale entry can
never be replayed.  The writer itself is iterative and survives ~1000-deep
documents.
"""

from __future__ import annotations

from operator import attrgetter

from repro.xmllib.element import XmlElement, content_key
from repro.xmllib.memo import ContentCache, memo_enabled
from repro.xmllib.qname import QName
from repro.xmllib.serialize import collect_namespaces

_sort_key = attrgetter("_key")

_C14N = ContentCache("c14n.text", capacity=8192)


def canonicalize(root: XmlElement) -> str:
    """Render ``root`` in the canonical form described above."""
    enabled = memo_enabled()
    if enabled:
        key = content_key(root)
        cached = _C14N.get(key)
        if cached is not None:
            return cached
    uris = collect_namespaces(root)
    prefixes = _canonical_prefixes(uris)
    parts: list[str] = []
    _write(root, prefixes, parts)
    text = "".join(parts)
    if enabled:
        _C14N.put(key, text)
    return text


def _canonical_prefixes(uris: list[str]) -> dict[str, str]:
    # Prefixes are a pure function of the *sorted* URI set: independent of the
    # cosmetic PREFERRED_PREFIXES table, of attribute insertion order, and of
    # whatever prefixes a parsed document happened to use — otherwise a
    # re-parsed tree could canonicalize to different bytes and break
    # signature verification.
    return {uri: f"c{i}" for i, uri in enumerate(sorted(uris))}


def _canon_text(value: str) -> str:
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace("\r", "&#xD;")
    )


def _canon_attr(value: str) -> str:
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\t", "&#x9;")
        .replace("\n", "&#xA;")
        .replace("\r", "&#xD;")
    )


def _visibly_used(node: XmlElement) -> set[str]:
    used = set()
    if node.tag.namespace:
        used.add(node.tag.namespace)
    for attr in node.attributes:
        if attr.namespace:
            used.add(attr.namespace)
    return used


def _qname_str(name: QName, prefixes: dict[str, str]) -> str:
    if not name.namespace:
        return name.local
    return f"{prefixes[name.namespace]}:{name.local}"


# Op codes for the iterative writer's explicit stack.
_OPEN, _TEXT, _END = 0, 1, 2


def _write(
    root: XmlElement,
    prefixes: dict[str, str],
    parts: list[str],
) -> None:
    append = parts.append
    # Each _OPEN entry carries the set of URIs declared by its ancestors;
    # the common case adds nothing and reuses the parent's frozenset.
    stack: list[tuple] = [(_OPEN, root, frozenset())]
    while stack:
        op, payload, declared = stack.pop()
        if op == _TEXT:
            append(_canon_text(payload))
            continue
        if op == _END:
            append(payload)
            continue
        node = payload
        tag = _qname_str(node.tag, prefixes)
        append(f"<{tag}")

        newly = sorted(
            (prefixes[uri], uri) for uri in _visibly_used(node) if uri not in declared
        )
        if newly:
            child_declared = declared | {uri for _, uri in newly}
            for prefix, uri in newly:
                append(f' xmlns:{prefix}="{_canon_attr(uri)}"')
        else:
            child_declared = declared

        attrs = node.attributes
        if attrs:
            for attr in sorted(attrs, key=_sort_key):
                append(f' {_qname_str(attr, prefixes)}="{_canon_attr(attrs[attr])}"')
        append(">")

        stack.append((_END, f"</{tag}>", None))
        for child in reversed(node.children):
            if isinstance(child, str):
                stack.append((_TEXT, child, None))
            else:
                stack.append((_OPEN, child, child_declared))
