"""Exclusive-style XML canonicalization.

XML-DSig signs a byte stream, so both signer and verifier must serialize a
tree to *exactly* the same bytes even after the tree has been re-parsed
(which loses original prefixes and attribute order).  The canonical form
implemented here follows the spirit of Exclusive XML Canonicalization:

* prefixes are derived solely from the set of namespace URIs in the subtree,
  assigned in first-use document order (so they survive a parse round-trip);
* a namespace is declared on the outermost element where it becomes visibly
  used, never redeclared below;
* namespace declarations come first (sorted by prefix), then attributes
  sorted by (namespace URI, local name);
* text is escaped with the canonical replacements and carriage returns are
  normalized;
* empty elements use an explicit start/end tag pair (never ``<a/>``).

Two structurally-equal trees therefore canonicalize to identical bytes.
"""

from __future__ import annotations

from repro.xmllib.element import XmlElement
from repro.xmllib.qname import QName
from repro.xmllib.serialize import collect_namespaces


def canonicalize(root: XmlElement) -> str:
    """Render ``root`` in the canonical form described above."""
    uris = collect_namespaces(root)
    prefixes = _canonical_prefixes(uris)
    parts: list[str] = []
    _write(root, prefixes, set(), parts)
    return "".join(parts)


def _canonical_prefixes(uris: list[str]) -> dict[str, str]:
    # Prefixes are a pure function of the *sorted* URI set: independent of the
    # cosmetic PREFERRED_PREFIXES table, of attribute insertion order, and of
    # whatever prefixes a parsed document happened to use — otherwise a
    # re-parsed tree could canonicalize to different bytes and break
    # signature verification.
    return {uri: f"c{i}" for i, uri in enumerate(sorted(uris))}


def _canon_text(value: str) -> str:
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace("\r", "&#xD;")
    )


def _canon_attr(value: str) -> str:
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\t", "&#x9;")
        .replace("\n", "&#xA;")
        .replace("\r", "&#xD;")
    )


def _visibly_used(node: XmlElement) -> set[str]:
    used = set()
    if node.tag.namespace:
        used.add(node.tag.namespace)
    for attr in node.attributes:
        if attr.namespace:
            used.add(attr.namespace)
    return used


def _qname_str(name: QName, prefixes: dict[str, str]) -> str:
    if not name.namespace:
        return name.local
    return f"{prefixes[name.namespace]}:{name.local}"


def _write(
    node: XmlElement,
    prefixes: dict[str, str],
    declared: set[str],
    parts: list[str],
) -> None:
    tag = _qname_str(node.tag, prefixes)
    parts.append(f"<{tag}")

    newly = sorted(
        (prefixes[uri], uri) for uri in _visibly_used(node) if uri not in declared
    )
    child_declared = declared | {uri for _, uri in newly}
    for prefix, uri in newly:
        parts.append(f' xmlns:{prefix}="{_canon_attr(uri)}"')

    for attr in sorted(node.attributes, key=QName.sort_key):
        parts.append(f' {_qname_str(attr, prefixes)}="{_canon_attr(node.attributes[attr])}"')
    parts.append(">")

    for child in node.children:
        if isinstance(child, str):
            parts.append(_canon_text(child))
        else:
            _write(child, prefixes, child_declared, parts)

    parts.append(f"</{tag}>")
