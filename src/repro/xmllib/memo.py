"""Cache infrastructure for the message-path memoization layer.

The wall-clock cost of a soak is dominated by re-canonicalizing,
re-digesting and re-signing near-identical XML (DESIGN.md §16).  This
module owns the machinery every cache in ``repro.xmllib`` and
``repro.crypto`` shares:

* :class:`CacheStats` — observable hit/miss counters, one per cache,
  reachable through :func:`cache_stats` so benchmarks and tier-1 tests
  can assert cache behavior instead of guessing at it;
* :class:`ContentCache` — a bounded insertion-ordered dict keyed by
  *content* (structural keys from
  :func:`repro.xmllib.element.content_key`), so a freshly re-parsed tree
  that is byte-identical to one seen before still hits;
* :func:`caching_disabled` — the uncached-baseline switch the
  ``msgperf`` benchmark uses to measure honest speedups.

Every cached value is a pure function of its key, and keys incorporate
either content hashes or the mutation version counters maintained by
:class:`~repro.xmllib.element.XmlElement` — mutating a tree can never
yield a stale cached answer, only a miss (the property tests in
``tests/xmllib/test_memo_coherence.py`` pin this down).  The caches are
process-wide and shared across simulated hosts; that is sound for the
same reason ``rsa._KEY_CACHE`` is: the worst outcome of sharing is a
duplicated computation, never divergent state, and no virtual-clock cost
depends on whether a computation was cached.
"""

from __future__ import annotations

from contextlib import contextmanager

_ENABLED = True


def memo_enabled() -> bool:
    """True unless running inside :func:`caching_disabled`."""
    return _ENABLED


@contextmanager
def caching_disabled():
    """Run with every content cache bypassed (the uncached baseline).

    Global caches are cleared on entry so a following cached measurement
    starts cold and earns its hits; element-level memos are version-keyed
    and need no clearing to stay correct.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    clear_caches()
    try:
        yield
    finally:
        _ENABLED = previous


class CacheStats:
    """Hit/miss counters for one named cache."""

    __slots__ = ("name", "hits", "misses")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CacheStats {self.name} hits={self.hits} misses={self.misses}>"


class ContentCache:
    """A bounded content-keyed cache with observable statistics.

    Keys must be hashable and fully determine the value.  When the cache
    fills, the oldest half of the entries is dropped (dict insertion
    order) — cheap, and a soak's working set is re-established within a
    handful of messages.
    """

    __slots__ = ("_data", "capacity", "stats")

    def __init__(self, name: str, capacity: int = 4096) -> None:
        if capacity < 2:
            raise ValueError(f"cache capacity must be >= 2: {capacity}")
        self._data: dict = {}
        self.capacity = capacity
        self.stats = CacheStats(name)
        _CACHES[name] = self

    def get(self, key):
        """The cached value, counting a hit or a miss."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def put(self, key, value) -> None:
        data = self._data
        if len(data) >= self.capacity:
            for old in list(data)[: self.capacity // 2]:
                del data[old]
        data[key] = value

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


_MISSING = object()

#: Registry of every named cache, populated as cache owners import.
_CACHES: dict[str, ContentCache] = {}


def cache_stats() -> dict[str, dict]:
    """Snapshot of every cache's counters, keyed by cache name."""
    return {name: cache.stats.as_dict() for name, cache in sorted(_CACHES.items())}


def reset_cache_stats() -> None:
    for cache in _CACHES.values():
        cache.stats.reset()


def clear_caches() -> None:
    """Drop every cached value (test isolation / baseline runs)."""
    for cache in _CACHES.values():
        cache.clear()


def get_cache(name: str) -> ContentCache:
    """Look up a registered cache by name (tests, benchmarks)."""
    return _CACHES[name]
