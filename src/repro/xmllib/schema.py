"""Lightweight structural schema checking.

WSRF carries schemas in WSDL; WS-Transfer famously does not (the paper calls
the resulting hard-coded client/service schema coupling a real problem).  We
model the WSRF side with a small structural validator: an
:class:`ElementSpec` names the expected root, its typed text content and its
child occurrence constraints.  The WS-Transfer services deliberately skip
validation, mirroring the ``<xsd:any>`` behaviour the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.xmllib.element import XmlElement
from repro.xmllib.qname import QName


class SchemaError(ValueError):
    """Raised when a document violates its declared schema."""


def _check_int(text: str) -> bool:
    try:
        int(text.strip())
        return True
    except ValueError:
        return False


def _check_float(text: str) -> bool:
    try:
        float(text.strip())
        return True
    except ValueError:
        return False


_TYPE_CHECKS: dict[str, Callable[[str], bool]] = {
    "string": lambda _text: True,
    "int": _check_int,
    "float": _check_float,
    "boolean": lambda text: text.strip() in ("true", "false", "0", "1"),
    "anyURI": lambda text: bool(text.strip()),
}


@dataclass
class ElementSpec:
    """Schema for one element.

    ``children`` maps child tags to ``(spec, min_occurs, max_occurs)``;
    ``max_occurs`` of ``None`` means unbounded.  ``text_type`` of ``None``
    means no constraint on character content; ``"empty"`` forbids non-space
    text.  ``open_content`` allows children not named in ``children``
    (xsd:any-style), which WS-Transfer resources rely on.
    """

    tag: QName
    text_type: str | None = None
    required_attributes: tuple[QName, ...] = ()
    children: dict[QName, tuple["ElementSpec | None", int, int | None]] = field(default_factory=dict)
    open_content: bool = False

    def validate(self, node: XmlElement, path: str = "") -> None:
        here = f"{path}/{self.tag.local}"
        if node.tag != self.tag:
            raise SchemaError(f"{here}: expected element {self.tag.clark()}, got {node.tag.clark()}")
        for attr in self.required_attributes:
            if attr not in node.attributes:
                raise SchemaError(f"{here}: missing required attribute {attr.clark()}")
        if self.text_type == "empty":
            own_text = "".join(c for c in node.children if isinstance(c, str))
            if own_text.strip():
                raise SchemaError(f"{here}: element must not carry text content")
        elif self.text_type is not None:
            check = _TYPE_CHECKS.get(self.text_type)
            if check is None:
                raise SchemaError(f"{here}: unknown text type {self.text_type!r}")
            if not check(node.text()):
                raise SchemaError(
                    f"{here}: text {node.text()!r} is not a valid {self.text_type}"
                )
        counts: dict[QName, int] = {}
        for child in node.element_children():
            counts[child.tag] = counts.get(child.tag, 0) + 1
            entry = self.children.get(child.tag)
            if entry is None:
                if not self.open_content:
                    raise SchemaError(f"{here}: unexpected child {child.tag.clark()}")
                continue
            spec = entry[0]
            if spec is not None:
                spec.validate(child, here)
        for tag, (_, min_occurs, max_occurs) in self.children.items():
            seen = counts.get(tag, 0)
            if seen < min_occurs:
                raise SchemaError(
                    f"{here}: child {tag.clark()} occurs {seen} times, minimum {min_occurs}"
                )
            if max_occurs is not None and seen > max_occurs:
                raise SchemaError(
                    f"{here}: child {tag.clark()} occurs {seen} times, maximum {max_occurs}"
                )


class Schema:
    """A set of element specs keyed by root tag."""

    def __init__(self, specs: list[ElementSpec] | None = None) -> None:
        self._specs: dict[QName, ElementSpec] = {}
        for spec in specs or []:
            self.add(spec)

    def add(self, spec: ElementSpec) -> "Schema":
        self._specs[spec.tag] = spec
        return self

    def validate(self, node: XmlElement) -> None:
        spec = self._specs.get(node.tag)
        if spec is None:
            raise SchemaError(f"no schema registered for element {node.tag.clark()}")
        spec.validate(node)

    def knows(self, tag: QName | str) -> bool:
        return QName.parse(tag) in self._specs
