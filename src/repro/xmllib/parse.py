"""Parsing XML text into :class:`~repro.xmllib.element.XmlElement` trees.

We lean on the standard library's expat-backed ``xml.etree.ElementTree`` for
tokenization and namespace resolution (it emits Clark-notation tags), then
rebuild the tree in our own mixed-content representation.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.xmllib.element import XmlElement
from repro.xmllib.qname import QName


class XmlParseError(ValueError):
    """Raised when input text is not well-formed XML."""


def parse_xml(text: str | bytes) -> XmlElement:
    """Parse an XML document and return its root element.

    Raises :class:`XmlParseError` on malformed input.
    """
    if isinstance(text, bytes):
        text = text.decode("utf-8")
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmlParseError(f"malformed XML: {exc}") from exc
    return _convert(root)


def _convert(node: ET.Element) -> XmlElement:
    tag = QName.parse(node.tag)
    attributes: dict[QName, str] = {}
    for key, value in node.attrib.items():
        attributes[QName.parse(key)] = value
    out = XmlElement(tag, attributes)
    if node.text:
        out.append(node.text)
    for child in node:
        out.append(_convert(child))
        if child.tail:
            out.append(child.tail)
    return out
