"""Parsing XML text into :class:`~repro.xmllib.element.XmlElement` trees.

We lean on the standard library's expat-backed ``xml.etree.ElementTree`` for
tokenization and namespace resolution (it emits Clark-notation tags), then
rebuild the tree in our own mixed-content representation.  The rebuild is
iterative (an explicit work stack) and links freshly built nodes directly,
so deep documents neither exhaust the recursion limit nor pay any
version-bump propagation during construction.
"""

from __future__ import annotations

import weakref
import xml.etree.ElementTree as ET

from repro.xmllib.element import XmlElement, _blank
from repro.xmllib.qname import QName


class XmlParseError(ValueError):
    """Raised when input text is not well-formed XML."""


def parse_xml(text: str | bytes) -> XmlElement:
    """Parse an XML document and return its root element.

    Raises :class:`XmlParseError` on malformed input.
    """
    if isinstance(text, bytes):
        text = text.decode("utf-8")
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmlParseError(f"malformed XML: {exc}") from exc
    return _convert(root)


def _convert(root: ET.Element) -> XmlElement:
    parse = QName.parse
    ref = weakref.ref

    def make(node: ET.Element) -> XmlElement:
        attributes: dict[QName, str] = {}
        for key, value in node.attrib.items():
            attributes[parse(key)] = value
        return _blank(parse(node.tag), attributes)

    out_root = make(root)
    stack: list[tuple[ET.Element, XmlElement]] = [(root, out_root)]
    # Fresh nodes carry no memos, so children are attached with raw list
    # appends and explicit parent links — no version bumps to propagate.
    while stack:
        src, dst = stack.pop()
        children = dst._children
        if src.text:
            list.append(children, src.text)
        for child in src:
            converted = make(child)
            converted._parents.append(ref(dst))
            list.append(children, converted)
            stack.append((child, converted))
            if child.tail:
                list.append(children, child.tail)
    return out_root
