"""Serialization of element trees back to XML text.

Prefixes are allocated deterministically (preferred prefixes from
:mod:`repro.xmllib.ns`, then ``n0``, ``n1``, ... in first-use document
order) and every namespace is declared on the root, which keeps output
stable and easy to read in logs.  The canonical form used for signing
lives in :mod:`repro.xmllib.c14n`.

The writer is iterative (an explicit op stack), so ~1000-deep documents
serialize without hitting the interpreter recursion limit, and it reuses
serialized fragments for repeated envelope skeletons: subtrees at depth
1-2 under the serialized root (SOAP headers, the Body payload) are cached
by ``(content_key, namespace-allocation token)``.  The token is the
whole-document first-use URI tuple, which fully determines the prefix
map, so a cached fragment is only ever replayed under the identical
prefix allocation; fragments below the root never contain ``xmlns``
declarations.  Output is byte-identical to the uncached writer.
"""

from __future__ import annotations

from operator import attrgetter

from repro.xmllib import ns as nsmod
from repro.xmllib.element import _CK, XmlElement
from repro.xmllib.memo import ContentCache, memo_enabled
from repro.xmllib.qname import QName

_sort_key = attrgetter("_key")


def escape_text(value: str) -> str:
    # \r must be escaped or the receiving parser will normalize it to \n.
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace("\r", "&#xD;")
    )


def escape_attr(value: str) -> str:
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\t", "&#x9;")
        .replace("\n", "&#xA;")
        .replace("\r", "&#xD;")
    )


_NS = "ns"


def _ns_tuple(root: XmlElement) -> tuple[str, ...]:
    """First-use document-order URI tuple, memoized per element.

    Computed bottom-up: a node's tuple is the first-use dedup of its own
    tag/attribute URIs followed by its children's tuples, which equals the
    preorder walk's result.  Memo entries live in the element's version
    -keyed memo dict, so any mutation below a node drops its tuple.
    """
    memo = root._memo
    if memo is not None:
        cached = memo.get(_NS)
        if cached is not None:
            return cached
    stack = [root]
    while stack:
        el = stack[-1]
        memo = el._memo
        if memo is not None and _NS in memo:
            stack.pop()
            continue
        pending = [
            c
            for c in el._children
            if isinstance(c, XmlElement) and (c._memo is None or _NS not in c._memo)
        ]
        if pending:
            stack.extend(pending)
            continue
        seen: dict[str, None] = {}
        if el.tag.namespace:
            seen[el.tag.namespace] = None
        for attr in el._attributes:
            if attr.namespace:
                seen.setdefault(attr.namespace, None)
        for c in el._children:
            if isinstance(c, XmlElement):
                for uri in c._memo[_NS]:
                    seen.setdefault(uri, None)
        uris = tuple(seen)
        if el._memo is None:
            el._memo = {}
        el._memo[_NS] = uris
        stack.pop()
    return root._memo[_NS]


def _collect_plain(root: XmlElement) -> list[str]:
    """Memo-free preorder namespace collection (the uncached baseline)."""
    seen: dict[str, None] = {}
    stack = [root]
    while stack:
        node = stack.pop()
        if node.tag.namespace:
            seen.setdefault(node.tag.namespace, None)
        for attr in node.attributes:
            if attr.namespace:
                seen.setdefault(attr.namespace, None)
        stack.extend(
            c for c in reversed(node.children) if isinstance(c, XmlElement)
        )
    return list(seen)


def collect_namespaces(root: XmlElement) -> list[str]:
    """Namespace URIs used anywhere in the tree, in first-use document order."""
    if memo_enabled():
        return list(_ns_tuple(root))
    return _collect_plain(root)


def allocate_prefixes(uris: list[str]) -> dict[str, str]:
    """Deterministic URI -> prefix map."""
    out: dict[str, str] = {}
    used: set[str] = set()
    counter = 0
    for uri in uris:
        preferred = nsmod.PREFERRED_PREFIXES.get(uri)
        if preferred and preferred not in used:
            prefix = preferred
        else:
            while f"n{counter}" in used:
                counter += 1
            prefix = f"n{counter}"
            counter += 1
        out[uri] = prefix
        used.add(prefix)
    return out


_FRAGMENTS = ContentCache("serialize.fragment", capacity=8192)

# Op codes for the iterative writer's explicit stack.
_OPEN, _TEXT, _END, _STORE = 0, 1, 2, 3

# Fragments are cached for subtrees this deep under the serialized root:
# depth 1-2 covers SOAP Header/Body children (Security blocks, payloads)
# without caching every leaf.
_FRAGMENT_MIN_DEPTH = 1
_FRAGMENT_MAX_DEPTH = 2


def serialize(root: XmlElement, *, xml_declaration: bool = False) -> str:
    """Serialize to compact XML with all namespaces declared on the root.

    Fragment reuse is opportunistic: it engages only when the root's
    content key is already memoized (the SOAP message path computes it
    before serializing — see ``WireMessage.from_envelope``), so one-shot
    trees like xmldb documents pay no caching overhead at all.
    """
    memo = root._memo
    warm = memo is not None and _CK in memo and memo_enabled()
    if warm:
        uris = _ns_tuple(root)
    else:
        uris = tuple(_collect_plain(root))
    prefixes = allocate_prefixes(list(uris))
    parts: list[str] = []
    if xml_declaration:
        parts.append('<?xml version="1.0" encoding="utf-8"?>')
    _write(root, prefixes, uris, parts, warm)
    return "".join(parts)


def _qname_str(name: QName, prefixes: dict[str, str]) -> str:
    if not name.namespace:
        return name.local
    return f"{prefixes[name.namespace]}:{name.local}"


def _write(
    node: XmlElement,
    prefixes: dict[str, str],
    token: tuple[str, ...],
    parts: list[str],
    warm: bool,
) -> None:
    append = parts.append
    stack: list[tuple] = [(_OPEN, node, 0)]
    while stack:
        op, payload, depth = stack.pop()
        if op == _TEXT:
            append(escape_text(payload))
            continue
        if op == _END:
            append(payload)
            continue
        if op == _STORE:
            fragment = "".join(parts[depth:])
            del parts[depth:]
            append(fragment)
            _FRAGMENTS.put((payload._memo[_CK], token), fragment)
            continue
        el = payload
        if warm and _FRAGMENT_MIN_DEPTH <= depth <= _FRAGMENT_MAX_DEPTH:
            # Only subtrees with a memoized content key participate (a
            # mutated-since-keying subtree has none — it is written plainly).
            memo = el._memo
            key = memo.get(_CK) if memo is not None else None
            if key is not None:
                fragment = _FRAGMENTS.get((key, token))
                if fragment is not None:
                    append(fragment)
                    continue
                # Everything parts gains from here until this entry pops is
                # the element's complete markup; _STORE reuses `depth` as
                # the starting index into parts.
                stack.append((_STORE, el, len(parts)))
        tag = _qname_str(el.tag, prefixes)
        append(f"<{tag}")
        if depth == 0:
            for uri, prefix in prefixes.items():
                append(f' xmlns:{prefix}="{escape_attr(uri)}"')
        attrs = el.attributes
        if attrs:
            for attr in sorted(attrs, key=_sort_key):
                append(f' {_qname_str(attr, prefixes)}="{escape_attr(attrs[attr])}"')
        children = el.children
        if not children:
            append("/>")
            continue
        append(">")
        stack.append((_END, f"</{tag}>", 0))
        for child in reversed(children):
            if isinstance(child, str):
                stack.append((_TEXT, child, 0))
            else:
                stack.append((_OPEN, child, depth + 1))
