"""Serialization of element trees back to XML text.

Prefixes are allocated deterministically (preferred prefixes from
:mod:`repro.xmllib.ns`, then ``n0``, ``n1``, ... in first-use document
order) and every namespace is declared on the root, which keeps output
stable and easy to read in logs.  The canonical form used for signing
lives in :mod:`repro.xmllib.c14n`.
"""

from __future__ import annotations

from repro.xmllib import ns as nsmod
from repro.xmllib.element import XmlElement
from repro.xmllib.qname import QName


def escape_text(value: str) -> str:
    # \r must be escaped or the receiving parser will normalize it to \n.
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace("\r", "&#xD;")
    )


def escape_attr(value: str) -> str:
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\t", "&#x9;")
        .replace("\n", "&#xA;")
        .replace("\r", "&#xD;")
    )


def collect_namespaces(root: XmlElement) -> list[str]:
    """Namespace URIs used anywhere in the tree, in first-use document order."""
    seen: dict[str, None] = {}

    def visit(node: XmlElement) -> None:
        if node.tag.namespace:
            seen.setdefault(node.tag.namespace, None)
        for attr in node.attributes:
            if attr.namespace:
                seen.setdefault(attr.namespace, None)
        for child in node.element_children():
            visit(child)

    visit(root)
    return list(seen)


def allocate_prefixes(uris: list[str]) -> dict[str, str]:
    """Deterministic URI -> prefix map."""
    out: dict[str, str] = {}
    used: set[str] = set()
    counter = 0
    for uri in uris:
        preferred = nsmod.PREFERRED_PREFIXES.get(uri)
        if preferred and preferred not in used:
            prefix = preferred
        else:
            while f"n{counter}" in used:
                counter += 1
            prefix = f"n{counter}"
            counter += 1
        out[uri] = prefix
        used.add(prefix)
    return out


def serialize(root: XmlElement, *, xml_declaration: bool = False) -> str:
    """Serialize to compact XML with all namespaces declared on the root."""
    uris = collect_namespaces(root)
    prefixes = allocate_prefixes(uris)
    parts: list[str] = []
    if xml_declaration:
        parts.append('<?xml version="1.0" encoding="utf-8"?>')
    _write(root, prefixes, parts, declare=True)
    return "".join(parts)


def _qname_str(name: QName, prefixes: dict[str, str]) -> str:
    if not name.namespace:
        return name.local
    return f"{prefixes[name.namespace]}:{name.local}"


def _write(
    node: XmlElement,
    prefixes: dict[str, str],
    parts: list[str],
    *,
    declare: bool,
) -> None:
    tag = _qname_str(node.tag, prefixes)
    parts.append(f"<{tag}")
    if declare:
        for uri, prefix in prefixes.items():
            parts.append(f' xmlns:{prefix}="{escape_attr(uri)}"')
    for attr in sorted(node.attributes, key=QName.sort_key):
        parts.append(f' {_qname_str(attr, prefixes)}="{escape_attr(node.attributes[attr])}"')
    if not node.children:
        parts.append("/>")
        return
    parts.append(">")
    for child in node.children:
        if isinstance(child, str):
            parts.append(escape_text(child))
        else:
            _write(child, prefixes, parts, declare=False)
    parts.append(f"</{tag}>")
