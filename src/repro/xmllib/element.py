"""Element tree with mixed content.

An :class:`XmlElement` owns a qualified tag, an attribute map keyed by
:class:`~repro.xmllib.qname.QName`, and an ordered list of children where each
child is either another element or a text string (mixed content).  Keeping
text as ordinary list entries (rather than ElementTree's text/tail split)
makes canonicalization and XPath ``text()`` handling straightforward.

Every element carries a mutation *version* (DESIGN.md §16): the child list
and attribute map are tracked containers whose mutators bump the version of
the owning element and of every ancestor reachable through parent links, and
drop any memoized derived values (`content_key`, namespace tuples).  That is
what lets ``canonicalize``/XML-DSig memoize per subtree while staying
byte-identical under mutation — including mutation through aliased child
references, since a child shared by two trees keeps a parent link into each.
Parent links are weak so caching a signature subtree across many envelopes
does not leak the envelopes.  Tags are fixed at construction (nothing in the
tree may reassign ``node.tag``); all other mutation goes through the tracked
containers or the ``children``/``attributes`` property setters.
"""

from __future__ import annotations

import weakref
from operator import attrgetter
from typing import Iterable, Iterator

from repro.xmllib.qname import QName

Child = "XmlElement | str"

_ref = weakref.ref
_sort_key = attrgetter("_key")


def _bump(origin: "XmlElement") -> None:
    """Invalidate memos on ``origin`` and every (transitive) parent."""
    seen = {id(origin)}
    stack = [origin]
    while stack:
        node = stack.pop()
        node._version += 1
        node._memo = None
        parents = node._parents
        if parents:
            live = []
            for ref in parents:
                parent = ref()
                if parent is None:
                    continue
                live.append(ref)
                if id(parent) not in seen:
                    seen.add(id(parent))
                    stack.append(parent)
            if len(live) != len(parents):
                parents[:] = live


class _Children(list):
    """Child list that maintains parent links and version bumps."""

    __slots__ = ("_owner",)

    def _adopt(self, child) -> None:
        if isinstance(child, XmlElement):
            child._parents.append(_ref(self._owner))

    def _orphan(self, child) -> None:
        if isinstance(child, XmlElement):
            owner = self._owner
            parents = child._parents
            for i, ref in enumerate(parents):
                if ref() is owner:
                    del parents[i]
                    break

    def append(self, child) -> None:
        list.append(self, child)
        self._adopt(child)
        _bump(self._owner)

    def extend(self, items) -> None:
        items = list(items)
        list.extend(self, items)
        for child in items:
            self._adopt(child)
        _bump(self._owner)

    def insert(self, index, child) -> None:
        list.insert(self, index, child)
        self._adopt(child)
        _bump(self._owner)

    def remove(self, child) -> None:
        list.remove(self, child)
        self._orphan(child)
        _bump(self._owner)

    def pop(self, index=-1):
        child = list.pop(self, index)
        self._orphan(child)
        _bump(self._owner)
        return child

    def clear(self) -> None:
        for child in self:
            self._orphan(child)
        list.clear(self)
        _bump(self._owner)

    def __setitem__(self, index, value) -> None:
        if isinstance(index, slice):
            removed = list.__getitem__(self, index)
            value = list(value)
            list.__setitem__(self, index, value)
            for child in removed:
                self._orphan(child)
            for child in value:
                self._adopt(child)
        else:
            removed = list.__getitem__(self, index)
            list.__setitem__(self, index, value)
            self._orphan(removed)
            self._adopt(value)
        _bump(self._owner)

    def __delitem__(self, index) -> None:
        removed = list.__getitem__(self, index)
        if isinstance(index, slice):
            for child in removed:
                self._orphan(child)
        else:
            self._orphan(removed)
        list.__delitem__(self, index)
        _bump(self._owner)

    def __iadd__(self, items):
        self.extend(items)
        return self

    def __imul__(self, count):
        if count <= 0:
            self.clear()
        elif count > 1:
            self.extend(list(self) * (count - 1))
        return self

    def sort(self, *args, **kwargs) -> None:
        list.sort(self, *args, **kwargs)
        _bump(self._owner)

    def reverse(self) -> None:
        list.reverse(self)
        _bump(self._owner)


class _Attrs(dict):
    """Attribute map whose writes bump the owning element's version."""

    __slots__ = ("_owner",)

    def __setitem__(self, key, value) -> None:
        dict.__setitem__(self, key, value)
        _bump(self._owner)

    def __delitem__(self, key) -> None:
        dict.__delitem__(self, key)
        _bump(self._owner)

    def pop(self, *args):
        result = dict.pop(self, *args)
        _bump(self._owner)
        return result

    def popitem(self):
        result = dict.popitem(self)
        _bump(self._owner)
        return result

    def clear(self) -> None:
        dict.clear(self)
        _bump(self._owner)

    def update(self, *args, **kwargs) -> None:
        dict.update(self, *args, **kwargs)
        _bump(self._owner)

    def setdefault(self, key, default=None):
        result = dict.setdefault(self, key, default)
        _bump(self._owner)
        return result


class XmlElement:
    """A namespace-aware XML element node."""

    __slots__ = ("tag", "_attributes", "_children", "_version", "_parents", "_memo", "__weakref__")

    def __init__(
        self,
        tag: str | QName,
        attributes: dict[str | QName, str] | None = None,
        children: Iterable["XmlElement | str"] | None = None,
    ) -> None:
        self.tag = QName.parse(tag)
        attrs = _Attrs()
        attrs._owner = self
        self._attributes: _Attrs = attrs
        kids = _Children()
        kids._owner = self
        self._children: _Children = kids
        self._version = 0
        self._parents: list = []
        self._memo: dict | None = None
        if attributes:
            for key, value in attributes.items():
                dict.__setitem__(attrs, QName.parse(key), str(value))
        if children is not None:
            for child in children:
                self.append(child)

    # -- tracked state ------------------------------------------------------

    @property
    def attributes(self) -> "_Attrs":
        return self._attributes

    @attributes.setter
    def attributes(self, value: dict) -> None:
        if value is self._attributes:
            return
        attrs = _Attrs()
        attrs._owner = self
        for key, val in value.items():
            dict.__setitem__(attrs, QName.parse(key), val)
        self._attributes = attrs
        _bump(self)

    @property
    def children(self) -> "_Children":
        return self._children

    @children.setter
    def children(self, value: Iterable["XmlElement | str"]) -> None:
        current = self._children
        if value is current:
            return
        for child in current:
            current._orphan(child)
        kids = _Children()
        kids._owner = self
        list.extend(kids, value)
        for child in kids:
            kids._adopt(child)
        self._children = kids
        _bump(self)

    @property
    def version(self) -> int:
        """Mutation counter; changes whenever this subtree's content may have."""
        return self._version

    # -- construction -----------------------------------------------------

    def append(self, child: "XmlElement | str | int | float") -> "XmlElement":
        """Append a child element or text node; returns self for chaining."""
        if isinstance(child, XmlElement):
            self._children.append(child)
        elif isinstance(child, (str, int, float)):
            text = str(child)
            if text:
                self._children.append(text)
        else:
            raise TypeError(f"cannot append {type(child).__name__} to XmlElement")
        return self

    def extend(self, children: Iterable["XmlElement | str"]) -> "XmlElement":
        for child in children:
            self.append(child)
        return self

    def set(self, key: str | QName, value: str) -> "XmlElement":
        self._attributes[QName.parse(key)] = str(value)
        return self

    def get(self, key: str | QName, default: str | None = None) -> str | None:
        return self._attributes.get(QName.parse(key), default)

    # -- navigation -------------------------------------------------------

    def element_children(self) -> Iterator["XmlElement"]:
        """Iterate child elements, skipping text nodes."""
        for child in self._children:
            if isinstance(child, XmlElement):
                yield child

    def find(self, tag: str | QName) -> "XmlElement | None":
        """First child element with the given qualified tag, or None."""
        want = QName.parse(tag)
        for child in self.element_children():
            if child.tag == want:
                return child
        return None

    def find_all(self, tag: str | QName) -> list["XmlElement"]:
        """All child elements with the given qualified tag."""
        want = QName.parse(tag)
        return [c for c in self.element_children() if c.tag == want]

    def find_local(self, local: str) -> "XmlElement | None":
        """First child element matching on local name only (any namespace)."""
        for child in self.element_children():
            if child.tag.local == local:
                return child
        return None

    def descendants(self) -> Iterator["XmlElement"]:
        """Depth-first iteration over all descendant elements (preorder)."""
        stack = [c for c in reversed(self._children) if isinstance(c, XmlElement)]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(
                c for c in reversed(node._children) if isinstance(c, XmlElement)
            )

    def text(self) -> str:
        """Concatenated text content of this element and all descendants."""
        parts: list[str] = []
        stack: list = list(reversed(self._children))
        while stack:
            child = stack.pop()
            if isinstance(child, str):
                parts.append(child)
            else:
                stack.extend(reversed(child._children))
        return "".join(parts)

    # -- structural equality ----------------------------------------------

    def structurally_equal(self, other: "XmlElement") -> bool:
        """Deep equality on tag, attributes and normalized mixed content.

        Adjacent text nodes are coalesced and empty text ignored, so two
        trees that canonicalize identically compare equal.
        """
        stack = [(self, other)]
        while stack:
            mine, theirs = stack.pop()
            if mine.tag != theirs.tag or mine._attributes != theirs._attributes:
                return False
            a_kids = _normalized_children(mine)
            b_kids = _normalized_children(theirs)
            if len(a_kids) != len(b_kids):
                return False
            for a, b in zip(a_kids, b_kids):
                if isinstance(a, str) or isinstance(b, str):
                    if a != b:
                        return False
                else:
                    stack.append((a, b))
        return True

    def copy(self) -> "XmlElement":
        """Deep copy (aliased subtrees become distinct copies, one per use).

        Memoized derived values (content keys, namespace tuples) are pure
        functions of content, and a copy has identical content — so they
        carry over to the clones, which keeps serializing a cached-and-
        copied subtree cheap.
        """
        clone_root = _blank(self.tag, self._attributes)
        if self._memo:
            clone_root._memo = dict(self._memo)
        stack = [(self, clone_root)]
        while stack:
            src, dst = stack.pop()
            dst_children = dst._children
            for child in src._children:
                if isinstance(child, str):
                    list.append(dst_children, child)
                else:
                    child_clone = _blank(child.tag, child._attributes)
                    if child._memo:
                        child_clone._memo = dict(child._memo)
                    child_clone._parents.append(_ref(dst))
                    list.append(dst_children, child_clone)
                    stack.append((child, child_clone))
        return clone_root

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<XmlElement {self.tag.clark()} attrs={len(self._attributes)} children={len(self._children)}>"


def _blank(tag: QName, attributes: dict) -> XmlElement:
    """Fast internal constructor: pre-parsed tag, pre-validated attributes."""
    node = XmlElement.__new__(XmlElement)
    node.tag = tag
    attrs = _Attrs(attributes)
    attrs._owner = node
    node._attributes = attrs
    kids = _Children()
    kids._owner = node
    node._children = kids
    node._version = 0
    node._parents = []
    node._memo = None
    return node


_CK = "ck"


def content_key(node: XmlElement) -> tuple:
    """A structural key: equal for trees with identical canonical content.

    The key is ``(hash, node_count, text_length)`` computed bottom-up from
    tags, sorted attributes, and child keys/text, and memoized per element
    (dropped by any version bump).  Equal trees — even freshly parsed,
    distinct objects — get equal keys, which is what lets the c14n/DSig
    caches hit on the receiving side of a round trip.  Attribute *order* is
    deliberately ignored (canonical output sorts attributes); text-node
    splits are not coalesced, which can only split cache entries, never
    conflate distinct content.
    """
    memo = node._memo
    if memo is not None:
        key = memo.get(_CK)
        if key is not None:
            return key
    stack = [node]
    while stack:
        el = stack[-1]
        memo = el._memo
        if memo is not None and _CK in memo:
            stack.pop()
            continue
        children = el._children
        pending = [
            c
            for c in children
            if isinstance(c, XmlElement) and (c._memo is None or _CK not in c._memo)
        ]
        if pending:
            stack.extend(pending)
            continue
        parts: list = [el.tag._key]
        attrs = el._attributes
        if attrs:
            for name in sorted(attrs, key=_sort_key):
                parts.append(name._key)
                parts.append(attrs[name])
        node_count = 1
        text_length = 0
        for c in children:
            if isinstance(c, str):
                parts.append(c)
                text_length += len(c)
            else:
                child_key = c._memo[_CK]
                parts.append(child_key)
                node_count += child_key[1]
                text_length += child_key[2]
        key = (hash(tuple(parts)), node_count, text_length)
        if memo is None:
            el._memo = {_CK: key}
        else:
            memo[_CK] = key
        stack.pop()
    return node._memo[_CK]


def _normalized_children(node: XmlElement) -> list["XmlElement | str"]:
    out: list[XmlElement | str] = []
    for child in node.children:
        if isinstance(child, str):
            if not child:
                continue
            if out and isinstance(out[-1], str):
                out[-1] = out[-1] + child
            else:
                out.append(child)
        else:
            out.append(child)
    return out


def element(
    tag: str | QName,
    *children: "XmlElement | str | int | float",
    attrs: dict[str | QName, str] | None = None,
) -> XmlElement:
    """Terse element constructor: ``element(q, child1, "text", attrs={...})``."""
    node = XmlElement(tag, attrs)
    for child in children:
        node.append(child)
    return node


def text_of(node: XmlElement | None, default: str = "") -> str:
    """Stripped text content of ``node``, or ``default`` when node is None."""
    if node is None:
        return default
    return node.text().strip()
