"""Element tree with mixed content.

An :class:`XmlElement` owns a qualified tag, an attribute map keyed by
:class:`~repro.xmllib.qname.QName`, and an ordered list of children where each
child is either another element or a text string (mixed content).  Keeping
text as ordinary list entries (rather than ElementTree's text/tail split)
makes canonicalization and XPath ``text()`` handling straightforward.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.xmllib.qname import QName

Child = "XmlElement | str"


class XmlElement:
    """A namespace-aware XML element node."""

    __slots__ = ("tag", "attributes", "children")

    def __init__(
        self,
        tag: str | QName,
        attributes: dict[str | QName, str] | None = None,
        children: Iterable["XmlElement | str"] | None = None,
    ) -> None:
        self.tag = QName.parse(tag)
        self.attributes: dict[QName, str] = {}
        if attributes:
            for key, value in attributes.items():
                self.attributes[QName.parse(key)] = str(value)
        self.children: list[XmlElement | str] = []
        if children is not None:
            for child in children:
                self.append(child)

    # -- construction -----------------------------------------------------

    def append(self, child: "XmlElement | str | int | float") -> "XmlElement":
        """Append a child element or text node; returns self for chaining."""
        if isinstance(child, XmlElement):
            self.children.append(child)
        elif isinstance(child, (str, int, float)):
            text = str(child)
            if text:
                self.children.append(text)
        else:
            raise TypeError(f"cannot append {type(child).__name__} to XmlElement")
        return self

    def extend(self, children: Iterable["XmlElement | str"]) -> "XmlElement":
        for child in children:
            self.append(child)
        return self

    def set(self, key: str | QName, value: str) -> "XmlElement":
        self.attributes[QName.parse(key)] = str(value)
        return self

    def get(self, key: str | QName, default: str | None = None) -> str | None:
        return self.attributes.get(QName.parse(key), default)

    # -- navigation -------------------------------------------------------

    def element_children(self) -> Iterator["XmlElement"]:
        """Iterate child elements, skipping text nodes."""
        for child in self.children:
            if isinstance(child, XmlElement):
                yield child

    def find(self, tag: str | QName) -> "XmlElement | None":
        """First child element with the given qualified tag, or None."""
        want = QName.parse(tag)
        for child in self.element_children():
            if child.tag == want:
                return child
        return None

    def find_all(self, tag: str | QName) -> list["XmlElement"]:
        """All child elements with the given qualified tag."""
        want = QName.parse(tag)
        return [c for c in self.element_children() if c.tag == want]

    def find_local(self, local: str) -> "XmlElement | None":
        """First child element matching on local name only (any namespace)."""
        for child in self.element_children():
            if child.tag.local == local:
                return child
        return None

    def descendants(self) -> Iterator["XmlElement"]:
        """Depth-first iteration over all descendant elements (self last out)."""
        for child in self.element_children():
            yield child
            yield from child.descendants()

    def text(self) -> str:
        """Concatenated text content of this element and all descendants."""
        parts: list[str] = []
        for child in self.children:
            if isinstance(child, str):
                parts.append(child)
            else:
                parts.append(child.text())
        return "".join(parts)

    # -- structural equality ----------------------------------------------

    def structurally_equal(self, other: "XmlElement") -> bool:
        """Deep equality on tag, attributes and normalized mixed content.

        Adjacent text nodes are coalesced and empty text ignored, so two
        trees that canonicalize identically compare equal.
        """
        if self.tag != other.tag or self.attributes != other.attributes:
            return False
        mine = _normalized_children(self)
        theirs = _normalized_children(other)
        if len(mine) != len(theirs):
            return False
        for a, b in zip(mine, theirs):
            if isinstance(a, str) or isinstance(b, str):
                if a != b:
                    return False
            elif not a.structurally_equal(b):
                return False
        return True

    def copy(self) -> "XmlElement":
        """Deep copy."""
        clone = XmlElement(self.tag, dict(self.attributes))
        for child in self.children:
            clone.children.append(child.copy() if isinstance(child, XmlElement) else child)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<XmlElement {self.tag.clark()} attrs={len(self.attributes)} children={len(self.children)}>"


def _normalized_children(node: XmlElement) -> list["XmlElement | str"]:
    out: list[XmlElement | str] = []
    for child in node.children:
        if isinstance(child, str):
            if not child:
                continue
            if out and isinstance(out[-1], str):
                out[-1] = out[-1] + child
            else:
                out.append(child)
        else:
            out.append(child)
    return out


def element(
    tag: str | QName,
    *children: "XmlElement | str | int | float",
    attrs: dict[str | QName, str] | None = None,
) -> XmlElement:
    """Terse element constructor: ``element(q, child1, "text", attrs={...})``."""
    node = XmlElement(tag, attrs)
    for child in children:
        node.append(child)
    return node


def text_of(node: XmlElement | None, default: str = "") -> str:
    """Stripped text content of ``node``, or ``default`` when node is None."""
    if node is None:
        return default
    return node.text().strip()
