"""The GetMetadata operation and its client side."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.addressing.epr import EndpointReference
from repro.container.service import MessageContext, web_method
from repro.metadata.schema_xml import schema_from_xml, schema_to_xml
from repro.xmllib import QName, element, ns, text_of
from repro.xmllib.element import XmlElement
from repro.xmllib.schema import ElementSpec

DIALECT_OPERATIONS = ns.MEX_DIALECT_OPERATIONS
DIALECT_SCHEMA = ns.MEX_DIALECT_SCHEMA
DIALECT_RESOURCE_PROPERTIES = ns.MEX_DIALECT_RP
#: The dialect real WS-MetadataExchange is best known for: serving WSDL.
DIALECT_WSDL = ns.WSDL


class actions:
    GET_METADATA = ns.MEX + "/GetMetadata"


class MetadataExchangeMixin:
    """Port type: answer ``mex:GetMetadata``.

    Services advertise representation schemas by appending
    :class:`~repro.xmllib.schema.ElementSpec` objects to
    ``self.advertised_schemas`` — the WS-Transfer side's escape from
    hard-coded client/service schema coupling.
    """

    @property
    def advertised_schemas(self) -> list[ElementSpec]:
        if not hasattr(self, "_advertised_schemas"):
            self._advertised_schemas = []
        return self._advertised_schemas

    def advertise_schema(self, spec: ElementSpec) -> None:
        self.advertised_schemas.append(spec)

    @web_method(actions.GET_METADATA)
    def mex_get_metadata(self, context: MessageContext) -> XmlElement:
        wanted = text_of(context.body.find(f"{{{ns.MEX}}}Dialect"))
        metadata = element(f"{{{ns.MEX}}}Metadata")
        if not wanted or wanted == DIALECT_OPERATIONS:
            section = element(
                f"{{{ns.MEX}}}MetadataSection", attrs={"Dialect": DIALECT_OPERATIONS}
            )
            for action in sorted(self.operations()):
                section.append(element(f"{{{ns.MEX}}}Operation", action))
            metadata.append(section)
        if not wanted or wanted == DIALECT_SCHEMA:
            section = element(
                f"{{{ns.MEX}}}MetadataSection", attrs={"Dialect": DIALECT_SCHEMA}
            )
            for spec in self.advertised_schemas:
                section.append(schema_to_xml(spec))
            metadata.append(section)
        if not wanted or wanted == DIALECT_WSDL:
            from repro.wsdl.generate import generate_wsdl

            section = element(
                f"{{{ns.MEX}}}MetadataSection", attrs={"Dialect": DIALECT_WSDL}
            )
            section.append(generate_wsdl(self, self.advertised_schemas or None))
            metadata.append(section)
        if (not wanted or wanted == DIALECT_RESOURCE_PROPERTIES) and hasattr(self, "rp_names"):
            section = element(
                f"{{{ns.MEX}}}MetadataSection",
                attrs={"Dialect": DIALECT_RESOURCE_PROPERTIES},
            )
            for name in self.rp_names():
                section.append(element(f"{{{ns.MEX}}}ResourceProperty", name.clark()))
            metadata.append(section)
        return element(f"{{{ns.MEX}}}GetMetadataResponse", metadata)


@dataclass
class ServiceMetadata:
    """Client-side view of a GetMetadata response."""

    operations: list[str] = field(default_factory=list)
    schemas: list[ElementSpec] = field(default_factory=list)
    resource_properties: list[QName] = field(default_factory=list)
    wsdl: "object | None" = None  # WsdlDescription when the dialect was served

    def supports(self, action: str) -> bool:
        return action in self.operations

    def schema_for(self, tag: str | QName) -> ElementSpec | None:
        wanted = QName.parse(tag)
        for spec in self.schemas:
            if spec.tag == wanted:
                return spec
        return None


def fetch_metadata(
    soap, address: str, dialect: str = ""
) -> ServiceMetadata:
    """Discover a service's metadata (all dialects unless one is named)."""
    body = element(f"{{{ns.MEX}}}GetMetadata")
    if dialect:
        body.append(element(f"{{{ns.MEX}}}Dialect", dialect))
    response = soap.invoke(
        EndpointReference.create(address), actions.GET_METADATA, body
    )
    out = ServiceMetadata()
    metadata = response.find(f"{{{ns.MEX}}}Metadata")
    if metadata is None:
        return out
    for section in metadata.find_all(f"{{{ns.MEX}}}MetadataSection"):
        kind = section.get("Dialect", "")
        if kind == DIALECT_OPERATIONS:
            out.operations.extend(
                op.text().strip() for op in section.element_children()
            )
        elif kind == DIALECT_SCHEMA:
            out.schemas.extend(schema_from_xml(el) for el in section.element_children())
        elif kind == DIALECT_RESOURCE_PROPERTIES:
            out.resource_properties.extend(
                QName.parse(rp.text().strip()) for rp in section.element_children()
            )
        elif kind == DIALECT_WSDL:
            from repro.wsdl.describe import parse_wsdl

            definitions = next(section.element_children(), None)
            if definitions is not None:
                out.wsdl = parse_wsdl(definitions)
    return out
