"""WS-MetadataExchange (extension beyond the paper's implementation).

§3.2 identifies WS-Transfer's missing input/output schemas as a real
problem — "our prototyping ... relied on hard-coding of common schemas
within the client and service.  We determined no elegant mechanism by which
the client could easily discover the schemas (although emerging
specifications like WS-MetadataExchange do seem promising)."

This package builds that promising mechanism: any service can answer
``mex:GetMetadata`` with its supported operations, its representation
schemas (rendered :class:`~repro.xmllib.schema.ElementSpec` trees a client
can reconstruct and validate against) and — for WSRF services — its
ResourceProperty names.
"""

from repro.metadata.exchange import (
    DIALECT_OPERATIONS,
    DIALECT_RESOURCE_PROPERTIES,
    DIALECT_SCHEMA,
    MetadataExchangeMixin,
    ServiceMetadata,
    actions,
    fetch_metadata,
)
from repro.metadata.schema_xml import schema_from_xml, schema_to_xml

__all__ = [
    "DIALECT_OPERATIONS",
    "DIALECT_RESOURCE_PROPERTIES",
    "DIALECT_SCHEMA",
    "MetadataExchangeMixin",
    "ServiceMetadata",
    "actions",
    "fetch_metadata",
    "schema_from_xml",
    "schema_to_xml",
]
