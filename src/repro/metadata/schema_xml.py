"""Rendering ElementSpec schemas to XML and back.

This is the wire form a MetadataSection carries, so a client can rebuild an
:class:`~repro.xmllib.schema.ElementSpec` and validate representations
locally instead of hard-coding the shape.
"""

from __future__ import annotations

from repro.xmllib import QName, element, ns, text_of
from repro.xmllib.element import XmlElement
from repro.xmllib.schema import ElementSpec

_EL = QName(ns.MEX, "Element")
_CHILD = QName(ns.MEX, "Child")
_ATTR = QName(ns.MEX, "RequiredAttribute")


def schema_to_xml(spec: ElementSpec) -> XmlElement:
    node = element(_EL, attrs={"name": spec.tag.clark()})
    if spec.text_type is not None:
        node.set("textType", spec.text_type)
    if spec.open_content:
        node.set("openContent", "true")
    for attr in spec.required_attributes:
        node.append(element(_ATTR, attrs={"name": attr.clark()}))
    for tag, (child_spec, min_occurs, max_occurs) in spec.children.items():
        child_el = element(
            _CHILD,
            attrs={
                "name": tag.clark(),
                "minOccurs": str(min_occurs),
                "maxOccurs": "unbounded" if max_occurs is None else str(max_occurs),
            },
        )
        if child_spec is not None:
            child_el.append(schema_to_xml(child_spec))
        node.append(child_el)
    return node


def schema_from_xml(node: XmlElement) -> ElementSpec:
    if node.tag != _EL:
        raise ValueError(f"not a schema element: {node.tag.clark()}")
    spec = ElementSpec(
        tag=QName.parse(node.get("name", "")),
        text_type=node.get("textType"),
        open_content=node.get("openContent") == "true",
        required_attributes=tuple(
            QName.parse(a.get("name", ""))
            for a in node.find_all(_ATTR)
        ),
    )
    for child_el in node.find_all(_CHILD):
        tag = QName.parse(child_el.get("name", ""))
        max_text = child_el.get("maxOccurs", "1")
        max_occurs = None if max_text == "unbounded" else int(max_text)
        inner = child_el.find(_EL)
        child_spec = schema_from_xml(inner) if inner is not None else None
        spec.children[tag] = (child_spec, int(child_el.get("minOccurs", "0")), max_occurs)
    return spec
