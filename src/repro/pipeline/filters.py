"""The concrete filters: Figure 1's processing steps as pipeline stages.

Each filter owns exactly one cross-cutting concern and acts only on the
legs where that concern applies (a WSE filter that doesn't care about a
message passes it through untouched).  The cost formulas and exception
semantics are carried over verbatim from the pre-pipeline monolithic
code in ``SoapClient.invoke`` / ``Container.handle`` /
``Deployment.deliver_notification`` — the refactor is guarded by
cost-ledger equivalence tests (tests/pipeline/test_cost_equivalence.py),
so any change here that alters a charge or its order is a regression,
not a cleanup.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.addressing.headers import MessageHeaders
from repro.crypto.xmldsig import DsigError, signer_subject, verify_element
from repro.pipeline.chain import BaseFilter
from repro.pipeline.context import CLIENT, NOTIFY, SERVER
from repro.reliable.sequence import (
    MESSAGE_NUMBER_HEADER,
    SEQUENCE_ID_HEADER,
    InboundRequestLog,
)
from repro.soap.envelope import SoapFault, build_envelope, build_fault_envelope
from repro.soap.message import WireMessage
from repro.xmllib import QName, ns
from repro.xmllib.element import XmlElement

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.context import PipelineContext


class TracingFilter(BaseFilter):
    """Opens one trace span per pipeline pass, closed after the pass.

    First in both directions, so every other filter's work — and any
    deferred work except the close itself — lands inside the pass span.
    The span names reproduce Figure 1's stage vocabulary and double as
    the cost categories used by the ledger.
    """

    _OUTBOUND = {CLIENT: "client.send", SERVER: "server.send", NOTIFY: "notify.send"}
    _INBOUND = {CLIENT: "client.receive", SERVER: "server.receive", NOTIFY: "notify.receive"}

    def outbound(self, ctx: "PipelineContext") -> None:
        self._open(ctx, self._OUTBOUND[ctx.role])

    def inbound(self, ctx: "PipelineContext") -> None:
        self._open(ctx, self._INBOUND[ctx.role])

    @staticmethod
    def _open(ctx: "PipelineContext", name: str) -> None:
        tracer = ctx.metrics.tracer
        span = tracer.push(name, ctx.clock.now)
        ctx.defer(lambda: tracer.close(span, ctx.clock.now))


class ReliableMessagingFilter(BaseFilter):
    """WS-RM on both ends: EPR stamping out, replay/reply-cache in.

    Absorbs what used to live in two places: the
    :class:`~repro.reliable.channel.ReliableChannel`'s header stamping
    (the channel now only assigns sequence numbers and retries) and the
    container's ``InboundRequestLog`` branch (owned here, one log per
    chain — i.e. per container).
    """

    def __init__(self) -> None:
        #: Destination-side exactly-once reply cache.
        self.log = InboundRequestLog()

    def outbound(self, ctx: "PipelineContext") -> None:
        if ctx.role == CLIENT and ctx.rm_stamp is not None:
            identifier, number = ctx.rm_stamp
            ctx.epr = ctx.epr.with_property(
                SEQUENCE_ID_HEADER, identifier
            ).with_property(MESSAGE_NUMBER_HEADER, str(number))
        elif ctx.role == SERVER and ctx.rm_key is not None:
            # The reply cache must hold the *serialized* reply, which the
            # cost filter produces later in this pass — defer the store.
            key = ctx.rm_key
            ctx.defer(lambda: self.log.store(key, ctx.response_message))

    def inbound(self, ctx: "PipelineContext") -> None:
        if ctx.role != SERVER:
            return
        ctx.rm_key = self._sequence_key(ctx.headers)
        if ctx.rm_key is None:
            return
        cached = self.log.replay(ctx.rm_key)
        if cached is not None:
            # Retransmission: the first execution's reply went missing on
            # the wire.  Answer from the cache; the driver skips dispatch
            # and the outbound pass entirely.
            ctx.network.charge(ctx.costs.soap_per_message, "server.send")
            ctx.response_message = cached
            ctx.replayed = True

    @staticmethod
    def _sequence_key(headers: MessageHeaders) -> tuple[str, int] | None:
        """The (sequence id, message number) stamp, if the request has one."""
        identifier = number = None
        for key, value in headers.reference_properties:
            if key == SEQUENCE_ID_HEADER:
                identifier = value
            elif key == MESSAGE_NUMBER_HEADER:
                number = value
        if identifier and number and number.isdigit():
            return identifier, int(number)
        return None


class AddressingFilter(BaseFilter):
    """WS-Addressing marshalling: headers out, headers/body extraction in."""

    def outbound(self, ctx: "PipelineContext") -> None:
        if ctx.role == CLIENT:
            ctx.headers = MessageHeaders(
                to=ctx.epr.address,
                action=ctx.action,
                reply_to=ctx.reply_to,
                reference_properties=ctx.epr.reference_properties,
            )
            ctx.request_envelope = build_envelope(ctx.headers.to_elements(), [ctx.body])
        elif ctx.role == SERVER:
            ctx.reply_headers = self._reply_headers(ctx.headers)
            if ctx.fault is not None:
                ctx.response_envelope = build_fault_envelope(ctx.reply_headers, ctx.fault)
            else:
                body = [ctx.result] if ctx.result is not None else []
                ctx.response_envelope = build_envelope(ctx.reply_headers, body)

    def inbound(self, ctx: "PipelineContext") -> None:
        if ctx.role == SERVER:
            ctx.headers = MessageHeaders.from_header_element(ctx.request_envelope.header)
        elif ctx.role == CLIENT:
            response = ctx.response_envelope
            if response.is_fault():
                raise response.fault()
            children = list(response.body.element_children())
            ctx.response_body = children[0] if children else None

    @staticmethod
    def _reply_headers(request_headers: MessageHeaders | None) -> list[XmlElement]:
        if request_headers is None:
            return []
        reply = MessageHeaders(
            to="soap://anonymous",
            action=request_headers.action + "Response",
            relates_to=request_headers.message_id,
        )
        return reply.to_elements()


class SecurityFilter(BaseFilter):
    """The Security/Policy handler as a filter: sign out, verify in.

    One instance per deployment (built in ``Deployment.__init__``,
    injected into every chain), which is what deduplicates the
    per-client/per-container handler construction the monolithic code
    carried.  The wrapped :class:`SecurityHandler` stays an
    implementation detail of this filter — repro-lint rule RPO08 keeps
    direct handler use from leaking back out of ``repro.pipeline``.
    """

    def __init__(self, policy, network, ca=None, trust=None) -> None:
        from repro.container.security import SecurityHandler

        self.handler = SecurityHandler(policy, network, ca, trust)

    def outbound(self, ctx: "PipelineContext") -> None:
        if ctx.role == CLIENT:
            # Client-side signing failures (e.g. no credentials under an
            # X.509 policy) propagate raw: the caller misconfigured itself.
            self._sign(ctx, ctx.request_envelope)
        elif ctx.role == SERVER:
            self._sign_response(ctx)
        elif ctx.role == NOTIFY:
            # Notification producers sign only when they can; an unsigned
            # notify under a signing policy is the *consumer's* problem
            # (its verification rejects), matching the legacy behavior.
            if ctx.policy.signing and ctx.credentials is not None:
                self._sign(ctx, ctx.request_envelope)

    def inbound(self, ctx: "PipelineContext") -> None:
        from repro.container.security import SecurityError

        if ctx.role == SERVER:
            if ctx.policy.signing:
                with ctx.span("security.verify"):
                    ctx.sender = self.handler.verify_incoming(ctx.request_envelope)
        elif ctx.role == CLIENT:
            if not ctx.policy.signing:
                return
            try:
                with ctx.span("security.verify"):
                    self.handler.verify_incoming(ctx.response_envelope)
            except SecurityError as exc:
                if ctx.response_envelope.is_fault():
                    # An unsigned fault means the *server* already failed
                    # (a credential-less container cannot sign anything,
                    # faults included) — surface its fault, which explains
                    # the failure, instead of masking it.
                    raise ctx.response_envelope.fault() from exc
                raise SoapFault(
                    "Client", f"response security failure: {exc}"
                ) from exc
        elif ctx.role == NOTIFY:
            if ctx.policy.signing:
                with ctx.span("security.verify"):
                    self._verify_notification(ctx)

    # -- signing legs ---------------------------------------------------------

    def _sign(self, ctx: "PipelineContext", envelope) -> None:
        if not ctx.policy.signing:
            return
        with ctx.span("security.sign"):
            self.handler.secure_outgoing(envelope, ctx.credentials)

    def _sign_response(self, ctx: "PipelineContext") -> None:
        from repro.container.security import SecurityError

        if not ctx.policy.signing:
            return
        try:
            with ctx.span("security.sign"):
                self.handler.secure_outgoing(ctx.response_envelope, ctx.credentials)
        except SecurityError as exc:
            # A misconfigured (credential-less) container cannot sign.  It
            # used to reply unsigned and let the client's policy reject
            # that; now it owns the failure with a server-side fault.
            ctx.fault = SoapFault("Server", f"container cannot sign response: {exc}")
            ctx.result = None
            ctx.response_envelope = build_fault_envelope(
                ctx.reply_headers if ctx.reply_headers is not None else [], ctx.fault
            )

    # -- notification verification ---------------------------------------------

    def _verify_notification(self, ctx: "PipelineContext") -> None:
        """The consumer-side check: signature present, signer trusted.

        Cheaper than the request path's full ``verify_incoming`` (no
        policy check, no canonicalization charge) and it raises
        :class:`DsigError` rather than ``SecurityError`` — notification
        delivery has no fault channel to map errors onto.
        """
        envelope = ctx.request_envelope
        security = envelope.header_element(QName(ns.WSSE, "Security"))
        signature = security.find(QName(ns.DS, "Signature")) if security is not None else None
        if signature is None:
            raise DsigError("signed deployment received unsigned notification")
        subject = signer_subject(signature)
        certificate = self.handler.trust.get(subject)
        if certificate is None:
            raise DsigError(f"notification signed by unknown party {subject}")
        ctx.network.charge(ctx.costs.rsa_verify, "security.verify")
        verify_element(envelope.body, signature, certificate.public_key)
        ctx.metrics.verified()


class MustUnderstandFilter(BaseFilter):
    """SOAP 1.1 §4.2.3: fault on mandatory headers this node can't process.

    Server-inbound only, and ordered *before* signature verification: a
    message demanding an unsupported mandatory extension must earn a
    MustUnderstand fault even when its signature would also fail.
    """

    #: Header namespaces this node processes (WS-I processing model).
    _UNDERSTOOD_NAMESPACES = (ns.WSA, ns.WSSE, ns.DS)

    def inbound(self, ctx: "PipelineContext") -> None:
        if ctx.role != SERVER:
            return
        understood = set(self._UNDERSTOOD_NAMESPACES)
        flag = QName(ns.SOAP, "mustUnderstand")
        for header in ctx.request_envelope.header.element_children():
            if (
                header.attributes.get(flag) in ("1", "true")
                and header.tag.namespace not in understood
            ):
                raise SoapFault(
                    "MustUnderstand",
                    f"mandatory header {header.tag.clark()} not understood",
                )


class CostAccountingFilter(BaseFilter):
    """Serialization/parsing plus their virtual-time charges.

    Last outbound and first inbound (after tracing), i.e. closest to the
    wire: by the time a message is charged it is in its final byte form,
    and inbound messages are paid for before anything inspects them.  The
    formulas are the legacy ones, verbatim — see the module docstring.
    """

    def outbound(self, ctx: "PipelineContext") -> None:
        costs = ctx.costs
        if ctx.role == CLIENT:
            ctx.request_message = WireMessage.from_envelope(ctx.request_envelope)
            ctx.network.charge(
                costs.soap_per_message
                + costs.xml_serialize_per_kb * ctx.request_message.n_kb,
                "client.send",
            )
        elif ctx.role == SERVER:
            ctx.response_message = WireMessage.from_envelope(ctx.response_envelope)
            ctx.network.charge(
                costs.soap_per_message
                + costs.xml_serialize_per_kb * ctx.response_message.n_kb,
                "server.send",
            )
        elif ctx.role == NOTIFY:
            ctx.request_message = WireMessage.from_envelope(ctx.request_envelope)
            ctx.network.charge(
                costs.soap_per_message
                + costs.xml_serialize_per_kb * ctx.request_message.n_kb,
                "notify.send",
            )

    def inbound(self, ctx: "PipelineContext") -> None:
        costs = ctx.costs
        if ctx.role == SERVER:
            ctx.network.charge(
                costs.soap_dispatch
                + costs.soap_per_message
                + costs.xml_parse_per_kb * ctx.request_message.n_kb,
                "server.receive",
            )
            # Parse failures propagate raw (no fault envelope): a message
            # that isn't XML never reached the SOAP layer.
            ctx.request_envelope = ctx.request_message.parse()
        elif ctx.role == CLIENT:
            ctx.network.charge(
                costs.soap_per_message
                + costs.xml_parse_per_kb * ctx.response_message.n_kb,
                "client.receive",
            )
            ctx.response_envelope = ctx.response_message.parse()
        elif ctx.role == NOTIFY:
            ctx.network.charge(
                ctx.sink.delivery_overhead(costs)
                + costs.xml_parse_per_kb * ctx.request_message.n_kb,
                "notify.receive",
            )
            ctx.request_envelope = ctx.request_message.parse()
