"""The filter chain: WSE's pipeline shape, with explicit dual ordering.

WSE 2.0 processes every message through an ordered collection of SOAP
filters — one collection for output, one for input — and the paper's
.NET stack owes its addressing/security/policy layering to exactly that
machinery.  :class:`FilterChain` reproduces the shape: an ``outbound``
tuple applied to messages being produced (request on the client,
response on the server, notification on the producer) and an ``inbound``
tuple applied to messages being consumed.

The two orders are *not* forced to be reversals of each other, for the
same reason WSE keeps two separately-ordered collections: the required
orders differ per direction.  Inbound, the mustUnderstand check must
fault before signature verification (SOAP 1.1 processing-model
precedence), and WS-RM replay detection needs the parsed addressing
headers; outbound, the WS-RM reply cache must observe the *serialized*
reply, which is why filters can defer work past the end of the pass via
:meth:`~repro.pipeline.context.PipelineContext.defer`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.context import PipelineContext


@runtime_checkable
class MessageFilter(Protocol):
    """One composable message-processing stage (WSE ``SoapFilter``)."""

    def outbound(self, ctx: "PipelineContext") -> None:
        """Process a message being produced (before it hits the wire)."""

    def inbound(self, ctx: "PipelineContext") -> None:
        """Process a message being consumed (after it left the wire)."""


class BaseFilter:
    """No-op filter; concrete filters override the legs they act on."""

    def outbound(self, ctx: "PipelineContext") -> None:  # pragma: no cover
        return

    def inbound(self, ctx: "PipelineContext") -> None:  # pragma: no cover
        return


class FilterChain:
    """Two ordered filter tuples plus the pass/deferred-action mechanics."""

    def __init__(
        self,
        outbound: Iterable[MessageFilter],
        inbound: Iterable[MessageFilter],
    ) -> None:
        self.outbound_filters: tuple[MessageFilter, ...] = tuple(outbound)
        self.inbound_filters: tuple[MessageFilter, ...] = tuple(inbound)

    @classmethod
    def standard(cls, security: MessageFilter) -> "FilterChain":
        """The canonical deployment chain (Figure 1's processing order).

        The security filter is injected — one per deployment, shared by
        every chain — so client, container and notification paths sign and
        verify with the same handler state (policy, CA, trust directory).
        """
        from repro.pipeline.filters import (
            AddressingFilter,
            CostAccountingFilter,
            MustUnderstandFilter,
            ReliableMessagingFilter,
            TracingFilter,
        )

        tracing = TracingFilter()
        reliability = ReliableMessagingFilter()
        addressing = AddressingFilter()
        must_understand = MustUnderstandFilter()
        cost = CostAccountingFilter()
        return cls(
            outbound=(tracing, reliability, addressing, security, must_understand, cost),
            inbound=(tracing, cost, must_understand, security, addressing, reliability),
        )

    def run_outbound(self, ctx: "PipelineContext") -> None:
        """Apply the outbound filters in order, then drain deferred work."""
        try:
            for f in self.outbound_filters:
                f.outbound(ctx)
        finally:
            ctx.run_deferred()

    def run_inbound(self, ctx: "PipelineContext") -> None:
        """Apply the inbound filters in order, then drain deferred work."""
        try:
            for f in self.inbound_filters:
                f.inbound(ctx)
        finally:
            ctx.run_deferred()

    def find(self, kind: type) -> MessageFilter:
        """The first filter of ``kind`` in either direction's order."""
        for f in self.outbound_filters + self.inbound_filters:
            if isinstance(f, kind):
                return f
        raise LookupError(f"chain has no {kind.__name__}")
