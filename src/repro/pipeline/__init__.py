"""WSE-style SOAP filter pipeline (DESIGN.md §10).

The paper's .NET stack runs every message through WSE's ordered chain of
SOAP filters — addressing, security, policy — and this package restores
that architecture to the reproduction: client invocation, container
request handling and notification delivery are thin drivers over one
:class:`FilterChain` whose filters each own a single cross-cutting
concern.  Chains are built per deployment via ``Deployment.pipeline()``.

Layering rule (lint-enforced as RPO08): ``SecurityHandler`` and
``InboundRequestLog`` are implementation details of
:class:`SecurityFilter` / :class:`ReliableMessagingFilter`; code outside
this package composes filters instead of reaching for the handlers.
"""

from repro.pipeline.chain import BaseFilter, FilterChain, MessageFilter
from repro.pipeline.context import CLIENT, NOTIFY, SERVER, PipelineContext
from repro.pipeline.filters import (
    AddressingFilter,
    CostAccountingFilter,
    MustUnderstandFilter,
    ReliableMessagingFilter,
    SecurityFilter,
    TracingFilter,
)

__all__ = [
    "BaseFilter",
    "FilterChain",
    "MessageFilter",
    "PipelineContext",
    "CLIENT",
    "SERVER",
    "NOTIFY",
    "AddressingFilter",
    "CostAccountingFilter",
    "MustUnderstandFilter",
    "ReliableMessagingFilter",
    "SecurityFilter",
    "TracingFilter",
]
