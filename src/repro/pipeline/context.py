"""The unified per-message processing context.

One :class:`PipelineContext` travels through a
:class:`~repro.pipeline.chain.FilterChain` and carries everything any
filter may need: the envelope and its wire form for both legs, the
WS-Addressing headers, the authenticated sender, the cost ledger (via the
deployment's network) and the span stack (via the metrics tracer).  The
same context type serves all three drivers — client invoke, container
handle, notification delivery — which is what lets one filter implement a
cross-cutting concern once instead of three times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.addressing.epr import EndpointReference
from repro.addressing.headers import MessageHeaders
from repro.crypto.x509 import DistinguishedName
from repro.soap.envelope import Envelope, SoapFault
from repro.soap.message import WireMessage
from repro.xmllib.element import XmlElement

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.container.container import Container
    from repro.container.deployment import Deployment, NotificationSink
    from repro.container.security import Credentials

#: The three processing roles a context can play.  ``CLIENT`` and
#: ``SERVER`` are the two ends of a request/response exchange; ``NOTIFY``
#: is the one-way notification push (producer side outbound, consumer
#: side inbound).
CLIENT = "client"
SERVER = "server"
NOTIFY = "notify"


@dataclass
class PipelineContext:
    """Mutable state shared by every filter processing one message."""

    deployment: "Deployment"
    role: str  # CLIENT | SERVER | NOTIFY
    #: Identity used for signing on the outbound leg.
    credentials: "Credentials | None" = None

    # -- client request intent ------------------------------------------------
    epr: EndpointReference | None = None
    action: str = ""
    body: XmlElement | None = None
    reply_to: EndpointReference | None = None
    #: WS-RM ``(sequence id, message number)`` assigned by a reliable
    #: channel; the ReliableMessagingFilter stamps it onto the EPR.
    rm_stamp: tuple[str, int] | None = None

    # -- request leg ---------------------------------------------------------
    headers: MessageHeaders | None = None
    request_envelope: Envelope | None = None
    request_message: WireMessage | None = None
    sender: DistinguishedName | None = None

    # -- server-side processing ----------------------------------------------
    container: "Container | None" = None
    fault: SoapFault | None = None
    result: XmlElement | None = None
    reply_headers: list[XmlElement] | None = None
    #: WS-RM reply-cache key, set when the request carries a sequence stamp.
    rm_key: tuple[str, int] | None = None
    #: True when the response was answered from the WS-RM reply cache.
    replayed: bool = False

    # -- response leg --------------------------------------------------------
    response_envelope: Envelope | None = None
    response_message: WireMessage | None = None
    response_body: XmlElement | None = None

    # -- notification delivery ------------------------------------------------
    sink: "NotificationSink | None" = None

    _deferred: list[Callable[[], None]] = field(default_factory=list)

    # -- shared simulation substrate ------------------------------------------

    @property
    def network(self):
        return self.deployment.network

    @property
    def costs(self):
        return self.deployment.network.costs

    @property
    def clock(self):
        return self.deployment.network.clock

    @property
    def metrics(self):
        return self.deployment.network.metrics

    @property
    def policy(self):
        return self.deployment.policy

    def span(self, name: str, detail: str = ""):
        """Open a trace span on the virtual clock (context manager)."""
        return self.metrics.tracer.span(name, self.clock, detail)

    # -- deferred actions ------------------------------------------------------

    def defer(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` after the current pipeline pass completes (LIFO).

        Filters use this for work that must observe the *finished* message
        — the WS-RM filter caches the serialized reply, the tracing filter
        closes its pass span — mirroring WSE filters that post-process a
        message after the body has been written.
        """
        self._deferred.append(fn)

    def run_deferred(self) -> None:
        while self._deferred:
            self._deferred.pop()()

    # -- constructors ----------------------------------------------------------

    @classmethod
    def client_request(
        cls,
        deployment: "Deployment",
        credentials,
        epr: EndpointReference,
        action: str,
        body: XmlElement,
        reply_to: EndpointReference | None = None,
        rm_stamp: tuple[str, int] | None = None,
    ) -> "PipelineContext":
        return cls(
            deployment=deployment,
            role=CLIENT,
            credentials=credentials,
            epr=epr,
            action=action,
            body=body,
            reply_to=reply_to,
            rm_stamp=rm_stamp,
        )

    @classmethod
    def server_request(
        cls, container: "Container", message: WireMessage
    ) -> "PipelineContext":
        return cls(
            deployment=container.deployment,
            role=SERVER,
            credentials=container.credentials,
            container=container,
            request_message=message,
        )

    @classmethod
    def notify_outbound(
        cls, deployment: "Deployment", envelope: Envelope, credentials, sink
    ) -> "PipelineContext":
        return cls(
            deployment=deployment,
            role=NOTIFY,
            credentials=credentials,
            request_envelope=envelope,
            sink=sink,
        )

    @classmethod
    def notify_inbound(
        cls, deployment: "Deployment", message: WireMessage, sink
    ) -> "PipelineContext":
        return cls(
            deployment=deployment,
            role=NOTIFY,
            request_message=message,
            sink=sink,
        )
