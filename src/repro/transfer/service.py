"""The WS-Transfer resource service.

Default semantics follow the paper's implementation (§3.2):

* **Create** stores the client's XML representation into the database,
  names the resource with a fresh GUID embedded into the returned EPR as a
  reference property, and returns the (possibly service-modified)
  representation alongside.
* **Get** returns the stored representation as-is.
* **Put** reads the old representation, lets the service merge, and stores
  the result — the read-before-write WSRF.NET's cache avoids (§4.1.3).
* **Delete** removes the document.

Services override the ``process_*`` hooks for their own semantics — the
WS-Transfer Grid-in-a-Box services dispatch on the *shape of the EPR*
exactly as the paper describes.  There is deliberately no lifetime
management ("there is no lifetime management functionality since it is not
defined in the spec") and no schema for inputs/outputs (``<xsd:any>``):
clients must know the representation shape by out-of-band agreement.
"""

from __future__ import annotations

from repro.container.service import MessageContext, ServiceSkeleton, web_method
from repro.soap.envelope import SoapFault
from repro.wsrf.basefaults import base_fault
from repro.xmldb.collection import Collection, DocumentNotFound
from repro.xmllib import QName, element, ns
from repro.xmllib.element import XmlElement

#: Reference property naming the resource inside a WS-Transfer EPR.
TRANSFER_RESOURCE_ID = QName(ns.REPRO_TRANSFER, "ResourceID")


class actions:
    """Action URIs from the WS-Transfer member submission."""

    GET = ns.WXF + "/Get"
    PUT = ns.WXF + "/Put"
    DELETE = ns.WXF + "/Delete"
    CREATE = ns.WXF + "/Create"


class TransferResourceService(ServiceSkeleton):
    """Base class for WS-Transfer services (one service, any resource types)."""

    service_name = "TransferResource"

    def __init__(self, collection: Collection):
        super().__init__()
        self.collection = collection

    # -- EPR plumbing -------------------------------------------------------------

    def resource_epr(self, key: str):
        return self.epr({TRANSFER_RESOURCE_ID: key})

    def _require_key(self, context: MessageContext) -> str:
        key = context.headers.target_epr().property(TRANSFER_RESOURCE_ID)
        if key is None:
            key = context.resource_key  # tolerate foreign ResourceID props
        if key is None:
            # Same client mistake as addressing a WSRF service without a
            # WS-Resource EPR: report it with the same stable taxonomy so
            # the conformance harness sees one fault family on both stacks.
            raise base_fault(
                f"{self.service_name}: EPR names no resource",
                error_code="ResourceUnknownFault",
            )
        return key

    # -- the four operations --------------------------------------------------------

    @web_method(actions.CREATE)
    def wxf_create(self, context: MessageContext) -> XmlElement:
        representation = next(context.body.element_children(), None)
        if representation is None:
            raise SoapFault("Client", "Create carries no resource representation")
        stored, returned, key = self.process_create(representation.copy(), context)
        key = self.collection.insert(stored, key)
        response = element(
            f"{{{ns.WXF}}}ResourceCreated", self.resource_epr(key).to_xml()
        )
        if returned is not None:
            response.append(returned)
        return element(f"{{{ns.WXF}}}CreateResponse", response)

    @web_method(actions.GET)
    def wxf_get(self, context: MessageContext) -> XmlElement:
        key = self._require_key(context)
        return element(f"{{{ns.WXF}}}GetResponse", self.process_get(key, context))

    @web_method(actions.PUT)
    def wxf_put(self, context: MessageContext) -> XmlElement:
        key = self._require_key(context)
        replacement = next(context.body.element_children(), None)
        if replacement is None:
            raise SoapFault("Client", "Put carries no replacement representation")
        # Read-before-write: the paper calls this out as the reason the
        # (unoptimized) WS-Transfer Set is slower than WSRF.NET's.
        old = self._load(key)
        updated = self.process_put(key, old, replacement.copy(), context)
        if old is None:
            # Out-of-band-created resource surfacing through Put.
            self.collection.upsert(key, updated)
        else:
            self.collection.update(key, updated)
        return element(f"{{{ns.WXF}}}PutResponse", updated.copy())

    @web_method(actions.DELETE)
    def wxf_delete(self, context: MessageContext) -> XmlElement:
        key = self._require_key(context)
        self.process_delete(key, context)
        try:
            self.collection.delete(key)
        except DocumentNotFound:
            raise base_fault(
                f"no resource {key} to delete",
                error_code="ResourceUnknownFault",
                originator=self.address,
                timestamp=self.network.clock.now,
            )
        return element(f"{{{ns.WXF}}}DeleteResponse")

    # -- hooks --------------------------------------------------------------------

    def process_create(
        self, representation: XmlElement, context: MessageContext
    ) -> tuple[XmlElement, XmlElement | None, str | None]:
        """Return (document to store, representation to return or None,
        explicit key or None for a GUID).  Default: store unmodified, return
        nothing extra ("Create() stores this XML document without
        modification into Xindice")."""
        return representation, None, None

    def process_get(self, key: str, context: MessageContext) -> XmlElement:
        """Produce the Get representation.  Default: the stored document.

        Override point for the paper's mode-dispatching Gets (directory
        listing vs file download, availability query vs reservation check).
        """
        document = self._load(key)
        if document is None:
            document = self.resolve_out_of_band(key, context)
        if document is None:
            raise base_fault(
                f"no resource {key}",
                error_code="ResourceUnknownFault",
                originator=self.address,
                timestamp=self.network.clock.now,
            )
        return document

    def process_put(
        self, key: str, old: XmlElement | None, replacement: XmlElement, context: MessageContext
    ) -> XmlElement:
        """Merge the replacement into the stored form.  Default: replace."""
        return replacement

    def process_delete(self, key: str, context: MessageContext) -> None:
        """Pre-delete hook: services distinguishing an *active* resource
        (running process, transfer) from its representation decide here
        whether Delete also terminates the entity (§3.2's first issue)."""

    def resolve_out_of_band(
        self, key: str, context: MessageContext
    ) -> XmlElement | None:
        """Supply a representation for a resource that exists although no
        Create was ever issued (§3.2's second issue).  Returning a document
        makes the Get legitimate; None faults."""
        return None

    # -- internals --------------------------------------------------------------------

    def _load(self, key: str) -> XmlElement | None:
        try:
            return self.collection.read(key)
        except DocumentNotFound:
            return None
