"""A second, independent WS-Transfer implementation ("Plumbtree").

§2.3 wonders whether "ease of implementing WS-Transfer ... might eventually
lead to more independent implementations" but doubts that "two WS-Transfer
implementations are more apt to facilitate interoperability ... an
implementation is more apt to use functionality outside of the scope of the
spec, causing interoperability headaches among custom extensions."

This class is that second implementation, written to the spec but with
every free choice made differently from :class:`TransferResourceService`:

* resources live in a plain in-memory map, not the XML database;
* resource ids are sequential (``plumbtree-N``) and ride in a *different*
  reference property (``{alt}ID``) — harmless to clients that keep EPRs
  opaque, fatal to clients that construct EPRs by convention;
* Put on a resource that was never Created faults (the spec permits
  out-of-band resources but does not require supporting them);
* Create echoes the stored representation back (also spec-legal).

The interop tests show exactly which clients survive the swap.
"""

from __future__ import annotations

import itertools

from repro.container.service import MessageContext, ServiceSkeleton, web_method
from repro.soap.envelope import SoapFault
from repro.transfer.service import actions
from repro.xmllib import QName, element, ns
from repro.xmllib.element import XmlElement

#: A different reference property than the main implementation's.
ALT_RESOURCE_ID = QName(ns.ALT_TRANSFER, "ID")


class AltTransferService(ServiceSkeleton):
    """Spec-conformant WS-Transfer with independently-chosen internals."""

    service_name = "Plumbtree"

    def __init__(self) -> None:
        super().__init__()
        self._resources: dict[str, XmlElement] = {}
        self._ids = itertools.count(1)

    def _key(self, context: MessageContext) -> str:
        epr = context.headers.target_epr()
        key = epr.property(ALT_RESOURCE_ID)
        if key is None:
            # Be liberal in what we accept: any *ID-shaped local name.
            for name, value in epr.reference_properties:
                if name.local.lower() in ("id", "resourceid"):
                    key = value
                    break
        if key is None:
            raise SoapFault("Client", "EPR carries no resource identifier")
        return key

    def _require(self, key: str) -> XmlElement:
        resource = self._resources.get(key)
        if resource is None:
            raise SoapFault("Client", f"unknown resource {key}")
        return resource

    @web_method(actions.CREATE)
    def create(self, context: MessageContext) -> XmlElement:
        representation = next(context.body.element_children(), None)
        if representation is None:
            raise SoapFault("Client", "Create carries no representation")
        key = f"plumbtree-{next(self._ids)}"
        self._resources[key] = representation.copy()
        epr = self.epr({ALT_RESOURCE_ID: key})
        # Echoing the stored representation is explicitly allowed.
        return element(
            f"{{{ns.WXF}}}CreateResponse",
            element(f"{{{ns.WXF}}}ResourceCreated", epr.to_xml(), representation.copy()),
        )

    @web_method(actions.GET)
    def get(self, context: MessageContext) -> XmlElement:
        return element(
            f"{{{ns.WXF}}}GetResponse", self._require(self._key(context)).copy()
        )

    @web_method(actions.PUT)
    def put(self, context: MessageContext) -> XmlElement:
        key = self._key(context)
        self._require(key)  # no out-of-band creation here — spec-legal choice
        replacement = next(context.body.element_children(), None)
        if replacement is None:
            raise SoapFault("Client", "Put carries no representation")
        self._resources[key] = replacement.copy()
        return element(f"{{{ns.WXF}}}PutResponse", replacement.copy())

    @web_method(actions.DELETE)
    def delete(self, context: MessageContext) -> XmlElement:
        key = self._key(context)
        self._require(key)
        del self._resources[key]
        return element(f"{{{ns.WXF}}}DeleteResponse")
