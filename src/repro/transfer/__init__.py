"""Stack B part 1: WS-Transfer.

The four REST/CRUD operations — Create, Get, Put, Delete — over
EPR-addressed XML resource representations, with the behaviours the paper's
implementation settled on: GUID resource naming, Xindice-backed storage,
resource-vs-representation distinction hooks, and tolerance for resources
created out of band.
"""

from repro.transfer.service import (
    TRANSFER_RESOURCE_ID,
    TransferResourceService,
    actions,
)

__all__ = ["TRANSFER_RESOURCE_ID", "TransferResourceService", "actions"]
