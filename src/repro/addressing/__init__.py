"""WS-Addressing: endpoint references and message-information headers.

Both stacks lean on WS-Addressing — WSRF's WS-Resource Access Pattern is an
EPR whose *reference properties* identify the resource, and WS-Transfer mints
EPRs whose reference property carries the GUID resource id (paper §2, §3.2).
"""

from repro.addressing.epr import EndpointReference
from repro.addressing.headers import MessageHeaders

__all__ = ["EndpointReference", "MessageHeaders"]
