"""Endpoint references (WS-Addressing 2004/08)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xmllib import QName, element, ns, text_of
from repro.xmllib.element import XmlElement

_ADDRESS = QName(ns.WSA, "Address")
_REF_PROPS = QName(ns.WSA, "ReferenceProperties")
_EPR_TAG = QName(ns.WSA, "EndpointReference")


@dataclass(frozen=True)
class EndpointReference:
    """An address plus opaque reference properties.

    Reference properties are simple qualified-name → text pairs, which covers
    every use in the paper (WSRF resource keys, WS-Transfer GUIDs, the
    DN/filename paths of the WS-Transfer DataService).  Per WS-Addressing,
    reference properties are echoed as SOAP headers on every message sent to
    the endpoint.
    """

    address: str
    reference_properties: tuple[tuple[QName, str], ...] = field(default=())

    @classmethod
    def create(
        cls, address: str, properties: dict[str | QName, str] | None = None
    ) -> "EndpointReference":
        props = tuple(
            sorted(
                ((QName.parse(k), str(v)) for k, v in (properties or {}).items()),
                key=lambda kv: kv[0].sort_key(),
            )
        )
        return cls(address=address, reference_properties=props)

    def property(self, name: str | QName, default: str | None = None) -> str | None:
        want = QName.parse(name)
        for key, value in self.reference_properties:
            if key == want:
                return value
        return default

    def with_property(self, name: str | QName, value: str) -> "EndpointReference":
        props = dict(self.reference_properties)
        props[QName.parse(name)] = value
        return EndpointReference.create(self.address, props)

    # -- XML (de)serialization ----------------------------------------------

    def to_xml(self, tag: str | QName = _EPR_TAG) -> XmlElement:
        node = element(tag, element(_ADDRESS, self.address))
        if self.reference_properties:
            props = element(_REF_PROPS)
            for key, value in self.reference_properties:
                props.append(element(key, value))
            node.append(props)
        return node

    @classmethod
    def from_xml(cls, node: XmlElement) -> "EndpointReference":
        address = text_of(node.find(_ADDRESS))
        if not address:
            raise ValueError("EndpointReference has no wsa:Address")
        properties: dict[QName, str] = {}
        props = node.find(_REF_PROPS)
        if props is not None:
            for child in props.element_children():
                properties[child.tag] = child.text().strip()
        return cls.create(address, properties)
