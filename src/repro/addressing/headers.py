"""Message-information headers (To / Action / MessageID / ReplyTo / RelatesTo)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.addressing.epr import EndpointReference
from repro.xmllib import QName, element, ns, text_of
from repro.xmllib.element import XmlElement

_TO = QName(ns.WSA, "To")
_ACTION = QName(ns.WSA, "Action")
_MESSAGE_ID = QName(ns.WSA, "MessageID")
_REPLY_TO = QName(ns.WSA, "ReplyTo")
_RELATES_TO = QName(ns.WSA, "RelatesTo")

_id_counter = itertools.count(1)


def next_message_id() -> str:
    """Deterministic message ids (no wall clock, no real randomness)."""
    return f"urn:uuid:repro-{next(_id_counter):08d}"


@dataclass
class MessageHeaders:
    """The WS-Addressing header block of one SOAP message."""

    to: str
    action: str
    message_id: str = field(default_factory=next_message_id)
    reply_to: EndpointReference | None = None
    relates_to: str | None = None
    #: Reference properties of the target EPR, echoed as headers.
    reference_properties: tuple[tuple[QName, str], ...] = ()

    def to_elements(self) -> list[XmlElement]:
        out = [
            element(_TO, self.to),
            element(_ACTION, self.action),
            element(_MESSAGE_ID, self.message_id),
        ]
        if self.reply_to is not None:
            out.append(self.reply_to.to_xml(_REPLY_TO))
        if self.relates_to:
            out.append(element(_RELATES_TO, self.relates_to))
        for key, value in self.reference_properties:
            out.append(element(key, value))
        return out

    @classmethod
    def from_header_element(cls, header: XmlElement) -> "MessageHeaders":
        """Parse from a soap:Header element; unknown headers become
        reference properties (that is exactly how WS-Addressing reference
        properties arrive — as otherwise-unexplained headers)."""
        to = action = ""
        message_id = ""
        reply_to = None
        relates_to = None
        extras: dict[QName, str] = {}
        for child in header.element_children():
            if child.tag == _TO:
                to = child.text().strip()
            elif child.tag == _ACTION:
                action = child.text().strip()
            elif child.tag == _MESSAGE_ID:
                message_id = child.text().strip()
            elif child.tag == _REPLY_TO:
                reply_to = EndpointReference.from_xml(child)
            elif child.tag == _RELATES_TO:
                relates_to = child.text().strip()
            elif child.tag.namespace == ns.WSSE or child.tag.namespace == ns.DS:
                continue  # security headers handled by the security layer
            else:
                extras[child.tag] = child.text().strip()
        if not to or not action:
            raise ValueError("message lacks required wsa:To / wsa:Action headers")
        headers = cls(
            to=to,
            action=action,
            reply_to=reply_to,
            relates_to=relates_to,
            reference_properties=tuple(sorted(extras.items(), key=lambda kv: kv[0].sort_key())),
        )
        if message_id:
            headers.message_id = message_id
        return headers

    def target_epr(self) -> EndpointReference:
        """Reconstruct the EPR this message was addressed to."""
        return EndpointReference(self.to, self.reference_properties)
