"""WSRF.NET's cross-resource queries (implementation feature, not spec).

"This model of Resources allows WSRF.NET to perform rich queries over that
state of multiple resources using query languages such as XPath or XQuery"
(§3.1).  The mixin exposes one operation that evaluates an XPath across
*every* resource document of the service, returning matching resource EPRs
with their hits — the way an administrator finds, say, all reservations
held by one user.
"""

from __future__ import annotations

from repro.container.service import MessageContext, web_method
from repro.wsrf.basefaults import base_fault
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement
from repro.xmllib.xpath import XPathError

WSRFNET_NS = ns.WSRFNET
_XPATH_DIALECT = ns.XPATH_DIALECT


class actions:
    QUERY_RESOURCES = WSRFNET_NS + "/QueryResources"


class ResourceQueryMixin:
    """Port type: query across all WS-Resources of the service."""

    @web_method(actions.QUERY_RESOURCES)
    def wsrfnet_query_resources(self, context: MessageContext) -> XmlElement:
        query_el = context.body.find_local("QueryExpression")
        if query_el is None:
            raise base_fault("QueryResources has no QueryExpression")
        dialect = query_el.get("Dialect", _XPATH_DIALECT)
        if dialect != _XPATH_DIALECT:
            raise base_fault(
                f"unknown query dialect {dialect}",
                error_code="UnknownQueryExpressionDialectFault",
            )
        expression = text_of(query_el)
        try:
            hits = self.home.query(expression)
        except XPathError as exc:
            raise base_fault(
                f"invalid query: {exc}", error_code="InvalidQueryExpressionFault"
            )
        response = element(f"{{{WSRFNET_NS}}}QueryResourcesResponse")
        by_key: dict[str, XmlElement] = {}
        for key, node in hits:
            entry = by_key.get(key)
            if entry is None:
                entry = element(
                    f"{{{WSRFNET_NS}}}MatchedResource",
                    self.resource_epr(key).to_xml(),
                )
                by_key[key] = entry
                response.append(entry)
            if node.kind == "element":
                entry.append(node.node.copy())
            else:
                entry.append(element(f"{{{WSRFNET_NS}}}Value", node.string_value()))
        return response
