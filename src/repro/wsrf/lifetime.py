"""WS-ResourceLifetime: Destroy and scheduled termination.

("Create" is famously *not* defined — §2.1.)  Grid-in-a-Box leans on this
port type: reservations get an initial termination time, the ExecService
"claims" a reservation by lengthening it, and Destroy kills jobs / removes
directories.
"""

from __future__ import annotations

from repro.container.service import MessageContext, web_method
from repro.wsrf.basefaults import base_fault
from repro.wsrf.programming import resource_property
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement


class actions:
    """Action URIs of the WS-ResourceLifetime port types."""

    DESTROY = ns.WSRF_RL + "/Destroy"
    SET_TERMINATION_TIME = ns.WSRF_RL + "/SetTerminationTime"


def parse_termination_time(text: str) -> float | None:
    """Parse a termination time: a float of virtual ms, or empty/"infinity"
    for unlimited lifetime."""
    text = text.strip()
    if not text or text.lower() in ("infinity", "inf", "never"):
        return None
    try:
        return float(text)
    except ValueError:
        raise base_fault(
            f"unintelligible termination time: {text!r}",
            error_code="UnableToSetTerminationTimeFault",
        )


class ResourceLifetimeMixin:
    """Port type mixin providing Destroy/SetTerminationTime + lifetime RPs."""

    @web_method(actions.DESTROY)
    def wsrl_destroy(self, context: MessageContext) -> XmlElement:
        key = self.current_resource
        self.on_resource_destroyed(key)
        self.home.destroy(key)
        self.forget_current_resource()
        self.after_resource_destroyed(key)
        return element(f"{{{ns.WSRF_RL}}}DestroyResponse")

    @web_method(actions.SET_TERMINATION_TIME)
    def wsrl_set_termination_time(self, context: MessageContext) -> XmlElement:
        key = self.current_resource
        requested = context.body.find_local("RequestedTerminationTime")
        if requested is None:
            raise base_fault("SetTerminationTime has no RequestedTerminationTime")
        at = parse_termination_time(text_of(requested))
        now = self.network.clock.now
        # Inclusive boundary: a lease renewed to this very tick is already
        # dead (timers fire at fire_at <= now), so reject it like a past
        # instant — matching WS-Eventing's Expires <= now rule.
        if at is not None and at <= now:
            raise base_fault(
                f"termination time {at} is in the past (now={now})",
                error_code="UnableToSetTerminationTimeFault",
            )
        self.home.set_termination_time(key, at)
        return element(
            f"{{{ns.WSRF_RL}}}SetTerminationTimeResponse",
            element(f"{{{ns.WSRF_RL}}}NewTerminationTime", _format_time(at)),
            element(f"{{{ns.WSRF_RL}}}CurrentTime", repr(now)),
        )

    # -- spec-defined resource properties -------------------------------------

    @resource_property(f"{{{ns.WSRF_RL}}}CurrentTime")
    def wsrl_current_time(self):
        return repr(self.network.clock.now)

    @resource_property(f"{{{ns.WSRF_RL}}}TerminationTime")
    def wsrl_termination_time(self):
        return _format_time(self.home.termination_time(self.current_resource))


def _format_time(at: float | None) -> str:
    return "infinity" if at is None else repr(at)
