"""WS-ServiceGroup: represented, managed collections of services/resources.

A ServiceGroup's entries are themselves WS-Resources (destroying an entry
removes the member).  Membership content rules constrain what an entry's
content document may contain.  Grid-in-a-Box's WSRF ResourceAllocationService
uses a ServiceGroup to track the VO's available Exec/Data service pairs.
"""

from __future__ import annotations

from repro.addressing.epr import EndpointReference
from repro.container.service import MessageContext, web_method
from repro.wsrf.basefaults import base_fault
from repro.wsrf.lifetime import ResourceLifetimeMixin
from repro.wsrf.programming import ResourceField, WsResourceService, resource_property
from repro.wsrf.properties import ResourcePropertiesMixin
from repro.xmllib import QName, element, ns, parse_xml, serialize, text_of
from repro.xmllib.element import XmlElement


class actions:
    """Action URIs of the WS-ServiceGroup port types."""

    ADD = ns.WSRF_SG + "/Add"


class ServiceGroupService(ResourcePropertiesMixin, ResourceLifetimeMixin, WsResourceService):
    """A registry of member services; entries are WS-Resources.

    ``content_rules`` (element QNames) restrict entry content documents; an
    empty tuple admits anything.
    """

    service_name = "ServiceGroup"
    resource_ns = ns.WSRF_SG

    member_address = ResourceField(str, "")
    content_xml = ResourceField(str, "")

    def __init__(self, home, content_rules: tuple[QName, ...] = ()):
        super().__init__(home)
        self.content_rules = content_rules

    # -- the Add operation -----------------------------------------------------

    @web_method(actions.ADD)
    def wssg_add(self, context: MessageContext) -> XmlElement:
        member_el = context.body.find_local("MemberEPR")
        if member_el is None:
            raise base_fault("Add has no MemberEPR")
        member = EndpointReference.from_xml(member_el)
        content_el = context.body.find_local("Content")
        content = next(content_el.element_children(), None) if content_el is not None else None
        if self.content_rules and (
            content is None or content.tag not in self.content_rules
        ):
            got = content.tag.clark() if content is not None else "nothing"
            raise base_fault(
                f"content {got} violates this group's membership rules",
                error_code="ContentCreationFailedFault",
            )
        entry_epr = self.create_resource(
            member_address=serialize(member.to_xml()),
            content_xml=serialize(content) if content is not None else "",
        )
        return element(
            f"{{{ns.WSRF_SG}}}AddResponse", entry_epr.to_xml()
        )

    # -- entry resource properties ------------------------------------------------

    @resource_property(f"{{{ns.WSRF_SG}}}MemberServiceEPR")
    def rp_member_epr(self):
        if not self.member_address:
            return None
        return parse_xml(self.member_address)

    @resource_property(f"{{{ns.WSRF_SG}}}Content")
    def rp_content(self):
        if not self.content_xml:
            return None
        wrapper = element(f"{{{ns.WSRF_SG}}}Content")
        wrapper.append(parse_xml(self.content_xml))
        return wrapper

    # -- service-side helpers (used by Grid-in-a-Box) -------------------------------

    def members(self) -> list[tuple[str, EndpointReference, XmlElement | None]]:
        """All live entries as (entry key, member EPR, content)."""
        out = []
        for key in self.home.keys():
            doc = self.home.load(key)
            address_xml = text_of(doc.find(f"{{{ns.WSRF_FIELDS}}}member_address"))
            content_xml = text_of(doc.find(f"{{{ns.WSRF_FIELDS}}}content_xml"))
            epr = EndpointReference.from_xml(parse_xml(address_xml))
            content = parse_xml(content_xml) if content_xml else None
            out.append((key, epr, content))
        return out

    def remove_entry(self, entry_key: str) -> None:
        self.home.destroy(entry_key)
