"""WS-ServiceGroup: represented, managed collections of services/resources.

A ServiceGroup's entries are themselves WS-Resources (destroying an entry
removes the member).  Membership content rules constrain what an entry's
content document may contain.  Grid-in-a-Box's WSRF ResourceAllocationService
uses a ServiceGroup to track the VO's available Exec/Data service pairs.
"""

from __future__ import annotations

from repro.addressing.epr import EndpointReference
from repro.container.service import MessageContext, web_method
from repro.wsrf.basefaults import base_fault
from repro.wsrf.lifetime import ResourceLifetimeMixin
from repro.wsrf.programming import ResourceField, WsResourceService, resource_property
from repro.wsrf.properties import ResourcePropertiesMixin
from repro.xmllib import QName, element, ns, parse_xml, serialize, text_of
from repro.xmllib.element import XmlElement
from repro.xmllib.xpath import xpath_literal

#: Index path for member lookup by address URI (opt-in via ``enable_index``).
MEMBER_INDEX_PATH = "//f:member_uri"
MEMBER_INDEX_PREFIXES = {"f": ns.WSRF_FIELDS}


class actions:
    """Action URIs of the WS-ServiceGroup port types."""

    ADD = ns.WSRF_SG + "/Add"


class ServiceGroupService(ResourcePropertiesMixin, ResourceLifetimeMixin, WsResourceService):
    """A registry of member services; entries are WS-Resources.

    ``content_rules`` (element QNames) restrict entry content documents; an
    empty tuple admits anything.
    """

    service_name = "ServiceGroup"
    resource_ns = ns.WSRF_SG

    member_address = ResourceField(str, "")
    #: Bare address URI, duplicated out of the EPR so an equality index can
    #: cover member lookups without parsing serialized EPR XML.
    member_uri = ResourceField(str, "")
    content_xml = ResourceField(str, "")

    def __init__(self, home, content_rules: tuple[QName, ...] = ()):
        super().__init__(home)
        self.content_rules = content_rules

    # -- the Add operation -----------------------------------------------------

    @web_method(actions.ADD)
    def wssg_add(self, context: MessageContext) -> XmlElement:
        member_el = context.body.find_local("MemberEPR")
        if member_el is None:
            raise base_fault("Add has no MemberEPR")
        member = EndpointReference.from_xml(member_el)
        content_el = context.body.find_local("Content")
        content = next(content_el.element_children(), None) if content_el is not None else None
        if self.content_rules and (
            content is None or content.tag not in self.content_rules
        ):
            got = content.tag.clark() if content is not None else "nothing"
            raise base_fault(
                f"content {got} violates this group's membership rules",
                error_code="ContentCreationFailedFault",
            )
        entry_epr = self.create_resource(
            member_address=serialize(member.to_xml()),
            member_uri=member.address,
            content_xml=serialize(content) if content is not None else "",
        )
        return element(
            f"{{{ns.WSRF_SG}}}AddResponse", entry_epr.to_xml()
        )

    # -- entry resource properties ------------------------------------------------

    @resource_property(f"{{{ns.WSRF_SG}}}MemberServiceEPR")
    def rp_member_epr(self):
        if not self.member_address:
            return None
        return parse_xml(self.member_address)

    @resource_property(f"{{{ns.WSRF_SG}}}Content")
    def rp_content(self):
        if not self.content_xml:
            return None
        wrapper = element(f"{{{ns.WSRF_SG}}}Content")
        wrapper.append(parse_xml(self.content_xml))
        return wrapper

    # -- service-side helpers (used by Grid-in-a-Box) -------------------------------

    def members(self) -> list[tuple[str, EndpointReference, XmlElement | None]]:
        """All live entries as (entry key, member EPR, content)."""
        out = []
        for key in self.home.keys():
            doc = self.home.load(key)
            address_xml = text_of(doc.find(f"{{{ns.WSRF_FIELDS}}}member_address"))
            content_xml = text_of(doc.find(f"{{{ns.WSRF_FIELDS}}}content_xml"))
            epr = EndpointReference.from_xml(parse_xml(address_xml))
            content = parse_xml(content_xml) if content_xml else None
            out.append((key, epr, content))
        return out

    def remove_entry(self, entry_key: str) -> None:
        self.home.destroy(entry_key)

    # -- indexed member lookup (opt-in; default cost profile is unchanged) -----

    def enable_index(self):
        """Declare the member-address index; from then on every Add keeps it
        current and :meth:`entries_for_member` answers in O(hits)."""
        return self.home.declare_index(MEMBER_INDEX_PATH, MEMBER_INDEX_PREFIXES)

    def entries_for_member(self, address: str) -> list[str]:
        """Entry keys registered for a member address.

        Routes through the query planner, so with :meth:`enable_index` this
        is an O(hits) posting-list lookup; without it, a charged scan.  An
        address that cannot be spelled as an XPath literal (contains both
        quote kinds) falls back to loading the members list.
        """
        literal = xpath_literal(address)
        if literal is not None:
            return self.home.query_keys(
                f"{MEMBER_INDEX_PATH}[. = {literal}]", MEMBER_INDEX_PREFIXES
            )
        return [key for key, epr, _ in self.members() if epr.address == address]

    def remove_member(self, address: str) -> int:
        """Destroy every entry for ``address``; returns how many were removed."""
        keys = self.entries_for_member(address)
        for key in keys:
            self.home.destroy(key)
        return len(keys)
