"""The WSRF.NET attribute-based programming model, in Python.

The paper's C# fragment:

.. code-block:: csharp

    [WSRFPortType(typeof(GetResourcePropertyPortType))]
    public class MyService : ServiceSkeleton {
        [Resource] int v;
        [ResourceProperty] public int DoubleValue { get { return v * 2; } }
    }

maps to:

.. code-block:: python

    class MyService(ResourcePropertiesMixin, WsResourceService):
        v = ResourceField(int, 0)

        @resource_property("{urn:app}DoubleValue")
        def double_value(self):
            return self.v * 2

``ResourceField`` members are loaded from the backing store before each
method invocation (based on the EPR in the request headers) and saved back
afterwards — exactly the run-time processing §3.1 describes.  Port types
are mixins; :func:`aggregate_port_types` plays the PortTypeAggregator for
dynamic composition.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.addressing.epr import EndpointReference
from repro.container.service import MessageContext, ServiceSkeleton
from repro.soap.envelope import SoapFault
from repro.wsrf.basefaults import base_fault
from repro.wsrf.resource import RESOURCE_ID, ResourceHome, ResourceUnknownError
from repro.xmllib import QName, element, ns
from repro.xmllib.element import XmlElement

_RESOURCE_DOC = QName(ns.REPRO_WSRF, "Resource")
_FIELD_NS = ns.WSRF_FIELDS


class ResourceField:
    """A data member persisted as part of the WS-Resource (``[Resource]``)."""

    def __init__(self, field_type: type = str, default: Any = None):
        if field_type not in (str, int, float, bool):
            raise TypeError(f"unsupported resource field type: {field_type!r}")
        self.field_type = field_type
        self.default = default if default is not None else field_type()
        self.name = ""

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name

    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        return instance.__dict__.get(self.name, self.default)

    def __set__(self, instance, value) -> None:
        instance.__dict__[self.name] = self.field_type(value)
        # Dirty-tracking lets the dispatch wrapper skip the write-back for
        # read-only operations (a Get costs one DB read, not read+update).
        instance.__dict__["_fields_dirty"] = True

    # -- (de)serialization ---------------------------------------------------

    def to_text(self, value: Any) -> str:
        if self.field_type is bool:
            return "true" if value else "false"
        if self.field_type is float:
            return repr(float(value))
        return str(value)

    def from_text(self, text: str) -> Any:
        if self.field_type is bool:
            return text.strip() == "true"
        return self.field_type(text.strip())


def resource_property(
    qname: str | QName, *, settable: bool = False
) -> Callable[[Callable], Callable]:
    """Mark a zero-argument method as a ResourceProperty getter
    (``[ResourceProperty]``).

    The method may return an :class:`XmlElement` (used as-is), a list of
    them, or a plain value (wrapped in an element named ``qname``).  With
    ``settable=True`` the service must also define ``set_<method-name>``
    taking the replacement element, used by SetResourceProperties.
    """
    parsed = QName.parse(qname)

    def mark(func: Callable) -> Callable:
        func.__rp_qname__ = parsed
        func.__rp_settable__ = settable
        return func

    return mark


class WsResourceService(ServiceSkeleton):
    """Base class of every WSRF.NET-style service (the "wrapper service").

    Subclasses declare :class:`ResourceField` members and RP getters; the
    dispatch wrapper resolves the EPR, loads fields from the home, runs the
    operation, and saves fields back.
    """

    #: Namespace of this service's ResourceProperties document.
    resource_ns: str = ns.WSRF_APP

    def __init__(self, home: ResourceHome) -> None:
        super().__init__()
        self.home = home
        self.home.on_terminate = self._on_scheduled_termination
        self.home.after_terminate = self.after_resource_destroyed
        self._fields: dict[str, ResourceField] = {}
        self._rp_getters: dict[QName, str] = {}
        for klass in type(self).__mro__:
            for name, member in vars(klass).items():
                if isinstance(member, ResourceField) and name not in self._fields:
                    self._fields[name] = member
                qname = getattr(member, "__rp_qname__", None)
                if qname is not None and qname not in self._rp_getters:
                    self._rp_getters[qname] = name
        self._current_key: str | None = None

    # -- the wrapper: EPR resolution + load/save -----------------------------

    def dispatch(self, context: MessageContext) -> XmlElement | None:
        key = context.headers.target_epr().property(RESOURCE_ID)
        # Timers firing mid-dispatch can trigger *nested* dispatches on this
        # same instance (a job-exit callback out-calling another of our own
        # operations), so the per-invocation execution context is saved and
        # restored rather than simply reset.
        saved = (
            self._current_key,
            {name: self.__dict__.get(name) for name in self._fields},
            self.__dict__.get("_fields_dirty", False),
        )
        self._current_key = None
        if key is not None:
            try:
                self._load_fields(self.home.load(key))
            except ResourceUnknownError:
                self._restore_context(saved)
                raise base_fault(
                    f"resource {key} unknown to {self.service_name}",
                    error_code="ResourceUnknownFault",
                    originator=self.address,
                    timestamp=self.network.clock.now,
                )
            self._current_key = key
        try:
            result = super().dispatch(context)
            if (
                self._current_key is not None
                and self.__dict__.get("_fields_dirty")
                and self.home.contains(self._current_key)
            ):
                self.save_current()
            return result
        finally:
            self._restore_context(saved)

    def _restore_context(self, saved) -> None:
        self._current_key, field_values, dirty = saved
        for name, value in field_values.items():
            if value is None:
                self.__dict__.pop(name, None)
            else:
                self.__dict__[name] = value
        self.__dict__["_fields_dirty"] = dirty

    def save_current(self) -> None:
        """Persist the loaded fields now (and mark them clean), so later
        work in the same invocation — a notification, an out-call — sees
        the new state without a second write-back at dispatch exit."""
        self.home.save(self.current_resource, self._dump_fields())
        self.__dict__["_fields_dirty"] = False

    @property
    def current_resource(self) -> str:
        """Key of the resource the current invocation addresses."""
        if self._current_key is None:
            raise base_fault(
                f"{self.service_name}: operation requires a WS-Resource EPR",
                error_code="ResourceUnknownFault",
            )
        return self._current_key

    def forget_current_resource(self) -> None:
        """Stop the wrapper saving state back (used after Destroy)."""
        self._current_key = None

    # -- ServiceBase.Create() ------------------------------------------------

    def create_resource(self, key: str | None = None, **field_values: Any) -> EndpointReference:
        """The WSRF.NET ``Create()`` library method: persist a new resource
        document and mint its EPR.  WSRF leaves *exposure* of creation to the
        service author — services call this from whatever operation they
        choose (the paper's "lack of Create in WSRF" observation)."""
        for name in field_values:
            if name not in self._fields:
                raise ValueError(f"unknown resource field: {name}")
        values = {
            name: field_values.get(name, field.default)
            for name, field in self._fields.items()
        }
        document = self._document_from_values(values)
        key = self.home.create(document, key)
        return self.resource_epr(key)

    def resource_epr(self, key: str) -> EndpointReference:
        return self.epr({RESOURCE_ID: key})

    # -- field (de)serialization ------------------------------------------------

    def _load_fields(self, document: XmlElement) -> None:
        for name, field in self._fields.items():
            child = document.find(QName(_FIELD_NS, name))
            if child is not None:
                self.__dict__[name] = field.from_text(child.text())
            else:
                self.__dict__[name] = field.default
        self.__dict__["_fields_dirty"] = False

    def _dump_fields(self) -> XmlElement:
        return self._document_from_values(
            {name: getattr(self, name) for name in self._fields}
        )

    def _document_from_values(self, values: dict[str, Any]) -> XmlElement:
        document = element(_RESOURCE_DOC)
        for name, field in self._fields.items():
            document.append(element(QName(_FIELD_NS, name), field.to_text(values[name])))
        return document

    # -- ResourceProperties document ----------------------------------------------

    def rp_document(self) -> XmlElement:
        """Materialize the ResourceProperties view of the current resource.

        "This document is a view or projection of the state of the
        WS-Resource and is typically not equivalent to the state" — getters
        may compute values dynamically from fields.
        """
        doc = element(QName(self.resource_ns, "ResourceProperties"))
        for qname, getter_name in sorted(
            self._rp_getters.items(), key=lambda kv: kv[0].sort_key()
        ):
            value = getattr(self, getter_name)()
            for node in _as_rp_elements(qname, value):
                doc.append(node)
        return doc

    def rp_getter(self, qname: QName) -> Callable | None:
        name = self._rp_getters.get(qname)
        if name is None:
            # Fall back to local-name match (clients often omit namespaces).
            for known, getter in self._rp_getters.items():
                if known.local == qname.local:
                    return getattr(self, getter)
            return None
        return getattr(self, name)

    def rp_setter(self, qname: QName) -> Callable | None:
        for known, getter_name in self._rp_getters.items():
            if known == qname or known.local == qname.local:
                getter = getattr(type(self), getter_name, None)
                if getter is not None and getattr(getter, "__rp_settable__", False):
                    return getattr(self, f"set_{getter_name}", None)
        return None

    def rp_names(self) -> list[QName]:
        return sorted(self._rp_getters, key=QName.sort_key)

    # -- hooks ------------------------------------------------------------------

    def _on_scheduled_termination(self, key: str) -> None:
        """Called by the home when a scheduled termination fires."""
        self.on_resource_destroyed(key)

    def on_resource_destroyed(self, key: str) -> None:
        """Subclass hook, fired *before* destruction: the resource document
        is still readable (and, on an explicit Destroy, loaded into the
        service's ResourceFields)."""

    def after_resource_destroyed(self, key: str) -> None:
        """Subclass hook, fired *after* destruction completed — the point
        where "membership changed" style bookkeeping belongs."""


def _as_rp_elements(qname: QName, value: Any) -> list[XmlElement]:
    if value is None:
        return []
    if isinstance(value, XmlElement):
        # A getter may return a foreign element (say an EPR); it still must
        # appear in the RP document under the property's own name.
        if value.tag == qname:
            return [value]
        return [element(qname, value)]
    if isinstance(value, (list, tuple)):
        out: list[XmlElement] = []
        for item in value:
            out.extend(_as_rp_elements(qname, item))
        return out
    if isinstance(value, bool):
        value = "true" if value else "false"
    return [element(qname, str(value))]


def aggregate_port_types(
    name: str, base: type, *port_types: type
) -> type:
    """The PortTypeAggregator: compose a deployable service class from a
    user-defined service and imported port-type mixins."""
    for port_type in port_types:
        if not issubclass(port_type, object):  # pragma: no cover - defensive
            raise TypeError(f"not a port type: {port_type!r}")
    return type(name, (*port_types, base), {})
