"""WS-BaseFaults: the standard exception reporting format."""

from __future__ import annotations

from repro.soap.envelope import SoapFault
from repro.xmllib import element, ns
from repro.xmllib.element import XmlElement

_BASE_FAULT = f"{{{ns.WSRF_BF}}}BaseFault"


def fault_detail(
    description: str,
    *,
    timestamp: float = 0.0,
    originator: str = "",
    error_code: str = "",
) -> XmlElement:
    """Build a wsbf:BaseFault detail element."""
    detail = element(
        _BASE_FAULT,
        element(f"{{{ns.WSRF_BF}}}Timestamp", repr(timestamp)),
        element(f"{{{ns.WSRF_BF}}}Description", description),
    )
    if originator:
        detail.append(element(f"{{{ns.WSRF_BF}}}Originator", originator))
    if error_code:
        detail.append(element(f"{{{ns.WSRF_BF}}}ErrorCode", error_code))
    return detail


def base_fault(
    description: str,
    *,
    code: str = "Client",
    timestamp: float = 0.0,
    originator: str = "",
    error_code: str = "",
) -> SoapFault:
    """A SOAP fault whose detail follows WS-BaseFaults."""
    return SoapFault(
        code,
        description,
        fault_detail(
            description,
            timestamp=timestamp,
            originator=originator,
            error_code=error_code,
        ),
    )


def is_base_fault(fault: SoapFault) -> bool:
    return fault.detail is not None and fault.detail.tag.namespace == ns.WSRF_BF
