"""WS-ResourceProperties: query and modify the RP document.

The four operations the spec defines and the paper's services use:
GetResourceProperty, GetMultipleResourceProperties, SetResourceProperties
(Insert/Update/Delete modifiers) and QueryResourceProperties (XPath
dialect).
"""

from __future__ import annotations

from repro.container.service import MessageContext, web_method
from repro.wsrf.basefaults import base_fault
from repro.xmllib import QName, element, ns, text_of
from repro.xmllib.element import XmlElement
from repro.xmllib.xpath import XPath, XPathError


class actions:
    """Action URIs of the WS-ResourceProperties port types."""

    GET = ns.WSRF_RP + "/GetResourceProperty"
    GET_MULTIPLE = ns.WSRF_RP + "/GetMultipleResourceProperties"
    SET = ns.WSRF_RP + "/SetResourceProperties"
    QUERY = ns.WSRF_RP + "/QueryResourceProperties"


_XPATH_DIALECT = ns.XPATH_DIALECT


def _parse_rp_name(text: str) -> QName:
    text = text.strip()
    if not text:
        raise base_fault("empty ResourceProperty name", error_code="InvalidResourcePropertyQNameFault")
    if text.startswith("{"):
        return QName.parse(text)
    if ":" in text:  # prefixed form — match on local name
        text = text.rsplit(":", 1)[1]
    return QName("", text)


class ResourcePropertiesMixin:
    """Port type mixin: import with ``class S(ResourcePropertiesMixin, WsResourceService)``."""

    @web_method(actions.GET)
    def wsrp_get_resource_property(self, context: MessageContext) -> XmlElement:
        self.current_resource  # fault if no resource in EPR
        name = _parse_rp_name(context.body.text())
        getter = self.rp_getter(name)
        if getter is None:
            raise base_fault(
                f"{self.service_name} has no ResourceProperty {name.clark()}",
                error_code="InvalidResourcePropertyQNameFault",
            )
        response = element(f"{{{ns.WSRF_RP}}}GetResourcePropertyResponse")
        doc = self.rp_document()
        for child in doc.element_children():
            if child.tag.local == name.local and (
                not name.namespace or child.tag.namespace == name.namespace
            ):
                response.append(child)
        return response

    @web_method(actions.GET_MULTIPLE)
    def wsrp_get_multiple(self, context: MessageContext) -> XmlElement:
        self.current_resource
        wanted = [
            _parse_rp_name(child.text())
            for child in context.body.element_children()
            if child.tag.local == "ResourceProperty"
        ]
        if not wanted:
            raise base_fault("GetMultipleResourceProperties names no properties")
        response = element(f"{{{ns.WSRF_RP}}}GetMultipleResourcePropertiesResponse")
        doc = self.rp_document()
        for name in wanted:
            if self.rp_getter(name) is None:
                raise base_fault(
                    f"no ResourceProperty {name.clark()}",
                    error_code="InvalidResourcePropertyQNameFault",
                )
            for child in doc.element_children():
                if child.tag.local == name.local:
                    response.append(child)
        return response

    @web_method(actions.SET)
    def wsrp_set_resource_properties(self, context: MessageContext) -> XmlElement:
        self.current_resource
        changed = 0
        for modifier in context.body.element_children():
            kind = modifier.tag.local
            if kind == "Update":
                for replacement in modifier.element_children():
                    self._apply_rp_update(replacement)
                    changed += 1
            elif kind == "Delete":
                name = _parse_rp_name(modifier.get("ResourceProperty", "") or "")
                setter = self.rp_setter(name)
                if setter is None:
                    raise base_fault(
                        f"ResourceProperty {name.clark()} is not modifiable",
                        error_code="UnableToModifyResourcePropertyFault",
                    )
                setter(None)
                changed += 1
            elif kind == "Insert":
                # Our RP values are single-valued projections of fields;
                # Insert degenerates to Update (multiplicity is a schema
                # concern WSRF.NET also punted to the service author).
                for replacement in modifier.element_children():
                    self._apply_rp_update(replacement)
                    changed += 1
            else:
                raise base_fault(f"unknown SetResourceProperties modifier: {kind}")
        if changed == 0:
            raise base_fault("SetResourceProperties carried no modifications")
        return element(f"{{{ns.WSRF_RP}}}SetResourcePropertiesResponse")

    def _apply_rp_update(self, replacement: XmlElement) -> None:
        setter = self.rp_setter(replacement.tag)
        if setter is None:
            raise base_fault(
                f"ResourceProperty {replacement.tag.clark()} is not modifiable",
                error_code="UnableToModifyResourcePropertyFault",
            )
        setter(replacement)

    @web_method(actions.QUERY)
    def wsrp_query_resource_properties(self, context: MessageContext) -> XmlElement:
        self.current_resource
        query_el = context.body.find_local("QueryExpression")
        if query_el is None:
            raise base_fault("QueryResourceProperties has no QueryExpression")
        dialect = query_el.get("Dialect", _XPATH_DIALECT)
        if dialect != _XPATH_DIALECT:
            raise base_fault(
                f"unknown query dialect {dialect}", error_code="UnknownQueryExpressionDialectFault"
            )
        expression = text_of(query_el)
        try:
            xpath = XPath(expression)
            hits = xpath.evaluate(self.rp_document())
        except XPathError as exc:
            raise base_fault(
                f"invalid query: {exc}", error_code="InvalidQueryExpressionFault"
            )
        response = element(f"{{{ns.WSRF_RP}}}QueryResourcePropertiesResponse")
        if isinstance(hits, list):
            for hit in hits:
                if hit.kind == "element":
                    response.append(hit.node.copy())
                else:
                    response.append(hit.string_value())
        else:
            response.append(str(hits))
        return response
