"""Stack A part 1: the WS-Resource Framework (WSRF.NET's feature set).

Implements the four OASIS WSRF specifications the paper evaluates —
WS-ResourceProperties, WS-ResourceLifetime, WS-ServiceGroup and
WS-BaseFaults — plus the WSRF.NET attribute-based programming model
(``ResourceField`` descriptors standing in for C#'s ``[Resource]``,
``@resource_property`` for ``[ResourceProperty]``, and port-type mixins for
``[WSRFPortType]`` + the PortTypeAggregator).
"""

from repro.wsrf.basefaults import base_fault, fault_detail
from repro.wsrf.resource import RESOURCE_ID, ResourceHome, ResourceUnknownError
from repro.wsrf.programming import (
    ResourceField,
    WsResourceService,
    aggregate_port_types,
    resource_property,
)
from repro.wsrf.properties import ResourcePropertiesMixin, actions as rp_actions
from repro.wsrf.lifetime import ResourceLifetimeMixin, actions as rl_actions
from repro.wsrf.servicegroup import ServiceGroupService, actions as sg_actions
from repro.wsrf.queries import ResourceQueryMixin, actions as query_actions

__all__ = [
    "base_fault",
    "fault_detail",
    "RESOURCE_ID",
    "ResourceHome",
    "ResourceUnknownError",
    "ResourceField",
    "WsResourceService",
    "aggregate_port_types",
    "resource_property",
    "ResourcePropertiesMixin",
    "ResourceLifetimeMixin",
    "ServiceGroupService",
    "ResourceQueryMixin",
    "query_actions",
    "rp_actions",
    "rl_actions",
    "sg_actions",
]
