"""Generic Create exposure (WSRF.NET's "option one", §3.1).

WSRF leaves creation undefined; WSRF.NET gives authors a library
``Create()`` and two exposure options: "the direct exposure of this method
in the Web Service interface" or wrapping it inside some other method.
The counter and Grid-in-a-Box services take option two (application-named
operations); this mixin is option one — a spec-less but reusable
``Create`` operation that accepts initial field values by name.
"""

from __future__ import annotations

from repro.container.service import MessageContext, web_method
from repro.wsrf.basefaults import base_fault
from repro.xmllib import element, ns
from repro.xmllib.element import XmlElement

WSRFNET_NS = ns.WSRFNET


class actions:
    CREATE = WSRFNET_NS + "/Create"


class DirectCreateMixin:
    """Port type exposing ``ServiceBase.Create()`` directly.

    The request body's children name resource fields by local name::

        <wsrfnet:Create>
          <cv>5</cv>
          <label>mine</label>
        </wsrfnet:Create>

    Exactly the idiosyncrasy §2.3 warns about: every service that exposes
    creation this way invents its own vocabulary, and two services'
    "Create" operations need not interoperate.
    """

    @web_method(actions.CREATE)
    def wsrfnet_create(self, context: MessageContext) -> XmlElement:
        values = {}
        for child in context.body.element_children():
            name = child.tag.local
            if name not in self._fields:
                raise base_fault(f"service has no resource field {name!r}")
            values[name] = self._fields[name].from_text(child.text())
        epr = self.create_resource(**values)
        return element(f"{{{WSRFNET_NS}}}CreateResponse", epr.to_xml())
