"""The WS-Resource model: state documents addressed by EPR.

WSRF.NET "models Resources as XML documents that can be persisted to various
backend stores" with a write-through cache in front.  A :class:`ResourceHome`
owns the documents of one service, the EPR→resource resolution key, and the
scheduled-termination machinery used by WS-ResourceLifetime.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.clock import Timer
from repro.sim.network import Network
from repro.xmldb.cache import WriteThroughCache
from repro.xmldb.collection import Collection, DocumentNotFound
from repro.xmllib import QName, ns
from repro.xmllib.element import XmlElement

#: Reference property carrying the resource key (the WS-Resource Access
#: Pattern as embodied by WSRF.NET).
RESOURCE_ID = QName(ns.REPRO_WSRF, "ResourceID")


class ResourceUnknownError(LookupError):
    """EPR names a resource that does not exist (wsrf ResourceUnknownFault)."""

    def __init__(self, key: str):
        super().__init__(f"unknown WS-Resource: {key}")
        self.key = key


class ResourceHome:
    """Storage + lifetime bookkeeping for one service's WS-Resources."""

    def __init__(
        self,
        name: str,
        network: Network,
        *,
        cached: bool = True,
        backend=None,
    ) -> None:
        self.network = network
        collection = Collection(name, network, backend)
        self.store = WriteThroughCache(collection) if cached else collection
        self._termination_time: dict[str, float] = {}
        self._timers: dict[str, Timer] = {}
        #: Invoked with the resource key just before scheduled destruction
        #: (the document is still readable).
        self.on_terminate: Callable[[str], None] | None = None
        #: Invoked just after scheduled destruction completed.
        self.after_terminate: Callable[[str], None] | None = None

    # -- CRUD in resource terms ------------------------------------------------

    def create(self, document: XmlElement, key: str | None = None) -> str:
        return self.store.insert(document, key)

    def load(self, key: str) -> XmlElement:
        try:
            return self.store.read(key)
        except DocumentNotFound as exc:
            raise ResourceUnknownError(key) from exc

    def save(self, key: str, document: XmlElement) -> None:
        try:
            self.store.update(key, document)
        except DocumentNotFound as exc:
            raise ResourceUnknownError(key) from exc

    def destroy(self, key: str) -> None:
        try:
            self.store.delete(key)
        except DocumentNotFound as exc:
            raise ResourceUnknownError(key) from exc
        self._clear_schedule(key)

    def contains(self, key: str) -> bool:
        return self.store.contains(key)

    def keys(self) -> list[str]:
        return self.store.keys()

    def query(self, expression: str, prefixes: dict[str, str] | None = None):
        return self.store.query(expression, prefixes)

    def query_keys(self, expression: str, prefixes: dict[str, str] | None = None):
        return self.store.query_keys(expression, prefixes)

    # -- secondary indexes -------------------------------------------------

    def declare_index(self, path: str, prefixes: dict[str, str] | None = None):
        """Declare a secondary index over this home's resource documents;
        ``query``/``query_keys`` then answer covered lookups in O(hits)."""
        return self.store.declare_index(path, prefixes)

    def find_index(self, path: str, prefixes: dict[str, str] | None = None):
        return self.store.find_index(path, prefixes)

    def index_values(self, path: str, prefixes: dict[str, str] | None = None) -> list[str]:
        return self.store.index_values(path, prefixes)

    # -- scheduled termination (WS-ResourceLifetime) ------------------------------

    def termination_time(self, key: str) -> float | None:
        """Scheduled termination instant, or None for infinite lifetime."""
        return self._termination_time.get(key)

    def set_termination_time(self, key: str, at: float | None) -> None:
        """(Re)schedule destruction of ``key`` at virtual time ``at``.

        ``None`` means never (the Grid-in-a-Box "claim" path sets infinity
        this way).  The previous schedule, if any, is cancelled.
        """
        if not self.contains(key):
            raise ResourceUnknownError(key)
        self._clear_schedule(key)
        if at is None:
            return
        self._termination_time[key] = at
        self._timers[key] = self.network.kernel.call_at(
            at, lambda: self._terminate(key), label=f"terminate:{key}"
        )

    def _terminate(self, key: str) -> None:
        # Timer-fired: runs on the clock, on behalf of no request, under
        # the kernel timer's <timer> pseudo-host — the sanitizer's one
        # legitimate lease-expiry channel, not a cross-host memory poke.
        if not self.contains(key):
            return
        if self.on_terminate is not None:
            self.on_terminate(key)
        # The hook may itself have destroyed the resource.
        if self.contains(key):
            self.store.delete(key)
        self._clear_schedule(key)
        if self.after_terminate is not None:
            self.after_terminate(key)

    def _clear_schedule(self, key: str) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            self.network.kernel.cancel(timer)
        self._termination_time.pop(key, None)
