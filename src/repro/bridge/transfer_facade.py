"""A WS-Transfer face over a WSRF backing service.

The reverse gateway: CRUD clients drive a WSRF service.  Get assembles a
representation from GetResourceProperty calls (one per mapped property),
Put becomes SetResourceProperties, Delete becomes Destroy, Create calls the
backing service's application-specific creation operation.
"""

from __future__ import annotations

from repro.addressing.epr import EndpointReference
from repro.bridge.mapping import BridgeMapping
from repro.container.service import MessageContext, ServiceSkeleton, web_method
from repro.soap.envelope import SoapFault
from repro.transfer.service import TRANSFER_RESOURCE_ID, actions as wxf_actions
from repro.wsrf.lifetime import actions as rl_actions
from repro.wsrf.properties import actions as rp_actions
from repro.wsrf.resource import RESOURCE_ID
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement


class TransferFacadeService(ServiceSkeleton):
    service_name = "TransferFacade"

    def __init__(self, backing_address: str, mapping: BridgeMapping):
        super().__init__()
        self.backing_address = backing_address
        self.mapping = mapping

    def _backing_epr(self, context: MessageContext) -> EndpointReference:
        key = context.headers.target_epr().property(TRANSFER_RESOURCE_ID)
        if key is None:
            key = context.resource_key
        if key is None:
            raise SoapFault("Client", f"{self.service_name}: EPR names no resource")
        return EndpointReference.create(self.backing_address).with_property(
            RESOURCE_ID, key
        )

    # -- the four verbs, bridged ---------------------------------------------------

    @web_method(wxf_actions.GET)
    def bridged_get(self, context: MessageContext) -> XmlElement:
        backing = self._backing_epr(context)
        client = context.client()
        representation = element(self.mapping.representation_tag)
        for rp, child_tag in self.mapping.properties.items():
            response = client.invoke(
                backing,
                rp_actions.GET,
                element(f"{{{ns.WSRF_RP}}}GetResourceProperty", rp.clark()),
            )
            for node in response.element_children():
                representation.append(element(child_tag, node.text()))
        return element(f"{{{ns.WXF}}}GetResponse", representation)

    @web_method(wxf_actions.PUT)
    def bridged_put(self, context: MessageContext) -> XmlElement:
        replacement = next(context.body.element_children(), None)
        if replacement is None:
            raise SoapFault("Client", "Put carries no replacement representation")
        update = element(f"{{{ns.WSRF_RP}}}Update")
        for child in replacement.element_children():
            rp = self.mapping.property_for_child(child.tag)
            if rp is None:
                continue  # <xsd:any>: ignore what the backing cannot hold
            update.append(element(rp, child.text()))
        if not list(update.element_children()):
            raise SoapFault("Client", "replacement matches no mapped properties")
        context.client().invoke(
            self._backing_epr(context),
            rp_actions.SET,
            element(f"{{{ns.WSRF_RP}}}SetResourceProperties", update),
        )
        return element(f"{{{ns.WXF}}}PutResponse", replacement.copy())

    @web_method(wxf_actions.DELETE)
    def bridged_delete(self, context: MessageContext) -> XmlElement:
        context.client().invoke(
            self._backing_epr(context), rl_actions.DESTROY, element(f"{{{ns.WSRF_RL}}}Destroy")
        )
        return element(f"{{{ns.WXF}}}DeleteResponse")

    @web_method(wxf_actions.CREATE)
    def bridged_create(self, context: MessageContext) -> XmlElement:
        representation = next(context.body.element_children(), None)
        body = element(self.mapping.create_body_tag)
        if representation is not None:
            value_tag = next(iter(self.mapping.defaults))
            source = representation.find(value_tag) or representation.find_local(
                value_tag.local
            )
            if source is not None:
                body.append(
                    element(
                        f"{{{self.mapping.create_body_tag.namespace}}}Initial",
                        source.text().strip(),
                    )
                )
        response = context.client().invoke(
            EndpointReference.create(self.backing_address),
            self.mapping.create_action,
            body,
        )
        backing_epr = EndpointReference.from_xml(next(response.element_children()))
        key = backing_epr.property(RESOURCE_ID)
        created = element(
            f"{{{ns.WXF}}}ResourceCreated",
            self.epr({TRANSFER_RESOURCE_ID: key}).to_xml(),
        )
        return element(f"{{{ns.WXF}}}CreateResponse", created)
