"""Declarative mapping between a WS-Transfer representation and WSRF
ResourceProperties of the same logical resource."""

from __future__ import annotations

from dataclasses import dataclass

from repro.xmllib import QName, element, ns
from repro.xmllib.element import XmlElement


@dataclass(frozen=True)
class BridgeMapping:
    """How one resource type looks on each stack.

    * ``representation_tag`` — root element of the WS-Transfer form;
    * ``properties`` — WSRF ResourceProperty QName → child tag inside the
      representation carrying the same value;
    * ``create_action`` / ``create_body_tag`` — the WSRF side's
      application-specific creation operation (WSRF defines none, so the
      bridge must know each service's idiosyncratic way in — the paper's
      §2.3 interoperability complaint made concrete);
    * ``defaults`` — initial child values for a fresh representation.
    """

    representation_tag: QName
    properties: dict[QName, QName]
    create_action: str
    create_body_tag: QName
    defaults: dict[QName, str]

    def fresh_representation(self) -> XmlElement:
        node = element(self.representation_tag)
        for child_tag, value in self.defaults.items():
            node.append(element(child_tag, value))
        return node

    def property_for_child(self, child_tag: QName) -> QName | None:
        for rp, child in self.properties.items():
            if child == child_tag or child.local == child_tag.local:
                return rp
        return None

    def child_for_property(self, rp: QName) -> QName | None:
        for known, child in self.properties.items():
            if known == rp or known.local == rp.local:
                return child
        return None


#: The counter resource, as used by both §4.1 implementations.
COUNTER_MAPPING = BridgeMapping(
    representation_tag=QName(ns.COUNTER, "Counter"),
    properties={QName(ns.COUNTER, "Value"): QName(ns.COUNTER, "Value")},
    create_action=ns.COUNTER + "/Create",
    create_body_tag=QName(ns.COUNTER, "Create"),
    defaults={QName(ns.COUNTER, "Value"): "0"},
)
