"""Stack-switching facades (extension beyond the paper's implementation).

§5 asks: "Suppose that I have built a system based on stack A ... and then
B becomes the clear favorite of the community ... an existing WSRF-speaking
client cannot simply be aimed at the 'corresponding' WS-Transfer-based
services."  These gateways make exactly that aiming possible: a facade
service speaks one stack's protocol to clients and drives a backing service
on the other stack, translating EPRs and operations per a declarative
property mapping.  The cost of switching becomes measurable: every bridged
call pays one extra signed hop (see ``benchmarks/bench_stack_switching.py``).
"""

from repro.bridge.mapping import BridgeMapping, COUNTER_MAPPING
from repro.bridge.wsrf_facade import WsrfFacadeService
from repro.bridge.transfer_facade import TransferFacadeService

__all__ = [
    "BridgeMapping",
    "COUNTER_MAPPING",
    "WsrfFacadeService",
    "TransferFacadeService",
]
