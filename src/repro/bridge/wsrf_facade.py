"""A WSRF face over a WS-Transfer backing service.

Existing WSRF clients keep sending GetResourceProperty /
SetResourceProperties / Destroy (and the application's Create); the facade
translates each onto the backing service's Get / Put / Delete / Create.
SetResourceProperties costs *two* backing calls (Get, then Put) because
WS-Transfer has no partial update — switching stacks is possible but not
free, which is §5's point.
"""

from __future__ import annotations

from repro.addressing.epr import EndpointReference
from repro.container.service import MessageContext, ServiceSkeleton, web_method
from repro.bridge.mapping import BridgeMapping
from repro.soap.envelope import SoapFault
from repro.transfer.service import TRANSFER_RESOURCE_ID, actions as wxf_actions
from repro.wsrf.basefaults import base_fault
from repro.wsrf.lifetime import actions as rl_actions
from repro.wsrf.properties import actions as rp_actions, _parse_rp_name
from repro.wsrf.resource import RESOURCE_ID
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement


class WsrfFacadeService(ServiceSkeleton):
    service_name = "WsrfFacade"

    def __init__(self, backing_address: str, mapping: BridgeMapping):
        super().__init__()
        self.backing_address = backing_address
        self.mapping = mapping

    # -- EPR translation -------------------------------------------------------

    def _backing_epr(self, context: MessageContext) -> EndpointReference:
        key = context.headers.target_epr().property(RESOURCE_ID)
        if key is None:
            raise base_fault(
                f"{self.service_name}: operation requires a WS-Resource EPR",
                error_code="ResourceUnknownFault",
            )
        return EndpointReference.create(self.backing_address).with_property(
            TRANSFER_RESOURCE_ID, key
        )

    def _fetch_representation(self, context: MessageContext) -> XmlElement:
        response = context.client().invoke(
            self._backing_epr(context), wxf_actions.GET, element(f"{{{ns.WXF}}}Get")
        )
        representation = next(response.element_children(), None)
        if representation is None:
            raise base_fault("backing service returned an empty representation")
        return representation

    # -- the WSRF port types, bridged -----------------------------------------------

    @web_method(rp_actions.GET)
    def bridged_get_resource_property(self, context: MessageContext) -> XmlElement:
        name = _parse_rp_name(context.body.text())
        child_tag = self.mapping.child_for_property(name)
        if child_tag is None:
            raise base_fault(
                f"no ResourceProperty {name.clark()}",
                error_code="InvalidResourcePropertyQNameFault",
            )
        representation = self._fetch_representation(context)
        response = element(f"{{{ns.WSRF_RP}}}GetResourcePropertyResponse")
        for child in representation.element_children():
            if child.tag.local == child_tag.local:
                rp = self.mapping.property_for_child(child.tag)
                response.append(element(rp, child.text()))
        return response

    @web_method(rp_actions.SET)
    def bridged_set_resource_properties(self, context: MessageContext) -> XmlElement:
        representation = self._fetch_representation(context)
        changed = 0
        for modifier in context.body.element_children():
            if modifier.tag.local not in ("Update", "Insert"):
                raise base_fault(
                    f"bridge cannot translate modifier {modifier.tag.local}"
                )
            for replacement in modifier.element_children():
                child_tag = self.mapping.child_for_property(replacement.tag)
                if child_tag is None:
                    raise base_fault(
                        f"ResourceProperty {replacement.tag.clark()} is not modifiable",
                        error_code="UnableToModifyResourcePropertyFault",
                    )
                target = representation.find(child_tag) or representation.find_local(
                    child_tag.local
                )
                if target is None:
                    representation.append(element(child_tag, replacement.text()))
                else:
                    target.children = [replacement.text()]
                changed += 1
        if changed == 0:
            raise base_fault("SetResourceProperties carried no modifications")
        context.client().invoke(
            self._backing_epr(context),
            wxf_actions.PUT,
            element(f"{{{ns.WXF}}}Put", representation),
        )
        return element(f"{{{ns.WSRF_RP}}}SetResourcePropertiesResponse")

    @web_method(rl_actions.DESTROY)
    def bridged_destroy(self, context: MessageContext) -> XmlElement:
        context.client().invoke(
            self._backing_epr(context), wxf_actions.DELETE, element(f"{{{ns.WXF}}}Delete")
        )
        return element(f"{{{ns.WSRF_RL}}}DestroyResponse")

    # -- creation (the application-specific part) ----------------------------------

    def __init_subclass__(cls, **kwargs):  # pragma: no cover - simple passthrough
        super().__init_subclass__(**kwargs)

    def _register_create(self) -> None:
        # Create is bound dynamically because its action URI comes from the
        # mapping (WSRF has no standard create to bridge).
        self._operations[self.mapping.create_action] = self.bridged_create

    def attached(self, container, address: str) -> None:
        super().attached(container, address)
        self._register_create()

    def bridged_create(self, context: MessageContext) -> XmlElement:
        representation = self.mapping.fresh_representation()
        initial = context.body.find_local("Initial")
        if initial is not None:
            value_tag = next(iter(self.mapping.defaults))
            target = representation.find(value_tag)
            target.children = [initial.text().strip()]
        response = context.client().invoke(
            EndpointReference.create(self.backing_address),
            wxf_actions.CREATE,
            element(f"{{{ns.WXF}}}Create", representation),
        )
        created = response.find(f"{{{ns.WXF}}}ResourceCreated")
        backing_epr = EndpointReference.from_xml(created.find_local("EndpointReference"))
        key = backing_epr.property(TRANSFER_RESOURCE_ID)
        facade_epr = self.epr({RESOURCE_ID: key})
        return element(
            f"{{{self.mapping.create_body_tag.namespace}}}CreateResponse",
            facade_epr.to_xml(),
        )
