"""The router layer: SOAP operation dispatch, declared once per service.

Two levels of support:

* **Hand-written routers** (the migrated Grid-in-a-Box services) keep
  their historical wire surface — action URIs, element names, fault
  strings — and use :func:`wsrf_faults` / :func:`transfer_faults` to
  translate the logic layer's :class:`~repro.apps.layers.logic.LogicError`
  into the owning stack's fault idiom.

* **Declared services** (the datagrid scenario) write no per-stack service
  code at all: a :class:`ServiceDecl` names the operations once and
  :func:`declared_wsrf_service` / :func:`declared_transfer_service`
  generate one service class per stack.  The stack idioms live in the
  binding, exactly as the paper contrasts them: the WSRF binding exposes
  one app-namespace action per operation ("operations have meaningful
  names", §4.2.3) while the WS-Transfer binding maps every operation onto
  the four CRUD verbs with the behaviour encoded in the EPR's explicit
  resource key (the mode-prefix style of §3.2).
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

from repro.apps.layers.logic import LogicError
from repro.container.service import MessageContext, ServiceSkeleton, web_method
from repro.soap.envelope import SoapFault
from repro.transfer.service import TransferResourceService, actions as wxf_actions
from repro.wsrf.basefaults import base_fault
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement

# -- fault translation ----------------------------------------------------------


def wsrf_fault(error: LogicError) -> SoapFault:
    """Render a LogicError the WSRF way: a WS-BaseFaults detail."""
    if error.kind == "unknown-resource":
        return base_fault(error.message, error_code="ResourceUnknownFault")
    return base_fault(error.message, code="Server" if error.kind == "server" else "Client")


def transfer_fault(error: LogicError) -> SoapFault:
    """Render a LogicError the WS-Transfer way: a bare SOAP fault (the spec
    defines no fault vocabulary) — except unknown resources, which keep the
    ResourceUnknownFault error code both stacks' comparators bucket by."""
    if error.kind == "unknown-resource":
        return base_fault(error.message, error_code="ResourceUnknownFault")
    return SoapFault("Server" if error.kind == "server" else "Client", error.message)


@contextmanager
def _translating(render: Callable[[LogicError], SoapFault]):
    try:
        yield
    except LogicError as error:
        raise render(error) from error


def wsrf_faults():
    """``with wsrf_faults():`` — LogicError becomes a WS-BaseFault."""
    return _translating(wsrf_fault)


def transfer_faults():
    """``with transfer_faults():`` — LogicError becomes a bare SOAP fault."""
    return _translating(transfer_fault)


# -- the declaration ---------------------------------------------------------------

_SNAKE_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")


def lower_camel(name: str) -> str:
    return name[:1].lower() + name[1:]


def snake_case(name: str) -> str:
    return _SNAKE_BOUNDARY.sub("_", name).lower()


@dataclass(frozen=True)
class Operation:
    """One declared operation.

    ``params`` are CamelCase wire names; logic methods and generated
    clients use their snake_case forms.  The WS-Transfer binding carries
    ``key_params`` inside the EPR's resource key (prefixed with
    ``key_prefix`` when several operations share a verb) and the remaining
    params in the request representation.
    """

    name: str
    params: tuple[str, ...] = ()
    #: Local name of each rendered result child (ignored for arity "none").
    result: str | None = None
    #: "none" (ack only), "one" (scalar) or "list".
    arity: str = "none"
    #: Which WS-Transfer verb carries this operation.
    verb: str = "get"
    key_prefix: str = ""
    key_params: tuple[str, ...] = ()

    @property
    def method(self) -> str:
        """The logic-layer / client method name for this operation."""
        return snake_case(self.name)

    def key_for(self, kwargs: dict) -> str:
        return self.key_prefix + "|".join(
            str(kwargs[snake_case(param)]) for param in self.key_params
        )

    def parse_key(self, key: str) -> dict | None:
        """Decode an explicit resource key, or None when it is not ours."""
        if not key.startswith(self.key_prefix):
            return None
        rest = key[len(self.key_prefix) :]
        if not self.key_params:
            return {} if not rest else None
        parts = rest.split("|")
        if len(parts) != len(self.key_params):
            return None
        return {snake_case(param): value for param, value in zip(self.key_params, parts)}


@dataclass(frozen=True)
class ServiceDecl:
    """A service declared once, bindable into both stacks."""

    name: str
    namespace: str
    operations: tuple[Operation, ...]

    def wsrf_action(self, operation: Operation) -> str:
        return f"{self.namespace}/{lower_camel(operation.name)}"

    def validate(self) -> None:
        for op in self.operations:
            if op.verb not in ("create", "get", "put", "delete"):
                raise ValueError(f"{self.name}.{op.name}: unknown verb {op.verb!r}")
            if op.verb in ("get", "delete") and set(op.params) != set(op.key_params):
                raise ValueError(
                    f"{self.name}.{op.name}: {op.verb} carries no body, so every "
                    "param must ride in the resource key"
                )
            if not set(op.key_params) <= set(op.params):
                raise ValueError(f"{self.name}.{op.name}: key_params must be params")


# -- shared parse/render helpers ---------------------------------------------------


def _parse_params(op: Operation, node: XmlElement, names: tuple[str, ...]) -> dict:
    kwargs = {}
    for param in names:
        value = text_of(node.find_local(param))
        if not value:
            raise LogicError(f"{lower_camel(op.name)} needs a {param}")
        kwargs[snake_case(param)] = value
    return kwargs


def _render_items(decl: ServiceDecl, op: Operation, value) -> list[XmlElement]:
    if op.arity == "none":
        return []
    values = [value] if op.arity == "one" else list(value)
    return [
        item if isinstance(item, XmlElement)
        else element(f"{{{decl.namespace}}}{op.result}", item)
        for item in values
    ]


def _match_key(service: ServiceSkeleton, ops: list[Operation], key: str):
    for op in ops:
        kwargs = op.parse_key(key)
        if kwargs is not None:
            return op, kwargs
    raise base_fault(
        f"no resource {key}",
        error_code="ResourceUnknownFault",
        originator=service.address,
        timestamp=service.network.clock.now,
    )


# -- the WSRF binding: one action per operation ------------------------------------


def _wsrf_operation(decl: ServiceDecl, op: Operation):
    @web_method(decl.wsrf_action(op))
    def operation(self, context: MessageContext) -> XmlElement:
        with wsrf_faults():
            kwargs = _parse_params(op, context.body, op.params)
            result = getattr(self.logic, op.method)(**kwargs)
        return element(
            f"{{{decl.namespace}}}{lower_camel(op.name)}Response",
            *_render_items(decl, op, result),
        )

    operation.__name__ = op.method
    return operation


def declared_wsrf_service(decl: ServiceDecl) -> type[ServiceSkeleton]:
    """Generate the WSRF-stack service class for ``decl``."""
    decl.validate()

    def __init__(self, logic) -> None:
        ServiceSkeleton.__init__(self)
        self.logic = logic

    members: dict = {
        "__doc__": f"WSRF binding of the {decl.name} declaration "
        "(one app-namespace action per operation).",
        "__init__": __init__,
        "service_name": decl.name,
    }
    for op in decl.operations:
        members[op.method] = _wsrf_operation(decl, op)
    return type(f"Wsrf{decl.name}Service", (ServiceSkeleton,), members)


# -- the WS-Transfer binding: CRUD verbs over explicit keys -------------------------


def _transfer_create(decl: ServiceDecl, ops: list[Operation]):
    @web_method(wxf_actions.CREATE)
    def wxf_create(self, context: MessageContext) -> XmlElement:
        representation = next(context.body.element_children(), None)
        if representation is None:
            raise SoapFault("Client", "Create carries no resource representation")
        op = next((o for o in ops if o.name == representation.tag.local), None)
        if op is None:
            raise SoapFault(
                "Client",
                f"{self.service_name} cannot create {representation.tag.local}",
            )
        with transfer_faults():
            kwargs = _parse_params(op, representation, op.params)
            result = getattr(self.logic, op.method)(**kwargs)
        created = element(
            f"{{{ns.WXF}}}ResourceCreated", self.resource_epr(op.key_for(kwargs)).to_xml()
        )
        items = _render_items(decl, op, result)
        if items:
            created.append(element(f"{{{decl.namespace}}}{op.name}Result", *items))
        return element(f"{{{ns.WXF}}}CreateResponse", created)

    return wxf_create


def _transfer_get(decl: ServiceDecl, ops: list[Operation]):
    @web_method(wxf_actions.GET)
    def wxf_get(self, context: MessageContext) -> XmlElement:
        op, kwargs = _match_key(self, ops, self._require_key(context))
        with transfer_faults():
            result = getattr(self.logic, op.method)(**kwargs)
        return element(
            f"{{{ns.WXF}}}GetResponse",
            element(
                f"{{{decl.namespace}}}{op.name}Result", *_render_items(decl, op, result)
            ),
        )

    return wxf_get


def _transfer_put(decl: ServiceDecl, ops: list[Operation]):
    @web_method(wxf_actions.PUT)
    def wxf_put(self, context: MessageContext) -> XmlElement:
        key = self._require_key(context)
        replacement = next(context.body.element_children(), None)
        if replacement is None:
            raise SoapFault("Client", "Put carries no replacement representation")
        op, kwargs = _match_key(self, ops, key)
        body_params = tuple(p for p in op.params if p not in op.key_params)
        with transfer_faults():
            kwargs.update(_parse_params(op, replacement, body_params))
            result = getattr(self.logic, op.method)(**kwargs)
        return element(
            f"{{{ns.WXF}}}PutResponse",
            element(
                f"{{{decl.namespace}}}{op.name}Result", *_render_items(decl, op, result)
            ),
        )

    return wxf_put


def _transfer_delete(decl: ServiceDecl, ops: list[Operation]):
    @web_method(wxf_actions.DELETE)
    def wxf_delete(self, context: MessageContext) -> XmlElement:
        op, kwargs = _match_key(self, ops, self._require_key(context))
        with transfer_faults():
            getattr(self.logic, op.method)(**kwargs)
        return element(f"{{{ns.WXF}}}DeleteResponse")

    return wxf_delete


_TRANSFER_VERBS = {
    "create": _transfer_create,
    "get": _transfer_get,
    "put": _transfer_put,
    "delete": _transfer_delete,
}


def declared_transfer_service(decl: ServiceDecl) -> type[TransferResourceService]:
    """Generate the WS-Transfer-stack service class for ``decl``.

    Verbs with no declared operation keep the base CRUD semantics over the
    service's collection, exactly like any other Transfer service.
    """
    decl.validate()

    def __init__(self, collection, logic) -> None:
        TransferResourceService.__init__(self, collection)
        self.logic = logic

    members: dict = {
        "__doc__": f"WS-Transfer binding of the {decl.name} declaration "
        "(CRUD verbs over explicit resource keys).",
        "__init__": __init__,
        "service_name": decl.name,
    }
    for verb, factory in _TRANSFER_VERBS.items():
        ops = [op for op in decl.operations if op.verb == verb]
        if ops:
            members[f"wxf_{verb}"] = factory(decl, ops)
    return type(f"Transfer{decl.name}Service", (TransferResourceService,), members)
