"""The db layer: typed accessors over ``repro.xmldb`` stores.

A :class:`Table` wraps one collection (or any store with the same CRUD +
index surface, e.g. a :class:`~repro.wsrf.resource.ResourceHome`) and owns
its secondary-index declarations.  :meth:`Table.match_keys` centralizes
the index-or-scan decision every Grid-in-a-Box service previously
hand-rolled four times over: answer an equality probe from a covered index
when one exists and the value is expressible as an XPath literal,
otherwise return ``None`` so the accessor falls back to the scan whose
shape — and therefore whose charged cost — it alone knows.

Layer discipline (lint rule RPO15): db-layer modules must not import
``repro.soap``, ``repro.container`` or ``repro.pipeline``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xmllib.xpath import xpath_literal


@dataclass(frozen=True)
class IndexSpec:
    """One declared secondary index: an XPath plus its prefix bindings."""

    path: str
    prefixes: dict[str, str] = field(default_factory=dict)


class Table:
    """Typed accessor base over one xmldb store.

    Subclasses declare ``indexes`` and expose domain-shaped methods
    (``registered_hosts()``, ``find_replicas(lfn)``, ...); router and
    logic code never touch the collection directly.
    """

    indexes: tuple[IndexSpec, ...] = ()

    def __init__(self, store):
        self.store = store

    def declare_indexes(self) -> None:
        """Declare every index this accessor relies on (idempotent on the
        underlying store; VO builders call this when indexing is enabled)."""
        for spec in self.indexes:
            self.store.declare_index(spec.path, spec.prefixes)

    # -- the index-or-scan decision ----------------------------------------

    def has_index(self, spec: IndexSpec) -> bool:
        return self.store.find_index(spec.path, spec.prefixes) is not None

    def match_keys(self, spec: IndexSpec, value: str) -> list[str] | None:
        """Keys of documents whose ``spec`` value equals ``value``, answered
        from the covered index — or ``None`` when only a scan can answer
        (no index declared, or the probe is not XPath-literal-safe)."""
        literal = xpath_literal(value)
        if literal is None or not self.has_index(spec):
            return None
        return self.store.query_keys(f"{spec.path}[. = {literal}]", spec.prefixes)

    def covering_values(self, spec: IndexSpec) -> list[str] | None:
        """Every indexed value of ``spec`` without touching a document
        (a covering read), or ``None`` when the index is absent."""
        if not self.has_index(spec):
            return None
        return self.store.index_values(spec.path, spec.prefixes)
