"""Service authoring layers: routers / logic / db / generated clients.

The Grid-in-a-Box services originally mixed SOAP transport, business rules
and XML-DB access in one class per service *per stack*, so every new
scenario cost a fork of both stacks.  This package re-layers service
authoring along the split used by production grid middleware (ROADMAP item
3, after DIRAC's routers/logic/db refactor):

* :mod:`repro.apps.layers.logic` — stack-agnostic business faults and
  rules.  Plain python, no wire types.
* :mod:`repro.apps.layers.db` — typed accessors over ``repro.xmldb``
  stores, owning index declarations and the index-or-scan decision.
* :mod:`repro.apps.layers.router` — fault translation for hand-written
  routers, plus a declarative binding that turns one
  :class:`~repro.apps.layers.router.ServiceDecl` into *both* a WSRF-stack
  service (app-namespace action per operation) and a WS-Transfer-stack
  service (CRUD verbs over explicit-key EPRs).
* :mod:`repro.apps.layers.clients` — client classes generated from the
  same declaration, one per stack, with identical python signatures.

Layer discipline is linted: rule RPO15 rejects ``repro.soap`` /
``repro.container`` / ``repro.pipeline`` imports from logic- and db-layer
modules.
"""

from repro.apps.layers.clients import declared_transfer_client, declared_wsrf_client
from repro.apps.layers.db import IndexSpec, Table
from repro.apps.layers.logic import AccessDenied, LogicError, UnknownEntity, require
from repro.apps.layers.router import (
    Operation,
    ServiceDecl,
    declared_transfer_service,
    declared_wsrf_service,
    transfer_fault,
    transfer_faults,
    wsrf_fault,
    wsrf_faults,
)

__all__ = [
    "AccessDenied",
    "IndexSpec",
    "LogicError",
    "Operation",
    "ServiceDecl",
    "Table",
    "UnknownEntity",
    "declared_transfer_client",
    "declared_transfer_service",
    "declared_wsrf_client",
    "declared_wsrf_service",
    "require",
    "transfer_fault",
    "transfer_faults",
    "wsrf_fault",
    "wsrf_faults",
]
