"""The logic layer: business rules as plain python, no wire anywhere.

A logic object encodes *what the service decides* — who may administer,
which hosts are available, whose reservation this is — and signals
violations with :class:`LogicError`.  The router layer translates those
into each stack's wire idiom (WS-BaseFaults on WSRF, bare SOAP faults on
WS-Transfer), so a rule is written once and both stacks stay
observationally aligned under the conformance comparator's fault taxonomy.

Layer discipline (lint rule RPO15): logic- and db-layer modules must not
import ``repro.soap``, ``repro.container`` or ``repro.pipeline``.
"""

from __future__ import annotations


class LogicError(Exception):
    """A business-rule violation, independent of any SOAP rendering.

    ``kind`` selects the wire translation:

    * ``"client"`` — the caller's mistake (soap:Client on both stacks).
    * ``"server"`` — a service-side invariant failed.
    * ``"unknown-resource"`` — the addressed entity does not exist; both
      stacks render this with the ``ResourceUnknownFault`` error code so
      the conformance harness sees a single fault family.
    """

    def __init__(self, message: str, *, kind: str = "client"):
        super().__init__(message)
        self.message = message
        self.kind = kind


class AccessDenied(LogicError):
    """The sender may not perform this operation.

    Carries the denied ``subject`` so a router can keep its stack's
    historical phrasing (the WSRF account service says "is not a VO
    administrator", the WS-Transfer one "may not administer accounts")
    while the *decision* lives here exactly once.
    """

    def __init__(self, subject, message: str | None = None):
        super().__init__(message if message is not None else f"{subject} is denied")
        self.subject = subject


class UnknownEntity(LogicError):
    """The addressed entity does not exist (ResourceUnknownFault family)."""

    def __init__(self, message: str):
        super().__init__(message, kind="unknown-resource")


def require(condition: object, message: str, *, kind: str = "client") -> None:
    """Raise :class:`LogicError` unless ``condition`` is truthy."""
    if not condition:
        raise LogicError(message, kind=kind)
