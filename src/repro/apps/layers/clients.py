"""Generated clients for declared services, one class per stack.

Both generated classes expose the same python surface — one method per
:class:`~repro.apps.layers.router.Operation`, positional arguments in
``params`` order, scalar/list/None return per the declared arity — so
test worlds and benchmarks drive either stack through an identical
interface.  What differs is the wire: the WSRF client speaks app-namespace
actions, the WS-Transfer client speaks CRUD verbs with the operation
encoded into the EPR's resource key.
"""

from __future__ import annotations

from repro.addressing.epr import EndpointReference
from repro.apps.layers.router import Operation, ServiceDecl, lower_camel
from repro.transfer.service import TRANSFER_RESOURCE_ID, actions as wxf_actions
from repro.xmllib import element, ns
from repro.xmllib.element import XmlElement


def _read_items(op: Operation, wrapper: XmlElement | None):
    if op.arity == "none":
        return None
    items = [] if wrapper is None else [
        child.text().strip() for child in wrapper.element_children()
    ]
    if op.arity == "one":
        return items[0] if items else ""
    return items


def _request_children(decl: ServiceDecl, names, args) -> list[XmlElement]:
    return [
        element(f"{{{decl.namespace}}}{param}", value)
        for param, value in zip(names, args)
    ]


# -- WSRF client --------------------------------------------------------------


def _wsrf_call(decl: ServiceDecl, op: Operation):
    def call(self, *args):
        body = element(
            f"{{{decl.namespace}}}{lower_camel(op.name)}",
            *_request_children(decl, op.params, args),
        )
        response = self.soap.invoke(
            EndpointReference.create(self.address), decl.wsrf_action(op), body
        )
        return _read_items(op, response)

    call.__name__ = op.method
    return call


def declared_wsrf_client(decl: ServiceDecl) -> type:
    def __init__(self, soap, address: str) -> None:
        self.soap = soap
        self.address = address

    members: dict = {
        "__doc__": f"Generated WSRF client for {decl.name}.",
        "__init__": __init__,
    }
    for op in decl.operations:
        members[op.method] = _wsrf_call(decl, op)
    return type(f"Wsrf{decl.name}Client", (object,), members)


# -- WS-Transfer client -------------------------------------------------------


def _transfer_epr(address: str, key: str | None = None) -> EndpointReference:
    epr = EndpointReference.create(address)
    if key is not None:
        epr = epr.with_property(TRANSFER_RESOURCE_ID, key)
    return epr


def _transfer_call(decl: ServiceDecl, op: Operation):
    body_params = tuple(p for p in op.params if p not in op.key_params)

    def call(self, *args):
        kwargs = dict(zip(op.params, args))
        key = op.key_prefix + "|".join(str(kwargs[p]) for p in op.key_params)
        if op.verb == "create":
            representation = element(
                f"{{{decl.namespace}}}{op.name}",
                *_request_children(decl, op.params, [kwargs[p] for p in op.params]),
            )
            response = self.soap.invoke(
                _transfer_epr(self.address),
                wxf_actions.CREATE,
                element(f"{{{ns.WXF}}}Create", representation),
            )
            created = response.find(f"{{{ns.WXF}}}ResourceCreated")
            wrapper = None if created is None else created.find_local(f"{op.name}Result")
            return _read_items(op, wrapper)
        if op.verb == "get":
            response = self.soap.invoke(
                _transfer_epr(self.address, key),
                wxf_actions.GET,
                element(f"{{{ns.WXF}}}Get"),
            )
            return _read_items(op, response.find_local(f"{op.name}Result"))
        if op.verb == "put":
            representation = element(
                f"{{{decl.namespace}}}{op.name}",
                *_request_children(decl, body_params, [kwargs[p] for p in body_params]),
            )
            response = self.soap.invoke(
                _transfer_epr(self.address, key),
                wxf_actions.PUT,
                element(f"{{{ns.WXF}}}Put", representation),
            )
            return _read_items(op, response.find_local(f"{op.name}Result"))
        self.soap.invoke(
            _transfer_epr(self.address, key),
            wxf_actions.DELETE,
            element(f"{{{ns.WXF}}}Delete"),
        )
        return None

    call.__name__ = op.method
    return call


def declared_transfer_client(decl: ServiceDecl) -> type:
    def __init__(self, soap, address: str) -> None:
        self.soap = soap
        self.address = address

    members: dict = {
        "__doc__": f"Generated WS-Transfer client for {decl.name}.",
        "__init__": __init__,
    }
    for op in decl.operations:
        members[op.method] = _transfer_call(decl, op)
    return type(f"Transfer{decl.name}Client", (object,), members)
