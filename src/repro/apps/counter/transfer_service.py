"""The counter on WS-Transfer / WS-Eventing (§4.1.2).

The counter's operations map onto the four CRUD verbs: Create stores the
client's ``<Counter>`` document unmodified, Get returns it untouched (same
schema the client gave Create), Put overwrites the value, Delete removes
the document.  A ``CounterValueChanged`` event fires through the
NotificationManager after a Put.
"""

from __future__ import annotations

from repro.container.service import MessageContext
from repro.eventing.manager import EventSubscriptionManagerService
from repro.eventing.notification_manager import NotificationManager
from repro.eventing.source import EventSourceMixin
from repro.container.service import web_method
from repro.soap.envelope import SoapFault
from repro.transfer.service import TransferResourceService, actions
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement

TOPIC_VALUE_CHANGED = "CounterValueChanged"


def counter_representation(value: int = 0) -> XmlElement:
    """The hard-coded common schema client and service share (§3.2: no
    input/output schema in WS-Transfer; both sides must simply agree)."""
    return element(f"{{{ns.COUNTER}}}Counter", element(f"{{{ns.COUNTER}}}Value", value))


def counter_value(representation: XmlElement) -> int:
    value_el = representation.find(f"{{{ns.COUNTER}}}Value") or representation.find_local("Value")
    if value_el is None:
        raise SoapFault("Client", "document does not look like a Counter")
    return int(text_of(value_el, "0"))


class TransferCounterService(EventSourceMixin, TransferResourceService):
    service_name = "TransferCounter"

    def __init__(self, collection, event_subscription_manager: EventSubscriptionManagerService):
        super().__init__(collection)
        self.event_subscription_manager = event_subscription_manager
        self.notifications = NotificationManager(event_subscription_manager.store)

    def process_put(
        self, key: str, old: XmlElement | None, replacement: XmlElement, context: MessageContext
    ) -> XmlElement:
        old_value = counter_value(old) if old is not None else 0
        new_value = counter_value(replacement)
        self._pending_event = (key, old_value, new_value)
        return replacement

    @web_method(actions.PUT)
    def wxf_put(self, context: MessageContext) -> XmlElement:
        self._pending_event = None
        response = super().wxf_put(context)
        if self._pending_event is not None:
            key, old_value, new_value = self._pending_event
            self.notifications.fire(
                self,
                element(
                    f"{{{ns.COUNTER}}}CounterValueChanged",
                    element(f"{{{ns.COUNTER}}}OldValue", old_value),
                    element(f"{{{ns.COUNTER}}}NewValue", new_value),
                    attrs={"counter": key},
                ),
                topic=TOPIC_VALUE_CHANGED,
            )
        return response
