"""Deployment builders for the six counter measurement scenarios (§4.1.3).

A scenario fixes the security policy ({none, X.509 signing, HTTPS}) and the
placement ({co-located, distributed}); the builders stand up the chosen
stack on "two identically-configured machines" named after the paper's
Opterons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.counter.clients import TransferCounterClient, WsrfCounterClient
from repro.apps.counter.transfer_service import TransferCounterService
from repro.apps.counter.wsrf_service import WsrfCounterService
from repro.container.client import SoapClient
from repro.container.deployment import Deployment
from repro.container.security import SecurityMode, SecurityPolicy
from repro.crypto.x509 import CertificateAuthority
from repro.eventing.delivery import EventingConsumer
from repro.eventing.manager import EventSubscriptionManagerService
from repro.eventing.store import FlatFileSubscriptionStore
from repro.reliable import ReliableChannel, ReliableNotifier, RetryPolicy
from repro.sim.costs import CostModel
from repro.wsn.base import NotificationConsumer, SubscriptionManagerService
from repro.wsrf.resource import ResourceHome
from repro.xmldb.collection import Collection

SERVER_HOST = "opteron1"
CLIENT_HOST_COLOCATED = "opteron1"
CLIENT_HOST_DISTRIBUTED = "opteron2"


@dataclass(frozen=True)
class CounterScenario:
    """One cell of the 6-scenario matrix."""

    mode: SecurityMode = SecurityMode.NONE
    colocated: bool = True
    costs: CostModel = field(default_factory=CostModel)
    #: When set, client proxies and notification delivery get WS-RM
    #: sequencing + retransmission (used by the lossy-network benchmark).
    reliability: RetryPolicy | None = None

    @property
    def label(self) -> str:
        placement = "co-located" if self.colocated else "distributed"
        return f"{placement}/{self.mode.value}"

    @property
    def client_host(self) -> str:
        return CLIENT_HOST_COLOCATED if self.colocated else CLIENT_HOST_DISTRIBUTED

    @classmethod
    def all_six(cls, costs: CostModel | None = None) -> list["CounterScenario"]:
        costs = costs or CostModel()
        return [
            cls(mode, colocated, costs)
            for mode in (SecurityMode.NONE, SecurityMode.X509, SecurityMode.HTTPS)
            for colocated in (True, False)
        ]


@dataclass
class WsrfCounterRig:
    deployment: Deployment
    service: WsrfCounterService
    subscription_manager: SubscriptionManagerService
    client: WsrfCounterClient
    consumer: NotificationConsumer


@dataclass
class TransferCounterRig:
    deployment: Deployment
    service: TransferCounterService
    subscription_manager: EventSubscriptionManagerService
    client: TransferCounterClient
    consumer: EventingConsumer


def _base_deployment(scenario: CounterScenario) -> Deployment:
    ca = CertificateAuthority.create(seed=7)
    deployment = Deployment(SecurityPolicy(scenario.mode), scenario.costs, ca)
    deployment.reliability = scenario.reliability
    return deployment


def _client_soap(deployment: Deployment, host: str, credentials):
    soap = SoapClient(deployment, host, credentials)
    if deployment.reliability is not None:
        return ReliableChannel(soap, deployment.reliability, deployment.dead_letters)
    return soap


def build_wsrf_rig(scenario: CounterScenario) -> WsrfCounterRig:
    deployment = _base_deployment(scenario)
    creds = deployment.issue_credentials("wsrf-container", seed=101)
    container = deployment.add_container(SERVER_HOST, "WSRF", creds)
    manager = SubscriptionManagerService(ResourceHome("counter-subs", deployment.network))
    container.add_service(manager)
    service = WsrfCounterService(ResourceHome("counters", deployment.network))
    service.subscription_manager = manager
    if scenario.reliability is not None:
        service.reliable_deliverer = ReliableNotifier(deployment, scenario.reliability)
    container.add_service(service)
    client_creds = deployment.issue_credentials("counter-client", seed=102)
    soap = _client_soap(deployment, scenario.client_host, client_creds)
    # "WSRF.NET uses a custom HTTP server that clients include."
    consumer = NotificationConsumer(deployment, scenario.client_host, kind="http-server")
    return WsrfCounterRig(
        deployment, service, manager, WsrfCounterClient(soap, service.address), consumer
    )


def build_transfer_rig(scenario: CounterScenario) -> TransferCounterRig:
    deployment = _base_deployment(scenario)
    creds = deployment.issue_credentials("wxf-container", seed=103)
    container = deployment.add_container(SERVER_HOST, "WXF", creds)
    manager = EventSubscriptionManagerService(FlatFileSubscriptionStore(deployment.network))
    container.add_service(manager)
    service = TransferCounterService(Collection("counters", deployment.network), manager)
    if scenario.reliability is not None:
        service.notifications.deliverer = ReliableNotifier(
            deployment, scenario.reliability
        )
    container.add_service(service)
    client_creds = deployment.issue_credentials("counter-client", seed=104)
    soap = _client_soap(deployment, scenario.client_host, client_creds)
    # "Plumbwork Orange uses a WSE SoapReceiver to handle notifications via TCP."
    consumer = EventingConsumer(deployment, scenario.client_host)
    return TransferCounterRig(
        deployment, service, manager, TransferCounterClient(soap, service.address), consumer
    )
