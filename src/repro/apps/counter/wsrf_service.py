"""The counter on WSRF.NET (§4.1.1).

"The 'resource' is simply a single variable": one ``cv`` field.  The author
defines a single Create WebMethod (built on ``ServiceBase.Create()``); Get,
Set and Destroy are inherited from the WS-ResourceProperties and
WS-ResourceLifetime port types; a ``CounterValueChanged`` notification fires
whenever the value is set.
"""

from __future__ import annotations

from repro.container.service import MessageContext, web_method
from repro.wsn.base import NotificationProducerMixin
from repro.wsrf.lifetime import ResourceLifetimeMixin
from repro.wsrf.programming import ResourceField, WsResourceService, resource_property
from repro.wsrf.properties import ResourcePropertiesMixin
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement

TOPIC_VALUE_CHANGED = "CounterValueChanged"
ACTION_CREATE = ns.COUNTER + "/Create"


class WsrfCounterService(
    NotificationProducerMixin,
    ResourcePropertiesMixin,
    ResourceLifetimeMixin,
    WsResourceService,
):
    service_name = "WsrfCounter"
    resource_ns = ns.COUNTER

    cv = ResourceField(int, 0)

    @web_method(ACTION_CREATE)
    def create(self, context: MessageContext) -> XmlElement:
        """The author-exposed create: stores ``cv`` (initially 0 unless the
        request says otherwise) via the library Create()."""
        initial = int(text_of(context.body.find_local("Initial"), "0"))
        epr = self.create_resource(cv=initial)
        return element(f"{{{ns.COUNTER}}}CreateResponse", epr.to_xml())

    @resource_property(f"{{{ns.COUNTER}}}Value", settable=True)
    def value(self):
        return self.cv

    def set_value(self, replacement: XmlElement | None) -> None:
        old = self.cv
        self.cv = int(replacement.text()) if replacement is not None else 0
        key = self.current_resource
        # Persist before notifying so consumers polling back see the new value.
        self.save_current()
        self.notify(
            TOPIC_VALUE_CHANGED,
            element(
                f"{{{ns.COUNTER}}}CounterValueChanged",
                element(f"{{{ns.COUNTER}}}OldValue", old),
                element(f"{{{ns.COUNTER}}}NewValue", self.cv),
                attrs={"counter": key},
            ),
            resource_key=key,
        )
