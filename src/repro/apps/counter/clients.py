"""Client proxies for the counter services.

"From a client perspective, engaging either counter service is similar to
invoking web methods on any other Web service — via a Web service proxy
object with methods corresponding to those on the service."  The biggest
difference (§4.1.3) shows below: the WS-Transfer proxy's arguments and
return values are raw XML; the WSRF proxy deals in typed values.
"""

from __future__ import annotations

from repro.addressing.epr import EndpointReference
from repro.apps.counter.transfer_service import (
    TOPIC_VALUE_CHANGED,
    counter_representation,
    counter_value,
)
from repro.container.client import SoapClient
from repro.eventing.delivery import EventingConsumer
from repro.eventing.filters import EventFilter
from repro.eventing.source import actions as wse_actions
from repro.transfer.service import actions as wxf_actions
from repro.wsn.base import NotificationConsumer, actions as wsnt_actions
from repro.wsn.topics import TopicDialect
from repro.wsrf.lifetime import actions as rl_actions
from repro.wsrf.properties import actions as rp_actions
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement


class WsrfCounterClient:
    """Typed proxy for the WSRF counter."""

    def __init__(self, soap: SoapClient, service_address: str):
        self.soap = soap
        self.service_epr = EndpointReference.create(service_address)

    def create(self, initial: int = 0) -> EndpointReference:
        response = self.soap.invoke(
            self.service_epr,
            ns.COUNTER + "/Create",
            element(f"{{{ns.COUNTER}}}Create", element(f"{{{ns.COUNTER}}}Initial", initial)),
        )
        return EndpointReference.from_xml(next(response.element_children()))

    def get(self, counter: EndpointReference) -> int:
        response = self.soap.invoke(
            counter,
            rp_actions.GET,
            element(f"{{{ns.WSRF_RP}}}GetResourceProperty", "Value"),
        )
        return int(text_of(response.find(f"{{{ns.COUNTER}}}Value")))

    def set(self, counter: EndpointReference, value: int) -> None:
        self.soap.invoke(
            counter,
            rp_actions.SET,
            element(
                f"{{{ns.WSRF_RP}}}SetResourceProperties",
                element(f"{{{ns.WSRF_RP}}}Update", element(f"{{{ns.COUNTER}}}Value", value)),
            ),
        )

    def destroy(self, counter: EndpointReference) -> None:
        self.soap.invoke(counter, rl_actions.DESTROY, element(f"{{{ns.WSRF_RL}}}Destroy"))

    def subscribe(
        self,
        counter: EndpointReference,
        consumer: NotificationConsumer,
        termination_time: float | None = None,
    ) -> EndpointReference:
        body = element(
            f"{{{ns.WSNT}}}Subscribe",
            consumer.epr.to_xml(f"{{{ns.WSNT}}}ConsumerReference"),
            element(
                f"{{{ns.WSNT}}}TopicExpression",
                TOPIC_VALUE_CHANGED,
                attrs={"Dialect": TopicDialect.CONCRETE.value},
            ),
        )
        if termination_time is not None:
            body.append(
                element(f"{{{ns.WSNT}}}InitialTerminationTime", repr(termination_time))
            )
        response = self.soap.invoke(counter, wsnt_actions.SUBSCRIBE, body)
        return EndpointReference.from_xml(next(response.element_children()))

    # -- subscription lifetime (WS-ResourceLifetime on the subscription) --------

    def renew_subscription(
        self, subscription: EndpointReference, termination_time: float | None
    ) -> None:
        """Extend (or make infinite) a subscription's lease: the WSRF idiom
        is SetTerminationTime on the subscription WS-Resource."""
        formatted = "infinity" if termination_time is None else repr(termination_time)
        self.soap.invoke(
            subscription,
            rl_actions.SET_TERMINATION_TIME,
            element(
                f"{{{ns.WSRF_RL}}}SetTerminationTime",
                element(f"{{{ns.WSRF_RL}}}RequestedTerminationTime", formatted),
            ),
        )

    def subscription_status(self, subscription: EndpointReference) -> str:
        """The subscription's TerminationTime RP: "infinity" or a float."""
        response = self.soap.invoke(
            subscription,
            rp_actions.GET,
            element(f"{{{ns.WSRF_RP}}}GetResourceProperty", "TerminationTime"),
        )
        return text_of(response.find(f"{{{ns.WSRF_RL}}}TerminationTime"))

    def unsubscribe(self, subscription: EndpointReference) -> None:
        """Unsubscribing is destroying the subscription resource."""
        self.soap.invoke(
            subscription, rl_actions.DESTROY, element(f"{{{ns.WSRF_RL}}}Destroy")
        )


class TransferCounterClient:
    """Raw-XML proxy for the WS-Transfer counter ("the arguments and return
    values for the WS-Transfer proxy methods are arrays of XML elements")."""

    def __init__(self, soap: SoapClient, service_address: str):
        self.soap = soap
        self.service_epr = EndpointReference.create(service_address)

    def create(self, initial: int = 0) -> EndpointReference:
        response = self.soap.invoke(
            self.service_epr,
            wxf_actions.CREATE,
            element(f"{{{ns.WXF}}}Create", counter_representation(initial)),
        )
        created = response.find(f"{{{ns.WXF}}}ResourceCreated")
        return EndpointReference.from_xml(created.find_local("EndpointReference"))

    def get(self, counter: EndpointReference) -> int:
        response = self.soap.invoke(counter, wxf_actions.GET, element(f"{{{ns.WXF}}}Get"))
        # Manual deserialization of the raw representation:
        return counter_value(next(response.element_children()))

    def set(self, counter: EndpointReference, value: int) -> None:
        self.soap.invoke(
            counter, wxf_actions.PUT, element(f"{{{ns.WXF}}}Put", counter_representation(value))
        )

    def delete(self, counter: EndpointReference) -> None:
        self.soap.invoke(counter, wxf_actions.DELETE, element(f"{{{ns.WXF}}}Delete"))

    def subscribe(
        self,
        counter: EndpointReference,
        consumer: EventingConsumer,
        expires: float | None = None,
    ) -> EndpointReference:
        """Subscription is per *service*; the filter narrows to one counter
        resource (WS-Eventing's substitute for per-resource subscriptions)."""
        from repro.transfer.service import TRANSFER_RESOURCE_ID

        key = counter.property(TRANSFER_RESOURCE_ID)
        filter_expression = (
            f"@Topic='{TOPIC_VALUE_CHANGED}' and CounterValueChanged[@counter='{key}']"
        )
        body = element(
            f"{{{ns.WSE}}}Subscribe",
            element(f"{{{ns.WSE}}}Delivery", consumer.epr.to_xml(f"{{{ns.WSE}}}NotifyTo")),
            element(f"{{{ns.WSE}}}Filter", filter_expression),
        )
        if expires is not None:
            body.append(element(f"{{{ns.WSE}}}Expires", repr(expires)))
        response = self.soap.invoke(self.service_epr, wse_actions.SUBSCRIBE, body)
        return EndpointReference.from_xml(response.find(f"{{{ns.WSE}}}SubscriptionManager"))

    # -- subscription lifetime (WS-Eventing Renew/GetStatus/Unsubscribe) --------

    def renew_subscription(
        self, subscription: EndpointReference, expires: float | None
    ) -> None:
        formatted = "infinity" if expires is None else repr(expires)
        self.soap.invoke(
            subscription,
            wse_actions.RENEW,
            element(f"{{{ns.WSE}}}Renew", element(f"{{{ns.WSE}}}Expires", formatted)),
        )

    def subscription_status(self, subscription: EndpointReference) -> str:
        """The subscription's Expires: "infinity" or a float."""
        response = self.soap.invoke(
            subscription, wse_actions.GET_STATUS, element(f"{{{ns.WSE}}}GetStatus")
        )
        return text_of(response.find(f"{{{ns.WSE}}}Expires"))

    def unsubscribe(self, subscription: EndpointReference) -> None:
        self.soap.invoke(
            subscription, wse_actions.UNSUBSCRIBE, element(f"{{{ns.WSE}}}Unsubscribe")
        )
