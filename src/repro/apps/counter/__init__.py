"""The "hello world" counter service (§4.1), on both stacks.

A counter resource with Get / Set / Create / Destroy plus an asynchronous
``CounterValueChanged`` notification — "the simplest case of when a client
might want to instantiate an object on the server".
"""

from repro.apps.counter.wsrf_service import WsrfCounterService
from repro.apps.counter.transfer_service import TransferCounterService
from repro.apps.counter.clients import TransferCounterClient, WsrfCounterClient
from repro.apps.counter.deploy import (
    CounterScenario,
    TransferCounterRig,
    WsrfCounterRig,
    build_transfer_rig,
    build_wsrf_rig,
)

__all__ = [
    "WsrfCounterService",
    "TransferCounterService",
    "WsrfCounterClient",
    "TransferCounterClient",
    "CounterScenario",
    "WsrfCounterRig",
    "TransferCounterRig",
    "build_wsrf_rig",
    "build_transfer_rig",
]
