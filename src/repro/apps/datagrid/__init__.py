"""The datagrid scenario: a replica catalog plus replica-aware transfer.

The new-service-costs-a-module proof for :mod:`repro.apps.layers` (see
DESIGN.md §15): both services are single :class:`ServiceDecl`\\ s bound
into both stacks by the framework, with logic/db/links layers that never
touch SOAP.  The workload follows the EU DataGrid data-management pair —
a catalog of logical-file replicas across storage hosts, and transfers
that pick sources by simulated link cost.
"""

from repro.apps.datagrid.decl import DATA_TRANSFER, REPLICA_CATALOG
from repro.apps.datagrid.db import ReplicaTable
from repro.apps.datagrid.deploy import (
    STORAGE_HOSTS,
    DatagridRig,
    DatagridScenario,
    build_datagrid,
    build_transfer_datagrid,
    build_wsrf_datagrid,
)
from repro.apps.datagrid.links import LinkFabric, site_of
from repro.apps.datagrid.logic import (
    DataTransferLogic,
    ReplicaCatalogLogic,
    nearest_replica,
)

__all__ = [
    "DATA_TRANSFER",
    "REPLICA_CATALOG",
    "ReplicaTable",
    "STORAGE_HOSTS",
    "DatagridRig",
    "DatagridScenario",
    "build_datagrid",
    "build_transfer_datagrid",
    "build_wsrf_datagrid",
    "LinkFabric",
    "site_of",
    "DataTransferLogic",
    "ReplicaCatalogLogic",
    "nearest_replica",
]
