"""Simulated wide-area links between storage hosts.

The EU DataGrid picture: storage elements grouped into sites, cheap links
inside a site, expensive ones between sites.  A host's site is the part
after the first ``.`` of its name (``se1.cern`` and ``se2.cern`` share a
LAN; ``se1.fnal`` is across the WAN), so the whole fabric is a pure
function of host names — deterministic, and therefore identical under
both stacks.  Actual transfers charge their link cost to the virtual
clock (category ``link``), like the filesystem substrate charges ``fs``.

Layer discipline (lint rule RPO15): no ``repro.soap`` /
``repro.container`` / ``repro.pipeline`` imports here.
"""

from __future__ import annotations

from repro.sim.network import Network

#: Default virtual-ms cost of moving one replica over each link class.
LAN_TRANSFER_MS = 40.0
WAN_TRANSFER_MS = 400.0


def site_of(host: str) -> str:
    """``se1.cern`` → ``cern``; a dotless host is its own site."""
    _, _, site = host.partition(".")
    return site or host


class LinkFabric:
    """Link costs between storage hosts, charged on use."""

    def __init__(
        self,
        network: Network,
        lan_ms: float = LAN_TRANSFER_MS,
        wan_ms: float = WAN_TRANSFER_MS,
    ):
        self.network = network
        self.lan_ms = lan_ms
        self.wan_ms = wan_ms

    def cost(self, src: str, dst: str) -> float:
        """The virtual-ms cost of one transfer (free on the same host)."""
        if src == dst:
            return 0.0
        if site_of(src) == site_of(dst):
            return self.lan_ms
        return self.wan_ms

    def transfer(self, src: str, dst: str) -> float:
        """Move one replica, charging its link cost to the clock."""
        ms = self.cost(src, dst)
        if ms:
            self.network.charge(ms, "link")
        return ms
