"""The datagrid db layer: the replica catalog's collection accessor.

One ``{dg}Replicas`` document per logical file, keyed by the logical file
name, holding one ``{dg}Host`` child per storage host with a copy.  The
host index (opt-in via :meth:`~repro.apps.layers.db.Table.declare_indexes`,
always declared by the deployment builders) answers "which files does this
host hold" from a posting list instead of a collection scan.

Layer discipline (lint rule RPO15): no ``repro.soap`` /
``repro.container`` / ``repro.pipeline`` imports here.
"""

from __future__ import annotations

from repro.apps.layers.db import IndexSpec, Table
from repro.xmldb.collection import DocumentNotFound
from repro.xmllib import element, ns
from repro.xmllib.element import XmlElement

_DATAGRID_PREFIXES = {"d": ns.DATAGRID}


class ReplicaTable(Table):
    """Typed accessor over the ``replicas`` collection."""

    HOST = IndexSpec("//d:Host", _DATAGRID_PREFIXES)
    indexes = (HOST,)

    def _document(self, logical_file: str) -> XmlElement | None:
        try:
            return self.store.read(logical_file)
        except DocumentNotFound:
            return None

    @staticmethod
    def _hosts(document: XmlElement) -> list[str]:
        return [
            child.text().strip()
            for child in document.element_children()
            if child.tag.local == "Host"
        ]

    def replicas(self, logical_file: str) -> list[str]:
        """Hosts holding a copy, in registration order ([] when unknown)."""
        document = self._document(logical_file)
        return [] if document is None else self._hosts(document)

    def add(self, logical_file: str, host: str) -> None:
        document = self._document(logical_file)
        if document is None:
            document = element(f"{{{ns.DATAGRID}}}Replicas")
        document.append(element(f"{{{ns.DATAGRID}}}Host", host))
        self.store.upsert(logical_file, document)

    def remove(self, logical_file: str, host: str) -> None:
        """Drop one host's replica; the last replica removes the document
        entirely, so a logical file with zero copies cannot exist."""
        document = self.store.read(logical_file)
        document.children = [
            child
            for child in document.element_children()
            if not (child.tag.local == "Host" and child.text().strip() == host)
        ]
        if next(document.element_children(), None) is None:
            self.store.delete(logical_file)
        else:
            self.store.update(logical_file, document)

    def logical_files(self) -> list[str]:
        return sorted(self.store.keys())

    def files_on(self, host: str) -> list[str]:
        """Logical files with a replica on ``host`` — the index posting
        list when declared, else a collection scan."""
        keys = self.match_keys(self.HOST, host)
        if keys is not None:
            return sorted(keys)
        return sorted(
            key
            for key, document in self.store.documents()
            if host in self._hosts(document)
        )
