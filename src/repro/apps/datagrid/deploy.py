"""Deployment builders for the datagrid scenario, both stacks, six modes.

The matrix is the paper's: {none, X.509, HTTPS} × {co-located,
distributed}, reusing :class:`~repro.apps.counter.deploy.CounterScenario`
as the scenario cell.  One container on ``opteron1`` hosts both declared
services; the storage elements (``se1.cern`` etc.) are catalog entries
with simulated links, not containers — the EU DataGrid catalog models
them, it does not run on them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.counter.deploy import SERVER_HOST, CounterScenario
from repro.apps.datagrid.db import ReplicaTable
from repro.apps.datagrid.links import LinkFabric
from repro.apps.datagrid.logic import DataTransferLogic, ReplicaCatalogLogic
from repro.apps.datagrid.services import (
    TransferDataTransferClient,
    TransferDataTransferService,
    TransferReplicaCatalogClient,
    TransferReplicaCatalogService,
    WsrfDataTransferClient,
    WsrfDataTransferService,
    WsrfReplicaCatalogClient,
    WsrfReplicaCatalogService,
)
from repro.container.client import SoapClient
from repro.container.deployment import Deployment
from repro.container.security import SecurityPolicy
from repro.crypto.x509 import CertificateAuthority
from repro.xmldb.collection import Collection

#: The scenario matrix is the counter one verbatim.
DatagridScenario = CounterScenario

#: Default storage elements: two sharing the CERN LAN, one across the WAN.
STORAGE_HOSTS = ("se1.cern", "se2.cern", "se1.fnal")


class CatalogPort:
    """The transfer logic's catalog port, bound to one stack's out-call.

    Built at wiring time around the owning *service* (the out-call channel
    itself is per-container and needs no per-request state); every
    attribute access hands back the generated catalog client's method.
    """

    def __init__(self, client_type):
        self._client_type = client_type
        self._service = None
        self._address = ""

    def bind(self, service, address: str) -> None:
        self._service = service
        self._address = address

    def __getattr__(self, name: str):
        client = self._client_type(
            self._service.container.outcall_client(), self._address
        )
        return getattr(client, name)


@dataclass
class DatagridRig:
    deployment: Deployment
    catalog_service: object
    transfer_service: object
    catalog: object
    transfer: object
    links: LinkFabric


def _base_deployment(scenario: CounterScenario) -> Deployment:
    ca = CertificateAuthority.create(seed=7)
    return Deployment(SecurityPolicy(scenario.mode), scenario.costs, ca)


def build_wsrf_datagrid(scenario: CounterScenario) -> DatagridRig:
    deployment = _base_deployment(scenario)
    creds = deployment.issue_credentials("datagrid-container", seed=141)
    container = deployment.add_container(SERVER_HOST, "WSRF", creds)

    catalog_table = ReplicaTable(Collection("replicas", deployment.network))
    catalog_table.declare_indexes()
    catalog_service = WsrfReplicaCatalogService(ReplicaCatalogLogic(catalog_table))
    container.add_service(catalog_service)

    links = LinkFabric(deployment.network)
    port = CatalogPort(WsrfReplicaCatalogClient)
    transfer_service = WsrfDataTransferService(DataTransferLogic(port, links))
    container.add_service(transfer_service)
    port.bind(transfer_service, catalog_service.address)

    client_creds = deployment.issue_credentials("datagrid-client", seed=142)
    soap = SoapClient(deployment, scenario.client_host, client_creds)
    return DatagridRig(
        deployment,
        catalog_service,
        transfer_service,
        WsrfReplicaCatalogClient(soap, catalog_service.address),
        WsrfDataTransferClient(soap, transfer_service.address),
        links,
    )


def build_transfer_datagrid(scenario: CounterScenario) -> DatagridRig:
    deployment = _base_deployment(scenario)
    creds = deployment.issue_credentials("datagrid-container", seed=143)
    container = deployment.add_container(SERVER_HOST, "WXF", creds)

    catalog_collection = Collection("replicas", deployment.network)
    catalog_table = ReplicaTable(catalog_collection)
    catalog_table.declare_indexes()
    catalog_service = TransferReplicaCatalogService(
        catalog_collection, ReplicaCatalogLogic(catalog_table)
    )
    container.add_service(catalog_service)

    links = LinkFabric(deployment.network)
    port = CatalogPort(TransferReplicaCatalogClient)
    transfer_service = TransferDataTransferService(
        Collection("transfers", deployment.network), DataTransferLogic(port, links)
    )
    container.add_service(transfer_service)
    port.bind(transfer_service, catalog_service.address)

    client_creds = deployment.issue_credentials("datagrid-client", seed=144)
    soap = SoapClient(deployment, scenario.client_host, client_creds)
    return DatagridRig(
        deployment,
        catalog_service,
        transfer_service,
        TransferReplicaCatalogClient(soap, catalog_service.address),
        TransferDataTransferClient(soap, transfer_service.address),
        links,
    )


BUILDERS = {"wsrf": build_wsrf_datagrid, "transfer": build_transfer_datagrid}


def build_datagrid(stack: str, scenario: CounterScenario | None = None) -> DatagridRig:
    return BUILDERS[stack](scenario or DatagridScenario())
