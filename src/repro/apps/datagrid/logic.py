"""The datagrid logic layer: catalog and transfer rules, stack-agnostic.

The transfer logic reaches the catalog through a *port* — any object with
the generated catalog-client surface (``locate_replicas``,
``register_replica``).  The deployment wiring binds the port to a real
out-call through whichever stack owns the service, so "DataTransfer asks
the catalog" is one SOAP exchange on the wire of either stack, exactly
like GiaB's allocation→reservation out-call.

Layer discipline (lint rule RPO15): no ``repro.soap`` /
``repro.container`` / ``repro.pipeline`` imports here.
"""

from __future__ import annotations

from repro.apps.datagrid.db import ReplicaTable
from repro.apps.datagrid.links import LinkFabric
from repro.apps.layers.logic import UnknownEntity, require


class ReplicaCatalogLogic:
    """One method per declared ReplicaCatalog operation."""

    def __init__(self, table: ReplicaTable):
        self.table = table

    def register_replica(self, logical_file: str, host: str) -> None:
        require(
            host not in self.table.replicas(logical_file),
            f"{host} already holds a replica of {logical_file}",
        )
        self.table.add(logical_file, host)

    def unregister_replica(self, logical_file: str, host: str) -> None:
        if host not in self.table.replicas(logical_file):
            raise UnknownEntity(f"no replica of {logical_file} on {host}")
        self.table.remove(logical_file, host)

    def locate_replicas(self, logical_file: str) -> list[str]:
        hosts = self.table.replicas(logical_file)
        if not hosts:
            raise UnknownEntity(f"no replicas of {logical_file}")
        return hosts

    def list_files(self) -> list[str]:
        return self.table.logical_files()

    def files_on(self, host: str) -> list[str]:
        return self.table.files_on(host)


def nearest_replica(sources: list[str], to_host: str, links: LinkFabric) -> str:
    """The EU DataGrid source-selection rule: cheapest link wins, host-name
    order breaking ties — deterministic, so both stacks always agree."""
    return min(sources, key=lambda host: (links.cost(host, to_host), host))


class DataTransferLogic:
    """One method per declared DataTransfer operation."""

    def __init__(self, catalog, links: LinkFabric):
        #: The catalog port: generated-client surface, bound by the wiring.
        self.catalog = catalog
        self.links = links

    def replicate(self, logical_file: str, to_host: str) -> str:
        """Copy a logical file to a new host from its cheapest source and
        register the new replica; returns the chosen source host."""
        sources = self.catalog.locate_replicas(logical_file)
        require(
            to_host not in sources,
            f"{to_host} already holds a replica of {logical_file}",
        )
        source = nearest_replica(sources, to_host, self.links)
        self.links.transfer(source, to_host)
        self.catalog.register_replica(logical_file, to_host)
        return source

    def stage_in(self, logical_file: str, to_host: str) -> str:
        """Pull a working copy to ``to_host`` (for a job) from the cheapest
        source without touching the catalog; a host holding a replica
        stages from itself for free."""
        sources = self.catalog.locate_replicas(logical_file)
        source = to_host if to_host in sources else nearest_replica(
            sources, to_host, self.links
        )
        self.links.transfer(source, to_host)
        return source
