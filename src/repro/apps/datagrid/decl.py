"""The datagrid service declarations — written exactly once.

This is the tentpole's proof: neither service below has a hand-written
WSRF or WS-Transfer class.  Each is one :class:`ServiceDecl` that
:mod:`repro.apps.layers` binds into both stacks (services *and* clients),
with the stack idioms living entirely in the binding:

* the WSRF binding exposes ``registerReplica`` / ``locateReplicas`` / ...
  as app-namespace actions;
* the WS-Transfer binding maps them onto Create/Get/Put/Delete with the
  operation and its arguments encoded in the EPR's explicit resource key
  (``r:<lfn>|<host>``, ``f:<lfn>``, ... — the mode-prefix style of §3.2).

The workload itself is the EU DataGrid pair: a replica catalog mapping
logical file names to the storage hosts holding copies, and a
replica-aware transfer service that picks sources by simulated link cost.
"""

from __future__ import annotations

from repro.apps.layers import Operation, ServiceDecl
from repro.xmllib import ns

#: Logical-file → hosts-with-a-copy mapping for the whole VO.
REPLICA_CATALOG = ServiceDecl(
    name="ReplicaCatalog",
    namespace=ns.DATAGRID,
    operations=(
        Operation(
            "RegisterReplica",
            params=("LogicalFile", "Host"),
            verb="create",
            key_prefix="r:",
            key_params=("LogicalFile", "Host"),
        ),
        Operation(
            "UnregisterReplica",
            params=("LogicalFile", "Host"),
            verb="delete",
            key_prefix="r:",
            key_params=("LogicalFile", "Host"),
        ),
        Operation(
            "LocateReplicas",
            params=("LogicalFile",),
            result="Host",
            arity="list",
            verb="get",
            key_prefix="f:",
            key_params=("LogicalFile",),
        ),
        Operation(
            "ListFiles",
            result="LogicalFile",
            arity="list",
            verb="get",
            key_prefix="all",
        ),
        Operation(
            "FilesOn",
            params=("Host",),
            result="LogicalFile",
            arity="list",
            verb="get",
            key_prefix="h:",
            key_params=("Host",),
        ),
    ),
)

#: Replica-aware transfer: replicate to a host, stage in from the nearest.
DATA_TRANSFER = ServiceDecl(
    name="DataTransfer",
    namespace=ns.DATAGRID,
    operations=(
        Operation(
            "Replicate",
            params=("LogicalFile", "ToHost"),
            result="SourceHost",
            arity="one",
            verb="create",
            key_prefix="x:",
            key_params=("LogicalFile", "ToHost"),
        ),
        Operation(
            "StageIn",
            params=("LogicalFile", "ToHost"),
            result="SourceHost",
            arity="one",
            verb="get",
            key_prefix="s:",
            key_params=("LogicalFile", "ToHost"),
        ),
    ),
)
