"""Generated datagrid service and client classes, one pair per stack.

Nothing here is hand-written per stack — every class below is produced by
the :mod:`repro.apps.layers` bindings from the declarations in
:mod:`repro.apps.datagrid.decl`.  Adding a datagrid operation means
editing the declaration and the logic class; both stacks pick it up.
"""

from __future__ import annotations

from repro.apps.datagrid.decl import DATA_TRANSFER, REPLICA_CATALOG
from repro.apps.layers import (
    declared_transfer_client,
    declared_transfer_service,
    declared_wsrf_client,
    declared_wsrf_service,
)

WsrfReplicaCatalogService = declared_wsrf_service(REPLICA_CATALOG)
TransferReplicaCatalogService = declared_transfer_service(REPLICA_CATALOG)
WsrfReplicaCatalogClient = declared_wsrf_client(REPLICA_CATALOG)
TransferReplicaCatalogClient = declared_transfer_client(REPLICA_CATALOG)

WsrfDataTransferService = declared_wsrf_service(DATA_TRANSFER)
TransferDataTransferService = declared_transfer_service(DATA_TRANSFER)
WsrfDataTransferClient = declared_wsrf_client(DATA_TRANSFER)
TransferDataTransferClient = declared_transfer_client(DATA_TRANSFER)
