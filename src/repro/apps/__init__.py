"""The paper's two evaluation applications: the Counter service ("hello
world") and Grid-in-a-Box, each implemented on both software stacks."""
