"""Simulated process substrate for the ExecServices.

The paper's ExecService spawns real Windows processes; here jobs are
clock-driven simulations (DESIGN.md §2): a spawned process runs for the
virtual duration its job description declares, then exits with the declared
code, firing a completion callback the owning ExecService turns into a
notification.  Kill cancels the timer.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.sim.clock import Timer
from repro.sim.network import Network
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement


class JobState(enum.Enum):
    PENDING = "Pending"
    RUNNING = "Running"
    EXITED = "Exited"
    KILLED = "Killed"


@dataclass(frozen=True)
class JobSpec:
    """A parsed job description.

    ``output_files`` names files the job leaves in its working directory on
    exit — Figure 5's "Data input/output" arrow between the ExecService and
    its co-located DataService, which clients later survey via the
    directory listing.
    """

    command: str
    arguments: tuple[str, ...] = ()
    run_time_ms: float = 100.0
    exit_code: int = 0
    output_files: tuple[str, ...] = ()

    def to_xml(self) -> XmlElement:
        node = element(
            f"{{{ns.GIAB}}}Job",
            element(f"{{{ns.GIAB}}}Command", self.command),
            element(f"{{{ns.GIAB}}}RunTime", repr(self.run_time_ms)),
            element(f"{{{ns.GIAB}}}ExitCode", self.exit_code),
        )
        for arg in self.arguments:
            node.append(element(f"{{{ns.GIAB}}}Argument", arg))
        for name in self.output_files:
            node.append(element(f"{{{ns.GIAB}}}OutputFile", name))
        return node

    @classmethod
    def from_xml(cls, node: XmlElement) -> "JobSpec":
        command = text_of(node.find_local("Command"))
        if not command:
            raise ValueError("job description has no Command")
        run_time = float(text_of(node.find_local("RunTime"), "100"))
        exit_code = int(text_of(node.find_local("ExitCode"), "0"))
        arguments = tuple(a.text().strip() for a in node.element_children() if a.tag.local == "Argument")
        outputs = tuple(
            o.text().strip() for o in node.element_children() if o.tag.local == "OutputFile"
        )
        return cls(command, arguments, run_time, exit_code, outputs)


@dataclass
class ProcessHandle:
    """One spawned (simulated) process."""

    pid: int
    spec: JobSpec
    working_dir: str
    started_at: float
    state: JobState = JobState.RUNNING
    exit_code: int | None = None
    exited_at: float | None = None
    _timer: Timer | None = field(default=None, repr=False)

    def running_time(self, now: float) -> float:
        end = self.exited_at if self.exited_at is not None else now
        return max(0.0, end - self.started_at)


class ProcessSpawner:
    """The per-host "Proc Spawn Win Service" from Figure 5."""

    def __init__(self, network: Network):
        self.network = network
        self._pids = itertools.count(1000)
        self.processes: dict[int, ProcessHandle] = {}

    def spawn(
        self,
        spec: JobSpec,
        working_dir: str,
        on_exit: Callable[[ProcessHandle], None] | None = None,
    ) -> ProcessHandle:
        """Start a process; charges the spawn cost and schedules its exit."""
        self.network.charge(self.network.costs.process_spawn, "job.spawn")
        handle = ProcessHandle(
            pid=next(self._pids),
            spec=spec,
            working_dir=working_dir,
            started_at=self.network.clock.now,
        )
        self.processes[handle.pid] = handle

        def exit_now() -> None:
            if handle.state is not JobState.RUNNING:
                return
            handle.state = JobState.EXITED
            handle.exit_code = spec.exit_code
            handle.exited_at = self.network.clock.now
            if on_exit is not None:
                on_exit(handle)

        handle._timer = self.network.kernel.call_after(
            spec.run_time_ms, exit_now, label=f"job-exit:{handle.pid}"
        )
        return handle

    def kill(self, pid: int) -> bool:
        """Terminate a running process; True if it was still running."""
        handle = self.processes.get(pid)
        if handle is None or handle.state is not JobState.RUNNING:
            return False
        handle.state = JobState.KILLED
        handle.exit_code = -9
        handle.exited_at = self.network.clock.now
        if handle._timer is not None:
            self.network.kernel.cancel(handle._timer)
        return True

    def get(self, pid: int) -> ProcessHandle | None:
        return self.processes.get(pid)

    def reap(self, pid: int) -> None:
        """Forget a finished process (ExecService Destroy cleanup)."""
        handle = self.processes.pop(pid, None)
        if handle is not None and handle.state is JobState.RUNNING:
            self.processes[pid] = handle
            raise RuntimeError(f"refusing to reap running pid {pid}")
