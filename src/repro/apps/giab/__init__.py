"""Grid-in-a-Box (§4.2): remote job execution for one virtual organisation.

Five WSRF services (Account, ResourceAllocation, Reservation, Data, Exec)
and four WS-Transfer services (Account, unified ResourceAllocation/
Reservation, Data, Exec), inspired by the OMII 1.0 services, plus the
simulated substrates they stand on: a process spawner and a remote
filesystem.
"""

from repro.apps.giab.jobs import JobState, ProcessHandle, ProcessSpawner
from repro.apps.giab.storage import SimulatedFileSystem
from repro.apps.giab.vo import (
    GIAB_HOSTS,
    TransferVo,
    WsrfVo,
    build_transfer_vo,
    build_wsrf_vo,
)

__all__ = [
    "JobState",
    "ProcessHandle",
    "ProcessSpawner",
    "SimulatedFileSystem",
    "GIAB_HOSTS",
    "WsrfVo",
    "TransferVo",
    "build_wsrf_vo",
    "build_transfer_vo",
]
