"""Virtual-organisation deployment builders for Grid-in-a-Box.

"Typically, there will be one AccountService, ResourceAllocationService and
ReservationService for the entire VO and one ExecService and DataService for
each machine in the VO."  The builders stand up that topology on either
stack — X.509-signed by default, since the paper's Figure 6 numbers are
dominated by "web service outcalls (and message signings)".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.giab.jobs import ProcessSpawner
from repro.apps.giab.storage import SimulatedFileSystem
from repro.apps.giab.transfer import (
    TransferAccountService,
    TransferDataService,
    TransferExecService,
    TransferGridAdmin,
    TransferGridClient,
    TransferResourceAllocationService,
)
from repro.apps.giab.wsrf import (
    WsrfAccountService,
    WsrfDataService,
    WsrfExecService,
    WsrfGridAdmin,
    WsrfGridClient,
    WsrfReservationService,
    WsrfResourceAllocationService,
)
from repro.container.client import SoapClient
from repro.container.deployment import Deployment
from repro.container.security import SecurityMode, SecurityPolicy
from repro.crypto.x509 import CertificateAuthority
from repro.eventing.delivery import EventingConsumer
from repro.eventing.manager import EventSubscriptionManagerService
from repro.eventing.store import FlatFileSubscriptionStore, XmlDbSubscriptionStore
from repro.reliable import ReliableChannel, ReliableNotifier, RetryPolicy
from repro.sim.costs import CostModel
from repro.wsn.base import NotificationConsumer, SubscriptionManagerService
from repro.wsrf.resource import ResourceHome
from repro.xmldb.collection import Collection

#: Default VO topology: node name → installed applications.
GIAB_HOSTS: dict[str, list[str]] = {
    "node1": ["blast", "sort"],
    "node2": ["sort", "render"],
}

CENTRAL_HOST = "vo-central"
CLIENT_HOST = "workstation"
ADMIN_HOST = "admin-console"
USER_CN = "alice"
ADMIN_CN = "vo-admin"


@dataclass
class NodePair:
    """One machine's ExecService/DataService pair."""

    exec_service: object
    data_service: object


@dataclass
class WsrfVo:
    deployment: Deployment
    account: WsrfAccountService
    allocation: WsrfResourceAllocationService
    reservation: WsrfReservationService
    nodes: dict[str, NodePair]
    admin: WsrfGridAdmin
    client: WsrfGridClient
    consumer: NotificationConsumer
    user_dn: str = ""


@dataclass
class TransferVo:
    deployment: Deployment
    account: TransferAccountService
    allocation: TransferResourceAllocationService
    nodes: dict[str, NodePair]
    admin: TransferGridAdmin
    client: TransferGridClient
    consumer: EventingConsumer
    user_dn: str = ""


def _deployment(
    mode: SecurityMode, costs: CostModel | None, reliability: RetryPolicy | None
) -> Deployment:
    ca = CertificateAuthority.create(seed=7)
    deployment = Deployment(SecurityPolicy(mode), costs or CostModel(), ca)
    deployment.reliability = reliability
    return deployment


def _client_soap(
    deployment: Deployment, host: str, credentials
) -> SoapClient | ReliableChannel:
    """A user-facing proxy, reliable when the deployment says so."""
    soap = SoapClient(deployment, host, credentials)
    if deployment.reliability is not None:
        return ReliableChannel(soap, deployment.reliability, deployment.dead_letters)
    return soap


def build_wsrf_vo(
    mode: SecurityMode = SecurityMode.X509,
    costs: CostModel | None = None,
    hosts: dict[str, list[str]] | None = None,
    registered: bool = True,
    reliability: RetryPolicy | None = None,
    indexed: bool = False,
) -> WsrfVo:
    """Stand up the five-service WSRF VO; ``registered`` pre-runs the admin
    workflow (accounts + host registry) so the client flow can start.
    ``reliability`` arms WS-RM retransmission on every client proxy,
    container out-call and notification path.  ``indexed`` declares the
    secondary indexes (host registry, reservations, directories) before
    any document is written; the default False keeps the paper-calibrated
    cost profile bit-identical."""
    hosts = hosts if hosts is not None else GIAB_HOSTS
    deployment = _deployment(mode, costs, reliability)
    network = deployment.network

    central_creds = deployment.issue_credentials("vo-central-container", seed=201)
    central = deployment.add_container(CENTRAL_HOST, "VO", central_creds)

    admin_creds = deployment.issue_credentials(ADMIN_CN, seed=202)
    admins = {str(admin_creds.subject)}

    account = WsrfAccountService(Collection("accounts", network), admins)
    central.add_service(account)
    reservation = WsrfReservationService(
        ResourceHome("reservations", network), account_address=""
    )
    central.add_service(reservation)
    reservation.account_address = account.address
    allocation = WsrfResourceAllocationService(
        Collection("hosts", network), reservation.address, admins
    )
    central.add_service(allocation)
    if indexed:
        # Declare while the collections are still empty: the build scan is
        # free and every later write maintains the indexes incrementally.
        reservation.enable_indexes()
        allocation.enable_indexes()

    nodes: dict[str, NodePair] = {}
    for index, (node_name, applications) in enumerate(sorted(hosts.items())):
        node_creds = deployment.issue_credentials(f"{node_name}-container", seed=210 + index)
        container = deployment.add_container(node_name, "Node", node_creds)
        filesystem = SimulatedFileSystem(network)
        spawner = ProcessSpawner(network)
        manager = SubscriptionManagerService(ResourceHome(f"{node_name}-subs", network))
        container.add_service(manager)
        data = WsrfDataService(
            ResourceHome(f"{node_name}-dirs", network),
            filesystem,
            node_name,
            reservation.address,
        )
        if indexed:
            data.enable_indexes()
        container.add_service(data)
        exec_service = WsrfExecService(
            ResourceHome(f"{node_name}-jobs", network), spawner, node_name, filesystem
        )
        exec_service.subscription_manager = manager
        if reliability is not None:
            exec_service.reliable_deliverer = ReliableNotifier(deployment, reliability)
        container.add_service(exec_service)
        nodes[node_name] = NodePair(exec_service, data)

    admin_soap = _client_soap(deployment, ADMIN_HOST, admin_creds)
    admin = WsrfGridAdmin(admin_soap, account.address, allocation.address)

    user_creds = deployment.issue_credentials(USER_CN, seed=203)
    user_soap = _client_soap(deployment, CLIENT_HOST, user_creds)
    client = WsrfGridClient(user_soap, allocation.address, reservation.address)
    consumer = NotificationConsumer(deployment, CLIENT_HOST, kind="http-server")

    vo = WsrfVo(
        deployment, account, allocation, reservation, nodes, admin, client, consumer,
        user_dn=str(user_creds.subject),
    )
    if registered:
        admin.add_account(vo.user_dn, privileges=["run-jobs"])
        for node_name, applications in sorted(hosts.items()):
            pair = nodes[node_name]
            admin.register_host(
                node_name, pair.exec_service.address, pair.data_service.address, applications
            )
    return vo


def build_transfer_vo(
    mode: SecurityMode = SecurityMode.X509,
    costs: CostModel | None = None,
    hosts: dict[str, list[str]] | None = None,
    registered: bool = True,
    reliability: RetryPolicy | None = None,
    indexed: bool = False,
) -> TransferVo:
    """Stand up the four-service WS-Transfer VO.  ``indexed`` declares the
    site application index and swaps the flat-file subscription store for
    the indexed XML-database one; the default False keeps the
    paper-calibrated cost profile bit-identical."""
    hosts = hosts if hosts is not None else GIAB_HOSTS
    deployment = _deployment(mode, costs, reliability)
    network = deployment.network

    central_creds = deployment.issue_credentials("vo-central-container", seed=301)
    central = deployment.add_container(CENTRAL_HOST, "VO", central_creds)

    admin_creds = deployment.issue_credentials(ADMIN_CN, seed=302)
    admins = {str(admin_creds.subject)}

    account = TransferAccountService(Collection("accounts", network), admins)
    central.add_service(account)
    allocation = TransferResourceAllocationService(
        Collection("sites", network), account.address, admins
    )
    central.add_service(allocation)
    if indexed:
        allocation.enable_indexes()

    nodes: dict[str, NodePair] = {}
    for index, (node_name, applications) in enumerate(sorted(hosts.items())):
        node_creds = deployment.issue_credentials(f"{node_name}-container", seed=310 + index)
        container = deployment.add_container(node_name, "Node", node_creds)
        filesystem = SimulatedFileSystem(network)
        spawner = ProcessSpawner(network)
        store = (
            XmlDbSubscriptionStore(network, Collection(f"{node_name}-subs", network))
            if indexed
            else FlatFileSubscriptionStore(network)
        )
        manager = EventSubscriptionManagerService(store)
        container.add_service(manager)
        data = TransferDataService(filesystem, node_name, allocation.address)
        container.add_service(data)
        exec_service = TransferExecService(
            Collection(f"{node_name}-jobs", network),
            spawner,
            node_name,
            manager,
            allocation.address,
            filesystem,
        )
        if reliability is not None:
            exec_service.notifications.deliverer = ReliableNotifier(
                deployment, reliability
            )
        container.add_service(exec_service)
        nodes[node_name] = NodePair(exec_service, data)

    admin_soap = _client_soap(deployment, ADMIN_HOST, admin_creds)
    admin = TransferGridAdmin(admin_soap, account.address, allocation.address)

    user_creds = deployment.issue_credentials(USER_CN, seed=303)
    user_soap = _client_soap(deployment, CLIENT_HOST, user_creds)
    user_dn = str(user_creds.subject)
    client = TransferGridClient(user_soap, allocation.address, user_dn)
    consumer = EventingConsumer(deployment, CLIENT_HOST)

    vo = TransferVo(
        deployment, account, allocation, nodes, admin, client, consumer, user_dn=user_dn
    )
    if registered:
        admin.add_account(user_dn, privileges=["run-jobs"])
        for node_name, applications in sorted(hosts.items()):
            pair = nodes[node_name]
            admin.register_site(
                node_name, pair.exec_service.address, pair.data_service.address, applications
            )
    return vo
