"""The simulated per-host filesystem the DataServices manage.

The WSRF DataService models directories as resources ("Clients create new
directory resources (although do not name them), upload data to them"); the
WS-Transfer DataService "stores the files on the file system" under a
hash-of-DN directory.  Both sit on this substrate, which charges calibrated
filesystem costs.
"""

from __future__ import annotations

from repro.sim.network import Network


class FileSystemError(OSError):
    """Missing paths, duplicate directories, non-empty refusals, ..."""


class SimulatedFileSystem:
    """Directories of named files with virtual-time costs."""

    def __init__(self, network: Network):
        self.network = network
        self._dirs: dict[str, dict[str, str]] = {}

    # -- directories ----------------------------------------------------------

    def mkdir(self, path: str) -> None:
        if path in self._dirs:
            raise FileSystemError(f"directory exists: {path}")
        self.network.charge(self.network.costs.fs_mkdir, "fs")
        self._dirs[path] = {}

    def rmdir(self, path: str) -> None:
        """Remove a directory and its contents (WSRF Destroy semantics)."""
        if path not in self._dirs:
            raise FileSystemError(f"no such directory: {path}")
        contents = self._dirs.pop(path)
        self.network.charge(
            self.network.costs.fs_delete * max(1, len(contents)), "fs"
        )

    def exists_dir(self, path: str) -> bool:
        return path in self._dirs

    def listdir(self, path: str) -> list[str]:
        directory = self._dirs.get(path)
        if directory is None:
            raise FileSystemError(f"no such directory: {path}")
        self.network.charge(
            self.network.costs.fs_list_per_entry * max(1, len(directory)), "fs"
        )
        return sorted(directory)

    def directories(self) -> list[str]:
        return sorted(self._dirs)

    # -- files ---------------------------------------------------------------------

    def write(self, path: str, name: str, content: str) -> None:
        directory = self._dirs.get(path)
        if directory is None:
            raise FileSystemError(f"no such directory: {path}")
        self.network.charge(
            self.network.costs.fs_write_per_kb * len(content) / 1024.0, "fs"
        )
        directory[name] = content

    def read(self, path: str, name: str) -> str:
        directory = self._dirs.get(path)
        if directory is None or name not in directory:
            raise FileSystemError(f"no such file: {path}/{name}")
        content = directory[name]
        self.network.charge(
            self.network.costs.fs_read_per_kb * len(content) / 1024.0, "fs"
        )
        return content

    def delete(self, path: str, name: str) -> None:
        directory = self._dirs.get(path)
        if directory is None or name not in directory:
            raise FileSystemError(f"no such file: {path}/{name}")
        self.network.charge(self.network.costs.fs_delete, "fs")
        del directory[name]

    def exists(self, path: str, name: str) -> bool:
        directory = self._dirs.get(path)
        return directory is not None and name in directory
