"""The five WSRF Grid-in-a-Box services (§4.2.1)."""

from repro.apps.giab.wsrf.account import WsrfAccountService
from repro.apps.giab.wsrf.allocation import WsrfResourceAllocationService
from repro.apps.giab.wsrf.reservation import WsrfReservationService
from repro.apps.giab.wsrf.data import WsrfDataService
from repro.apps.giab.wsrf.execservice import WsrfExecService
from repro.apps.giab.wsrf.client import WsrfGridAdmin, WsrfGridClient

__all__ = [
    "WsrfAccountService",
    "WsrfResourceAllocationService",
    "WsrfReservationService",
    "WsrfDataService",
    "WsrfExecService",
    "WsrfGridAdmin",
    "WsrfGridClient",
]
