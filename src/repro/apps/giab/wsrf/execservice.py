"""The WSRF ExecService: job resources, claims, exit notifications (§4.2.1).

StartJob is the paper's expensive operation: "due to the design of its
services the WSRF implementation requires several more outcalls to
Instantiate a Job than the WS-Transfer version" — here: reservation
details, the claim (SetTerminationTime), and the working-directory lookup,
plus the spawn.  When the job exits, subscribed clients get a WS-Notification
containing the job's EPR and the reservation is destroyed automatically
(why Figure 6 reports no WSRF bar for Un-reserve).

This module is a *router*: wire parsing, the job-as-WS-Resource idiom and
WSRF fault phrasing over the shared job and reservation-ownership rules
in :mod:`repro.apps.giab.logic`.
"""

from __future__ import annotations

from repro.addressing.epr import EndpointReference
from repro.apps.giab.common import TOPIC_JOB_EXITED, wsrf_actions as actions
from repro.apps.giab.jobs import JobSpec, JobState, ProcessSpawner
from repro.apps.giab.logic import (
    ReservationRules,
    job_running_time_text,
    write_job_outputs,
)
from repro.apps.layers.logic import LogicError
from repro.apps.layers.router import wsrf_fault
from repro.container.service import MessageContext, web_method
from repro.soap.envelope import SoapFault
from repro.wsn.base import NotificationProducerMixin
from repro.wsrf.basefaults import base_fault
from repro.wsrf.lifetime import ResourceLifetimeMixin, actions as rl_actions
from repro.wsrf.programming import ResourceField, WsResourceService, resource_property
from repro.wsrf.properties import ResourcePropertiesMixin, actions as rp_actions
from repro.wsrf.resource import RESOURCE_ID
from repro.xmllib import element, ns, serialize, text_of
from repro.xmllib.element import XmlElement


class WsrfExecService(
    NotificationProducerMixin,
    ResourcePropertiesMixin,
    ResourceLifetimeMixin,
    WsResourceService,
):
    service_name = "Exec"
    resource_ns = ns.GIAB

    pid = ResourceField(int, 0)
    command = ResourceField(str, "")
    reservation_xml = ResourceField(str, "")

    def __init__(self, home, spawner: ProcessSpawner, node_host: str, filesystem=None):
        super().__init__(home)
        self.spawner = spawner
        self.node_host = node_host
        #: The node's filesystem (shared with the co-located DataService),
        #: where exiting jobs leave their output files.
        self.filesystem = filesystem

    # -- job instantiation ----------------------------------------------------------

    @web_method(actions.START_JOB)
    def start_job(self, context: MessageContext) -> XmlElement:
        body = context.body
        reservation_el = body.find_local("ReservationEPR")
        data_el = body.find_local("DataDirectoryEPR")
        job_el = body.find_local("Job")
        if reservation_el is None or data_el is None or job_el is None:
            raise base_fault("startJob needs ReservationEPR, DataDirectoryEPR and Job")
        reservation = EndpointReference.from_xml(
            next(reservation_el.element_children())
        )
        data_dir = EndpointReference.from_xml(next(data_el.element_children()))
        spec = JobSpec.from_xml(job_el)
        client = context.client()

        # Out-call 1: fetch the reservation's details and verify them.
        details = client.invoke(
            reservation,
            rp_actions.GET_MULTIPLE,
            element(
                f"{{{ns.WSRF_RP}}}GetMultipleResourceProperties",
                element(f"{{{ns.WSRF_RP}}}ResourceProperty", "Host"),
                element(f"{{{ns.WSRF_RP}}}ResourceProperty", "Owner"),
            ),
        )
        reserved_host = text_of(details.find(f"{{{ns.GIAB}}}Host"))
        owner = text_of(details.find(f"{{{ns.GIAB}}}Owner"))
        sender = str(context.sender) if context.sender is not None else owner
        try:
            ReservationRules.require_reservation_for_host(reserved_host, self.node_host)
            ReservationRules.require_reservation_owner(owner, sender)
        except LogicError as error:
            raise wsrf_fault(error) from error

        # Out-call 2: claim the reservation by lengthening its lifetime.
        client.invoke(
            reservation,
            rl_actions.SET_TERMINATION_TIME,
            element(
                f"{{{ns.WSRF_RL}}}SetTerminationTime",
                element(f"{{{ns.WSRF_RL}}}RequestedTerminationTime", "infinity"),
            ),
        )

        # Out-call 3: resolve the working directory from the DataService.
        directory_response = client.invoke(
            data_dir,
            rp_actions.GET,
            element(f"{{{ns.WSRF_RP}}}GetResourceProperty", "DirectoryPath"),
        )
        working_dir = text_of(directory_response.find(f"{{{ns.GIAB}}}DirectoryPath"))

        job_epr = self.create_resource(
            command=spec.command,
            reservation_xml=serialize(reservation.to_xml()),
        )
        job_key = job_epr.property(RESOURCE_ID)
        handle = self.spawner.spawn(
            spec, working_dir, on_exit=lambda h: self._job_exited(job_key, h)
        )
        document = self.home.load(job_key)
        pid_el = document.find(f"{{{ns.WSRF_FIELDS}}}pid")
        pid_el.children = [str(handle.pid)]
        self.home.save(job_key, document)
        return element(f"{{{ns.GIAB}}}startJobResponse", job_epr.to_xml())

    def _job_exited(self, job_key: str, handle) -> None:
        """Exit callback: stage output files out, notify subscribers
        (message contains the job's EPR), auto-destroy the reservation."""
        self._write_outputs(handle)
        job_epr = self.resource_epr(job_key)
        self.notify(
            TOPIC_JOB_EXITED,
            element(
                f"{{{ns.GIAB}}}JobExited",
                job_epr.to_xml(f"{{{ns.GIAB}}}JobEPR"),
                element(f"{{{ns.GIAB}}}ExitCode", handle.exit_code),
            ),
            resource_key=job_key,
        )
        if self.home.contains(job_key):
            document = self.home.load(job_key)
            reservation_xml = text_of(
                document.find(f"{{{ns.WSRF_FIELDS}}}reservation_xml")
            )
            if reservation_xml:
                from repro.xmllib import parse_xml

                reservation = EndpointReference.from_xml(parse_xml(reservation_xml))
                try:
                    self.container.outcall_client().invoke(
                        reservation, rl_actions.DESTROY, element(f"{{{ns.WSRF_RL}}}Destroy")
                    )
                except SoapFault:
                    pass  # already destroyed — nothing to unreserve

    def _write_outputs(self, handle) -> None:
        write_job_outputs(self.filesystem, handle)

    # -- resource properties -----------------------------------------------------------

    def _handle(self):
        return self.spawner.get(self.pid)

    @resource_property(f"{{{ns.GIAB}}}Status")
    def rp_status(self):
        handle = self._handle()
        return handle.state.value if handle is not None else JobState.PENDING.value

    @resource_property(f"{{{ns.GIAB}}}ExitCode")
    def rp_exit_code(self):
        handle = self._handle()
        if handle is None or handle.exit_code is None:
            return None
        return handle.exit_code

    @resource_property(f"{{{ns.GIAB}}}RunningTime")
    def rp_running_time(self):
        handle = self._handle()
        if handle is None:
            return None
        return job_running_time_text(handle, self.network.clock.now)

    # -- lifetime -------------------------------------------------------------------------

    def on_resource_destroyed(self, key: str) -> None:
        """Destroy kills the job if it is still running, then cleans up the
        process exit state (§4.2.1)."""
        if not self.home.contains(key):
            return
        document = self.home.load(key)
        pid_text = text_of(document.find(f"{{{ns.WSRF_FIELDS}}}pid"))
        if not pid_text:
            return
        pid = int(pid_text)
        self.spawner.kill(pid)
        if self.spawner.get(pid) is not None:
            self.spawner.reap(pid)
