"""The WSRF DataService: directory resources on a node's filesystem (§4.2.1).

"WS-Resources are directories.  Clients create new directory resources
(although do not name them), upload data to them, and pass the EPRs ... to
the ExecService."  The file list is a *dynamic* resource property computed
by examining the directory; Destroy removes the directory and its contents.

This module is a *router*: wire parsing, the directory-as-WS-Resource
idiom and WSRF fault phrasing over the shared data rules in
:mod:`repro.apps.giab.logic` and the :class:`DirectoriesTable` accessor
in :mod:`repro.apps.giab.db`.
"""

from __future__ import annotations

import itertools

from repro.addressing.epr import EndpointReference
from repro.apps.giab.common import wsrf_actions as actions
from repro.apps.giab.db import DirectoriesTable
from repro.apps.giab.logic import list_directory, require_reservation_holder
from repro.apps.giab.storage import FileSystemError, SimulatedFileSystem
from repro.apps.layers.logic import LogicError
from repro.apps.layers.router import wsrf_fault
from repro.container.service import MessageContext, web_method
from repro.wsrf.basefaults import base_fault
from repro.wsrf.lifetime import ResourceLifetimeMixin
from repro.wsrf.programming import ResourceField, WsResourceService, resource_property
from repro.wsrf.properties import ResourcePropertiesMixin
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement


class WsrfDataService(
    ResourcePropertiesMixin, ResourceLifetimeMixin, WsResourceService
):
    service_name = "Data"
    resource_ns = ns.GIAB

    directory = ResourceField(str, "")

    def __init__(
        self,
        home,
        filesystem: SimulatedFileSystem,
        node_host: str,
        reservation_address: str = "",
    ):
        super().__init__(home)
        self.dirs = DirectoriesTable(home)
        self.filesystem = filesystem
        self.node_host = node_host
        self.reservation_address = reservation_address
        self._dir_ids = itertools.count(1)

    def enable_indexes(self) -> None:
        """Declare the directory-path index.  Opt-in: listing and reverse
        lookup of directory resources then run off the index; default
        costs are unchanged."""
        self.dirs.declare_indexes()

    def directories(self) -> list[str]:
        """All directory paths managed by this service — a covering index
        read when indexed, otherwise a load of each resource document."""
        return self.dirs.directories()

    def keys_for_directory(self, path: str) -> list[str]:
        """Resource keys whose directory field equals ``path`` (normally one)."""
        return self.dirs.keys_for(path)

    # -- operations ---------------------------------------------------------------

    @web_method(actions.CREATE_DIRECTORY)
    def create_directory(self, context: MessageContext) -> XmlElement:
        # The service, not the client, names the directory.
        path = f"/grid/{self.node_host}/dir{next(self._dir_ids):04d}"
        self.filesystem.mkdir(path)
        epr = self.create_resource(directory=path)
        return element(f"{{{ns.GIAB}}}createDirectoryResponse", epr.to_xml())

    @web_method(actions.UPLOAD_FILE)
    def upload_file(self, context: MessageContext) -> XmlElement:
        self.current_resource
        name = text_of(context.body.find_local("FileName"))
        content_el = context.body.find_local("Content")
        if not name or content_el is None:
            raise base_fault("uploadFile needs FileName and Content")
        self._check_reservation(context)
        self.filesystem.write(self.directory, name, content_el.text())
        return element(f"{{{ns.GIAB}}}uploadFileResponse")

    @web_method(actions.DOWNLOAD_FILE)
    def download_file(self, context: MessageContext) -> XmlElement:
        self.current_resource
        name = text_of(context.body.find_local("FileName"))
        try:
            content = self.filesystem.read(self.directory, name)
        except FileSystemError as exc:
            raise base_fault(str(exc))
        return element(
            f"{{{ns.GIAB}}}downloadFileResponse",
            element(f"{{{ns.GIAB}}}Content", content, attrs={"Name": name}),
        )

    @web_method(actions.DELETE_FILE)
    def delete_file(self, context: MessageContext) -> XmlElement:
        # "The Delete File operation involves a single call in both
        # implementations" — no reservation re-check here.
        self.current_resource
        name = text_of(context.body.find_local("FileName"))
        try:
            self.filesystem.delete(self.directory, name)
        except FileSystemError as exc:
            raise base_fault(str(exc))
        return element(f"{{{ns.GIAB}}}deleteFileResponse")

    def _check_reservation(self, context: MessageContext) -> None:
        """Upload is the paper's "pair of calls": client→Data plus
        Data→Reservation to confirm the uploader holds this host."""
        if not self.reservation_address:
            return
        dn = str(context.sender) if context.sender is not None else "anonymous"
        response = context.client().invoke(
            EndpointReference.create(self.reservation_address),
            actions.CHECK_RESERVATION,
            element(
                f"{{{ns.GIAB}}}checkReservation",
                element(f"{{{ns.GIAB}}}Host", self.node_host),
                element(f"{{{ns.GIAB}}}DN", dn),
            ),
        )
        try:
            require_reservation_holder(
                response.text().strip() == "true", dn, self.node_host
            )
        except LogicError as error:
            raise wsrf_fault(error) from error

    # -- resource properties --------------------------------------------------------

    @resource_property(f"{{{ns.GIAB}}}DirectoryPath")
    def rp_directory(self):
        return self.directory

    @resource_property(f"{{{ns.GIAB}}}FileList")
    def rp_file_list(self):
        """Generated dynamically by examining the directory contents —
        "No information for individual files is actually stored as
        resources"."""
        listing = element(f"{{{ns.GIAB}}}FileList")
        for name in list_directory(self.filesystem, self.directory):
            listing.append(element(f"{{{ns.GIAB}}}File", name))
        return listing

    # -- lifetime ------------------------------------------------------------------------

    def on_resource_destroyed(self, key: str) -> None:
        """Destroy "removes a directory and its contents"."""
        document = self.home.load(key) if self.home.contains(key) else None
        if document is None:
            return
        path = text_of(document.find(f"{{{ns.WSRF_FIELDS}}}directory"))
        if path and self.filesystem.exists_dir(path):
            self.filesystem.rmdir(path)
