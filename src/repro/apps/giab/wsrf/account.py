"""The WSRF AccountService: user identity → VO privileges.

Deliberately *not* resource-oriented: "All interaction with these services
uses the same state information (the mapping of users to privileges) ...
and so the WS-Resource concept is not utilized" (§4.2.1).  State lives in a
single accounts document in the database; operations have meaningful names
(addAccount, accountExists) rather than CRUD (§4.2.3).
"""

from __future__ import annotations

from repro.apps.giab.common import wsrf_actions as actions
from repro.container.service import MessageContext, ServiceSkeleton, web_method
from repro.wsrf.basefaults import base_fault
from repro.xmldb.collection import Collection, DocumentNotFound
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement

_DOC_KEY = "accounts"


class WsrfAccountService(ServiceSkeleton):
    service_name = "Account"

    def __init__(self, collection: Collection, admins: set[str] | None = None):
        super().__init__()
        self.collection = collection
        self.admins = admins or set()

    # -- state document helpers ---------------------------------------------------

    def _load(self) -> XmlElement:
        try:
            return self.collection.read(_DOC_KEY)
        except DocumentNotFound:
            return element(f"{{{ns.GIAB}}}Accounts")

    def _save(self, doc: XmlElement) -> None:
        self.collection.upsert(_DOC_KEY, doc)

    def _find_account(self, doc: XmlElement, dn: str) -> XmlElement | None:
        for account in doc.element_children():
            if text_of(account.find_local("DN")) == dn:
                return account
        return None

    def _require_admin(self, context: MessageContext) -> None:
        if context.sender is None:
            return  # unsigned deployments cannot enforce identity
        if str(context.sender) not in self.admins:
            raise base_fault(f"{context.sender} is not a VO administrator")

    # -- operations ------------------------------------------------------------------

    @web_method(actions.ADD_ACCOUNT)
    def add_account(self, context: MessageContext) -> XmlElement:
        self._require_admin(context)
        dn = text_of(context.body.find_local("DN"))
        if not dn:
            raise base_fault("addAccount needs a DN")
        privileges = [
            p.text().strip() for p in context.body.element_children() if p.tag.local == "Privilege"
        ]
        doc = self._load()
        if self._find_account(doc, dn) is not None:
            raise base_fault(f"account already exists for {dn}")
        account = element(f"{{{ns.GIAB}}}Account", element(f"{{{ns.GIAB}}}DN", dn))
        for privilege in privileges:
            account.append(element(f"{{{ns.GIAB}}}Privilege", privilege))
        doc.append(account)
        self._save(doc)
        return element(f"{{{ns.GIAB}}}addAccountResponse")

    @web_method(actions.REMOVE_ACCOUNT)
    def remove_account(self, context: MessageContext) -> XmlElement:
        self._require_admin(context)
        dn = text_of(context.body.find_local("DN"))
        doc = self._load()
        account = self._find_account(doc, dn)
        if account is None:
            raise base_fault(f"no account for {dn}")
        doc.children.remove(account)
        self._save(doc)
        return element(f"{{{ns.GIAB}}}removeAccountResponse")

    @web_method(actions.ACCOUNT_EXISTS)
    def account_exists(self, context: MessageContext) -> XmlElement:
        dn = text_of(context.body.find_local("DN"))
        exists = self._find_account(self._load(), dn) is not None
        return element(f"{{{ns.GIAB}}}accountExistsResponse", "true" if exists else "false")

    @web_method(actions.CHECK_PRIVILEGE)
    def check_privilege(self, context: MessageContext) -> XmlElement:
        dn = text_of(context.body.find_local("DN"))
        privilege = text_of(context.body.find_local("Privilege"))
        account = self._find_account(self._load(), dn)
        allowed = account is not None and any(
            p.text().strip() == privilege
            for p in account.element_children()
            if p.tag.local == "Privilege"
        )
        return element(f"{{{ns.GIAB}}}checkPrivilegeResponse", "true" if allowed else "false")
