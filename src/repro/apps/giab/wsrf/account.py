"""The WSRF AccountService: user identity → VO privileges.

Deliberately *not* resource-oriented: "All interaction with these services
uses the same state information (the mapping of users to privileges) ...
and so the WS-Resource concept is not utilized" (§4.2.1).  State lives in a
single accounts document in the database; operations have meaningful names
(addAccount, accountExists) rather than CRUD (§4.2.3).

This module is a *router*: wire parsing and WSRF fault phrasing over the
shared account rules in :mod:`repro.apps.giab.logic` and the
single-document layout in :mod:`repro.apps.giab.db`.
"""

from __future__ import annotations

from repro.apps.giab.common import wsrf_actions as actions
from repro.apps.giab.db import WsrfAccountsStore
from repro.apps.giab.logic import AdminPolicy, account_element, account_grants
from repro.apps.layers.logic import AccessDenied
from repro.container.service import MessageContext, ServiceSkeleton, web_method
from repro.wsrf.basefaults import base_fault
from repro.xmldb.collection import Collection
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement


class WsrfAccountService(ServiceSkeleton):
    service_name = "Account"

    def __init__(self, collection: Collection, admins: set[str] | None = None):
        super().__init__()
        self.accounts = WsrfAccountsStore(collection)
        self.policy = AdminPolicy(admins)

    def _require_admin(self, context: MessageContext) -> None:
        try:
            self.policy.require_admin(context.sender)
        except AccessDenied as denied:
            raise base_fault(f"{denied.subject} is not a VO administrator") from denied

    # -- operations ------------------------------------------------------------------

    @web_method(actions.ADD_ACCOUNT)
    def add_account(self, context: MessageContext) -> XmlElement:
        self._require_admin(context)
        dn = text_of(context.body.find_local("DN"))
        if not dn:
            raise base_fault("addAccount needs a DN")
        privileges = [
            p.text().strip() for p in context.body.element_children() if p.tag.local == "Privilege"
        ]
        doc = self.accounts.document()
        if self.accounts.find(doc, dn) is not None:
            raise base_fault(f"account already exists for {dn}")
        doc.append(account_element(dn, privileges))
        self.accounts.save(doc)
        return element(f"{{{ns.GIAB}}}addAccountResponse")

    @web_method(actions.REMOVE_ACCOUNT)
    def remove_account(self, context: MessageContext) -> XmlElement:
        self._require_admin(context)
        dn = text_of(context.body.find_local("DN"))
        doc = self.accounts.document()
        account = self.accounts.find(doc, dn)
        if account is None:
            raise base_fault(f"no account for {dn}")
        doc.children.remove(account)
        self.accounts.save(doc)
        return element(f"{{{ns.GIAB}}}removeAccountResponse")

    @web_method(actions.ACCOUNT_EXISTS)
    def account_exists(self, context: MessageContext) -> XmlElement:
        dn = text_of(context.body.find_local("DN"))
        exists = self.accounts.find(self.accounts.document(), dn) is not None
        return element(f"{{{ns.GIAB}}}accountExistsResponse", "true" if exists else "false")

    @web_method(actions.CHECK_PRIVILEGE)
    def check_privilege(self, context: MessageContext) -> XmlElement:
        dn = text_of(context.body.find_local("DN"))
        privilege = text_of(context.body.find_local("Privilege"))
        account = self.accounts.find(self.accounts.document(), dn)
        allowed = account_grants(account, privilege)
        return element(f"{{{ns.GIAB}}}checkPrivilegeResponse", "true" if allowed else "false")
