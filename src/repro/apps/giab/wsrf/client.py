"""Grid user and admin clients for the WSRF Grid-in-a-Box."""

from __future__ import annotations

from dataclasses import dataclass

from repro.addressing.epr import EndpointReference
from repro.apps.giab.common import TOPIC_JOB_EXITED, host_info, parse_host_info, wsrf_actions as actions
from repro.apps.giab.jobs import JobSpec
from repro.container.client import SoapClient
from repro.wsn.base import NotificationConsumer, actions as wsnt_actions
from repro.wsn.topics import TopicDialect
from repro.wsrf.lifetime import actions as rl_actions
from repro.wsrf.properties import actions as rp_actions
from repro.xmllib import element, ns, text_of


@dataclass
class WsrfGridAdmin:
    """The VO administrator: accounts and host registry."""

    soap: SoapClient
    account_address: str
    allocation_address: str

    def add_account(self, dn: str, privileges: list[str] | None = None) -> None:
        body = element(f"{{{ns.GIAB}}}addAccount", element(f"{{{ns.GIAB}}}DN", dn))
        for privilege in privileges or []:
            body.append(element(f"{{{ns.GIAB}}}Privilege", privilege))
        self.soap.invoke(EndpointReference.create(self.account_address), actions.ADD_ACCOUNT, body)

    def remove_account(self, dn: str) -> None:
        self.soap.invoke(
            EndpointReference.create(self.account_address),
            actions.REMOVE_ACCOUNT,
            element(f"{{{ns.GIAB}}}removeAccount", element(f"{{{ns.GIAB}}}DN", dn)),
        )

    def register_host(
        self, host: str, exec_address: str, data_address: str, applications: list[str]
    ) -> None:
        self.soap.invoke(
            EndpointReference.create(self.allocation_address),
            actions.REGISTER_HOST,
            host_info(host, exec_address, data_address, applications),
        )


@dataclass
class WsrfGridClient:
    """The grid user: the Figure 5 flow, one method per step."""

    soap: SoapClient
    allocation_address: str
    reservation_address: str

    # 1. What resources are available for my application?
    def get_available_resources(self, application: str) -> list[dict]:
        response = self.soap.invoke(
            EndpointReference.create(self.allocation_address),
            actions.GET_AVAILABLE_RESOURCES,
            element(
                f"{{{ns.GIAB}}}getAvailableResources",
                element(f"{{{ns.GIAB}}}Application", application),
            ),
        )
        return [parse_host_info(node) for node in response.element_children()]

    # 5. Reserve resources.
    def make_reservation(self, host: str) -> EndpointReference:
        response = self.soap.invoke(
            EndpointReference.create(self.reservation_address),
            actions.CREATE_RESERVATION,
            element(f"{{{ns.GIAB}}}createReservation", element(f"{{{ns.GIAB}}}Host", host)),
        )
        return EndpointReference.from_xml(next(response.element_children()))

    # 7. Create new data resource + stage-in data.
    def create_data_directory(self, data_address: str) -> EndpointReference:
        response = self.soap.invoke(
            EndpointReference.create(data_address),
            actions.CREATE_DIRECTORY,
            element(f"{{{ns.GIAB}}}createDirectory"),
        )
        return EndpointReference.from_xml(next(response.element_children()))

    def upload_file(self, directory: EndpointReference, name: str, content: str) -> None:
        self.soap.invoke(
            directory,
            actions.UPLOAD_FILE,
            element(
                f"{{{ns.GIAB}}}uploadFile",
                element(f"{{{ns.GIAB}}}FileName", name),
                element(f"{{{ns.GIAB}}}Content", content),
            ),
        )

    def list_files(self, directory: EndpointReference) -> list[str]:
        response = self.soap.invoke(
            directory,
            rp_actions.GET,
            element(f"{{{ns.WSRF_RP}}}GetResourceProperty", "FileList"),
        )
        listing = response.find(f"{{{ns.GIAB}}}FileList")
        if listing is None:
            return []
        return [f.text().strip() for f in listing.element_children()]

    def download_file(self, directory: EndpointReference, name: str) -> str:
        response = self.soap.invoke(
            directory,
            actions.DOWNLOAD_FILE,
            element(f"{{{ns.GIAB}}}downloadFile", element(f"{{{ns.GIAB}}}FileName", name)),
        )
        return text_of(response.find(f"{{{ns.GIAB}}}Content"))

    def delete_file(self, directory: EndpointReference, name: str) -> None:
        self.soap.invoke(
            directory,
            actions.DELETE_FILE,
            element(f"{{{ns.GIAB}}}deleteFile", element(f"{{{ns.GIAB}}}FileName", name)),
        )

    # 9. Start application.
    def start_job(
        self,
        exec_address: str,
        reservation: EndpointReference,
        data_directory: EndpointReference,
        spec: JobSpec,
    ) -> EndpointReference:
        response = self.soap.invoke(
            EndpointReference.create(exec_address),
            actions.START_JOB,
            element(
                f"{{{ns.GIAB}}}startJob",
                element(f"{{{ns.GIAB}}}ReservationEPR", reservation.to_xml()),
                element(f"{{{ns.GIAB}}}DataDirectoryEPR", data_directory.to_xml()),
                spec.to_xml(),
            ),
        )
        return EndpointReference.from_xml(next(response.element_children()))

    # 11. Async notification when done (or poll).
    def subscribe_job_exit(
        self, job: EndpointReference, consumer: NotificationConsumer
    ) -> EndpointReference:
        body = element(
            f"{{{ns.WSNT}}}Subscribe",
            consumer.epr.to_xml(f"{{{ns.WSNT}}}ConsumerReference"),
            element(
                f"{{{ns.WSNT}}}TopicExpression",
                TOPIC_JOB_EXITED,
                attrs={"Dialect": TopicDialect.CONCRETE.value},
            ),
        )
        response = self.soap.invoke(job, wsnt_actions.SUBSCRIBE, body)
        return EndpointReference.from_xml(next(response.element_children()))

    def job_status(self, job: EndpointReference) -> str:
        response = self.soap.invoke(
            job, rp_actions.GET, element(f"{{{ns.WSRF_RP}}}GetResourceProperty", "Status")
        )
        return text_of(response.find(f"{{{ns.GIAB}}}Status"))

    def destroy(self, resource: EndpointReference) -> None:
        """Cleanup of job and data resources via WSRF Destroy."""
        self.soap.invoke(resource, rl_actions.DESTROY, element(f"{{{ns.WSRF_RL}}}Destroy"))
