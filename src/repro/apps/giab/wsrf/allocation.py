"""The WSRF ResourceAllocationService (§4.2.1).

Also not resource-oriented: the mapping of installed applications to
ExecServices is shared state.  GetAvailableResources answers "in concert
with the ReservationService" — a server out-call per query.
"""

from __future__ import annotations

from repro.addressing.epr import EndpointReference
from repro.apps.giab.common import host_info, parse_host_info, wsrf_actions as actions
from repro.container.service import MessageContext, ServiceSkeleton, web_method
from repro.wsrf.basefaults import base_fault
from repro.xmldb.collection import Collection, DocumentNotFound
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement


class WsrfResourceAllocationService(ServiceSkeleton):
    service_name = "ResourceAllocation"

    def __init__(
        self,
        collection: Collection,
        reservation_address: str,
        admins: set[str] | None = None,
    ):
        super().__init__()
        self.collection = collection
        self.reservation_address = reservation_address
        self.admins = admins or set()

    def _require_admin(self, context: MessageContext) -> None:
        if context.sender is None:
            return
        if str(context.sender) not in self.admins:
            raise base_fault(f"{context.sender} is not a VO administrator")

    # -- administration ------------------------------------------------------------

    @web_method(actions.REGISTER_HOST)
    def register_host(self, context: MessageContext) -> XmlElement:
        self._require_admin(context)
        info = parse_host_info(context.body)
        if not info["host"]:
            raise base_fault("registerHost needs a Host")
        self.collection.upsert(info["host"], context.body.copy())
        return element(f"{{{ns.GIAB}}}registerHostResponse")

    @web_method(actions.UNREGISTER_HOST)
    def unregister_host(self, context: MessageContext) -> XmlElement:
        self._require_admin(context)
        host = text_of(context.body.find_local("Host"))
        try:
            self.collection.delete(host)
        except DocumentNotFound:
            raise base_fault(f"unknown host: {host}")
        return element(f"{{{ns.GIAB}}}unregisterHostResponse")

    # -- the measured query ------------------------------------------------------------

    @web_method(actions.GET_AVAILABLE_RESOURCES)
    def get_available_resources(self, context: MessageContext) -> XmlElement:
        application = text_of(context.body.find_local("Application"))
        if not application:
            raise base_fault("getAvailableResources needs an Application")
        # "in concert with the ReservationService": one out-call per query.
        reserved_response = context.client().invoke(
            EndpointReference.create(self.reservation_address),
            actions.LIST_RESERVED_HOSTS,
            element(f"{{{ns.GIAB}}}listReservedHosts"),
        )
        reserved = {h.text().strip() for h in reserved_response.element_children()}
        response = element(f"{{{ns.GIAB}}}getAvailableResourcesResponse")
        for key, doc in self.collection.documents():
            info = parse_host_info(doc)
            if application in info["applications"] and info["host"] not in reserved:
                response.append(
                    host_info(
                        info["host"], info["exec_address"], info["data_address"], info["applications"]
                    )
                )
        return response


class ServiceGroupAllocationService(ServiceSkeleton):
    """Alternative ResourceAllocationService backed by a WS-ServiceGroup.

    The host registry is a ServiceGroup whose entries carry HostInfo
    content documents; administrators manage membership through the
    standard wssg:Add operation and entry Destroy, and availability queries
    read the group's members.  Demonstrates the "extra feature" WSRF offers
    (§5 lists service groups among the functionality WS-Transfer lacks).
    """

    service_name = "SgResourceAllocation"

    def __init__(self, group, reservation_address: str):
        super().__init__()
        #: A ServiceGroupService instance (usually in the same container)
        #: whose content rule admits {GIAB}HostInfo documents.
        self.group = group
        self.reservation_address = reservation_address

    @web_method(actions.GET_AVAILABLE_RESOURCES)
    def get_available_resources(self, context: MessageContext) -> XmlElement:
        application = text_of(context.body.find_local("Application"))
        if not application:
            raise base_fault("getAvailableResources needs an Application")
        reserved_response = context.client().invoke(
            EndpointReference.create(self.reservation_address),
            actions.LIST_RESERVED_HOSTS,
            element(f"{{{ns.GIAB}}}listReservedHosts"),
        )
        reserved = {h.text().strip() for h in reserved_response.element_children()}
        response = element(f"{{{ns.GIAB}}}getAvailableResourcesResponse")
        for _entry_key, _member_epr, content in self.group.members():
            if content is None:
                continue
            info = parse_host_info(content)
            if application in info["applications"] and info["host"] not in reserved:
                response.append(
                    host_info(
                        info["host"], info["exec_address"], info["data_address"], info["applications"]
                    )
                )
        return response
